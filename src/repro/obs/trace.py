"""Dependency-free span/event tracing with a Chrome-trace exporter.

A :class:`TraceRecorder` collects **spans** (named intervals with
start/end timestamps) and **instant events**, each carrying arbitrary
correlation arguments (``trace_id``/``job_id``/``batch_id`` by
convention -- see ``docs/observability.md``).  The clock is injectable
so tests record deterministic timelines; the default is a
*wall-anchored monotonic* clock (:func:`monotonic_epoch_clock`):
readings look like epoch seconds, so parent-process and
worker-process timestamps stay on one comparable axis, but they come
from ``time.monotonic`` and therefore never step backwards when NTP
slews or someone resets the wall clock mid-run.

Export is the Chrome trace-event JSON format (the ``traceEvents``
array of ``ph: "X"`` complete events and ``ph: "i"`` instants), which
Perfetto and ``chrome://tracing`` open directly.  Timestamps are
normalized to the earliest event so traces start at t=0.

Worker processes cannot share the recorder object; they build plain
span payload dicts with :func:`worker_span` and ship them back inside
the result envelope, and the engine folds them in with
:meth:`TraceRecorder.ingest`.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

#: Microseconds per second (Chrome trace timestamps are in us).
_US = 1_000_000.0


def new_trace_id() -> str:
    """A random 16-hex-digit trace id."""
    return os.urandom(8).hex()


def monotonic_epoch_clock() -> Callable[[], float]:
    """A wall-anchored monotonic clock (the recorder default).

    ``time.time`` can jump backwards (NTP corrections, manual clock
    changes), which yields negative span durations and out-of-order
    Chrome traces.  The returned clock anchors ``time.monotonic`` to
    the wall clock **once**, at creation: readings are epoch seconds
    (each process anchors to the same wall clock, so parent and
    worker timestamps stay comparable) but advance monotonically for
    the life of the process.
    """
    anchor = time.time() - time.monotonic()

    def clock() -> float:
        return anchor + time.monotonic()

    return clock


#: One shared anchor per process, so every recorder (and re-created
#: recorders in tests) reads the same timeline.
_DEFAULT_CLOCK = monotonic_epoch_clock()


def _thread_id() -> int:
    get_native = getattr(threading, "get_native_id", None)
    return get_native() if get_native is not None else threading.get_ident()


@dataclass(frozen=True)
class Span:
    """One named interval (``end`` == ``start`` for instant events)."""

    name: str
    cat: str
    start: float
    end: float
    pid: int
    tid: int
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def instant(self) -> bool:
        return self.end == self.start


class TraceRecorder:
    """Thread-safe span/event collection with Chrome-trace export."""

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        trace_id: Optional[str] = None,
        max_events: int = 1_000_000,
        flight: Optional[object] = None,
        flight_sample: float = 1.0,
    ):
        if max_events <= 0:
            raise ValueError("max_events must be positive")
        if not 0.0 <= flight_sample <= 1.0:
            raise ValueError("flight_sample must be in [0, 1]")
        self.clock = clock if clock is not None else _DEFAULT_CLOCK
        self.trace_id = trace_id or new_trace_id()
        self.max_events = max_events
        #: Optional :class:`repro.slo.flight.FlightRecorder` tap:
        #: every kept span is mirrored into the flight ring.
        #: ``flight_sample`` is the head-sampling knob -- a
        #: deterministic keep-every-Nth accumulator (not a RNG, so
        #: identical runs tap identical spans), at 0.25 every 4th span
        #: reaches the ring.
        self.flight = flight
        self.flight_sample = flight_sample
        self._flight_acc = 0.0
        self._spans: List[Span] = []
        self._dropped = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # recording

    def now(self) -> float:
        return self.clock()

    def _append(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) >= self.max_events:
                self._dropped += 1
                return
            self._spans.append(span)
            if self.flight is None or self.flight_sample <= 0.0:
                return
            self._flight_acc += self.flight_sample
            if self._flight_acc < 1.0:
                return
            self._flight_acc -= 1.0
        # Outside the recorder lock: the flight ring has its own.
        try:
            self.flight.record_span(
                span.name, span.cat, span.start, span.end, span.args
            )
        except Exception:
            pass  # forensics must never fail the traced path

    def add_span(
        self,
        name: str,
        start: float,
        end: float,
        cat: str = "engine",
        pid: Optional[int] = None,
        tid: Optional[int] = None,
        **args: Any,
    ) -> Span:
        """Record a completed interval measured by the caller."""
        span = Span(
            name=name,
            cat=cat,
            start=start,
            end=max(start, end),
            pid=os.getpid() if pid is None else pid,
            tid=_thread_id() if tid is None else tid,
            args={k: v for k, v in args.items() if v is not None},
        )
        self._append(span)
        return span

    def event(self, name: str, cat: str = "engine", **args: Any) -> Span:
        """Record an instant event at the current clock reading."""
        now = self.now()
        return self.add_span(name, now, now, cat=cat, **args)

    @contextmanager
    def span(self, name: str, cat: str = "engine", **args: Any) -> Iterator[Dict[str, Any]]:
        """Record the interval around the managed block.

        Yields a mutable dict; keys added inside the block land in the
        span's args (e.g. outcomes discovered mid-flight).
        """
        extra: Dict[str, Any] = {}
        start = self.now()
        try:
            yield extra
        finally:
            self.add_span(name, start, self.now(), cat=cat, **{**args, **extra})

    def ingest(self, payloads: List[Dict[str, Any]]) -> int:
        """Fold worker-built span payloads (see :func:`worker_span`)."""
        count = 0
        for payload in payloads:
            try:
                self.add_span(
                    str(payload["name"]),
                    float(payload["start"]),
                    float(payload["end"]),
                    cat=str(payload.get("cat", "worker")),
                    pid=payload.get("pid"),
                    tid=payload.get("tid"),
                    **dict(payload.get("args", {})),
                )
                count += 1
            except (KeyError, TypeError, ValueError):
                continue  # malformed worker payloads are dropped, not fatal
        return count

    # ------------------------------------------------------------------
    # introspection / export

    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    @property
    def dropped(self) -> int:
        return self._dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The ``traceEvents`` document for Perfetto/chrome://tracing."""
        spans = self.spans()
        origin = min((span.start for span in spans), default=0.0)
        events: List[Dict[str, Any]] = []
        for span in spans:
            event: Dict[str, Any] = {
                "name": span.name,
                "cat": span.cat,
                "ph": "i" if span.instant else "X",
                "ts": (span.start - origin) * _US,
                "pid": span.pid,
                "tid": span.tid,
                "args": {"trace_id": self.trace_id, **span.args},
            }
            if span.instant:
                event["s"] = "t"  # thread-scoped instant
            else:
                event["dur"] = span.duration * _US
            events.append(event)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "trace_id": self.trace_id,
                "dropped_events": self._dropped,
            },
        }

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome_trace(), handle, indent=2, default=str)


def worker_span(
    name: str,
    start: float,
    end: float,
    cat: str = "worker",
    **args: Any,
) -> Dict[str, Any]:
    """A plain span payload a worker process can ship in its result."""
    return {
        "name": name,
        "cat": cat,
        "start": start,
        "end": end,
        "pid": os.getpid(),
        "tid": _thread_id(),
        "args": {k: v for k, v in args.items() if v is not None},
    }


def validate_chrome_trace(document: Dict[str, Any]) -> List[str]:
    """Schema-check a Chrome trace document; returns problem strings.

    An empty list means valid.  Used by the CI trace smoke and the
    ``gendp-trace`` tests so a malformed export fails loudly.
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["document is not an object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is not an array"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                problems.append(f"{where}: missing {key!r}")
        phase = event.get("ph")
        if phase not in ("X", "i", "M"):
            problems.append(f"{where}: unsupported phase {phase!r}")
        if phase == "X" and not isinstance(event.get("dur"), (int, float)):
            problems.append(f"{where}: complete event without numeric dur")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: ts must be a non-negative number")
        args = event.get("args", {})
        if not isinstance(args, dict):
            problems.append(f"{where}: args is not an object")
    return problems
