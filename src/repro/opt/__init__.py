"""Dataflow analysis + optimizing/linting passes over cell programs.

The DPMap compiler (:mod:`repro.dpmap`) emits correct but naive 2-way
VLIW programs.  This package adds the classic post-compile layer:

- :mod:`repro.opt.model` -- instruction-level def/use model.  Programs
  are loop-free and SSA-like (each register written once), so liveness,
  reachability, and heights are exact single-sweep computations.
- :mod:`repro.opt.passes` -- rewrite passes (constant folding, copy
  propagation, CSE, slot simplification, dead-code elimination) plus a
  height-priority VLIW re-packer, composed by :class:`PassPipeline`.
- :mod:`repro.opt.cost` -- the static cost model
  (:class:`ProgramCost`) feeding the tile-level performance model.
- :mod:`repro.opt.kernels` -- optimized programs for the six
  differential-fuzz kernels, wired to their consumer contracts.
- :mod:`repro.opt.lint` -- the report-only analyses behind
  ``gendp-lint``.

See ``docs/optimizer.md`` for the pass catalog and safety argument.
"""

from repro.opt.cost import ProgramCost, cost_of, program_stats
from repro.opt.kernels import (
    SWEEP_CONTRACTS,
    contract_for,
    optimize_all_kernels,
    optimize_kernel_programs,
)
from repro.opt.lint import LintReport, ProgramLint, lint_program, run_lint
from repro.opt.model import (
    LinearProgram,
    NonSSAProgramError,
    critical_path,
    heights,
    linearize,
    live_sets,
    live_ways,
    peak_live,
    schedule_lower_bound,
)
from repro.opt.passes import (
    CommonSubexpressionPass,
    ConstantFoldPass,
    CopyPropagationPass,
    DeadCodePass,
    OptResult,
    Pass,
    PassPipeline,
    PruneOutputsPass,
    SimplifySlotsPass,
    default_pipeline,
    pack_ways,
)

__all__ = [
    "CommonSubexpressionPass",
    "ConstantFoldPass",
    "CopyPropagationPass",
    "DeadCodePass",
    "LinearProgram",
    "LintReport",
    "NonSSAProgramError",
    "OptResult",
    "Pass",
    "PassPipeline",
    "ProgramCost",
    "ProgramLint",
    "PruneOutputsPass",
    "SWEEP_CONTRACTS",
    "SimplifySlotsPass",
    "contract_for",
    "cost_of",
    "critical_path",
    "default_pipeline",
    "heights",
    "lint_program",
    "linearize",
    "live_sets",
    "live_ways",
    "optimize_all_kernels",
    "optimize_kernel_programs",
    "pack_ways",
    "peak_live",
    "program_stats",
    "run_lint",
    "schedule_lower_bound",
]
