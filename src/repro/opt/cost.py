"""Static cost model for compiled cell programs.

One :class:`ProgramCost` summarizes what a program spends per DP cell:
VLIW bundles issued (= compute cycles on the PE), CU ways, busy ALU
slots, RF traffic, register-file footprint and the dependency-chain
floor.  The optimizer reports costs before/after its pipeline
(``gendp-compile --stats``, ``gendp-lint``), and the bundle count is
the per-cell cycle weight :func:`repro.perfmodel.schedule.weighted_task_cells`
uses to turn cell counts into array-time when packing tasks onto the
tile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.dpmap.codegen import CellProgram
from repro.dpmap.mapper import MappingStats
from repro.opt.model import (
    NonSSAProgramError,
    critical_path,
    linearize,
    peak_live,
    way_reads,
    way_slots,
)


@dataclass(frozen=True)
class ProgramCost:
    """Static per-cell cost of one compiled program."""

    #: VLIW bundles = compute cycles per cell update.
    instructions: int
    #: Occupied CU ways across all bundles.
    ways: int
    #: Busy ALU/MUL slots (the Table 11 utilization numerator).
    alu_ops: int
    #: RF operand reads / result writes per cell.
    rf_reads: int
    rf_writes: int
    #: Registers the allocation spans (RF sizing).
    register_count: int
    #: Peak simultaneously-live RF values (true pressure).
    peak_live: int
    #: Longest dependency chain -- no schedule can issue fewer bundles.
    critical_path: int

    @property
    def cycles_per_cell(self) -> int:
        """Alias for the scheduler feed: one bundle is one cycle."""
        return self.instructions

    def to_dict(self) -> Dict[str, int]:
        return {
            "instructions": self.instructions,
            "ways": self.ways,
            "alu_ops": self.alu_ops,
            "rf_reads": self.rf_reads,
            "rf_writes": self.rf_writes,
            "register_count": self.register_count,
            "peak_live": self.peak_live,
            "critical_path": self.critical_path,
        }


def cost_of(program: CellProgram) -> ProgramCost:
    """Measure *program*'s static cost."""
    ways = [way for bundle in program.instructions for way in bundle.ways]
    rf_reads = sum(len(way_reads(way)) for way in ways)
    alu_ops = sum(len(way_slots(way)) + (1 if way.root else 0) for way in ways)
    try:
        depth = critical_path(linearize(program))
    except NonSSAProgramError:
        depth = len(program.instructions)
    return ProgramCost(
        instructions=len(program.instructions),
        ways=len(ways),
        alu_ops=alu_ops,
        rf_reads=rf_reads,
        rf_writes=len(ways),
        register_count=program.register_count,
        peak_live=peak_live(
            program.instructions, program.input_regs, program.output_regs
        ),
        critical_path=depth,
    )


def program_stats(program: CellProgram, levels: int = 2) -> MappingStats:
    """Recompute :class:`MappingStats` from a program's instructions.

    After an optimization pass rewrites the bundles, the mapping-time
    statistics no longer describe the program; this keeps
    ``mapping.stats`` (and the utilization tables built on it) honest.
    """
    cost = cost_of(program)
    return MappingStats(
        rf_reads=cost.rf_reads,
        rf_writes=cost.rf_writes,
        cycles=cost.instructions,
        alu_ops=cost.alu_ops,
        component_count=cost.ways,
        levels=levels,
    )
