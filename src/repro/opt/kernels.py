"""Optimized compiled programs for the six differential-fuzz kernels.

Mirrors :func:`repro.guard.diff.compile_kernel_programs` -- same DFGs,
same cell-program shapes, same POA register offsetting -- but runs
each cell program through the optimizer's pass pipeline with that
program's *consumer contract*: the outputs its runner or functional
sweep actually reads.  Engine-served kernels take their contract from
:data:`repro.engine.runners.CONSUMED_OUTPUTS`; the scratchpad-mapped
POA and Bellman-Ford programs have theirs recorded here, matching
``repro.guard.diff``'s functional models (``_run_poa_compiled`` reads
``h``/``e`` from the combine program, never its traceback ``dir``).

The result plugs straight into the guard's differential harness
(:func:`repro.guard.diff.run_case`), which is how the tests prove the
optimized programs still match the reference kernels on seeded
workloads.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.dpmap.codegen import CellProgram, compile_cell, offset_cell_program
from repro.engine.cache import CompiledProgram
from repro.engine.runners import CONSUMED_OUTPUTS, build_dfg
from repro.guard.diff import _ENGINE_BACKED, DIFF_KERNELS, KernelPrograms
from repro.opt.passes import OptResult, default_pipeline
from repro.seq.scoring import ScoringScheme

#: Consumer contracts for programs not served by the engine's runners,
#: keyed by the guard's ``kernel:cell`` naming.  These mirror what
#: :mod:`repro.guard.diff`'s functional sweeps read back per cell --
#: POA's combine program computes a traceback ``dir`` that the
#: score-only sweep ignores.
SWEEP_CONTRACTS: Dict[str, frozenset] = {
    "poa:edge": frozenset({"diag_best", "up_best"}),
    "poa:final": frozenset({"h", "e"}),
    "bellman_ford": frozenset({"dist", "pred"}),
}


def contract_for(name: str) -> Optional[frozenset]:
    """The consumed-output contract for a program label, if known.

    *name* is either an engine kernel (``"bsw"``) or the guard's
    ``kernel:cell`` label (``"poa:final"``).  Unknown labels get None:
    the pipeline then keeps every output (purely semantics-preserving).
    """
    if name in CONSUMED_OUTPUTS:
        return CONSUMED_OUTPUTS[name]
    return SWEEP_CONTRACTS.get(name)


def _compiled_from_cell(
    kernel: str, dfg_hash: str, cell: CellProgram, outcome: OptResult
) -> CompiledProgram:
    return CompiledProgram(
        kernel=kernel,
        levels=2,
        dfg_hash=dfg_hash,
        instructions=tuple(cell.instructions),
        input_regs=dict(cell.input_regs),
        output_regs=dict(cell.output_regs),
        compile_seconds=0.0,
        mapping_stats=cell.mapping.stats if cell.mapping else None,
        program_hash=cell.content_hash(),
        opt_stats=dict(outcome.stats),
    )


def optimize_kernel_programs(
    kernel: str,
) -> Tuple[KernelPrograms, Dict[str, OptResult]]:
    """Compile and optimize *kernel*'s program(s), diff-harness-ready.

    Returns the optimized :class:`~repro.guard.diff.KernelPrograms`
    (drop-in for :func:`repro.guard.diff.run_case`) plus the per-cell
    :class:`~repro.opt.passes.OptResult` outcomes.
    """
    if kernel in _ENGINE_BACKED:
        dfg = build_dfg(kernel)
        outcome = default_pipeline(contract_for(kernel)).run(compile_cell(dfg))
        programs = KernelPrograms(
            kernel=kernel,
            compiled=_compiled_from_cell(
                kernel, dfg.content_hash(), outcome.program, outcome
            ),
            cells={"cell": outcome.program},
        )
        return programs, {"cell": outcome}
    if kernel == "poa":
        from repro.dfg.kernels import poa_edge_dfg, poa_final_dfg

        gap = ScoringScheme().gap
        edge_out = default_pipeline(contract_for("poa:edge")).run(
            compile_cell(poa_edge_dfg(gap.open, gap.extend))
        )
        final_out = default_pipeline(contract_for("poa:final")).run(
            compile_cell(poa_final_dfg(gap.open, gap.extend))
        )
        # Offset *after* optimizing: the combine program's registers
        # move past the (possibly shrunken) edge allocation, exactly
        # as the unoptimized path does with its own register counts.
        final = offset_cell_program(
            final_out.program, edge_out.program.register_count
        )
        programs = KernelPrograms(
            kernel=kernel, cells={"edge": edge_out.program, "final": final}
        )
        return programs, {"edge": edge_out, "final": final_out}
    if kernel == "bellman_ford":
        from repro.dfg.kernels import bellman_ford_dfg

        outcome = default_pipeline(contract_for("bellman_ford")).run(
            compile_cell(bellman_ford_dfg())
        )
        programs = KernelPrograms(kernel=kernel, cells={"cell": outcome.program})
        return programs, {"cell": outcome}
    raise ValueError(f"unknown guard kernel {kernel!r}")


def optimize_all_kernels() -> Dict[
    str, Tuple[KernelPrograms, Dict[str, OptResult]]
]:
    """Optimized programs for every differential-fuzz kernel."""
    return {kernel: optimize_kernel_programs(kernel) for kernel in DIFF_KERNELS}
