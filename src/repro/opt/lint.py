"""Report-only lint analyses over compiled cell programs.

``gendp-lint`` runs every analysis here over the six kernels' compiled
programs and prints structured findings -- the same
:class:`repro.diagnostics.Diagnostic` records the guard verifier
emits, so one severity scale covers "illegal for the machine" (error)
through "a pass could remove this" (warning) down to "optimization
opportunity" (info).  Nothing is rewritten: the lint is the read-only
face of the pass framework in :mod:`repro.opt.passes`.

Diagnostic catalog (see ``docs/optimizer.md``):

==========================  ========  =======================================
rule                        severity  meaning
==========================  ========  =======================================
(verifier rules)            error     static ISA violations, passed through
register-file-overflow      error     allocation exceeds the RF outright
dead-instruction            warning   way feeds no program output
dead-slot                   warning   right leaf of a root-less tree way
register-pressure           warning   allocation uses >= 75% of the RF
unconsumed-output           info      output the kernel's consumer ignores
redundant-copy              info      pure copy way (propagatable)
foldable-constant           info      Imm-only slot computable at compile time
common-subexpression        info      computation duplicates an earlier way
schedule-slack              info      re-packing would issue fewer bundles
==========================  ========  =======================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.diagnostics import Diagnostic, Severity
from repro.dpmap.codegen import CellProgram
from repro.guard.verifier import MachineLimits, check_program
from repro.opt.cost import ProgramCost, cost_of
from repro.opt.model import (
    NonSSAProgramError,
    is_pure_copy,
    linearize,
    live_ways,
    way_slots,
)
from repro.opt.passes import (
    FOLDABLE_OPCODES,
    _way_key,
    pack_ways,
)

#: Fraction of the register file above which pressure is a warning.
PRESSURE_WARNING_FRACTION = 0.75


def _located(rule: str, message: str, severity: Severity, bundle: int, way: str) -> Diagnostic:
    return Diagnostic(
        rule=rule, message=message, severity=severity, bundle=bundle, way=way
    )


def _way_positions(program: CellProgram) -> List[Tuple[int, str]]:
    """(bundle index, way label) for each way in linearization order."""
    out: List[Tuple[int, str]] = []
    for bundle_index, bundle in enumerate(program.instructions):
        for way_index, _ in enumerate(bundle.ways):
            out.append((bundle_index, f"cu{way_index}"))
    return out


def lint_program(
    name: str,
    program: CellProgram,
    contract: Optional[frozenset] = None,
    limits: Optional[MachineLimits] = None,
) -> List[Diagnostic]:
    """Every lint finding for one program, verifier errors included."""
    findings: List[Diagnostic] = list(check_program(program, limits, name=name).violations)
    limits = limits or MachineLimits()

    if program.register_count > limits.rf_size:
        findings.append(
            Diagnostic(
                rule="register-file-overflow",
                message=(
                    f"allocation spans {program.register_count} registers; "
                    f"the register file holds {limits.rf_size}"
                ),
            )
        )
    elif program.register_count >= PRESSURE_WARNING_FRACTION * limits.rf_size:
        findings.append(
            Diagnostic(
                rule="register-pressure",
                message=(
                    f"allocation spans {program.register_count} of "
                    f"{limits.rf_size} registers"
                ),
                severity=Severity.WARNING,
            )
        )

    if contract is not None:
        for output in sorted(set(program.output_regs) - set(contract)):
            findings.append(
                Diagnostic(
                    rule="unconsumed-output",
                    message=(
                        f"output {output!r} is never read by the kernel's "
                        "consumer; its compute cone is removable"
                    ),
                    severity=Severity.INFO,
                )
            )

    positions = _way_positions(program)
    try:
        lp = linearize(program)
    except NonSSAProgramError as error:
        findings.append(
            Diagnostic(
                rule="non-ssa-allocation",
                message=f"optimizer analyses skipped: {error}",
                severity=Severity.WARNING,
            )
        )
        return findings

    needed = live_ways(lp)
    seen_keys: Dict[Tuple, int] = {}
    for index, way in enumerate(lp.ways):
        bundle, label = positions[index]
        if index not in needed:
            findings.append(
                _located(
                    "dead-instruction",
                    f"r{way.dest.index} never reaches a program output",
                    Severity.WARNING,
                    bundle,
                    label,
                )
            )
        if (
            way.kind == "tree"
            and way.root is None
            and way.left is not None
            and way.right is not None
        ):
            findings.append(
                _located(
                    "dead-slot",
                    "right leaf of a root-less tree way is never used",
                    Severity.WARNING,
                    bundle,
                    label,
                )
            )
        if is_pure_copy(way) is not None:
            findings.append(
                _located(
                    "redundant-copy",
                    f"pure copy into r{way.dest.index} is propagatable",
                    Severity.INFO,
                    bundle,
                    label,
                )
            )
        for slot in way_slots(way):
            if slot.opcode in FOLDABLE_OPCODES and slot.operands and all(
                not hasattr(op, "index") for op in slot.operands
            ):
                findings.append(
                    _located(
                        "foldable-constant",
                        f"{slot.opcode.value} slot reads only immediates",
                        Severity.INFO,
                        bundle,
                        label,
                    )
                )
        key = _way_key(way)
        first = seen_keys.get(key)
        if first is not None and is_pure_copy(way) is None:
            findings.append(
                _located(
                    "common-subexpression",
                    (
                        f"way duplicates the computation of "
                        f"r{lp.ways[first].dest.index}"
                    ),
                    Severity.INFO,
                    bundle,
                    label,
                )
            )
        else:
            seen_keys.setdefault(key, index)

    repacked, _ = pack_ways(lp)
    if len(repacked) < len(program.instructions):
        findings.append(
            Diagnostic(
                rule="schedule-slack",
                message=(
                    f"{len(lp.ways)} ways fit in {len(repacked)} bundles; "
                    f"the program issues {len(program.instructions)}"
                ),
                severity=Severity.INFO,
            )
        )
    return findings


# ----------------------------------------------------------------------
# whole-kernel report


@dataclass(frozen=True)
class ProgramLint:
    """Lint outcome for one compiled program."""

    name: str
    diagnostics: Tuple[Diagnostic, ...]
    cost: ProgramCost
    optimized_cost: ProgramCost
    opt_stats: Dict[str, int]

    def count(self, severity: Severity) -> int:
        return sum(1 for d in self.diagnostics if d.severity is severity)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "cost": self.cost.to_dict(),
            "optimized_cost": self.optimized_cost.to_dict(),
            "opt_stats": dict(self.opt_stats),
        }


@dataclass(frozen=True)
class LintReport:
    """All programs' lint outcomes plus the overall verdict."""

    programs: Tuple[ProgramLint, ...]

    def count(self, severity: Severity) -> int:
        return sum(p.count(severity) for p in self.programs)

    @property
    def ok(self) -> bool:
        return self.count(Severity.ERROR) == 0

    def exit_code(self, fail_on: Severity = Severity.ERROR) -> int:
        worst = max(
            (d.severity for p in self.programs for d in p.diagnostics),
            default=None,
        )
        return 1 if worst is not None and worst >= fail_on else 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "programs": [p.to_dict() for p in self.programs],
            "errors": self.count(Severity.ERROR),
            "warnings": self.count(Severity.WARNING),
            "notes": self.count(Severity.INFO),
            "ok": self.ok,
        }

    def render(self) -> str:
        lines = [
            "gendp-lint: "
            f"{len(self.programs)} programs, "
            f"{self.count(Severity.ERROR)} errors, "
            f"{self.count(Severity.WARNING)} warnings, "
            f"{self.count(Severity.INFO)} notes"
        ]
        for program in self.programs:
            before, after = program.cost, program.optimized_cost
            lines.append(
                f"  {program.name:<16} {before.instructions} -> "
                f"{after.instructions} bundles, {before.ways} -> "
                f"{after.ways} ways, {before.alu_ops} -> "
                f"{after.alu_ops} ALU ops"
            )
            for diagnostic in program.diagnostics:
                lines.append(f"    {diagnostic}")
        return "\n".join(lines)


def run_lint(kernels: Optional[Sequence[str]] = None) -> LintReport:
    """Lint every kernel's compiled program(s), report-only.

    Analyses run over the *unoptimized* programs (what the compiler
    emits today); each program's optimized cost rides along so the
    report shows what the pass pipeline would buy.
    """
    from repro.guard.diff import DIFF_KERNELS, compile_kernel_programs
    from repro.opt.kernels import contract_for, optimize_kernel_programs

    programs: List[ProgramLint] = []
    for kernel in kernels if kernels is not None else DIFF_KERNELS:
        base = compile_kernel_programs(kernel)
        optimized, outcomes = optimize_kernel_programs(kernel)
        for cell_name in sorted(base.cells):
            label = kernel if cell_name == "cell" else f"{kernel}:{cell_name}"
            cell = base.cells[cell_name]
            programs.append(
                ProgramLint(
                    name=label,
                    diagnostics=tuple(
                        lint_program(label, cell, contract=contract_for(label))
                    ),
                    cost=cost_of(cell),
                    optimized_cost=cost_of(optimized.cells[cell_name]),
                    opt_stats=dict(outcomes[cell_name].stats),
                )
            )
    return LintReport(programs=tuple(programs))
