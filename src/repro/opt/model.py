"""Instruction-level def/use model for compiled cell programs.

Cell programs are straight-line (one DP cell update, no control flow)
and DPMap's register allocation is SSA-like: every RF address is
written by at most one way and never aliases a kernel input.  That
makes classic dataflow analysis trivial and exact -- no CFG, no
fixpoints -- which is what every pass in :mod:`repro.opt.passes`
builds on:

- :func:`linearize` flattens the VLIW bundles into a def/use-ordered
  way list (:class:`LinearProgram`), verifying the SSA property;
- :func:`live_sets` runs backward liveness over the bundled program
  (what the dead-code and register-pressure analyses read);
- :func:`heights` / :func:`critical_path` give each way its longest
  path to a sink, the priority function of the VLIW re-packer.

Execution semantics matter here: both ways of a bundle read the
*pre-bundle* RF image (:func:`repro.dpmap.codegen.execute_way`), so a
consumer must sit in a strictly later bundle than its producer, and
flattening bundles in issue order yields a valid def-before-use
linear order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.dpmap.codegen import CellProgram
from repro.isa.compute import CUInstruction, Imm, Operand, Reg, SlotOp, VLIWInstruction


class NonSSAProgramError(ValueError):
    """A program whose register allocation is not single-assignment.

    The optimizer's substitution passes assume every RF address has
    one writer; hand-built programs that re-use destinations are
    rejected (the pipeline then returns them unchanged).
    """


def way_slots(way: CUInstruction) -> List[SlotOp]:
    """The populated ALU/MUL slots of *way*, in datapath order."""
    if way.kind == "mul":
        return [way.mul] if way.mul is not None else []
    return [slot for slot in (way.left, way.right) if slot is not None]


def way_reads(way: CUInstruction) -> List[int]:
    """Every RF address *way* reads, in operand order (with repeats)."""
    return [
        operand.index
        for slot in way_slots(way)
        for operand in slot.operands
        if isinstance(operand, Reg)
    ]


def is_pure_copy(way: CUInstruction) -> Optional[Operand]:
    """The source operand if *way* just forwards one value, else None.

    A pure copy is a tree way with no root and a single COPY slot:
    ``dest`` takes the operand's value unchanged.  (Codegen emits
    these only as ferry slots inside trees, but passes create them
    when rewriting, and copy propagation erases them.)
    """
    from repro.dfg.graph import Opcode

    if way.kind != "tree" or way.root is not None:
        return None
    slots = way_slots(way)
    if len(slots) != 1 or slots[0].opcode is not Opcode.COPY:
        return None
    return slots[0].operands[0]


@dataclass
class LinearProgram:
    """A cell program flattened to a def/use-ordered way list.

    ``ways[i]`` only reads registers written by ``ways[:i]`` or listed
    in ``input_regs`` -- the invariant every pass preserves, and what
    the re-packer turns back into bundles.  ``origin_bundles[i]``
    remembers which bundle the way came from (None for ways a pass
    synthesized), so the engine can count how many ways the re-packer
    actually moved.
    """

    ways: List[CUInstruction]
    input_regs: Dict[str, int]
    output_regs: Dict[str, int]
    node_regs: Dict[int, int]
    origin_bundles: List[Optional[int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.origin_bundles:
            self.origin_bundles = [None] * len(self.ways)

    def writer_index(self) -> Dict[int, int]:
        """RF address -> index of the way that writes it."""
        return {way.dest.index: i for i, way in enumerate(self.ways)}

    def dependencies(self) -> List[Set[int]]:
        """Per way, the indices of earlier ways it reads from."""
        writer = self.writer_index()
        return [
            {writer[r] for r in way_reads(way) if r in writer}
            for way in self.ways
        ]

    def readers(self) -> Dict[int, Set[int]]:
        """Way index -> indices of ways that read its destination."""
        out: Dict[int, Set[int]] = {i: set() for i in range(len(self.ways))}
        for consumer, deps in enumerate(self.dependencies()):
            for producer in deps:
                out[producer].add(consumer)
        return out


def linearize(program: CellProgram) -> LinearProgram:
    """Flatten *program*'s bundles into a :class:`LinearProgram`.

    Raises :class:`NonSSAProgramError` when a register is written
    twice or a kernel-input register is overwritten -- allocations the
    substitution passes cannot reason about.
    """
    ways: List[CUInstruction] = []
    origins: List[Optional[int]] = []
    written: Set[int] = set(program.input_regs.values())
    inputs: Set[int] = set(program.input_regs.values())
    for bundle_index, bundle in enumerate(program.instructions):
        for way in bundle.ways:
            dest = way.dest.index
            if dest in inputs:
                raise NonSSAProgramError(
                    f"way overwrites input register r{dest}"
                )
            if any(w.dest.index == dest for w in ways):
                raise NonSSAProgramError(
                    f"register r{dest} written by more than one way"
                )
            for read in way_reads(way):
                if read not in written:
                    raise NonSSAProgramError(
                        f"way reads r{read} before any write"
                    )
            ways.append(way)
            origins.append(bundle_index)
        written.update(way.dest.index for way in bundle.ways)
    return LinearProgram(
        ways=ways,
        input_regs=dict(program.input_regs),
        output_regs=dict(program.output_regs),
        node_regs=dict(program.node_regs),
        origin_bundles=origins,
    )


# ----------------------------------------------------------------------
# analyses


def live_sets(
    instructions: Sequence[VLIWInstruction],
    input_regs: Dict[str, int],
    output_regs: Dict[str, int],
) -> List[Set[int]]:
    """Backward liveness: the registers live *before* each bundle.

    ``result[i]`` holds the RF addresses whose values bundle ``i`` or
    anything after it still needs; ``result[len(instructions)]`` is
    the output set.  Kernel inputs appear exactly as long as they are
    still read.
    """
    live: Set[int] = set(output_regs.values())
    out: List[Set[int]] = [set(live)]
    for bundle in reversed(list(instructions)):
        live = set(live)
        for way in bundle.ways:
            live.discard(way.dest.index)
        for way in bundle.ways:
            live.update(way_reads(way))
        out.append(set(live))
    out.reverse()
    return out


def peak_live(
    instructions: Sequence[VLIWInstruction],
    input_regs: Dict[str, int],
    output_regs: Dict[str, int],
) -> int:
    """The maximum number of simultaneously-live RF values."""
    sets = live_sets(instructions, input_regs, output_regs)
    return max((len(s) for s in sets), default=0)


def live_ways(lp: LinearProgram) -> Set[int]:
    """Indices of ways whose results reach an output (transitively)."""
    writer = lp.writer_index()
    needed: Set[int] = set()
    frontier = [
        writer[reg] for reg in lp.output_regs.values() if reg in writer
    ]
    deps = lp.dependencies()
    while frontier:
        index = frontier.pop()
        if index in needed:
            continue
        needed.add(index)
        frontier.extend(deps[index])
    return needed


def heights(lp: LinearProgram) -> List[int]:
    """Per way, the longest dependency chain from it to any sink.

    A way nothing reads has height 1.  This is the classic critical-
    path priority for list scheduling: schedule tall ways first so the
    serial tail starts as early as possible.
    """
    readers = lp.readers()
    out = [1] * len(lp.ways)
    for index in range(len(lp.ways) - 1, -1, -1):
        consumer_heights = [out[c] for c in readers[index]]
        if consumer_heights:
            out[index] = 1 + max(consumer_heights)
    return out


def critical_path(lp: LinearProgram) -> int:
    """Length of the longest dependency chain (a bundle-count floor).

    Each link of the chain must issue in a strictly later bundle (no
    same-bundle forwarding), so no schedule can run the program in
    fewer bundles than this.
    """
    return max(heights(lp), default=0)


def schedule_lower_bound(lp: LinearProgram) -> int:
    """max(critical path, ceil(ways / 2)): no schedule can beat this."""
    from repro.isa.compute import VLIW_WAYS

    if not lp.ways:
        return 0
    width_bound = -(-len(lp.ways) // VLIW_WAYS)
    return max(critical_path(lp), width_bound)
