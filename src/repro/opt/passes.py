"""Optimizing passes over compiled cell programs.

The pipeline works on the SSA-like linear form from
:mod:`repro.opt.model`: bundles are flattened into a def/use-ordered
way list, the rewriting passes iterate to a fixpoint on that list, and
a final list scheduler re-packs the surviving ways into 2-way VLIW
bundles.  Keeping bundling out of the rewrite passes means every
intermediate state is trivially valid (a way only reads earlier ways'
destinations) and the scheduler is the single place that knows the
machine's issue shape.

Passes (composed by :func:`default_pipeline`, in order):

- :class:`PruneOutputsPass` -- drop program outputs the consumer
  contract never reads (e.g. traceback direction bits the engine's
  score-only runners ignore), exposing their cones as dead code;
- :class:`ConstantFoldPass` -- evaluate Imm-only slots and roots at
  compile time (LUT-backed opcodes are never folded: their results
  depend on runtime tables);
- :class:`CopyPropagationPass` -- forward pure-copy ways into their
  readers (sound because registers are single-assignment);
- :class:`CommonSubexpressionPass` -- reuse an earlier way's result
  for duplicate whole-way or single-slot computations;
- :class:`SimplifySlotsPass` -- drop dead right slots (a root-less
  way only forwards its left leaf) and collapse trees whose leaves
  are both copies into a single slot;
- :class:`DeadCodePass` -- remove ways whose results reach no output.

Everything the pipeline emits must pass the guard verifier and
:func:`repro.dpmap.codegen.verify_program`; the engine and the tests
enforce that on every program.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.dfg.graph import Opcode, _apply
from repro.dpmap.codegen import CellProgram
from repro.isa.compute import (
    CUInstruction,
    Imm,
    Operand,
    Reg,
    SlotOp,
    VLIW_WAYS,
    VLIWInstruction,
)
from repro.opt.model import (
    LinearProgram,
    NonSSAProgramError,
    heights,
    is_pure_copy,
    linearize,
    live_ways,
    way_reads,
)

#: Opcodes safe to evaluate at compile time.  LUT-backed opcodes
#: (MATCH_SCORE, LOG_SUM_LUT, LOG2_LUT) are excluded: their results
#: depend on tables bound at run time, so "folding" them would bake in
#: one table's answers.  COPY is excluded as there is nothing to fold.
FOLDABLE_OPCODES = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.CARRY,
        Opcode.BORROW,
        Opcode.MAX,
        Opcode.MIN,
        Opcode.SHL16,
        Opcode.SHR16,
        Opcode.CMP_GT,
        Opcode.CMP_EQ,
    }
)

Stats = Dict[str, int]


def _bump(stats: Stats, key: str, amount: int = 1) -> None:
    if amount:
        stats[key] = stats.get(key, 0) + amount


def _operand_key(operand: Operand) -> Tuple[str, int]:
    if isinstance(operand, Reg):
        return ("r", operand.index)
    return ("#", operand.value)


def _slot_key(slot: Optional[SlotOp]) -> Optional[Tuple]:
    if slot is None:
        return None
    return (slot.opcode.value, tuple(_operand_key(op) for op in slot.operands))


def _way_key(way: CUInstruction) -> Tuple:
    """Canonical computation key: two ways with equal keys compute the
    same value (registers are single-assignment, all opcodes are
    deterministic functions of their operands and the bound tables)."""
    return (
        way.kind,
        _slot_key(way.left),
        _slot_key(way.right),
        way.root.value if way.root else None,
        way.root_swapped,
        _slot_key(way.mul),
    )


def _copy_way(dest: Reg, source: Operand) -> CUInstruction:
    return CUInstruction(
        kind="tree", dest=dest, right=SlotOp(Opcode.COPY, (source,))
    )


def encode_instructions(instructions: Sequence[VLIWInstruction]) -> str:
    """A stable textual encoding of a bundle list (for comparisons)."""
    return "\n".join(bundle.text() for bundle in instructions)


# ----------------------------------------------------------------------
# passes


class Pass:
    """One rewrite over the linear form; subclasses set ``name``."""

    name = "pass"

    def run(self, lp: LinearProgram, stats: Stats) -> LinearProgram:
        raise NotImplementedError


class PruneOutputsPass(Pass):
    """Restrict the program's outputs to a consumer contract.

    A kernel's runner often reads a subset of what the DFG computes
    (the engine's BSW runner consumes h/e/f and ignores the traceback
    ``dir`` bits).  Dropping unread outputs exposes their compute
    cones to :class:`DeadCodePass`.  If the contract would remove
    every output the pass backs off -- a program with no outputs is
    meaningless.
    """

    name = "prune-outputs"

    def __init__(self, keep: Sequence[str]):
        self.keep = frozenset(keep)

    def run(self, lp: LinearProgram, stats: Stats) -> LinearProgram:
        kept = {
            name: reg
            for name, reg in lp.output_regs.items()
            if name in self.keep
        }
        if not kept or len(kept) == len(lp.output_regs):
            return lp
        _bump(stats, "outputs_pruned", len(lp.output_regs) - len(kept))
        lp.output_regs = kept
        return lp


class ConstantFoldPass(Pass):
    """Evaluate Imm-only slots and roots at compile time."""

    name = "constant-fold"

    def run(self, lp: LinearProgram, stats: Stats) -> LinearProgram:
        for index, way in enumerate(lp.ways):
            folded = self._fold_way(way, stats)
            if folded is not way:
                lp.ways[index] = folded
        return lp

    def _fold_slot(self, slot: Optional[SlotOp], stats: Stats) -> Optional[SlotOp]:
        if slot is None or slot.opcode not in FOLDABLE_OPCODES:
            return slot
        if not all(isinstance(op, Imm) for op in slot.operands):
            return slot
        value = _apply(
            slot.opcode, [op.value for op in slot.operands], None, None
        )
        _bump(stats, "constants_folded")
        return SlotOp(Opcode.COPY, (Imm(value),))

    @staticmethod
    def _imm_of(slot: Optional[SlotOp]) -> Optional[int]:
        if (
            slot is not None
            and slot.opcode is Opcode.COPY
            and isinstance(slot.operands[0], Imm)
        ):
            return slot.operands[0].value
        return None

    def _fold_way(self, way: CUInstruction, stats: Stats) -> CUInstruction:
        if way.kind == "mul":
            folded = self._fold_slot(way.mul, stats)
            if folded is not way.mul:
                # The product is a constant; the way degenerates to a
                # copy on the tree datapath, freeing the multiplier.
                return CUInstruction(kind="tree", dest=way.dest, right=folded)
            return way
        left = self._fold_slot(way.left, stats)
        right = self._fold_slot(way.right, stats)
        if left is not way.left or right is not way.right:
            way = dc_replace(way, left=left, right=right)
        if way.root is None or way.root not in FOLDABLE_OPCODES:
            return way
        from repro.dfg.graph import OPCODE_ARITY

        arity = OPCODE_ARITY[way.root]
        left_imm = self._imm_of(way.left)
        right_imm = self._imm_of(way.right)
        if arity == 1 and left_imm is not None:
            value = _apply(way.root, [left_imm], None, None)
        elif arity == 2 and left_imm is not None and right_imm is not None:
            inputs = [left_imm, right_imm]
            if way.root_swapped:
                inputs.reverse()
            value = _apply(way.root, inputs, None, None)
        else:
            return way
        _bump(stats, "constants_folded")
        return _copy_way(way.dest, Imm(value))


class CopyPropagationPass(Pass):
    """Forward pure-copy results into every reader.

    Sound because the allocation is single-assignment: the copied
    source register can never be rewritten between the copy and its
    readers.  Copies feeding an output register are retargeted at the
    map level when the source is a register (outputs must live in the
    RF, so Imm-sourced copies stay for the output's sake).
    """

    name = "copy-propagation"

    def run(self, lp: LinearProgram, stats: Stats) -> LinearProgram:
        output_regs = set(lp.output_regs.values())
        for index, way in enumerate(lp.ways):
            source = is_pure_copy(way)
            if source is None:
                continue
            dest = way.dest.index
            if dest in output_regs:
                if not isinstance(source, Reg):
                    continue  # an output must live in a register
                lp.output_regs = {
                    name: (source.index if reg == dest else reg)
                    for name, reg in lp.output_regs.items()
                }
                output_regs = set(lp.output_regs.values())
            changed = self._substitute(lp, index + 1, dest, source)
            if changed:
                _bump(stats, "copies_propagated")
        return lp

    @staticmethod
    def _substitute(
        lp: LinearProgram, start: int, reg_index: int, source: Operand
    ) -> bool:
        def rewrite(slot: Optional[SlotOp]) -> Optional[SlotOp]:
            if slot is None or not any(
                isinstance(op, Reg) and op.index == reg_index
                for op in slot.operands
            ):
                return slot
            return SlotOp(
                slot.opcode,
                tuple(
                    source
                    if isinstance(op, Reg) and op.index == reg_index
                    else op
                    for op in slot.operands
                ),
            )

        changed = False
        for i in range(start, len(lp.ways)):
            way = lp.ways[i]
            left, right, mul = (
                rewrite(way.left),
                rewrite(way.right),
                rewrite(way.mul),
            )
            if left is not way.left or right is not way.right or mul is not way.mul:
                lp.ways[i] = dc_replace(way, left=left, right=right, mul=mul)
                changed = True
        return changed


class CommonSubexpressionPass(Pass):
    """Reuse earlier results for duplicate computations.

    Two levels: a whole way repeating an earlier way's computation
    becomes a copy of its result, and a slot repeating an earlier
    *single-op* way's computation becomes a COPY of that way's
    destination (legal in any slot position).  Equal keys imply equal
    values because registers are single-assignment.
    """

    name = "common-subexpression"

    def run(self, lp: LinearProgram, stats: Stats) -> LinearProgram:
        seen_ways: Dict[Tuple, int] = {}
        # A single-op way's dest *is* its slot's value: key -> dest reg.
        seen_slots: Dict[Tuple, int] = {}
        for index, way in enumerate(lp.ways):
            key = _way_key(way)
            first = seen_ways.get(key)
            if first is not None and is_pure_copy(way) is None:
                lp.ways[index] = _copy_way(
                    way.dest, Reg(lp.ways[first].dest.index)
                )
                _bump(stats, "subexpressions_shared")
                continue
            seen_ways.setdefault(key, index)
            way = self._dedupe_slots(lp, index, seen_slots, stats)
            if (
                way.kind == "tree"
                and way.root is None
                and len([s for s in (way.left, way.right) if s]) == 1
                and way.mul is None
            ):
                slot = way.left if way.left is not None else way.right
                if slot.opcode is not Opcode.COPY:
                    seen_slots.setdefault(_slot_key(slot), way.dest.index)
            elif way.kind == "mul" and way.mul is not None:
                seen_slots.setdefault(_slot_key(way.mul), way.dest.index)
        return lp

    @staticmethod
    def _dedupe_slots(
        lp: LinearProgram,
        index: int,
        seen_slots: Dict[Tuple, int],
        stats: Stats,
    ) -> CUInstruction:
        way = lp.ways[index]
        if way.kind != "tree":
            return way

        def rewrite(slot: Optional[SlotOp]) -> Optional[SlotOp]:
            if slot is None or slot.opcode is Opcode.COPY:
                return slot
            earlier = seen_slots.get(_slot_key(slot))
            if earlier is None:
                return slot
            _bump(stats, "subexpressions_shared")
            return SlotOp(Opcode.COPY, (Reg(earlier),))

        left, right = rewrite(way.left), rewrite(way.right)
        if left is not way.left or right is not way.right:
            way = dc_replace(way, left=left, right=right)
            lp.ways[index] = way
        return way


class SimplifySlotsPass(Pass):
    """Remove dead slots and collapse copy-fed reduction trees.

    With no root, a tree way's result is its *left* leaf whenever both
    leaves are populated (:func:`repro.dpmap.codegen.execute_way`), so
    the right slot is dead weight.  A root whose leaves are both
    copies is the same operation with direct operands -- one slot on
    the 2-operand right ALU (tree roots are never 4-input ops).
    """

    name = "simplify-slots"

    def run(self, lp: LinearProgram, stats: Stats) -> LinearProgram:
        from repro.dfg.graph import OPCODE_ARITY

        for index, way in enumerate(lp.ways):
            if way.kind != "tree":
                continue
            if way.root is None and way.left is not None and way.right is not None:
                lp.ways[index] = dc_replace(way, right=None)
                _bump(stats, "dead_slots_removed")
                continue
            if way.root is None:
                continue
            arity = OPCODE_ARITY[way.root]
            left_src = self._copy_source(way.left)
            right_src = self._copy_source(way.right)
            if arity == 1 and left_src is not None:
                slot = SlotOp(way.root, (left_src,))
            elif arity == 2 and left_src is not None and right_src is not None:
                operands = (left_src, right_src)
                if way.root_swapped:
                    operands = (right_src, left_src)
                slot = SlotOp(way.root, operands)
            else:
                continue
            lp.ways[index] = CUInstruction(
                kind="tree", dest=way.dest, right=slot
            )
            _bump(stats, "slots_simplified")
        return lp

    @staticmethod
    def _copy_source(slot: Optional[SlotOp]) -> Optional[Operand]:
        if slot is not None and slot.opcode is Opcode.COPY:
            return slot.operands[0]
        return None


class DeadCodePass(Pass):
    """Remove ways whose results never reach a program output."""

    name = "dead-code"

    def run(self, lp: LinearProgram, stats: Stats) -> LinearProgram:
        needed = live_ways(lp)
        if len(needed) == len(lp.ways):
            return lp
        _bump(stats, "ways_eliminated", len(lp.ways) - len(needed))
        kept = [i for i in range(len(lp.ways)) if i in needed]
        lp.ways = [lp.ways[i] for i in kept]
        lp.origin_bundles = [lp.origin_bundles[i] for i in kept]
        surviving = {way.dest.index for way in lp.ways}
        surviving.update(lp.input_regs.values())
        lp.node_regs = {
            node: reg for node, reg in lp.node_regs.items() if reg in surviving
        }
        return lp


# ----------------------------------------------------------------------
# VLIW re-packing (list scheduling)


def pack_ways(lp: LinearProgram) -> Tuple[List[VLIWInstruction], int]:
    """Schedule the linear ways back into 2-way bundles.

    Height-priority list scheduling: each cycle issues the (up to) two
    ready ways with the longest remaining dependency chains, breaking
    ties by list order -- deterministic, so re-running on its own
    output reproduces the same schedule (the pipeline's idempotence
    rests on this).  A way is ready once all its producers sit in
    strictly earlier bundles (no same-bundle forwarding on the PE).

    Returns the bundles and how many surviving ways landed in a
    different bundle than they originally occupied.
    """
    deps = lp.dependencies()
    priority = heights(lp)
    total = len(lp.ways)
    bundle_of: List[Optional[int]] = [None] * total
    unscheduled: Set[int] = set(range(total))
    bundles: List[VLIWInstruction] = []
    cycle = 0
    while unscheduled:
        ready = [
            i
            for i in unscheduled
            if all(
                bundle_of[d] is not None and bundle_of[d] < cycle
                for d in deps[i]
            )
        ]
        # Some topologically-minimal unscheduled way always qualifies,
        # so every cycle issues at least one way and the loop ends.
        ready.sort(key=lambda i: (-priority[i], i))
        chosen = ready[:VLIW_WAYS]
        for i in chosen:
            bundle_of[i] = cycle
            unscheduled.discard(i)
        ways = [lp.ways[i] for i in chosen]
        bundles.append(
            VLIWInstruction(
                cu0=ways[0], cu1=ways[1] if len(ways) > 1 else None
            )
        )
        cycle += 1
    moved = sum(
        1
        for i in range(total)
        if lp.origin_bundles[i] is not None
        and bundle_of[i] != lp.origin_bundles[i]
    )
    return bundles, moved


# ----------------------------------------------------------------------
# the pipeline


@dataclass
class OptResult:
    """Outcome of one pipeline run."""

    program: CellProgram
    stats: Dict[str, int]

    @property
    def changed(self) -> bool:
        return self.stats.get("instructions_eliminated", 0) > 0 or any(
            self.stats.get(key, 0)
            for key in (
                "ways_eliminated",
                "ways_repacked",
                "copies_propagated",
                "constants_folded",
                "subexpressions_shared",
                "slots_simplified",
                "dead_slots_removed",
                "outputs_pruned",
            )
        )


class PassPipeline:
    """Compose rewrite passes and re-pack the result.

    ``keep_outputs`` is the consumer contract for
    :class:`PruneOutputsPass` (None keeps every output, making the
    pipeline purely semantics-preserving).  The rewrite passes iterate
    until a round changes nothing (bounded by ``max_rounds``), then
    the scheduler re-packs; if nothing changed at all the original
    program object is returned untouched, so running the pipeline on
    its own output is a no-op.
    """

    VERSION = "opt-v1"

    def __init__(
        self,
        keep_outputs: Optional[Sequence[str]] = None,
        passes: Optional[Sequence[Pass]] = None,
        max_rounds: int = 8,
    ):
        if max_rounds <= 0:
            raise ValueError("max_rounds must be positive")
        self.keep_outputs = (
            frozenset(keep_outputs) if keep_outputs is not None else None
        )
        if passes is None:
            passes = [
                ConstantFoldPass(),
                CopyPropagationPass(),
                CommonSubexpressionPass(),
                SimplifySlotsPass(),
                DeadCodePass(),
            ]
        self.passes: List[Pass] = list(passes)
        self.max_rounds = max_rounds

    def signature(self) -> str:
        """A stable id of what this pipeline does (cache-key material).

        Two pipelines with the same signature produce the same program
        from the same input, so the engine's compiled-program cache
        folds the signature into its key: optimized and unoptimized
        compiles of one kernel can never collide on an entry.
        """
        tag = ">".join(p.name for p in self.passes)
        if self.keep_outputs is not None:
            tag += "|keep=" + ",".join(sorted(self.keep_outputs))
        return f"{self.VERSION}:{tag}"

    #: Derived bookkeeping recomputed by :meth:`run` over the whole
    #: fixpoint, not summed across iterations.
    _SNAPSHOT_KEYS = frozenset(
        {
            "instructions_before",
            "instructions_after",
            "instructions_eliminated",
            "ways_before",
            "ways_after",
        }
    )

    def run(self, program: CellProgram) -> OptResult:
        """Optimize *program* to a global fixpoint.

        One rewrite+repack iteration is not idempotent on its own: the
        scheduler reorders ways, which can expose CSE/copy-propagation
        opportunities that the original issue order hid.  Iterating
        until an iteration changes nothing makes the result a true
        fixed point -- running the pipeline on its own output returns
        the same program object.
        """
        total: Stats = {}
        current = program
        for _ in range(self.max_rounds):
            outcome = self._run_once(current)
            for key, value in outcome.stats.items():
                if key not in self._SNAPSHOT_KEYS:
                    _bump(total, key, value)
            if outcome.program is current:
                break
            current = outcome.program
        if current is not program:
            total["instructions_before"] = len(program.instructions)
            total["instructions_after"] = len(current.instructions)
            total["instructions_eliminated"] = len(program.instructions) - len(
                current.instructions
            )
            total["ways_before"] = sum(
                len(b.ways) for b in program.instructions
            )
            total["ways_after"] = sum(
                len(b.ways) for b in current.instructions
            )
        return OptResult(program=current, stats=total)

    def _run_once(self, program: CellProgram) -> OptResult:
        stats: Stats = {}
        try:
            lp = linearize(program)
        except NonSSAProgramError:
            return OptResult(program=program, stats={"skipped_non_ssa": 1})
        before_instructions = len(program.instructions)
        before_ways = len(lp.ways)

        if self.keep_outputs is not None:
            PruneOutputsPass(self.keep_outputs).run(lp, stats)
        for _ in range(self.max_rounds):
            marker = dict(stats)
            for one_pass in self.passes:
                lp = one_pass.run(lp, stats)
            if stats == marker:
                break

        bundles, moved = pack_ways(lp)
        if len(bundles) > before_instructions:
            # The greedy scheduler should never lose to the original
            # schedule; if it somehow does, keep the original program.
            return OptResult(
                program=program, stats={"scheduler_regressed": 1}
            )
        if encode_instructions(bundles) == encode_instructions(
            program.instructions
        ) and lp.output_regs == dict(program.output_regs):
            return OptResult(program=program, stats=stats)

        mapping = program.mapping
        if mapping is not None:
            dfg = mapping.dfg
            if set(lp.output_regs) != set(program.output_regs):
                dfg = dfg.copy()
                dfg.outputs = {
                    name: node
                    for name, node in dfg.outputs.items()
                    if name in lp.output_regs
                }
            optimized_for_stats = CellProgram(
                mapping=mapping,
                instructions=bundles,
                input_regs=lp.input_regs,
                output_regs=lp.output_regs,
                node_regs=lp.node_regs,
            )
            from repro.opt.cost import program_stats

            mapping = dc_replace(
                mapping,
                dfg=dfg,
                stats=program_stats(
                    optimized_for_stats, levels=mapping.stats.levels
                ),
            )
        optimized = CellProgram(
            mapping=mapping,
            instructions=bundles,
            input_regs=lp.input_regs,
            output_regs=lp.output_regs,
            node_regs=lp.node_regs,
        )
        _bump(stats, "ways_repacked", moved)
        stats["instructions_before"] = before_instructions
        stats["instructions_after"] = len(bundles)
        stats["instructions_eliminated"] = before_instructions - len(bundles)
        stats["ways_before"] = before_ways
        stats["ways_after"] = len(lp.ways)
        return OptResult(program=optimized, stats=stats)


def default_pipeline(
    keep_outputs: Optional[Sequence[str]] = None,
) -> PassPipeline:
    """The standard pipeline, optionally with a consumer contract."""
    return PassPipeline(keep_outputs=keep_outputs)
