"""GenDP throughput model: simulator cycles -> MCUPS/mm^2 and MCUPS/W.

The cycle-level simulator measures cycles per cell update on small
inputs; this package projects those measurements to full workloads the
way the paper's evaluation does (Section 6/7):

- array-level parallelism (64 integer PEs / 16 arrays per tile) and
  SIMD lanes (4 x 8-bit for BSW);
- host-CPU fractions for the work DPAx does not run (PairHMM's 2.3%
  re-computation, POA's 2.4% ultra-long dependencies);
- Chain's 3.72x reordered-work normalization;
- process-scaled area (28nm -> 7nm) and tile power for the normalized
  metrics;
- the DRAM bandwidth ceiling for the Table 12 multi-tile scaling.
"""

from repro.perfmodel.throughput import (
    GenDPPerfModel,
    KernelThroughput,
    DEFAULT_CYCLES_PER_CELL,
    measure_cycles_per_cell,
)
from repro.perfmodel.scaling import tile_scaling_study

__all__ = [
    "GenDPPerfModel",
    "KernelThroughput",
    "DEFAULT_CYCLES_PER_CELL",
    "measure_cycles_per_cell",
    "tile_scaling_study",
]
