"""Multi-tile scaling study (Table 12).

GenDP scales by replicating DPAx tiles until the DRAM channels
saturate: with 8-channel DDR4-2400 (153.2 GB/s) the paper provisions
64 tiles, reaching 297.5 GCUPS raw against the A100's 48.3 GCUPS --
6.17x with 5.4% of the GPU's area.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.asicmodel.dram import DDR4_2400_8CH, DRAMConfig
from repro.baselines.data import PAPER_TABLE12
from repro.perfmodel.throughput import GenDPPerfModel


@dataclass
class TileScalingResult:
    """One row of the scaling study."""

    tiles: int
    total_area_mm2: float
    raw_gcups: float
    gpu_gcups: float
    gpu_area_mm2: float
    speedup: float
    bandwidth_limited_tiles: int


def tile_scaling_study(
    model: Optional[GenDPPerfModel] = None,
    tiles: int = 64,
    dram: DRAMConfig = DDR4_2400_8CH,
    per_tile_bandwidth_gbs: float = 2.4,
) -> TileScalingResult:
    """Project *tiles* DPAx tiles against the A100 (Table 12).

    Raw per-tile throughput is the geomean over the four kernels (the
    same aggregation that reconciles the paper's 297.5 GCUPS with its
    per-kernel rates); the DRAM config bounds how many tiles the
    memory system can feed at the average per-tile traffic.
    """
    if model is None:
        model = GenDPPerfModel()
    if tiles <= 0:
        raise ValueError("tile count must be positive")
    per_tile = model.geomean_gcups()
    raw = per_tile * tiles
    gpu_gcups = PAPER_TABLE12["gpu_raw_gcups"]
    return TileScalingResult(
        tiles=tiles,
        total_area_mm2=model.tile_area_mm2 * tiles,
        raw_gcups=raw,
        gpu_gcups=gpu_gcups,
        gpu_area_mm2=PAPER_TABLE12["gpu_area_mm2"],
        speedup=raw / gpu_gcups,
        bandwidth_limited_tiles=dram.max_tiles(per_tile_bandwidth_gbs),
    )
