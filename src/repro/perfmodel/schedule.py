"""Multi-array task scheduling: deploying 2D kernels across the tile.

2D kernels parallelize across *tasks*: each of the 16 integer PE
arrays runs one read-pair at a time (Section 3.1's deployment; the 1D
Chain kernel instead concatenates the arrays).  Real workloads have
skewed task sizes -- seed extensions vary with read placement, POA
groups with coverage -- so the tile's utilization depends on how tasks
are packed onto arrays.

This module models that packing: longest-processing-time (LPT) greedy
assignment of per-task cell counts onto arrays, makespan and balance
metrics, and the efficiency the perf model's "64 PEs busy" assumption
actually achieves on generated workloads
(``benchmarks/test_ablation_scheduling.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

#: Integer PE arrays available for task-parallel kernels.
DEFAULT_ARRAYS = 16


@dataclass
class ScheduleResult:
    """Outcome of packing one batch of tasks onto the arrays."""

    assignments: List[List[int]]  # task indices per array
    array_loads: List[float]  # total cells per array

    @property
    def makespan(self) -> float:
        return max(self.array_loads) if self.array_loads else 0.0

    @property
    def total_work(self) -> float:
        return sum(self.array_loads)

    @property
    def balance_efficiency(self) -> float:
        """Mean load / max load: 1.0 = perfectly balanced arrays."""
        if not self.array_loads or self.makespan == 0:
            return 1.0
        return (self.total_work / len(self.array_loads)) / self.makespan


def schedule_lpt(
    task_cells: Sequence[float], arrays: int = DEFAULT_ARRAYS
) -> ScheduleResult:
    """Longest-processing-time greedy packing.

    Sort tasks by size descending, always assign to the least-loaded
    array -- the classic 4/3-approximation, and what a simple hardware
    task queue achieves in practice.
    """
    if arrays <= 0:
        raise ValueError("need at least one array")
    if any(cells < 0 for cells in task_cells):
        raise ValueError("task sizes must be non-negative")
    order = sorted(range(len(task_cells)), key=lambda i: -task_cells[i])
    assignments: List[List[int]] = [[] for _ in range(arrays)]
    loads = [0.0] * arrays
    for task in order:
        target = min(range(arrays), key=lambda a: loads[a])
        assignments[target].append(task)
        loads[target] += task_cells[task]
    return ScheduleResult(assignments=assignments, array_loads=loads)


def schedule_fifo(
    task_cells: Sequence[float], arrays: int = DEFAULT_ARRAYS
) -> ScheduleResult:
    """Arrival-order packing (the no-sorting baseline)."""
    if arrays <= 0:
        raise ValueError("need at least one array")
    assignments: List[List[int]] = [[] for _ in range(arrays)]
    loads = [0.0] * arrays
    for task, cells in enumerate(task_cells):
        target = min(range(arrays), key=lambda a: loads[a])
        assignments[target].append(task)
        loads[target] += cells
    return ScheduleResult(assignments=assignments, array_loads=loads)


def weighted_task_cells(
    task_cells: Sequence[float], cycles_per_cell: float
) -> List[float]:
    """Scale cell counts into cycle costs via the optimizer's cost model.

    The packing above treats a task's cost as its cell count, which
    assumes every cell takes the same time.  The static cost model
    (:attr:`repro.opt.cost.ProgramCost.cycles_per_cell` -- one cycle
    per VLIW bundle) turns counts into cycles, so schedules for an
    optimized program (fewer bundles per cell) can be compared with the
    unoptimized baseline in one unit.
    """
    if cycles_per_cell <= 0:
        raise ValueError("cycles_per_cell must be positive")
    return [cells * cycles_per_cell for cells in task_cells]


def tile_throughput_efficiency(
    task_cells: Sequence[float], arrays: int = DEFAULT_ARRAYS
) -> float:
    """The fraction of the tile's peak the batch actually sustains.

    The perf model assumes all arrays busy; a skewed batch with a
    straggler array sustains less.  This is the correction factor
    between per-array MCUPS and realized tile MCUPS.
    """
    if not task_cells:
        raise ValueError("need at least one task")
    return schedule_lpt(task_cells, arrays).balance_efficiency
