"""Per-kernel GenDP throughput projection.

``cycles_per_cell`` is the per-PE(-lane) cost of one DP cell update,
measured on the instruction-level simulator (see
:func:`measure_cycles_per_cell`).  Our conservative control/compute
fence makes these a little higher than the paper's hand-scheduled
programs -- the model keeps them as honest measurements and the
benchmarks compare *shapes* (who wins, by roughly what factor), as
DESIGN.md sets out.

Projection per kernel:

- raw rate  = PEs x SIMD lanes x clock / cycles-per-cell
- host blend: ``1 / (accel_fraction/raw + (1-accel_fraction)/host)``
  (PairHMM re-computation and POA ultra-long dependencies run on the
  host CPU, Section 6)
- Chain divides by the 3.72x reordered-work factor (Section 6)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.asicmodel.area import DPAX_28NM, dpax_area_breakdown
from repro.asicmodel.dram import DDR4_2400_8CH
from repro.asicmodel.scaling import scale_area, scale_power

#: Tile geometry (Figure 4).
INTEGER_PES_PER_TILE = 64
CLOCK_HZ = 2.0e9

#: Per-PE(-lane) cycles per cell update, measured on the cycle-level
#: simulator (tests/perfmodel re-measures and checks drift).  BSW's
#: four 8-bit SIMD lanes and Chain's window streaming are folded in by
#: the lane/parallelism fields of KernelThroughput, not here.
DEFAULT_CYCLES_PER_CELL: Dict[str, float] = {
    "bsw": 19.6,
    "pairhmm": 22.4,
    "chain": 39.0,
    "poa": 36.3,
    "dtw": 12.7,
    "bellman_ford": 14.5,
    "lcs": 12.7,
}

#: Host-CPU GCUPS used for the non-accelerated fractions (the Xeon
#: 8380 rates of Table 15).
HOST_GCUPS: Dict[str, float] = {
    "pairhmm": 32.88,
    "poa": 14.51,
}


@dataclass(frozen=True)
class KernelThroughput:
    """One kernel's projection parameters."""

    kernel: str
    cycles_per_cell: float
    simd_lanes: int = 1
    pes_used: int = INTEGER_PES_PER_TILE
    accel_fraction: float = 1.0
    work_inflation: float = 1.0
    host_gcups: Optional[float] = None

    def raw_gcups(self, clock_hz: float = CLOCK_HZ) -> float:
        """Accelerator-only rate, before host blending and penalties."""
        if self.cycles_per_cell <= 0:
            raise ValueError("cycles_per_cell must be positive")
        cells_per_second = (
            self.pes_used * self.simd_lanes * clock_hz / self.cycles_per_cell
        )
        return cells_per_second / 1e9

    def effective_gcups(self, clock_hz: float = CLOCK_HZ) -> float:
        """End-to-end rate including host fraction and work inflation."""
        raw = self.raw_gcups(clock_hz)
        if self.accel_fraction < 1.0:
            if self.host_gcups is None:
                raise ValueError(
                    f"{self.kernel}: host fraction set but no host rate"
                )
            raw = 1.0 / (
                self.accel_fraction / raw
                + (1.0 - self.accel_fraction) / self.host_gcups
            )
        return raw / self.work_inflation


def default_kernel_throughputs() -> Dict[str, KernelThroughput]:
    """The paper's four kernels with Section 6 configurations."""
    return {
        "bsw": KernelThroughput(
            kernel="bsw",
            cycles_per_cell=DEFAULT_CYCLES_PER_CELL["bsw"],
            simd_lanes=4,  # four 8-bit lanes per 32-bit CU
        ),
        "pairhmm": KernelThroughput(
            kernel="pairhmm",
            cycles_per_cell=DEFAULT_CYCLES_PER_CELL["pairhmm"],
            accel_fraction=0.977,  # scan phase; re-computation on host
            host_gcups=HOST_GCUPS["pairhmm"],
        ),
        "chain": KernelThroughput(
            kernel="chain",
            cycles_per_cell=DEFAULT_CYCLES_PER_CELL["chain"],
            work_inflation=3.72,  # reordered N=64 vs original N=25
        ),
        "poa": KernelThroughput(
            kernel="poa",
            cycles_per_cell=DEFAULT_CYCLES_PER_CELL["poa"],
            accel_fraction=0.976,  # ultra-long dependencies on host
            host_gcups=HOST_GCUPS["poa"],
        ),
    }


class GenDPPerfModel:
    """Tile-level throughput, area and power roll-up."""

    def __init__(
        self,
        kernels: Optional[Dict[str, KernelThroughput]] = None,
        process_nm: int = 7,
        clock_hz: float = CLOCK_HZ,
    ):
        self.kernels = kernels or default_kernel_throughputs()
        self.process_nm = process_nm
        self.clock_hz = clock_hz
        base_area = dpax_area_breakdown(DPAX_28NM)["total"]
        self.tile_area_mm2 = scale_area(base_area, 28, process_nm)
        tile_power = DPAX_28NM.static_power_w + DPAX_28NM.dynamic_power_w
        self.tile_power_w = scale_power(tile_power, 28, process_nm)
        self.dram_power_w = (
            DDR4_2400_8CH.static_power_w + 0.645
        )  # Table 8's averaged dynamic

    def gcups(self, kernel: str) -> float:
        return self.kernels[kernel].effective_gcups(self.clock_hz)

    def mcups_per_mm2(self, kernel: str) -> float:
        """Figure 10(a)'s normalized metric."""
        return self.gcups(kernel) * 1000.0 / self.tile_area_mm2

    def mcups_per_watt(self, kernel: str) -> float:
        """Figure 10(b)'s metric, including DRAM power (Table 8)."""
        return self.gcups(kernel) * 1000.0 / (self.tile_power_w + self.dram_power_w)

    def runtime_seconds(self, kernel: str, cells: int) -> float:
        return cells / (self.gcups(kernel) * 1e9)

    def geomean_gcups(self) -> float:
        product = 1.0
        for kernel in self.kernels:
            product *= self.gcups(kernel)
        return product ** (1.0 / len(self.kernels))


def measure_cycles_per_cell(kernel: str, seed: int = 0) -> float:
    """Re-measure per-PE cycles/cell on the cycle-level simulator.

    Runs a small representative task and divides busy-PE cycles by
    cells; used by tests to keep :data:`DEFAULT_CYCLES_PER_CELL`
    honest.
    """
    import random

    from repro.seq.alphabet import random_sequence, encode

    rng = random.Random(seed)
    if kernel in ("bsw", "lcs", "dtw", "pairhmm"):
        from repro.mapping.wavefront2d import run_wavefront
        from repro.mapping import kernels2d

        if kernel == "bsw":
            spec = kernels2d.bsw_wavefront_spec()
            target = encode(random_sequence(16, rng))
            stream = encode(random_sequence(24, rng))
        elif kernel == "lcs":
            spec = kernels2d.lcs_wavefront_spec()
            target = encode(random_sequence(16, rng))
            stream = encode(random_sequence(24, rng))
        elif kernel == "dtw":
            spec = kernels2d.dtw_wavefront_spec()
            target = [rng.randint(0, 50) for _ in range(16)]
            stream = [rng.randint(0, 50) for _ in range(24)]
        else:
            spec = kernels2d.pairhmm_boundary_for_length(
                kernels2d.pairhmm_wavefront_spec(), 16
            )
            target = encode(random_sequence(16, rng))
            stream = encode(random_sequence(24, rng))
        run = run_wavefront(spec, target=target, stream=stream)
        # 4 PEs share the work; per-PE cost is wall cycles x PEs / cells.
        return run.cycles * 4 / run.cells
    if kernel == "chain":
        from repro.kernels.chain import Anchor
        from repro.mapping.sliding1d import run_chain

        anchors = []
        x = y = 0
        for _ in range(24):
            x += rng.randint(1, 60)
            y += rng.randint(1, 60)
            anchors.append(Anchor(x, y))
        run = run_chain(anchors, total_pes=4)
        return run.cycles * 4 / run.cells
    if kernel == "poa":
        from repro.kernels.poa import PartialOrderGraph
        from repro.mapping.longrange import run_poa_row_dp
        from repro.seq.mutate import MutationProfile, Mutator

        template = random_sequence(16, rng)
        mutator = Mutator(MutationProfile.nanopore(), rng)
        graph = PartialOrderGraph(template)
        graph.add_sequence(mutator.mutate(template))
        run = run_poa_row_dp(graph, mutator.mutate(template))
        return run.cycles / run.cells
    if kernel == "bellman_ford":
        from repro.kernels.bellman_ford import Edge
        from repro.mapping.longrange import run_bellman_ford
        from repro.workloads.graphs import generate_bf_workload

        workload = generate_bf_workload(vertices=12, neighbors=3, seed=seed)
        edges = [Edge(e.src, e.dst, int(e.weight * 1000)) for e in workload.edges]
        run = run_bellman_ford(workload.vertex_count, edges, source=workload.source)
        return run.cycles / run.relaxations
    raise KeyError(f"no measurement recipe for kernel {kernel!r}")
