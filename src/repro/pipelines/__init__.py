"""The three genome-analysis pipelines of Section 2.1, end to end.

The paper motivates GenDP with the pipelines its kernels come from;
this package assembles those pipelines out of the kernels so the
examples and tests exercise realistic multi-kernel flows:

- :mod:`repro.pipelines.seeding` -- exact k-mer seeding, the non-DP
  substrate every pipeline starts from (GenDP accelerates what comes
  *after* seeding).
- :mod:`repro.pipelines.reference_guided` -- read mapping (seed ->
  chain -> extend) and small-variant calling (pileup + PairHMM
  genotyping): the BSW + PairHMM pipeline.
- :mod:`repro.pipelines.denovo` -- all-vs-all overlap (seed -> chain),
  greedy layout and POA polishing: the Chain + POA pipeline.
- :mod:`repro.pipelines.metagenomics` -- read classification against a
  pan-genome and abundance estimation: the Chain pipeline's third use.
"""

from repro.pipelines.seeding import KmerIndex, seed_anchors
from repro.pipelines.reference_guided import (
    ReadMapping,
    ReferenceGuidedPipeline,
    Variant,
)
from repro.pipelines.denovo import DenovoAssembler, Overlap
from repro.pipelines.metagenomics import MetagenomicsClassifier

__all__ = [
    "KmerIndex",
    "seed_anchors",
    "ReadMapping",
    "ReferenceGuidedPipeline",
    "Variant",
    "DenovoAssembler",
    "Overlap",
    "MetagenomicsClassifier",
]
