"""De-novo assembly: overlap (Chain) -> layout -> consensus (POA).

Section 2.1's second pipeline, in the classic
overlap-layout-consensus shape:

1. **overlap** -- every read pair is seeded and chained; a chain
   covering enough of both reads with consistent diagonal offset
   becomes an overlap edge (this is exactly what the paper's Chain
   workload computes: "10K reads ... when computing overlaps with
   itself");
2. **layout** -- a greedy walk over best suffix-overlaps orders the
   reads into a draft;
3. **consensus** -- the draft's reads are fused into a partial-order
   graph and the heaviest path polished out (the Racon/POA step).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.kernels.chain import chain_original, chain_query_coverage
from repro.kernels.poa import poa_consensus
from repro.pipelines.seeding import KmerIndex, seed_anchors


@dataclass
class Overlap:
    """A detected suffix(prefix) overlap between two reads.

    ``offset`` is read_b's start position within read_a's coordinates
    (positive: b extends a to the right).
    """

    a: int
    b: int
    offset: int
    score: float
    span: int


class DenovoAssembler:
    """Greedy overlap-layout-consensus assembler over the DP kernels."""

    def __init__(
        self,
        k: int = 13,
        chain_window: int = 25,
        min_overlap: int = 20,
        min_anchors: int = 3,
    ):
        self.k = k
        self.chain_window = chain_window
        self.min_overlap = min_overlap
        self.min_anchors = min_anchors

    # ------------------------------------------------------------------

    def find_overlaps(self, reads: Sequence[str]) -> List[Overlap]:
        """All-vs-all chaining: the Chain workload of Section 6."""
        overlaps: List[Overlap] = []
        indexes = [
            KmerIndex(read, k=self.k) if len(read) >= self.k else None
            for read in reads
        ]
        for a, read_a in enumerate(reads):
            index = indexes[a]
            if index is None:
                continue
            for b, read_b in enumerate(reads):
                if a == b or indexes[b] is None:
                    continue
                anchors = seed_anchors(index, read_b)
                if len(anchors) < self.min_anchors:
                    continue
                result = chain_original(anchors, n=self.chain_window)
                chain = result.backtrack()
                # Ties in the concave score let the backtrack skip
                # interior anchors, so chain *coverage* (not length) is
                # the overlap criterion.
                b_span, a_span = chain_query_coverage(anchors, chain)
                if min(a_span, b_span) < self.min_overlap:
                    continue
                first = anchors[chain[0]]
                overlaps.append(
                    Overlap(
                        a=a,
                        b=b,
                        offset=first.x - first.y,
                        score=result.best_score,
                        span=min(a_span, b_span),
                    )
                )
        return overlaps

    def layout(self, reads: Sequence[str], overlaps: Sequence[Overlap]) -> List[int]:
        """Greedy layout: follow the best rightward overlap each step.

        Starts from the read no other read extends leftward (the
        leftmost read of a linear template) and repeatedly takes the
        highest-scoring unused rightward extension.
        """
        if not reads:
            return []
        rightward: Dict[int, List[Overlap]] = {}
        has_left_extension = set()
        for overlap in overlaps:
            if overlap.offset > 0:
                rightward.setdefault(overlap.a, []).append(overlap)
                has_left_extension.add(overlap.b)
        start_candidates = [
            i for i in range(len(reads)) if i not in has_left_extension
        ]
        current = start_candidates[0] if start_candidates else 0
        order, used = [current], {current}
        while True:
            extensions = [
                o for o in rightward.get(current, []) if o.b not in used
            ]
            if not extensions:
                break
            best = max(extensions, key=lambda o: o.score)
            order.append(best.b)
            used.add(best.b)
            current = best.b
        return order

    def assemble(self, reads: Sequence[str]) -> str:
        """Full pipeline: overlaps -> layout -> POA consensus."""
        if not reads:
            raise ValueError("cannot assemble zero reads")
        if len(reads) == 1:
            return reads[0]
        overlaps = self.find_overlaps(reads)
        order = self.layout(reads, overlaps)
        laid_out = [reads[i] for i in order]
        # Any reads the layout missed still vote in the consensus.
        laid_out.extend(reads[i] for i in range(len(reads)) if i not in set(order))
        return poa_consensus(laid_out)
