"""Metagenomics classification and abundance estimation.

Section 2.1's third pipeline: "metagenomics classification aligns
input microbial reads to a reference pan-genome (consisting of
different species) and then estimates the proportion of different
microbes in the sample."  Classification here is seed-and-chain (the
Chain kernel) against each species' index; abundance is the normalized
classified-read mass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.kernels.chain import chain_original
from repro.pipelines.seeding import KmerIndex, seed_anchors


@dataclass
class Classification:
    """One read's best species assignment."""

    read_name: str
    species: Optional[str]  # None = unclassified
    score: float
    runner_up_margin: float


class MetagenomicsClassifier:
    """Classify reads against a pan-genome of species references."""

    def __init__(
        self,
        genomes: Dict[str, str],
        k: int = 13,
        chain_window: int = 25,
        min_score: float = 30.0,
        min_margin: float = 5.0,
    ):
        if not genomes:
            raise ValueError("need at least one species genome")
        self.indexes = {
            species: KmerIndex(genome, k=k) for species, genome in genomes.items()
        }
        self.chain_window = chain_window
        self.min_score = min_score
        self.min_margin = min_margin

    def classify(self, sequence: str, name: str = "") -> Classification:
        """Best chain score across species; ambiguous reads stay
        unclassified (margin below ``min_margin``)."""
        scores: List[Tuple[str, float]] = []
        for species, index in self.indexes.items():
            anchors = seed_anchors(index, sequence)
            if not anchors:
                scores.append((species, 0.0))
                continue
            result = chain_original(anchors, n=self.chain_window)
            scores.append((species, result.best_score))
        scores.sort(key=lambda item: item[1], reverse=True)
        best_species, best_score = scores[0]
        margin = best_score - (scores[1][1] if len(scores) > 1 else 0.0)
        if best_score < self.min_score or margin < self.min_margin:
            return Classification(name, None, best_score, margin)
        return Classification(name, best_species, best_score, margin)

    def abundance(
        self, reads: Sequence[Tuple[str, str]]
    ) -> Tuple[Dict[str, float], float]:
        """Species proportions over classified reads.

        Returns ``(abundances, classified_fraction)``: abundances sum
        to 1 over the classified reads; the fraction reports how many
        reads were confidently assigned at all.
        """
        if not reads:
            raise ValueError("need at least one read")
        counts: Dict[str, int] = {species: 0 for species in self.indexes}
        classified = 0
        for name, sequence in reads:
            result = self.classify(sequence, name)
            if result.species is not None:
                counts[result.species] += 1
                classified += 1
        if classified == 0:
            return {species: 0.0 for species in counts}, 0.0
        return (
            {species: n / classified for species, n in counts.items()},
            classified / len(reads),
        )
