"""Reference-guided analysis: read mapping + small-variant calling.

The short-read pipeline of Section 2.1 assembled from this
repository's kernels:

1. **seed** -- exact k-mer anchors against the reference index;
2. **chain** -- group collinear anchors (the Chain kernel) to place
   the read;
3. **extend** -- global affine alignment of the read against its
   reference window (the BSW kernel's semantics) for the CIGAR;
4. **pileup + genotype** -- candidate variants from the alignment
   pileup, each scored read-vs-haplotype with the PairHMM kernel, as
   GATK's HaplotypeCaller does.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.kernels.base import AlignmentMode, TracebackOp
from repro.kernels.chain import chain_original
from repro.kernels.pairhmm import pairhmm_forward
from repro.kernels.sw import align
from repro.pipelines.seeding import KmerIndex, seed_anchors
from repro.seq.scoring import ScoringScheme


@dataclass
class ReadMapping:
    """A placed read: reference position, score and alignment."""

    read_name: str
    position: int
    score: int
    cigar: List[Tuple[TracebackOp, int]]
    sequence: str

    @property
    def reference_span(self) -> int:
        return sum(
            count
            for op, count in self.cigar
            if op in (TracebackOp.MATCH, TracebackOp.MISMATCH, TracebackOp.DELETION)
        )


@dataclass
class Variant:
    """A called small variant with its genotyping evidence."""

    position: int
    reference_base: str
    alternate_base: str
    support: int
    depth: int
    #: log10 likelihood ratio alt-haplotype vs reference-haplotype.
    likelihood_ratio: float

    @property
    def allele_fraction(self) -> float:
        return self.support / self.depth if self.depth else 0.0


class ReferenceGuidedPipeline:
    """Map reads to a reference and call SNVs."""

    def __init__(
        self,
        reference: str,
        k: int = 11,
        chain_window: int = 25,
        scheme: Optional[ScoringScheme] = None,
        flank: int = 12,
    ):
        if not reference:
            raise ValueError("reference must be non-empty")
        self.reference = reference
        self.index = KmerIndex(reference, k=k)
        self.chain_window = chain_window
        self.scheme = scheme or ScoringScheme()
        self.flank = flank

    # ------------------------------------------------------------------
    # mapping

    def map_read(self, sequence: str, name: str = "") -> Optional[ReadMapping]:
        """Seed -> chain -> extend one read; None if unplaceable."""
        anchors = seed_anchors(self.index, sequence)
        if not anchors:
            return None
        chained = chain_original(anchors, n=self.chain_window)
        chain = chained.backtrack()
        first = anchors[chain[0]]
        # The chain's first anchor implies the read's reference start.
        start = max(0, first.x - first.y - self.flank // 2)
        end = min(len(self.reference), start + len(sequence) + self.flank)
        window = self.reference[start:end]
        result = align(sequence, window, self.scheme, AlignmentMode.SEMI_GLOBAL)
        # Recover the alignment's start column within the window.
        consumed_t = sum(
            count
            for op, count in result.cigar
            if op in (TracebackOp.MATCH, TracebackOp.MISMATCH, TracebackOp.DELETION)
        )
        position = start + result.end[1] - consumed_t
        return ReadMapping(
            read_name=name,
            position=position,
            score=result.score,
            cigar=result.cigar,
            sequence=sequence,
        )

    def map_all(self, reads: Sequence[Tuple[str, str]]) -> List[ReadMapping]:
        """Map (name, sequence) pairs; unplaceable reads are dropped."""
        mappings = []
        for name, sequence in reads:
            mapping = self.map_read(sequence, name)
            if mapping is not None:
                mappings.append(mapping)
        return mappings

    # ------------------------------------------------------------------
    # variant calling

    def pileup(self, mappings: Sequence[ReadMapping]) -> Dict[int, Counter]:
        """Per-reference-position base counts from the alignments."""
        columns: Dict[int, Counter] = defaultdict(Counter)
        for mapping in mappings:
            ref_pos, read_pos = mapping.position, 0
            for op, count in mapping.cigar:
                if op in (TracebackOp.MATCH, TracebackOp.MISMATCH):
                    for offset in range(count):
                        if ref_pos + offset < len(self.reference):
                            columns[ref_pos + offset][
                                mapping.sequence[read_pos + offset]
                            ] += 1
                    ref_pos += count
                    read_pos += count
                elif op is TracebackOp.INSERTION:
                    read_pos += count
                elif op is TracebackOp.DELETION:
                    ref_pos += count
        return columns

    def call_variants(
        self,
        mappings: Sequence[ReadMapping],
        min_depth: int = 4,
        min_fraction: float = 0.3,
        haplotype_flank: int = 10,
    ) -> List[Variant]:
        """Pileup candidates, then PairHMM genotyping per candidate.

        A candidate SNV becomes a call when the PairHMM likelihood of
        the overlapping reads under the alternate haplotype beats the
        reference haplotype (positive log10 ratio) -- GATK's decision
        in miniature.
        """
        columns = self.pileup(mappings)
        variants: List[Variant] = []
        for position in sorted(columns):
            counts = columns[position]
            depth = sum(counts.values())
            if depth < min_depth:
                continue
            reference_base = self.reference[position]
            alternate_base, support = max(
                ((base, n) for base, n in counts.items() if base != reference_base),
                key=lambda item: item[1],
                default=(None, 0),
            )
            if alternate_base is None or support / depth < min_fraction:
                continue
            ratio = self._genotype(
                mappings, position, reference_base, alternate_base, haplotype_flank
            )
            if ratio <= 0:
                continue
            variants.append(
                Variant(
                    position=position,
                    reference_base=reference_base,
                    alternate_base=alternate_base,
                    support=support,
                    depth=depth,
                    likelihood_ratio=ratio,
                )
            )
        return variants

    def _genotype(
        self,
        mappings: Sequence[ReadMapping],
        position: int,
        reference_base: str,
        alternate_base: str,
        flank: int,
    ) -> float:
        """PairHMM log10 likelihood ratio, alt vs ref haplotype."""
        lo = max(0, position - flank)
        hi = min(len(self.reference), position + flank + 1)
        ref_hap = self.reference[lo:hi]
        alt_hap = (
            ref_hap[: position - lo] + alternate_base + ref_hap[position - lo + 1 :]
        )
        ratio = 0.0
        for mapping in mappings:
            if not (mapping.position <= position < mapping.position + mapping.reference_span):
                continue
            # The read fragment overlapping the haplotype window.
            offset = lo - mapping.position
            fragment = mapping.sequence[max(0, offset) : max(0, offset) + (hi - lo)]
            if len(fragment) < 4:
                continue
            ratio += pairhmm_forward(fragment, alt_hap) - pairhmm_forward(
                fragment, ref_hap
            )
        return ratio
