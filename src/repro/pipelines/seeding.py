"""Exact k-mer seeding: the substrate in front of every DP kernel.

Real pipelines (BWA-MEM2, minimap2) find exact seed matches first and
spend their DP time extending/chaining them; GenDP accelerates the DP
part, so this reproduction needs a seeding stage to feed its pipelines
realistic anchors.  A hash index of reference k-mers suffices at this
scale (BWA's FM-index and minimap2's minimizers are performance
refinements of the same contract: k-mer -> positions).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence

from repro.kernels.chain import Anchor


class KmerIndex:
    """A hash index from every reference k-mer to its positions.

    ``max_occurrences`` drops over-represented (repeat) k-mers, the
    standard repeat-masking heuristic -- without it, repeats flood the
    chaining stage with noise anchors.
    """

    def __init__(self, reference: str, k: int = 11, max_occurrences: int = 16):
        if k <= 0:
            raise ValueError("k must be positive")
        if len(reference) < k:
            raise ValueError("reference shorter than k")
        self.reference = reference
        self.k = k
        index: Dict[str, List[int]] = defaultdict(list)
        for position in range(len(reference) - k + 1):
            index[reference[position : position + k]].append(position)
        self._index = {
            kmer: positions
            for kmer, positions in index.items()
            if len(positions) <= max_occurrences
        }

    def lookup(self, kmer: str) -> List[int]:
        """Reference positions of *kmer* (empty if masked or absent)."""
        if len(kmer) != self.k:
            raise ValueError(f"expected a {self.k}-mer, got {len(kmer)} bases")
        return self._index.get(kmer, [])

    def __len__(self) -> int:
        return len(self._index)


def seed_anchors(index: KmerIndex, query: str, stride: int = 1) -> List[Anchor]:
    """All (reference position, query position) seed matches of *query*.

    Returns anchors sorted by (x, y), ready for the chaining kernels;
    ``w`` is the seed length k.  ``stride`` samples every n-th query
    k-mer (minimizer-like thinning for long queries).
    """
    if stride <= 0:
        raise ValueError("stride must be positive")
    anchors: List[Anchor] = []
    k = index.k
    for query_pos in range(0, max(0, len(query) - k + 1), stride):
        kmer = query[query_pos : query_pos + k]
        for ref_pos in index.lookup(kmer):
            anchors.append(Anchor(x=ref_pos, y=query_pos, w=k))
    anchors.sort(key=lambda anchor: (anchor.x, anchor.y))
    return anchors
