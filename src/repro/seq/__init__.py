"""Sequence substrate: DNA alphabet, encoding, scoring, and mutation models.

This package is the foundation for every genomics kernel in the
reproduction.  It provides:

- :mod:`repro.seq.alphabet` -- the DNA alphabet, 2-bit encoding, and
  validation helpers.
- :mod:`repro.seq.scoring` -- substitution score matrices and gap-penalty
  models (linear, affine, convex) shared by the alignment kernels.
- :mod:`repro.seq.mutate` -- a parameterized mutation model (substitutions,
  insertions, deletions) used to synthesize reads from templates.
- :mod:`repro.seq.records` -- lightweight read/reference record types.
"""

from repro.seq.alphabet import (
    DNA_ALPHABET,
    complement,
    decode,
    encode,
    is_dna,
    random_sequence,
    reverse_complement,
)
from repro.seq.mutate import MutationProfile, Mutator
from repro.seq.records import Read, ReadPair, Reference
from repro.seq.scoring import (
    AffineGap,
    ConvexGap,
    GapModel,
    LinearGap,
    ScoringScheme,
    SubstitutionMatrix,
)

__all__ = [
    "DNA_ALPHABET",
    "complement",
    "decode",
    "encode",
    "is_dna",
    "random_sequence",
    "reverse_complement",
    "MutationProfile",
    "Mutator",
    "Read",
    "ReadPair",
    "Reference",
    "AffineGap",
    "ConvexGap",
    "GapModel",
    "LinearGap",
    "ScoringScheme",
    "SubstitutionMatrix",
]
