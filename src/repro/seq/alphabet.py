"""DNA alphabet, 2-bit encoding and basic sequence manipulation.

All kernels in this reproduction operate on plain Python strings over the
``ACGT`` alphabet (the paper's datasets are DNA reads).  The accelerator
model, however, streams *encoded* bases -- small integers -- through the
systolic array, so this module provides the canonical 2-bit encoding used
by the data buffers and the match-score lookup unit.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

#: The canonical DNA alphabet, in encoding order.
DNA_ALPHABET = "ACGT"

_ENCODE = {base: code for code, base in enumerate(DNA_ALPHABET)}
_COMPLEMENT = {"A": "T", "C": "G", "G": "C", "T": "A", "N": "N"}


def is_dna(sequence: str) -> bool:
    """Return ``True`` if *sequence* contains only ``A``/``C``/``G``/``T``."""
    return all(base in _ENCODE for base in sequence)


def encode(sequence: str) -> List[int]:
    """Encode a DNA string into the 2-bit integer representation.

    >>> encode("ACGT")
    [0, 1, 2, 3]

    Raises :class:`ValueError` on characters outside the alphabet -- the
    hardware model has no encoding for ambiguity codes, so generators must
    never produce them.
    """
    try:
        return [_ENCODE[base] for base in sequence]
    except KeyError as exc:
        raise ValueError(f"non-DNA base in sequence: {exc.args[0]!r}") from exc


def decode(codes: Sequence[int]) -> str:
    """Decode 2-bit integer codes back into a DNA string.

    >>> decode([0, 1, 2, 3])
    'ACGT'
    """
    try:
        return "".join(DNA_ALPHABET[code] for code in codes)
    except IndexError as exc:
        raise ValueError("code out of range for DNA alphabet") from exc


def complement(base: str) -> str:
    """Return the Watson-Crick complement of a single base."""
    try:
        return _COMPLEMENT[base]
    except KeyError as exc:
        raise ValueError(f"cannot complement base {base!r}") from exc


def reverse_complement(sequence: str) -> str:
    """Return the reverse complement of *sequence*.

    >>> reverse_complement("AACGT")
    'ACGTT'
    """
    return "".join(complement(base) for base in reversed(sequence))


def random_sequence(length: int, rng: Optional[random.Random] = None) -> str:
    """Generate a uniform random DNA sequence of *length* bases.

    A seeded :class:`random.Random` should be passed for reproducible
    workloads; the module-level generator is used otherwise.
    """
    if length < 0:
        raise ValueError("sequence length must be non-negative")
    chooser = rng if rng is not None else random
    return "".join(chooser.choice(DNA_ALPHABET) for _ in range(length))
