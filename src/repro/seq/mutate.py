"""Mutation model used to synthesize reads from template sequences.

The paper's evaluation uses real datasets (Illumina ERR194147 short reads,
PacBio C. elegans long reads, ONT S. aureus reads).  Those are not
available offline, so the workload generators synthesize reads by mutating
random templates with technology-appropriate error profiles:

- Illumina-like short reads: ~1% errors, substitution-dominated.
- PacBio/ONT-like long reads: 5-15% errors, indel-heavy.

What the DP kernels are sensitive to -- sequence length, divergence rate
and indel geometry -- is exactly what this model parameterizes, so the
substitution preserves the behaviour the paper measures (DESIGN.md,
substitution table).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.seq.alphabet import DNA_ALPHABET


@dataclass(frozen=True)
class MutationProfile:
    """Per-base mutation probabilities.

    ``substitution``, ``insertion`` and ``deletion`` are independent
    per-base event probabilities; ``extend`` is the probability that an
    indel grows by one more base (geometric length distribution), matching
    the affine-gap statistics the alignment kernels assume.
    """

    substitution: float = 0.01
    insertion: float = 0.002
    deletion: float = 0.002
    extend: float = 0.2

    def validate(self) -> None:
        """Raise :class:`ValueError` on out-of-range probabilities."""
        for name in ("substitution", "insertion", "deletion", "extend"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} probability must be in [0, 1): {value}")
        if self.substitution + self.insertion + self.deletion >= 1.0:
            raise ValueError("total per-base event probability must be < 1")

    @classmethod
    def illumina(cls) -> "MutationProfile":
        """Short-read profile: low error, substitution-dominated."""
        return cls(substitution=0.008, insertion=0.0005, deletion=0.0005, extend=0.1)

    @classmethod
    def pacbio(cls) -> "MutationProfile":
        """Long-read profile: higher error, indel-heavy."""
        return cls(substitution=0.02, insertion=0.04, deletion=0.04, extend=0.3)

    @classmethod
    def nanopore(cls) -> "MutationProfile":
        """ONT profile: highest error rate, deletion-biased."""
        return cls(substitution=0.03, insertion=0.03, deletion=0.05, extend=0.35)


class Mutator:
    """Applies a :class:`MutationProfile` to template sequences."""

    def __init__(self, profile: MutationProfile, rng: random.Random):
        profile.validate()
        self._profile = profile
        self._rng = rng

    def mutate(self, template: str) -> str:
        """Return a mutated copy of *template*.

        Events are drawn independently per base; indel lengths are
        geometric with continuation probability ``profile.extend``.
        """
        rng = self._rng
        profile = self._profile
        out = []
        index = 0
        while index < len(template):
            base = template[index]
            roll = rng.random()
            if roll < profile.deletion:
                index += 1 + self._geometric_extension()
                continue
            roll -= profile.deletion
            if roll < profile.insertion:
                out.append(self._random_insertion())
            roll -= profile.insertion
            if roll < profile.substitution:
                out.append(self._substitute(base))
            else:
                out.append(base)
            index += 1
        return "".join(out)

    def _substitute(self, base: str) -> str:
        """Pick a base different from *base*, uniformly."""
        choices = [candidate for candidate in DNA_ALPHABET if candidate != base]
        return self._rng.choice(choices)

    def _random_insertion(self) -> str:
        """Draw a geometric-length insertion string."""
        inserted = [self._rng.choice(DNA_ALPHABET)]
        while self._rng.random() < self._profile.extend:
            inserted.append(self._rng.choice(DNA_ALPHABET))
        return "".join(inserted)

    def _geometric_extension(self) -> int:
        """Draw the number of extra bases a deletion consumes."""
        extra = 0
        while self._rng.random() < self._profile.extend:
            extra += 1
        return extra
