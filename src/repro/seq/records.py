"""Lightweight record types for reads and references.

These stand in for the FASTA/FASTQ records of real pipelines; they carry
only what the kernels consume (sequence plus provenance metadata used by
accuracy studies like Table 6's mapping-error comparison).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.seq.alphabet import is_dna


@dataclass(frozen=True)
class Reference:
    """A reference sequence (or contig) reads are drawn from."""

    name: str
    sequence: str

    def __post_init__(self) -> None:
        if not is_dna(self.sequence):
            raise ValueError(f"reference {self.name!r} contains non-DNA bases")

    def __len__(self) -> int:
        return len(self.sequence)

    def window(self, start: int, length: int) -> str:
        """Extract a subsequence; raises on out-of-range windows."""
        if start < 0 or start + length > len(self.sequence):
            raise ValueError(
                f"window [{start}, {start + length}) outside reference of "
                f"length {len(self.sequence)}"
            )
        return self.sequence[start : start + length]


@dataclass(frozen=True)
class Read:
    """A sequencing read with its true origin (for accuracy evaluation).

    ``origin`` and ``origin_end`` record where on the template the read
    was synthesized from; generators fill them so mapping-accuracy studies
    can score mapped positions against truth.
    """

    name: str
    sequence: str
    origin: Optional[int] = None
    origin_end: Optional[int] = None
    reverse: bool = False

    def __post_init__(self) -> None:
        if not is_dna(self.sequence):
            raise ValueError(f"read {self.name!r} contains non-DNA bases")

    def __len__(self) -> int:
        return len(self.sequence)


@dataclass(frozen=True)
class ReadPair:
    """A query/target pair, the unit of work for pairwise kernels.

    For BSW this is a (seed-extension query, reference window) pair; for
    PairHMM a (read, candidate haplotype) pair.
    """

    query: str
    target: str
    name: str = ""
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not is_dna(self.query) or not is_dna(self.target):
            raise ValueError(f"read pair {self.name!r} contains non-DNA bases")

    @property
    def cells(self) -> int:
        """Number of DP cells a full (unbanded) table for this pair has."""
        return len(self.query) * len(self.target)
