"""Scoring schemes for pairwise alignment kernels.

The paper's alignment kernels (BSW, POA) score alignments with a
substitution matrix plus a gap model.  Section 1 of the paper lists the
three gap-scoring methods an approximate-string-matching accelerator must
support -- *linear*, *affine* and *convex* -- and GenDP's ISA supports all
three (Section 7.6.3).  This module provides each as a small strategy
object so kernels can be written once, parameterized by scheme.

Penalties are stored as non-negative magnitudes; kernels subtract them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass(frozen=True)
class SubstitutionMatrix:
    """A match/mismatch substitution score lookup.

    The default (+1 match, -1 mismatch) mirrors minimap2/BWA-MEM2 seed
    extension defaults at the resolution this reproduction needs.  Custom
    per-pair overrides can be supplied for protein-like alphabets.
    """

    match: int = 1
    mismatch: int = -1
    overrides: Dict[Tuple[str, str], int] = field(default_factory=dict)

    def score(self, a: str, b: str) -> int:
        """Score aligning base *a* against base *b*."""
        key = (a, b)
        if key in self.overrides:
            return self.overrides[key]
        return self.match if a == b else self.mismatch


class GapModel:
    """Base class for gap-penalty models.

    Subclasses implement :meth:`penalty`, the total cost of a gap of a
    given length.  ``open_cost``/``extend_cost`` expose the incremental
    form used by DP recurrences that track gap state explicitly (the E/F
    matrices of affine-gap Smith-Waterman).
    """

    def penalty(self, length: int) -> int:
        """Total penalty (non-negative) of a gap of *length* bases."""
        raise NotImplementedError

    def validate(self) -> None:
        """Raise :class:`ValueError` if the parameters are not sane."""
        if self.penalty(1) < 0:
            raise ValueError("gap penalty must be non-negative")


@dataclass(frozen=True)
class LinearGap(GapModel):
    """Linear gaps: ``penalty(L) = extend * L``."""

    extend: int = 2

    def penalty(self, length: int) -> int:
        if length < 0:
            raise ValueError("gap length must be non-negative")
        return self.extend * length


@dataclass(frozen=True)
class AffineGap(GapModel):
    """Affine gaps (Gotoh): ``penalty(L) = open + extend * L`` for L >= 1.

    This is the model used by BWA-MEM2's banded Smith-Waterman and by
    Racon's POA, and the one whose E/F recurrence appears in Figure 2a of
    the paper.
    """

    open: int = 4
    extend: int = 1

    def penalty(self, length: int) -> int:
        if length < 0:
            raise ValueError("gap length must be non-negative")
        if length == 0:
            return 0
        return self.open + self.extend * length


@dataclass(frozen=True)
class ConvexGap(GapModel):
    """Convex gaps: ``penalty(L) = open + extend * L + scale * log2(L)``.

    Convex (logarithmic) gap costs model the long-indel statistics of real
    genomes better than affine costs; minimap2's chaining cost function is
    convex, which is why the Chain kernel needs the ``log2`` LUT operation
    in the GenDP ISA (Table 4).
    """

    open: int = 4
    extend: int = 1
    scale: int = 1

    def penalty(self, length: int) -> int:
        if length < 0:
            raise ValueError("gap length must be non-negative")
        if length == 0:
            return 0
        return self.open + self.extend * length + self.scale * int(math.log2(length))

    def validate(self) -> None:
        super().validate()
        if self.scale < 0:
            raise ValueError("convex scale must be non-negative")


@dataclass(frozen=True)
class ScoringScheme:
    """A complete alignment scoring scheme: substitutions plus gaps."""

    substitution: SubstitutionMatrix = field(default_factory=SubstitutionMatrix)
    gap: GapModel = field(default_factory=AffineGap)

    def score(self, a: str, b: str) -> int:
        """Substitution score of aligning *a* to *b*."""
        return self.substitution.score(a, b)

    def gap_penalty(self, length: int) -> int:
        """Total penalty of a gap of *length* bases."""
        return self.gap.penalty(length)
