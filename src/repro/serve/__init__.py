"""repro.serve: zero-copy transport and the asyncio serving tier.

Two layers (``docs/serving.md``):

- the **transport** (:mod:`repro.serve.transport`,
  :mod:`repro.serve.ring`, :mod:`repro.serve.layout`,
  :mod:`repro.serve.workers`, :mod:`repro.serve.warm`): shared-memory
  job/result rings with persistent warm workers, selected through the
  engine's :class:`~repro.serve.transport.TransportConfig` seam;
- the **front-end** (:mod:`repro.serve.server`,
  :mod:`repro.serve.admission`, :mod:`repro.serve.quota`,
  :mod:`repro.serve.client`): the asyncio ``gendp-serve`` service with
  admission control, backpressure, priority classes and per-tenant
  quotas.
"""

from repro.serve.admission import (
    PRIORITY_CLASSES,
    AdmissionController,
    AdmissionDecision,
)
from repro.serve.client import ReconnectPolicy, ServeClient
from repro.serve.quota import TenantQuotas, TokenBucket
from repro.serve.server import SERVE_COUNTERS, GendpServer, ServeConfig
from repro.serve.transport import BACKENDS, ShmExecutor, TransportConfig

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "BACKENDS",
    "GendpServer",
    "PRIORITY_CLASSES",
    "ReconnectPolicy",
    "SERVE_COUNTERS",
    "ServeClient",
    "ServeConfig",
    "ShmExecutor",
    "TenantQuotas",
    "TokenBucket",
    "TransportConfig",
]
