"""Admission control for ``gendp-serve``.

Every request passes three gates, cheapest first, before it may touch
the engine:

1. **lifecycle** -- a draining server admits nothing new (in-flight
   work still completes: that is what graceful drain means);
2. **backpressure** -- a bounded pending-queue depth; past it the
   request is rejected immediately rather than queued into unbounded
   memory, mirroring the engine's own bounded submission queue;
3. **quota** -- the tenant's token bucket (:mod:`repro.serve.quota`).

Rejections carry a machine-readable reason (``draining`` /
``backpressure`` / ``quota-exceeded``) so clients can distinguish
"back off and retry" from "slow down, you specifically".

Priority classes map client-friendly names onto the engine's integer
job priorities; within a drain the batcher dispatches higher
priorities first, so ``high`` traffic overtakes ``low`` at every batch
boundary rather than preempting mid-batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.serve.quota import TenantQuotas

#: Client priority classes -> engine job priority.
PRIORITY_CLASSES = {
    "high": 10,
    "normal": 0,
    "low": -10,
}

#: Machine-readable rejection reasons.
REJECT_DRAINING = "draining"
REJECT_BACKPRESSURE = "backpressure"
REJECT_QUOTA = "quota-exceeded"


@dataclass(frozen=True)
class AdmissionDecision:
    """The outcome of one admission check."""

    admitted: bool
    reason: Optional[str] = None  # set on rejection


class AdmissionController:
    """The three serving gates, in rejection-cheapness order."""

    def __init__(self, quotas: TenantQuotas, max_pending: int):
        if max_pending <= 0:
            raise ValueError("max_pending must be positive")
        self.quotas = quotas
        self.max_pending = max_pending

    def check(
        self, tenant: str, pending: int, draining: bool
    ) -> AdmissionDecision:
        if draining:
            return AdmissionDecision(False, REJECT_DRAINING)
        if pending >= self.max_pending:
            return AdmissionDecision(False, REJECT_BACKPRESSURE)
        if not self.quotas.take(tenant):
            return AdmissionDecision(False, REJECT_QUOTA)
        return AdmissionDecision(True)


def priority_for(name: Optional[str]) -> int:
    """Engine priority for a class name (unknown names -> ``normal``)."""
    if name is None:
        return PRIORITY_CLASSES["normal"]
    return PRIORITY_CLASSES.get(str(name).lower(), PRIORITY_CLASSES["normal"])
