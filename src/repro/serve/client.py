"""Async ndjson client helpers for ``gendp-serve``.

Thin by design: the protocol is one JSON object per line in each
direction, so a client is a reader/writer pair plus a request counter.
These helpers exist so the tests, the CI smoke job, and interactive
use all speak the protocol the same way instead of each hand-rolling
``json.dumps(...) + "\\n"``.

Responses are returned as plain dicts -- admission rejections come
back as ``{"ok": False, "rejected": True, "error": "<reason>"}``
rather than raising, because a rejection is an expected protocol
outcome the caller usually branches on (back off, drop, retry).

Transient transport failures are a different matter: a server restart
mid-stream drops the connection and every in-flight waiter fails with
:class:`ConnectionError`.  Pass a :class:`ReconnectPolicy` to
``connect()`` and :meth:`ServeClient.request` will redial the same
endpoint with bounded, *seeded* exponential backoff and resend the
request on the fresh connection.  The retry is at-least-once -- only
requests whose response never arrived are resent -- which matches the
idempotent ops (``ping``/``stats``) and the serving tier's
exactly-one-envelope-per-job accounting for submits.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.faults.plan import unit_draw

#: Errors worth redialing through: the transport died underneath us.
_TRANSIENT_ERRORS = (ConnectionError, OSError, asyncio.IncompleteReadError)


@dataclass(frozen=True)
class ReconnectPolicy:
    """Bounded, seeded exponential backoff for client redials."""

    #: Redial attempts per failed request before the error propagates.
    max_attempts: int = 3
    #: First backoff delay; doubles each attempt.
    base_backoff_s: float = 0.05
    #: Backoff ceiling.
    max_backoff_s: float = 1.0
    #: Seeds the jitter -- two clients with the same seed back off
    #: identically (reproducible reconnect storms in tests).
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff delays must be non-negative")

    def backoff_s(self, attempt: int) -> float:
        """Delay before redial *attempt* (0-based), jittered by seed."""
        base = min(self.max_backoff_s, self.base_backoff_s * (2 ** attempt))
        jitter = 0.5 + 0.5 * unit_draw(self.seed, "reconnect", attempt)
        return base * jitter


class ServeClient:
    """One connection to a ``gendp-serve`` endpoint.

    Requests are sent with monotonically increasing ``id`` fields and
    responses are matched back by id, so a single connection may have
    many requests in flight (the server handles lines concurrently).
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        endpoint: Optional[Tuple[str, int, Optional[str]]] = None,
        reconnect: Optional[ReconnectPolicy] = None,
    ):
        self._reader = reader
        self._writer = writer
        self._endpoint = endpoint
        self._reconnect_policy = reconnect
        self._next_id = 0
        self._waiters: Dict[int, asyncio.Future] = {}
        self._reader_task: Optional[asyncio.Task] = None
        #: Successful redials performed so far (observable in tests).
        self.reconnects = 0

    # ------------------------------------------------------------------
    # connection management

    @staticmethod
    async def _open(
        host: str, port: int, unix_socket: Optional[str]
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        if unix_socket:
            return await asyncio.open_unix_connection(unix_socket)
        return await asyncio.open_connection(host, port)

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_socket: Optional[str] = None,
        reconnect: Optional[ReconnectPolicy] = None,
    ) -> "ServeClient":
        reader, writer = await cls._open(host, port, unix_socket)
        client = cls(
            reader,
            writer,
            endpoint=(host, port, unix_socket),
            reconnect=reconnect,
        )
        client._reader_task = asyncio.create_task(client._read_loop())
        return client

    async def _redial(self) -> None:
        """Replace the dead connection with a fresh one (same endpoint)."""
        if self._endpoint is None:
            raise ConnectionError("client has no endpoint to redial")
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, *_TRANSIENT_ERRORS):
                pass  # the loop died with the transport; expected here
            self._reader_task = None
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except Exception:
            pass  # the old transport is already broken
        host, port, unix_socket = self._endpoint
        self._reader, self._writer = await self._open(host, port, unix_socket)
        self._reader_task = asyncio.create_task(self._read_loop())
        self.reconnects += 1

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, *_TRANSIENT_ERRORS):
                pass  # a dead transport is not an error when closing
            self._reader_task = None
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except Exception:
            pass
        for waiter in self._waiters.values():
            if not waiter.done():
                waiter.set_exception(ConnectionError("client closed"))
        self._waiters.clear()

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # protocol

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    response = json.loads(line.decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    continue
                waiter = self._waiters.pop(response.get("id"), None)
                if waiter is not None and not waiter.done():
                    waiter.set_result(response)
        except (ConnectionResetError, asyncio.CancelledError):
            raise
        finally:
            for waiter in list(self._waiters.values()):
                if not waiter.done():
                    waiter.set_exception(ConnectionError("server closed"))
            self._waiters.clear()

    async def request(self, body: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request object; await its matched response.

        With a :class:`ReconnectPolicy` attached, a transient transport
        failure (reset, refused redial window, server restart) redials
        the endpoint with seeded backoff and resends this request on
        the new connection; the error propagates once the attempt
        budget is spent.
        """
        policy = self._reconnect_policy
        attempts = policy.max_attempts if policy is not None else 0
        for attempt in range(attempts + 1):
            try:
                return await self._request_once(body)
            except _TRANSIENT_ERRORS:
                if attempt >= attempts:
                    raise
                await asyncio.sleep(policy.backoff_s(attempt))
                try:
                    await self._redial()
                except _TRANSIENT_ERRORS:
                    continue  # endpoint still down; next attempt redials
        raise ConnectionError("unreachable")  # pragma: no cover

    async def _request_once(self, body: Dict[str, Any]) -> Dict[str, Any]:
        # A finished read loop means the transport is already dead: a
        # waiter registered now would never be resolved (the loop's
        # cleanup ran before we got here), so fail fast instead.
        if self._reader_task is None or self._reader_task.done():
            raise ConnectionError("connection lost")
        self._next_id += 1
        request_id = self._next_id
        body = dict(body, id=request_id)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiters[request_id] = future
        try:
            self._writer.write((json.dumps(body) + "\n").encode("utf-8"))
            await self._writer.drain()
        except Exception:
            # the caller gets the write error; the waiter must not linger
            # for close() to fail later with nobody left to retrieve it
            self._waiters.pop(request_id, None)
            if future.done():
                future.exception()  # retrieved: no destructor warning
            raise
        return await future

    # ------------------------------------------------------------------
    # convenience ops

    async def ping(self) -> Dict[str, Any]:
        return await self.request({"op": "ping"})

    async def stats(self) -> Dict[str, Any]:
        return await self.request({"op": "stats"})

    async def submit(
        self,
        kernel: str,
        payload: Dict[str, Any],
        tenant: Optional[str] = None,
        priority: Optional[str] = None,
        dedupe_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Submit one job.

        *dedupe_id* is the exactly-once handle for journaled servers
        (``ServeConfig.journal_dir``): a resend after a reconnect --
        including against a restarted server -- with the same id is
        answered from the journal instead of re-executing.
        """
        body: Dict[str, Any] = {
            "op": "submit",
            "kernel": kernel,
            "payload": payload,
        }
        if tenant is not None:
            body["tenant"] = tenant
        if priority is not None:
            body["priority"] = priority
        if dedupe_id is not None:
            body["dedupe_id"] = str(dedupe_id)
        return await self.request(body)

    async def submit_batch(
        self,
        jobs: Sequence[Dict[str, Any]],
        tenant: Optional[str] = None,
    ) -> Dict[str, Any]:
        body: Dict[str, Any] = {"op": "batch", "jobs": list(jobs)}
        if tenant is not None:
            body["tenant"] = tenant
        return await self.request(body)


async def submit_all(
    client: ServeClient, requests: Sequence[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Fire many submit bodies concurrently; responses in request order."""
    return list(
        await asyncio.gather(
            *(client.request(dict(body, op="submit")) for body in requests)
        )
    )
