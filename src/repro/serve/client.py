"""Async ndjson client helpers for ``gendp-serve``.

Thin by design: the protocol is one JSON object per line in each
direction, so a client is a reader/writer pair plus a request counter.
These helpers exist so the tests, the CI smoke job, and interactive
use all speak the protocol the same way instead of each hand-rolling
``json.dumps(...) + "\\n"``.

Responses are returned as plain dicts -- admission rejections come
back as ``{"ok": False, "rejected": True, "error": "<reason>"}``
rather than raising, because a rejection is an expected protocol
outcome the caller usually branches on (back off, drop, retry).
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, List, Optional, Sequence


class ServeClient:
    """One connection to a ``gendp-serve`` endpoint.

    Requests are sent with monotonically increasing ``id`` fields and
    responses are matched back by id, so a single connection may have
    many requests in flight (the server handles lines concurrently).
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._next_id = 0
        self._waiters: Dict[int, asyncio.Future] = {}
        self._reader_task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    # connection management

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_socket: Optional[str] = None,
    ) -> "ServeClient":
        if unix_socket:
            reader, writer = await asyncio.open_unix_connection(unix_socket)
        else:
            reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer)
        client._reader_task = asyncio.create_task(client._read_loop())
        return client

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
            self._reader_task = None
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except Exception:
            pass
        for waiter in self._waiters.values():
            if not waiter.done():
                waiter.set_exception(ConnectionError("client closed"))
        self._waiters.clear()

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # protocol

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    response = json.loads(line.decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    continue
                waiter = self._waiters.pop(response.get("id"), None)
                if waiter is not None and not waiter.done():
                    waiter.set_result(response)
        except (ConnectionResetError, asyncio.CancelledError):
            raise
        finally:
            for waiter in list(self._waiters.values()):
                if not waiter.done():
                    waiter.set_exception(ConnectionError("server closed"))
            self._waiters.clear()

    async def request(self, body: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request object; await its matched response."""
        self._next_id += 1
        request_id = self._next_id
        body = dict(body, id=request_id)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiters[request_id] = future
        try:
            self._writer.write((json.dumps(body) + "\n").encode("utf-8"))
            await self._writer.drain()
        except Exception:
            # the caller gets the write error; the waiter must not linger
            # for close() to fail later with nobody left to retrieve it
            self._waiters.pop(request_id, None)
            raise
        return await future

    # ------------------------------------------------------------------
    # convenience ops

    async def ping(self) -> Dict[str, Any]:
        return await self.request({"op": "ping"})

    async def stats(self) -> Dict[str, Any]:
        return await self.request({"op": "stats"})

    async def submit(
        self,
        kernel: str,
        payload: Dict[str, Any],
        tenant: Optional[str] = None,
        priority: Optional[str] = None,
    ) -> Dict[str, Any]:
        body: Dict[str, Any] = {
            "op": "submit",
            "kernel": kernel,
            "payload": payload,
        }
        if tenant is not None:
            body["tenant"] = tenant
        if priority is not None:
            body["priority"] = priority
        return await self.request(body)

    async def submit_batch(
        self,
        jobs: Sequence[Dict[str, Any]],
        tenant: Optional[str] = None,
    ) -> Dict[str, Any]:
        body: Dict[str, Any] = {"op": "batch", "jobs": list(jobs)}
        if tenant is not None:
            body["tenant"] = tenant
        return await self.request(body)


async def submit_all(
    client: ServeClient, requests: Sequence[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Fire many submit bodies concurrently; responses in request order."""
    return list(
        await asyncio.gather(
            *(client.request(dict(body, op="submit")) for body in requests)
        )
    )
