"""Fixed-slot SoA layouts for the shared-memory transport.

Job and result rings are two shared-memory segments each: an ``int64``
header plane (one row of :data:`JOB_FIELDS` / :data:`RESULT_FIELDS`
words per slot) and a ``uint8`` data plane (one fixed-capacity byte
region per slot).  The codecs here translate between the engine's
plain payload/result dicts and those planes **without pickling** for
the structured fast path:

- sequence kernels (``bsw``/``pairhmm``/``lcs``) store their two
  strings as raw ASCII bytes side by side (structure-of-arrays: all
  lengths live in the header plane, all bytes in the data plane);
- ``dtw`` stores its two signals as little-endian ``int64`` arrays;
- ``chain`` stores its anchors as one ``(n, 3) int64`` array plus the
  lookback window in the header's AUX word;
- results store their score words (``int64``) and likelihoods
  (``float64``) at fixed offsets, with chain's score/parent arrays as
  two ``int64`` runs.

Payloads or results the fast path cannot express exactly -- extra
keys, non-ASCII sequences, sentinel/trace side-channels riding on the
result -- fall back to a pickled blob in the same slot
(:data:`FMT_PICKLE`), so the transport is *complete* even though the
hot kernels never pay for pickle.  Fault-injection markers
(:mod:`repro.faults`) are header bits, not payload keys, so chaos
campaigns ride the fast path too.

Everything here is pure functions over ``memoryview``/numpy slices;
the ring state machine lives in :mod:`repro.serve.ring`.
"""

from __future__ import annotations

import json
import pickle
from typing import Any, Dict, Optional, Tuple

import numpy as np

#: Engine kernels the SoA fast path encodes (id 0 is reserved).
KERNEL_IDS: Dict[str, int] = {
    "bsw": 1,
    "pairhmm": 2,
    "lcs": 3,
    "dtw": 4,
    "chain": 5,
}
KERNEL_NAMES: Dict[int, str] = {index: name for name, index in KERNEL_IDS.items()}

#: Slot states (header STATE word).  The lifecycle is
#: claim -> fill -> publish (READY) -> claim (RUNNING) -> publish
#: (DONE) -> reclaim (FREE, generation bumped).
FREE = 0
READY = 1
RUNNING = 2
DONE = 3

#: Body formats.
FMT_SOA = 0
FMT_PICKLE = 1

#: Job-header flag bits (fault markers + side channels).
FLAG_FAIL = 1  # _inject_fail: raise inside the runner
FLAG_EXIT = 2  # _inject_exit: kill the worker process
FLAG_CORRUPT = 4  # _inject_corrupt: bit-flip the result
FLAG_SENTINELS = 8  # _sentinels: arm numerical sentinels
FLAG_TRACE = 16  # _trace: correlation ids ride behind the payload

#: Job slot header words.
(
    J_STATE,
    J_GEN,
    J_JOB_ID,
    J_KERNEL,
    J_PROGRAM,
    J_FORMAT,
    J_LEN_A,
    J_LEN_B,
    J_AUX,
    J_FLAGS,
    J_DELAY_US,
    J_WORKER,
    J_TRACE_LEN,
) = range(13)
JOB_FIELDS = 13

#: Result slot header words.
(
    R_STATE,
    R_GEN,
    R_JOB_ID,
    R_OK,
    R_KERNEL,
    R_FORMAT,
    R_LEN_A,
    R_LEN_B,
    R_WORKER,
) = range(9)
RESULT_FIELDS = 9

_INT64 = np.dtype("<i8")
_FLOAT64 = np.dtype("<f8")

#: Payload keys the SoA path understands, per kernel (beyond these ->
#: pickle fallback).  Fault markers and ``_trace``/``_sentinels`` are
#: handled separately and never force the fallback.
_SIDE_KEYS = frozenset(
    {
        "_inject_fail",
        "_inject_exit",
        "_inject_corrupt",
        "_inject_delay_s",
        "_sentinels",
        "_trace",
    }
)
_SOA_KEYS: Dict[str, Tuple[str, ...]] = {
    "bsw": ("query", "target"),
    "pairhmm": ("read", "haplotype"),
    "lcs": ("x", "y"),
    "dtw": ("a", "b"),
    "chain": ("anchors", "n"),
}


class SlotOverflowError(ValueError):
    """The encoded payload/result does not fit one slot's byte region."""


def _ascii_bytes(value: Any) -> Optional[bytes]:
    if not isinstance(value, str):
        return None
    try:
        raw = value.encode("ascii")
    except UnicodeEncodeError:
        return None
    return raw


def _int_array(values: Any, shape_cols: int = 0) -> Optional[np.ndarray]:
    """``values`` as a little-endian int64 array, or None if unexpressible."""
    if not isinstance(values, (list, tuple)):
        return None
    try:
        # Two-step with an equality check: a direct int64 cast would
        # silently truncate floats, making the transport lossy.
        exact = np.asarray(values)
        array = exact.astype(_INT64)
        if not np.array_equal(array, exact):
            return None
    except (TypeError, ValueError, OverflowError):
        return None
    if shape_cols:
        if array.ndim != 2 or array.shape[1] != shape_cols:
            return None
    elif array.ndim != 1:
        return None
    return array


def _flags_for(payload: Dict[str, Any]) -> Tuple[int, int]:
    """(flag bits, delay in microseconds) from the fault markers."""
    flags = 0
    if payload.get("_inject_fail"):
        flags |= FLAG_FAIL
    if payload.get("_inject_exit"):
        flags |= FLAG_EXIT
    if payload.get("_inject_corrupt"):
        flags |= FLAG_CORRUPT
    if payload.get("_sentinels"):
        flags |= FLAG_SENTINELS
    delay_us = int(round(float(payload.get("_inject_delay_s") or 0.0) * 1e6))
    return flags, delay_us


def _write(region: np.ndarray, offset: int, raw: bytes) -> int:
    end = offset + len(raw)
    if end > region.shape[0]:
        raise SlotOverflowError(
            f"encoded body needs {end} bytes; slot holds {region.shape[0]}"
        )
    region[offset:end] = np.frombuffer(raw, dtype=np.uint8)
    return end


def encode_payload(
    kernel: str, payload: Dict[str, Any], region: np.ndarray
) -> Dict[int, int]:
    """Encode *payload* into *region*; returns header words to store.

    The returned dict maps job-header field index -> value (state,
    generation, ids and program words are the ring's business, not the
    codec's).  Raises :class:`SlotOverflowError` when the body does not
    fit, which callers treat as "this job cannot ride the ring".
    """
    flags, delay_us = _flags_for(payload)
    header: Dict[int, int] = {
        J_KERNEL: KERNEL_IDS.get(kernel, 0),
        J_FLAGS: flags,
        J_DELAY_US: delay_us,
        J_AUX: 0,
        J_TRACE_LEN: 0,
    }
    trace_raw = b""
    trace = payload.get("_trace")
    if trace is not None:
        try:
            trace_raw = json.dumps(trace, sort_keys=True).encode("utf-8")
            header[J_TRACE_LEN] = len(trace_raw)
            flags |= FLAG_TRACE
            header[J_FLAGS] = flags
        except (TypeError, ValueError):
            trace_raw = b""  # unserializable trace -> pickle fallback below

    body = dict(payload)
    for key in _SIDE_KEYS:
        body.pop(key, None)
    soa = _encode_soa_body(kernel, body, header)
    if soa is None or (trace is not None and not trace_raw):
        raw = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        header = {
            J_KERNEL: KERNEL_IDS.get(kernel, 0),
            J_FORMAT: FMT_PICKLE,
            J_LEN_A: len(raw),
            J_LEN_B: 0,
            J_AUX: 0,
            J_FLAGS: 0,
            J_DELAY_US: 0,
            J_TRACE_LEN: 0,
        }
        _write(region, 0, raw)
        return header
    header[J_FORMAT] = FMT_SOA
    offset = 0
    for raw in soa:
        offset = _write(region, offset, raw)
    _write(region, offset, trace_raw)
    return header


def _encode_soa_body(
    kernel: str, body: Dict[str, Any], header: Dict[int, int]
) -> Optional[Tuple[bytes, ...]]:
    """SoA byte runs for the kernel-specific keys, or None to fall back."""
    allowed = _SOA_KEYS.get(kernel)
    if allowed is None or not set(body) <= set(allowed):
        return None
    if kernel in ("bsw", "pairhmm", "lcs"):
        key_a, key_b = allowed
        raw_a = _ascii_bytes(body.get(key_a))
        raw_b = _ascii_bytes(body.get(key_b))
        if raw_a is None or raw_b is None:
            return None
        header[J_LEN_A] = len(raw_a)
        header[J_LEN_B] = len(raw_b)
        return raw_a, raw_b
    if kernel == "dtw":
        array_a = _int_array(body.get("a"))
        array_b = _int_array(body.get("b"))
        if array_a is None or array_b is None:
            return None
        header[J_LEN_A] = array_a.shape[0]
        header[J_LEN_B] = array_b.shape[0]
        return array_a.tobytes(), array_b.tobytes()
    if kernel == "chain":
        anchors = _int_array(body.get("anchors"), shape_cols=3)
        if anchors is None:
            return None
        window = body.get("n")
        if window is not None and not isinstance(window, int):
            return None
        header[J_LEN_A] = anchors.shape[0]
        header[J_LEN_B] = 0
        header[J_AUX] = -1 if window is None else window
        return (anchors.tobytes(),)
    return None


def decode_payload(header: np.ndarray, region: np.ndarray) -> Dict[str, Any]:
    """Rebuild the payload dict a job slot carries."""
    fmt = int(header[J_FORMAT])
    if fmt == FMT_PICKLE:
        return pickle.loads(region[: int(header[J_LEN_A])].tobytes())
    kernel = KERNEL_NAMES.get(int(header[J_KERNEL]))
    if kernel is None:
        raise ValueError(f"job slot carries unknown kernel id {header[J_KERNEL]}")
    len_a, len_b = int(header[J_LEN_A]), int(header[J_LEN_B])
    payload: Dict[str, Any]
    if kernel in ("bsw", "pairhmm", "lcs"):
        key_a, key_b = _SOA_KEYS[kernel]
        split = len_a + len_b
        payload = {
            key_a: region[:len_a].tobytes().decode("ascii"),
            key_b: region[len_a:split].tobytes().decode("ascii"),
        }
        body_end = split
    elif kernel == "dtw":
        bytes_a, bytes_b = len_a * 8, len_b * 8
        payload = {
            "a": np.frombuffer(region[:bytes_a].tobytes(), dtype=_INT64).tolist(),
            "b": np.frombuffer(
                region[bytes_a : bytes_a + bytes_b].tobytes(), dtype=_INT64
            ).tolist(),
        }
        body_end = bytes_a + bytes_b
    else:  # chain
        nbytes = len_a * 3 * 8
        anchors = np.frombuffer(region[:nbytes].tobytes(), dtype=_INT64)
        payload = {"anchors": anchors.reshape(len_a, 3).tolist()}
        window = int(header[J_AUX])
        if window >= 0:
            payload["n"] = window
        body_end = nbytes

    flags = int(header[J_FLAGS])
    if flags & FLAG_FAIL:
        payload["_inject_fail"] = True
    if flags & FLAG_EXIT:
        payload["_inject_exit"] = True
    if flags & FLAG_CORRUPT:
        payload["_inject_corrupt"] = True
    if flags & FLAG_SENTINELS:
        payload["_sentinels"] = True
    delay_us = int(header[J_DELAY_US])
    if delay_us:
        payload["_inject_delay_s"] = delay_us / 1e6
    trace_len = int(header[J_TRACE_LEN])
    if flags & FLAG_TRACE and trace_len:
        payload["_trace"] = json.loads(
            region[body_end : body_end + trace_len].tobytes().decode("utf-8")
        )
    return payload


# ----------------------------------------------------------------------
# results

_SCALAR_RESULT_KEYS: Dict[str, Tuple[str, ...]] = {
    "bsw": ("score", "cells"),
    "pairhmm": ("log10_likelihood", "cells"),
    "lcs": ("length", "cells"),
    "dtw": ("distance", "cells"),
}
_CHAIN_RESULT_KEYS = ("scores", "parents", "best_index", "best_score", "cells")


def encode_result(
    kernel: str,
    ok: bool,
    value: Optional[Dict[str, Any]],
    error: Optional[str],
    region: np.ndarray,
) -> Dict[int, int]:
    """Encode one job outcome into a result slot's byte region."""
    header: Dict[int, int] = {
        R_OK: 1 if ok else 0,
        R_KERNEL: KERNEL_IDS.get(kernel, 0),
        R_LEN_B: 0,
    }
    if not ok:
        raw = (error or "unknown").encode("utf-8")
        header[R_FORMAT] = FMT_SOA
        header[R_LEN_A] = len(raw)
        _write(region, 0, raw)
        return header
    soa = _encode_soa_result(kernel, value, header)
    if soa is None:
        raw = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        header[R_FORMAT] = FMT_PICKLE
        header[R_LEN_A] = len(raw)
        _write(region, 0, raw)
        return header
    header[R_FORMAT] = FMT_SOA
    offset = 0
    for raw in soa:
        offset = _write(region, offset, raw)
    return header


def _encode_soa_result(
    kernel: str, value: Optional[Dict[str, Any]], header: Dict[int, int]
) -> Optional[Tuple[bytes, ...]]:
    if not isinstance(value, dict):
        return None
    keys = _SCALAR_RESULT_KEYS.get(kernel)
    if keys is not None:
        if set(value) != set(keys):
            return None
        first = value[keys[0]]
        cells = value["cells"]
        if not isinstance(cells, int) or isinstance(cells, bool):
            return None
        if kernel == "pairhmm":
            if not isinstance(first, float):
                return None
            packed = np.array([first], dtype=_FLOAT64).tobytes()
        else:
            if not isinstance(first, int) or isinstance(first, bool):
                return None
            try:
                packed = np.array([first], dtype=_INT64).tobytes()
            except OverflowError:
                return None
        header[R_LEN_A] = 1
        return packed, np.array([cells], dtype=_INT64).tobytes()
    if kernel == "chain":
        if set(value) != set(_CHAIN_RESULT_KEYS):
            return None
        scores = _int_array(value["scores"])
        parents = _int_array(value["parents"])
        if scores is None or parents is None or len(scores) != len(parents):
            return None
        tail = (value["best_index"], value["best_score"], value["cells"])
        if any(not isinstance(word, int) or isinstance(word, bool) for word in tail):
            return None
        header[R_LEN_A] = scores.shape[0]
        return (
            scores.tobytes(),
            parents.tobytes(),
            np.array(tail, dtype=_INT64).tobytes(),
        )
    return None


def decode_result(
    header: np.ndarray, region: np.ndarray
) -> Tuple[bool, Optional[Dict[str, Any]], Optional[str]]:
    """Rebuild ``(ok, value, error)`` from a result slot."""
    ok = bool(header[R_OK])
    fmt = int(header[R_FORMAT])
    len_a = int(header[R_LEN_A])
    if not ok:
        return False, None, region[:len_a].tobytes().decode("utf-8")
    if fmt == FMT_PICKLE:
        return True, pickle.loads(region[:len_a].tobytes()), None
    kernel = KERNEL_NAMES.get(int(header[R_KERNEL]))
    keys = _SCALAR_RESULT_KEYS.get(kernel or "")
    if keys is not None:
        if kernel == "pairhmm":
            first: Any = float(
                np.frombuffer(region[:8].tobytes(), dtype=_FLOAT64)[0]
            )
        else:
            first = int(np.frombuffer(region[:8].tobytes(), dtype=_INT64)[0])
        cells = int(np.frombuffer(region[8:16].tobytes(), dtype=_INT64)[0])
        return True, {keys[0]: first, "cells": cells}, None
    if kernel == "chain":
        nbytes = len_a * 8
        scores = np.frombuffer(region[:nbytes].tobytes(), dtype=_INT64).tolist()
        parents = np.frombuffer(
            region[nbytes : 2 * nbytes].tobytes(), dtype=_INT64
        ).tolist()
        tail = np.frombuffer(
            region[2 * nbytes : 2 * nbytes + 24].tobytes(), dtype=_INT64
        )
        return (
            True,
            {
                "scores": scores,
                "parents": parents,
                "best_index": int(tail[0]),
                "best_score": int(tail[1]),
                "cells": int(tail[2]),
            },
            None,
        )
    raise ValueError(f"result slot carries unknown kernel id {header[R_KERNEL]}")
