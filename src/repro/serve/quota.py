"""Per-tenant token-bucket rate limiting for the serving tier.

Classic token bucket: a tenant's bucket refills continuously at
``rate`` tokens/second up to ``burst`` capacity, and each admitted
request takes one token.  Admission is strictly non-blocking -- a
request that finds the bucket empty is *rejected* (the client sees a
``quota-exceeded`` response and decides whether to back off or retry),
never queued, because queueing unpaid work is exactly the overload the
serving tier exists to prevent.

The clock is injectable so the tests drive time deterministically; the
default is ``time.monotonic``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Tuple


@dataclass
class TokenBucket:
    """One tenant's refillable admission budget."""

    rate: float
    burst: float
    clock: Callable[[], float] = time.monotonic

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("token rate must be positive")
        if self.burst <= 0:
            raise ValueError("burst capacity must be positive")
        self._tokens = float(self.burst)
        self._updated = self.clock()

    def _refill(self) -> None:
        now = self.clock()
        elapsed = max(0.0, now - self._updated)
        self._updated = now
        self._tokens = min(float(self.burst), self._tokens + elapsed * self.rate)

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens

    def take(self, count: float = 1.0) -> bool:
        """Spend *count* tokens; False (and no spend) when short."""
        self._refill()
        if self._tokens < count:
            return False
        self._tokens -= count
        return True


class TenantQuotas:
    """Token buckets per tenant, with defaults and per-tenant overrides.

    Buckets materialize lazily on a tenant's first request, from
    ``overrides[tenant]`` when present, else the defaults -- unseen
    tenants therefore cost nothing.
    """

    def __init__(
        self,
        default_rate: float = 100.0,
        default_burst: float = 50.0,
        overrides: Optional[Mapping[str, Tuple[float, float]]] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.default_rate = default_rate
        self.default_burst = default_burst
        self.overrides = dict(overrides or {})
        self.clock = clock
        self._buckets: Dict[str, TokenBucket] = {}

    def bucket_for(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            rate, burst = self.overrides.get(
                tenant, (self.default_rate, self.default_burst)
            )
            bucket = TokenBucket(rate=rate, burst=burst, clock=self.clock)
            self._buckets[tenant] = bucket
        return bucket

    def take(self, tenant: str, count: float = 1.0) -> bool:
        return self.bucket_for(tenant).take(count)
