"""Shared-memory slot rings and the broadcast program table.

One :class:`ServeSegments` owns four ``multiprocessing.shared_memory``
segments -- job headers, job bytes, result headers, result bytes --
plus a program table (row header + pickle blob region).  Parent and
workers map the same segments as numpy arrays, so publishing a job is
a handful of int64 stores and one byte-region copy; nothing is pickled
per batch on the fast path.

Slot lifecycle (header ``STATE`` word, see :mod:`repro.serve.layout`):

- the parent **claims** a FREE job slot (it is the only producer, so
  claiming is lock-free), **fills** the payload bytes, then
  **publishes** by storing READY and releasing the job semaphore;
- a worker wakes on the semaphore, takes the claim lock, picks any
  READY slot, stamps its worker id and RUNNING -- the lock covers only
  this transition;
- the worker writes its result into a result slot it claims the same
  way (result lock), marks the job slot DONE, stores READY on the
  result slot and releases the result semaphore;
- the parent drains READY result slots, matches them to pending jobs
  by ``(job_id, generation)``, and **reclaims** both slots: state back
  to FREE with the generation word bumped, so a stale write from a
  worker that was timed out mid-job can never be mistaken for a live
  result.

The generation word is the wraparound guard: slots are reused in
arbitrary order under load, and every reuse changes the generation the
parent expects, which is what the ring edge-case tests pin down.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.serve.layout import (
    FREE,
    JOB_FIELDS,
    READY,
    RESULT_FIELDS,
)

#: Program-table row words.
P_ID, P_OFFSET, P_LENGTH = range(3)
PROGRAM_FIELDS = 3


class RingCapacityError(RuntimeError):
    """The program table (or a ring) cannot hold what was offered."""


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without resource-tracker ownership.

    A child that attaches by name must not let the resource tracker
    adopt the segment -- the parent owns the lifetime, and forked
    children share the parent's tracker process, so a child-side
    register/unregister pair would clobber the parent's registration
    (bpo-39959).  Python 3.13 has ``track=False`` for exactly this; on
    older versions registration is suppressed around the attach.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


@dataclass(frozen=True)
class RingGeometry:
    """Shape of one transport instance's shared segments."""

    slots: int = 64
    slot_bytes: int = 1 << 16
    result_slot_bytes: int = 1 << 16
    max_programs: int = 64
    program_bytes: int = 1 << 22

    def __post_init__(self) -> None:
        if self.slots <= 0:
            raise ValueError("ring needs at least one slot")
        if min(self.slot_bytes, self.result_slot_bytes) < 64:
            raise ValueError("slot byte regions must hold at least 64 bytes")
        if self.max_programs <= 0 or self.program_bytes <= 0:
            raise ValueError("program table must have positive capacity")


class SlotRing:
    """numpy views over one header plane + one data plane."""

    def __init__(
        self,
        header_shm: shared_memory.SharedMemory,
        data_shm: shared_memory.SharedMemory,
        slots: int,
        fields: int,
        slot_bytes: int,
    ):
        self._header_shm = header_shm
        self._data_shm = data_shm
        self.slots = slots
        self.header = np.ndarray(
            (slots, fields), dtype=np.int64, buffer=header_shm.buf
        )
        self.data = np.ndarray(
            (slots, slot_bytes), dtype=np.uint8, buffer=data_shm.buf
        )

    def find_state(self, state: int) -> List[int]:
        """Slot indices currently in *state* (a snapshot)."""
        return np.flatnonzero(self.header[:, 0] == state).tolist()

    def first_free(self) -> Optional[int]:
        free = np.flatnonzero(self.header[:, 0] == FREE)
        return int(free[0]) if free.size else None

    def publish(self, index: int, header_words: Dict[int, int]) -> None:
        """Store header words then flip the slot READY (state last)."""
        for field, value in header_words.items():
            self.header[index, field] = value
        self.header[index, 0] = READY


class ProgramTable:
    """Append-only broadcast area for pickled compiled programs.

    The parent is the only writer: blob first, row second, count last,
    so a reader that observes ``count > id`` is guaranteed to see that
    program's complete row and bytes.  Workers unpickle each program
    once and memoize (plus the specialized cell function built from
    it) -- that is the warm-worker program cache.
    """

    def __init__(
        self,
        header_shm: shared_memory.SharedMemory,
        blob_shm: shared_memory.SharedMemory,
        max_programs: int,
    ):
        self._header_shm = header_shm
        self._blob_shm = blob_shm
        self.max_programs = max_programs
        # Row 0 of the header plane is [count, blob_used, 0]; program
        # rows start at 1 so program id N lives in row N + 1.
        self._table = np.ndarray(
            (max_programs + 1, PROGRAM_FIELDS),
            dtype=np.int64,
            buffer=header_shm.buf,
        )
        self._blob = np.ndarray(
            (blob_shm.size,), dtype=np.uint8, buffer=blob_shm.buf
        )

    @property
    def count(self) -> int:
        return int(self._table[0, 0])

    @property
    def blob_used(self) -> int:
        return int(self._table[0, 1])

    def append(self, program: object) -> Tuple[int, int]:
        """Publish one program; returns ``(program_id, blob_bytes)``."""
        raw = pickle.dumps(program, protocol=pickle.HIGHEST_PROTOCOL)
        count, offset = self.count, self.blob_used
        if count >= self.max_programs:
            raise RingCapacityError(
                f"program table full ({self.max_programs} programs)"
            )
        if offset + len(raw) > self._blob.shape[0]:
            raise RingCapacityError(
                f"program blob region full ({self._blob.shape[0]} bytes)"
            )
        self._blob[offset : offset + len(raw)] = np.frombuffer(raw, dtype=np.uint8)
        self._table[count + 1] = (count, offset, len(raw))
        self._table[0, 1] = offset + len(raw)
        self._table[0, 0] = count + 1  # readers key off this store
        return count, len(raw)

    def load(self, program_id: int) -> Optional[object]:
        """Unpickle program *program_id*, or None if not yet visible."""
        if program_id < 0 or program_id >= self.count:
            return None
        _, offset, length = (int(word) for word in self._table[program_id + 1])
        return pickle.loads(self._blob[offset : offset + length].tobytes())


@dataclass(frozen=True)
class SegmentNames:
    """The shared-memory names a worker needs to attach everything."""

    job_header: str
    job_data: str
    result_header: str
    result_data: str
    program_header: str
    program_blob: str


class ServeSegments:
    """Owner (parent) or borrower (worker) of all transport segments."""

    def __init__(
        self,
        geometry: RingGeometry,
        segments: Dict[str, shared_memory.SharedMemory],
        owner: bool,
    ):
        self.geometry = geometry
        self._segments = segments
        self._owner = owner
        self.jobs = SlotRing(
            segments["job_header"],
            segments["job_data"],
            geometry.slots,
            JOB_FIELDS,
            geometry.slot_bytes,
        )
        self.results = SlotRing(
            segments["result_header"],
            segments["result_data"],
            geometry.slots,
            RESULT_FIELDS,
            geometry.result_slot_bytes,
        )
        self.programs = ProgramTable(
            segments["program_header"],
            segments["program_blob"],
            geometry.max_programs,
        )

    @classmethod
    def create(cls, geometry: RingGeometry) -> "ServeSegments":
        sizes = {
            "job_header": geometry.slots * JOB_FIELDS * 8,
            "job_data": geometry.slots * geometry.slot_bytes,
            "result_header": geometry.slots * RESULT_FIELDS * 8,
            "result_data": geometry.slots * geometry.result_slot_bytes,
            "program_header": (geometry.max_programs + 1) * PROGRAM_FIELDS * 8,
            "program_blob": geometry.program_bytes,
        }
        segments: Dict[str, shared_memory.SharedMemory] = {}
        try:
            for key, size in sizes.items():
                segments[key] = shared_memory.SharedMemory(create=True, size=size)
                segments[key].buf[:] = b"\x00" * size
        except Exception:
            for segment in segments.values():
                try:
                    segment.close()
                    segment.unlink()
                except Exception:
                    pass
            raise
        return cls(geometry, segments, owner=True)

    @classmethod
    def attach(
        cls, geometry: RingGeometry, names: SegmentNames
    ) -> "ServeSegments":
        segments = {
            key: _attach(getattr(names, key))
            for key in (
                "job_header",
                "job_data",
                "result_header",
                "result_data",
                "program_header",
                "program_blob",
            )
        }
        return cls(geometry, segments, owner=False)

    @property
    def names(self) -> SegmentNames:
        return SegmentNames(
            **{key: segment.name for key, segment in self._segments.items()}
        )

    def close(self) -> None:
        """Drop the numpy views, unmap, and (as owner) unlink."""
        # The ndarray views hold exported pointers into the mapped
        # buffers; they must be released before SharedMemory.close().
        self.jobs.header = self.jobs.data = None  # type: ignore[assignment]
        self.results.header = self.results.data = None  # type: ignore[assignment]
        self.programs._table = self.programs._blob = None  # type: ignore[assignment]
        for segment in self._segments.values():
            try:
                segment.close()
            except Exception:
                pass
            if self._owner:
                try:
                    segment.unlink()
                except Exception:
                    pass
        self._segments = {}
