"""``gendp-serve``: the asyncio newline-delimited-JSON serving tier.

Stdlib only, mirroring the :class:`repro.obs.server.MetricsServer`
idiom: a thin network front door over the engine, with the policy --
admission control, queue-depth backpressure, priority classes,
per-tenant token buckets, graceful drain -- in plain objects that the
tests drive directly.

Protocol: one JSON object per line, both directions, over TCP or a
Unix socket.  Requests:

- ``{"op": "ping"}`` -- liveness, answers ``{"ok": true, "op": "pong"}``;
- ``{"op": "submit", "kernel": ..., "payload": {...}, "tenant": ...,
  "priority": "high|normal|low", "id": ...}`` -- one job; the response
  carries the job's result (or the admission rejection) and echoes
  ``id``;
- ``{"op": "batch", "tenant": ..., "jobs": [{kernel, payload,
  priority}, ...]}`` -- many jobs in one round trip; per-job admission,
  one ``results`` array back;
- ``{"op": "stats"}`` -- serving counters + queue depth.

Dispatch: admitted jobs land on an asyncio queue; a single dispatcher
task batches them up (``flush_interval_s`` / ``max_batch``), submits
to the engine and runs the **synchronous** drain in the default
executor so the event loop keeps accepting while DP tables sweep.  The
engine under the server is typically configured with the
shared-memory transport (:mod:`repro.serve.transport`), making the
whole path: socket -> admission -> ring -> warm worker -> ring ->
socket, with the only pickling on rejected fast-path payloads.

Observability: ``serve:accept`` / ``serve:admit`` / ``serve:dispatch``
spans land in the engine's tracer when one is attached, every log
record inside the request path carries ``trace_id``/``tenant``/
``job_id`` via :func:`repro.obs.logs.log_context`, and the
:data:`SERVE_COUNTERS` live in the engine's metrics registry so the
existing Prometheus exporters pick them up unchanged.

Graceful drain: SIGINT/SIGTERM (or :meth:`GendpServer.request_shutdown`)
stops admission (``draining`` rejections), lets in-flight work
complete up to ``drain_timeout_s``, then closes the listener.
"""

from __future__ import annotations

import asyncio
import json
import signal
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from dataclasses import replace

from repro.engine import Engine, make_job
from repro.obs.logs import get_logger, log_context
from repro.serve.admission import (
    AdmissionController,
    priority_for,
)
from repro.serve.quota import TenantQuotas
from repro.slo.accounting import TenantLedger

_LOG = get_logger("repro.serve.server")

#: Tenant used when a request names none.
DEFAULT_TENANT = "default"


def _client_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """The client's payload minus engine-private keys (``_trace``...);
    per-process stamps must not be replayed at recovery."""
    return {
        key: value
        for key, value in payload.items()
        if not key.startswith("_")
    }

#: Counters the serving tier owns inside the engine's registry.  The
#: obs exporters pick these up like any engine counter; the drift test
#: in ``tests/serve`` pins this schema.
SERVE_COUNTERS = (
    "serve_connections",
    "serve_requests",
    "serve_admitted",
    "serve_rejected_draining",
    "serve_rejected_backpressure",
    "serve_rejected_quota",
    "serve_dispatches",
    "serve_responses",
    "serve_errors",
    "serve_journaled",
    "serve_deduped",
    "serve_recovered",
)


@dataclass(frozen=True)
class ServeConfig:
    """``gendp-serve`` tuning knobs."""

    host: str = "127.0.0.1"
    #: TCP port (0 = ephemeral); ignored when ``unix_socket`` is set.
    port: int = 0
    #: Path to serve a Unix socket on instead of TCP.
    unix_socket: Optional[str] = None
    #: Admitted-but-unanswered request ceiling (backpressure past it).
    max_pending: int = 256
    #: Jobs the dispatcher packs into one engine drain.
    max_batch: int = 64
    #: How long the dispatcher waits to fill a batch before flushing.
    flush_interval_s: float = 0.01
    #: Token-bucket defaults (tokens/second, burst) for unnamed tenants.
    default_rate: float = 200.0
    default_burst: float = 100.0
    #: Per-tenant ``(rate, burst)`` overrides.
    tenant_quotas: Mapping[str, Tuple[float, float]] = field(
        default_factory=dict
    )
    #: Seconds a drain waits for in-flight work before closing anyway.
    drain_timeout_s: float = 10.0
    #: Directory for the request-level write-ahead journal
    #: (:mod:`repro.durable`).  When set, ``submit`` requests carrying
    #: a ``dedupe_id`` are journaled before execution and their
    #: results after it, so a crashed server finishes accepted work at
    #: restart and a reconnecting client's resend is answered from the
    #: journal instead of re-executing.  None disables journaling.
    journal_dir: Optional[str] = None
    #: Fsync policy for the request journal.
    journal_fsync: str = "interval"
    #: Replay the request journal in :meth:`GendpServer.start`.
    recover_on_start: bool = True

    def __post_init__(self) -> None:
        if self.max_pending <= 0:
            raise ValueError("max_pending must be positive")
        if self.max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if self.flush_interval_s < 0:
            raise ValueError("flush_interval_s must be non-negative")
        if self.drain_timeout_s < 0:
            raise ValueError("drain_timeout_s must be non-negative")


class GendpServer:
    """The asyncio serving front-end over one :class:`Engine`.

    Anything engine-shaped works -- in particular a
    :class:`repro.cluster.ClusterRouter` (``gendp-serve --shards N``)
    slots in unchanged: per-shard admission happens inside the
    router's ring walk, stats gain a ``shards`` topology map, and
    result payloads carry the producing shard.
    """

    def __init__(
        self,
        engine: Engine,
        config: Optional[ServeConfig] = None,
        tracer: Optional[object] = None,
        ledger: Optional[TenantLedger] = None,
    ):
        self.engine = engine
        self.config = config or ServeConfig()
        #: Per-tenant usage ledger (always on -- folding a counter per
        #: request is cheap, and billing data that starts at tenant
        #: zero is worth far more than the branch it saves).
        self.ledger = ledger if ledger is not None else TenantLedger()
        # Default to the engine's tracer so serve spans and engine
        # spans land in one timeline.
        self.tracer = tracer if tracer is not None else engine.tracer
        self.quotas = TenantQuotas(
            default_rate=self.config.default_rate,
            default_burst=self.config.default_burst,
            overrides=self.config.tenant_quotas,
        )
        self.admission = AdmissionController(
            self.quotas, self.config.max_pending
        )
        self._queue: asyncio.Queue = asyncio.Queue()
        self._pending = 0
        self._draining = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_writers: set = set()
        self._dispatcher_task: Optional[asyncio.Task] = None
        self._done = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        #: Request-level WAL (None without ``config.journal_dir``);
        #: keyed by client ``dedupe_id`` strings, result payloads
        #: recorded so deduplicated resends answer without re-running.
        self.journal = None
        self._completed_requests: Dict[str, Dict[str, Any]] = {}
        if self.config.journal_dir:
            from repro.durable.journal import DurabilityConfig, Journal

            self.journal = Journal(
                DurabilityConfig(
                    dir_path=self.config.journal_dir,
                    fsync=self.config.journal_fsync,
                    record_values=True,
                ),
                metrics=self.engine.metrics,
            )
        for counter in SERVE_COUNTERS:
            self.engine.metrics.incr(counter, 0)

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self) -> "GendpServer":
        if self._server is not None:
            return self
        if self.journal is not None and self.config.recover_on_start:
            # Finish what a crashed predecessor accepted before taking
            # new connections: orphaned requests re-execute, completed
            # ones seed the dedupe cache.  Engine drains are sync, so
            # keep the (not yet serving) loop responsive via executor.
            recovered = await asyncio.get_running_loop().run_in_executor(
                None, self._recover_requests
            )
            if recovered:
                _LOG.info(
                    "request journal replayed",
                    extra={"recovered": recovered},
                )
        if self.config.unix_socket:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.config.unix_socket
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, self.config.host, self.config.port
            )
        self._dispatcher_task = asyncio.create_task(
            self._dispatcher(), name="gendp-serve-dispatcher"
        )
        _LOG.info("gendp-serve listening", extra={"endpoint": self.endpoint})
        return self

    @property
    def endpoint(self) -> str:
        if self.config.unix_socket:
            return f"unix:{self.config.unix_socket}"
        return f"tcp:{self.config.host}:{self.port}"

    @property
    def port(self) -> int:
        if self._server is None or self.config.unix_socket:
            return self.config.port
        return self._server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def pending(self) -> int:
        return self._pending

    def install_signal_handlers(self) -> None:
        """Graceful drain on SIGINT/SIGTERM (call from the loop thread)."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, self.request_shutdown)
            except (NotImplementedError, RuntimeError):
                pass  # platforms without loop signal support

    def request_shutdown(self) -> None:
        """Stop admitting; finish in-flight work; then close and stop."""
        if self._draining:
            return
        self._draining = True
        _LOG.info("gendp-serve draining", extra={"pending": self._pending})
        asyncio.get_running_loop().create_task(self._finish())

    async def _finish(self) -> None:
        try:
            await asyncio.wait_for(
                self._idle.wait(), timeout=self.config.drain_timeout_s
            )
        except asyncio.TimeoutError:
            _LOG.warning(
                "drain timeout; closing with work in flight",
                extra={"pending": self._pending},
            )
        await self.stop()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Sever open connections too: a stopped server must look dead to
        # its clients (their pending requests fail fast and reconnect
        # logic can kick in) rather than leaving zombie handlers that
        # still answer on a listener that no longer exists.
        for writer in list(self._conn_writers):
            try:
                writer.close()
            except Exception:
                pass
        self._conn_writers.clear()
        if self._dispatcher_task is not None:
            self._dispatcher_task.cancel()
            try:
                await self._dispatcher_task
            except asyncio.CancelledError:
                pass
            self._dispatcher_task = None
        if self.journal is not None:
            self.journal.close()
        self._done.set()

    async def serve_forever(self) -> None:
        """Block until a drain (signal or explicit) completes."""
        await self.start()
        await self._done.wait()

    # ------------------------------------------------------------------
    # connections

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._server is None:
            # stop() ran between the accept and this task getting
            # scheduled: the dispatcher is gone, so serving this
            # connection would admit requests nobody will ever answer.
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass
            return
        self.engine.metrics.incr("serve_connections")
        peer = writer.get_extra_info("peername") or writer.get_extra_info(
            "sockname"
        )
        if self.tracer is not None:
            self.tracer.event("serve:accept", cat="serve", peer=str(peer))
        write_lock = asyncio.Lock()
        tasks: List[asyncio.Task] = []
        self._conn_writers.add(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.create_task(
                    self._handle_line(line, writer, write_lock)
                )
                tasks.append(task)
                tasks = [t for t in tasks if not t.done()]
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        except (
            ConnectionResetError,
            asyncio.IncompleteReadError,
            asyncio.CancelledError,  # server close cancels handlers
        ):
            pass
        finally:
            self._conn_writers.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (Exception, asyncio.CancelledError):
                pass  # server close cancels the wait; nothing to flush

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        response: Dict[str, Any],
    ) -> int:
        data = (json.dumps(response, default=str) + "\n").encode("utf-8")
        async with write_lock:
            writer.write(data)
            await writer.drain()
        self.engine.metrics.incr("serve_responses")
        return len(data)

    async def _handle_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        self.engine.metrics.incr("serve_requests")
        try:
            request = json.loads(line.decode("utf-8"))
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
        except (ValueError, UnicodeDecodeError) as error:
            self.engine.metrics.incr("serve_errors")
            await self._respond(
                writer,
                write_lock,
                {"ok": False, "error": f"bad request: {error}"},
            )
            return
        request_id = request.get("id")
        tenant = str(request.get("tenant") or DEFAULT_TENANT)
        trace_id = (
            self.tracer.trace_id if self.tracer is not None else None
        )
        with log_context(trace_id=trace_id, tenant=tenant):
            try:
                op = str(request.get("op") or "submit")
                if op == "ping":
                    response: Dict[str, Any] = {
                        "ok": True,
                        "op": "pong",
                        "draining": self._draining,
                    }
                elif op == "stats":
                    response = self._stats()
                elif op == "submit":
                    response = await self._submit_one(request, tenant)
                elif op == "batch":
                    response = await self._submit_batch(request, tenant)
                else:
                    self.engine.metrics.incr("serve_errors")
                    response = {"ok": False, "error": f"unknown op {op!r}"}
            except Exception as error:  # request-level isolation
                self.engine.metrics.incr("serve_errors")
                response = {
                    "ok": False,
                    "error": f"{type(error).__name__}: {error}",
                }
            if request_id is not None:
                response["id"] = request_id
            if trace_id is not None:
                response.setdefault("trace_id", trace_id)
            sent = await self._respond(writer, write_lock, response)
            # Transport accounting: the tenant pays for the NDJSON
            # bytes both ways -- exact, no apportionment needed.
            self.ledger.record_transport(tenant, len(line) + sent)

    def _stats(self) -> Dict[str, Any]:
        counters = self.engine.metrics.snapshot().get("counters", {})
        stats = {
            "ok": True,
            "op": "stats",
            "draining": self._draining,
            "pending": self._pending,
            "endpoint": self.endpoint,
            "counters": {
                name: counters.get(name, 0) for name in SERVE_COUNTERS
            },
            "tenants": self.ledger.snapshot_section(),
        }
        # A cluster behind the server reports its shard topology too.
        shard_states = getattr(self.engine, "shard_states", None)
        if callable(shard_states):
            stats["shards"] = shard_states()
        return stats

    # ------------------------------------------------------------------
    # submission

    def _admit(self, tenant: str) -> Optional[Dict[str, Any]]:
        """None when admitted; the rejection response otherwise."""
        decision = self.admission.check(
            tenant, self._pending, self._draining
        )
        if self.tracer is not None:
            self.tracer.event(
                "serve:admit",
                cat="serve",
                tenant=tenant,
                admitted=decision.admitted,
                reason=decision.reason,
            )
        self.ledger.record_admission(
            tenant, decision.admitted, decision.reason
        )
        if decision.admitted:
            self.engine.metrics.incr("serve_admitted")
            return None
        self.engine.metrics.incr(
            f"serve_rejected_{decision.reason.replace('-exceeded', '')}"
        )
        _LOG.info(
            "request rejected",
            extra={"tenant": tenant, "reason": decision.reason},
        )
        return {"ok": False, "rejected": True, "error": decision.reason}

    def _build_job(
        self, spec: Mapping[str, Any], tenant: str
    ):
        job = make_job(
            str(spec.get("kernel")),
            dict(spec.get("payload") or {}),
            priority=priority_for(spec.get("priority")),
            deadline_s=spec.get("deadline_s"),
        )
        if self.tracer is not None and "_trace" not in job.payload:
            # Tenant + trace ids ride to the workers inside the payload
            # (Engine.submit would add trace/job ids; adding tenant here
            # correlates worker spans back to the paying tenant too).
            job = replace(
                job,
                payload=dict(
                    job.payload,
                    _trace={
                        "trace_id": self.tracer.trace_id,
                        "job_id": job.job_id,
                        "tenant": tenant,
                    },
                ),
            )
        return job

    async def _enqueue(self, job, tenant: str) -> asyncio.Future:
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending += 1
        self._idle.clear()
        await self._queue.put((job, tenant, future))
        return future

    def _result_payload(self, result) -> Dict[str, Any]:
        payload = {
            "ok": result.ok,
            "job_id": result.job_id,
            "kernel": result.kernel,
            "value": result.value,
            "error": result.error,
            "backend": result.backend,
            "attempts": result.attempts,
        }
        shard = getattr(result, "shard", None)
        if shard is not None:
            payload["shard"] = shard
        return payload

    async def _submit_one(
        self, request: Mapping[str, Any], tenant: str
    ) -> Dict[str, Any]:
        rejection = self._admit(tenant)
        if rejection is not None:
            return rejection
        dedupe_id = request.get("dedupe_id")
        if dedupe_id is not None and self.journal is not None:
            dedupe_id = str(dedupe_id)
            cached = self._completed_requests.get(dedupe_id)
            if cached is not None:
                # A reconnecting client's resend: the journal already
                # holds the answer; never execute the same request twice.
                self.engine.metrics.incr("serve_deduped")
                return dict(cached, deduped=True)
        job = self._build_job(request, tenant)
        if dedupe_id is not None and self.journal is not None:
            # Write-ahead: an un-journaled request is refused, so a
            # crash can never lose a request the client believes is in.
            try:
                self.journal.append(
                    "accept",
                    job_id=dedupe_id,
                    kernel=job.kernel,
                    payload=_client_payload(job.payload),
                    priority=job.priority,
                    tenant=tenant,
                )
                self.engine.metrics.incr("serve_journaled")
            except Exception as error:
                self.engine.metrics.incr("serve_errors")
                return {
                    "ok": False,
                    "rejected": True,
                    "error": f"journal write failed: {error}",
                }
        with log_context(job_id=job.job_id):
            future = await self._enqueue(job, tenant)
            result = await future
            payload = self._result_payload(result)
            if dedupe_id is not None and self.journal is not None:
                self._journal_request_complete(dedupe_id, payload)
            return payload

    def _journal_request_complete(
        self, dedupe_id: str, payload: Dict[str, Any]
    ) -> None:
        """Record a request's answer; tolerated on failure (the job
        re-executes at the next recovery, which is safe -- dedupe only
        promises at-most-once *per journaled completion*)."""
        try:
            self.journal.append(
                "complete",
                job_id=dedupe_id,
                ok=bool(payload.get("ok")),
                value=payload,
            )
        except Exception:
            self.engine.metrics.incr("durable_write_errors")
            return
        self._completed_requests[dedupe_id] = dict(payload)

    def _recover_requests(self) -> int:
        """Sync startup replay of the request journal.

        Completed requests seed the dedupe cache; orphans (accepted
        before a crash, never answered) re-execute through the engine
        and their results are journaled, so the client's eventual
        resend gets the answer without re-running.
        """
        from repro.engine.jobs import make_job as build

        state, _issues = self.journal.load_state()
        self.engine.metrics.incr("durable_recoveries")
        for key, record in state.completed.items():
            value = record.get("value")
            if isinstance(value, dict):
                self._completed_requests[str(key)] = value
        pending = []
        for record in state.orphans():
            try:
                job = build(
                    str(record["kernel"]),
                    dict(record.get("payload") or {}),
                    priority=int(record.get("priority", 0)),
                )
                self.engine.submit(job)
            except Exception:
                _LOG.warning(
                    "unrecoverable journaled request",
                    extra={"dedupe_id": str(record.get("job_id"))},
                )
                continue
            tenant = str(record.get("tenant") or DEFAULT_TENANT)
            pending.append((str(record.get("job_id")), tenant, job))
        if not pending:
            return 0
        drain = getattr(self.engine, "drain_until_settled", self.engine.drain)
        by_id = {result.job_id: result for result in drain()}
        recovered = 0
        for dedupe_id, tenant, job in pending:
            result = by_id.get(job.job_id)
            if result is None:
                continue
            # Recovered work is billed to its original tenant too --
            # the crash does not comp the job.
            self.ledger.record_result(tenant, job, result)
            self._journal_request_complete(
                dedupe_id, self._result_payload(result)
            )
            self.engine.metrics.incr("serve_recovered")
            recovered += 1
        return recovered

    async def _submit_batch(
        self, request: Mapping[str, Any], tenant: str
    ) -> Dict[str, Any]:
        specs = request.get("jobs")
        if not isinstance(specs, list) or not specs:
            self.engine.metrics.incr("serve_errors")
            return {"ok": False, "error": "batch needs a non-empty jobs array"}
        entries: List[Dict[str, Any]] = []
        futures: List[Tuple[int, asyncio.Future]] = []
        for index, spec in enumerate(specs):
            rejection = self._admit(tenant)
            if rejection is not None:
                entries.append(rejection)
                continue
            job = self._build_job(spec, tenant)
            futures.append((index, await self._enqueue(job, tenant)))
            entries.append({})  # placeholder, filled below
        for index, future in futures:
            entries[index] = self._result_payload(await future)
        return {
            "ok": all(entry.get("ok") for entry in entries),
            "op": "batch",
            "results": entries,
        }

    # ------------------------------------------------------------------
    # dispatch

    async def _dispatcher(self) -> None:
        """Single consumer: pack pending jobs, drain, resolve futures."""
        loop = asyncio.get_running_loop()
        while True:
            item = await self._queue.get()
            batch = [item]
            deadline = loop.time() + self.config.flush_interval_s
            while len(batch) < self.config.max_batch:
                timeout = deadline - loop.time()
                if timeout <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self._queue.get(), timeout)
                    )
                except asyncio.TimeoutError:
                    break
            await self._dispatch(loop, batch)

    async def _dispatch(self, loop, batch: List[Tuple]) -> None:
        self.engine.metrics.incr("serve_dispatches")
        trace_id = self.tracer.trace_id if self.tracer is not None else None
        start = self.tracer.now() if self.tracer is not None else 0.0
        tenants = sorted({tenant for _, tenant, _ in batch})
        with log_context(trace_id=trace_id):
            accepted: List[Tuple[Any, str, asyncio.Future]] = []
            for job, tenant, future in batch:
                with log_context(tenant=tenant, job_id=job.job_id):
                    try:
                        self.engine.submit(job)
                        accepted.append((job, tenant, future))
                    except Exception as error:  # incl. BackpressureError
                        result = _ErrorResult(
                            job, f"{type(error).__name__}: {error}"
                        )
                        self.ledger.record_result(tenant, job, result)
                        self._resolve(future, result)
            if accepted:
                # The drain is synchronous engine code; the default
                # executor keeps the loop accepting while tables sweep.
                # A cluster settles over multiple rounds (failover,
                # partition healing), so prefer its settling drain.
                drain = getattr(
                    self.engine, "drain_until_settled", self.engine.drain
                )
                results = await loop.run_in_executor(None, drain)
                by_id = {result.job_id: result for result in results}
                for job, tenant, future in accepted:
                    result = by_id.get(job.job_id)
                    if result is None:
                        result = _ErrorResult(job, "lost in drain")
                    self.ledger.record_result(tenant, job, result)
                    self._resolve(future, result)
        if self.tracer is not None:
            self.tracer.add_span(
                "serve:dispatch",
                start,
                self.tracer.now(),
                cat="serve",
                jobs=len(batch),
                tenants=",".join(tenants),
            )

    def _resolve(self, future: asyncio.Future, result) -> None:
        self._pending -= 1
        if self._pending <= 0:
            self._idle.set()
        if not future.done():
            future.set_result(result)


class _ErrorResult:
    """A JobResult-shaped envelope for jobs that never reached a drain."""

    def __init__(self, job, error: str):
        self.ok = False
        self.job_id = job.job_id
        self.kernel = job.kernel
        self.value = None
        self.error = error
        self.backend = "none"
        self.attempts = 0
