"""The transport seam: selectable inline/pickle/shared-memory backends.

:class:`TransportConfig` is the engine-facing knob.  ``backend``
picks how batches cross the process boundary:

- ``"inline"`` -- no boundary, the serial floor;
- ``"pickle"`` -- the original ``concurrent.futures`` pool, every
  batch pickled both ways (kept as the comparison baseline);
- ``"shm"`` -- :class:`ShmExecutor` below: persistent warm workers
  attached to shared-memory job/result rings, zero pickling on the
  hot path, compiled programs broadcast once through the program
  table.

All three produce byte-identical results (pinned by
``tests/serve/test_backends.py``); they differ only in throughput and
in how much they serialize, which :attr:`BatchOutcome.transport_bytes`
quantifies per batch.

Failure semantics mirror :class:`repro.engine.executor.PoolExecutor`:
a worker death revokes its RUNNING slots, requeues them with a bumped
generation while retry budget remains (charging one attempt, exactly
the resubmission contract the repro.faults chaos drills assert), and
degrades the leftovers to inline execution -- the always-correct
floor.  A transport that cannot even set up its segments or workers
degrades whole-hog to inline rather than failing the drain.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import multiprocessing as mp

from repro.engine.batcher import Batch
from repro.engine.cache import CompiledProgram
from repro.engine.executor import BatchOutcome, InlineExecutor
from repro.obs.logs import get_logger
from repro.serve.layout import (
    DONE,
    FMT_PICKLE,
    FREE,
    J_FORMAT,
    J_GEN,
    J_JOB_ID,
    J_KERNEL,
    J_LEN_A,
    J_LEN_B,
    J_PROGRAM,
    J_STATE,
    J_TRACE_LEN,
    J_WORKER,
    JOB_FIELDS,
    KERNEL_IDS,
    R_FORMAT,
    R_GEN,
    R_JOB_ID,
    R_KERNEL,
    R_LEN_A,
    R_OK,
    R_STATE,
    READY,
    RESULT_FIELDS,
    RUNNING,
    SlotOverflowError,
    decode_result,
    encode_payload,
)
from repro.serve.ring import RingCapacityError, RingGeometry, ServeSegments

_LOG = get_logger("repro.serve.transport")

#: Transport backends the engine seam accepts.
BACKENDS = ("inline", "pickle", "shm")


@dataclass(frozen=True)
class TransportConfig:
    """How engine batches reach their execution processes."""

    backend: str = "shm"
    #: Worker processes for the pickle/shm backends (>= 1).
    workers: int = 2
    #: Job/result ring capacity in slots (shared by both rings).
    ring_slots: int = 32
    #: Byte capacity of one job payload slot.
    slot_bytes: int = 1 << 16
    #: Byte capacity of one result slot.
    result_slot_bytes: int = 1 << 16
    #: Program-table limits (programs are broadcast once, not per job).
    max_programs: int = 64
    program_table_bytes: int = 1 << 22
    #: Kernels whose programs the engine compiles and broadcasts at
    #: startup so the first request hits warm workers.
    warm_kernels: Tuple[str, ...] = ()
    #: Worker idle-poll cadence (also the parent's collect tick).
    poll_interval_s: float = 0.02

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown transport backend {self.backend!r}; pick from {BACKENDS}"
            )
        if self.backend != "inline" and self.workers < 1:
            raise ValueError(f"{self.backend} transport needs at least one worker")
        if self.poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")

    def geometry(self) -> RingGeometry:
        return RingGeometry(
            slots=self.ring_slots,
            slot_bytes=self.slot_bytes,
            result_slot_bytes=self.result_slot_bytes,
            max_programs=self.max_programs,
            program_bytes=self.program_table_bytes,
        )


def _job_body_bytes(words: Dict[int, int]) -> int:
    """Bytes the encoded job body occupies, from its header words."""
    if words.get(J_FORMAT) == FMT_PICKLE:
        return int(words.get(J_LEN_A, 0))
    kernel_id = int(words.get(J_KERNEL, 0))
    len_a = int(words.get(J_LEN_A, 0))
    len_b = int(words.get(J_LEN_B, 0))
    trace = int(words.get(J_TRACE_LEN, 0))
    if kernel_id == KERNEL_IDS["dtw"]:
        return 8 * (len_a + len_b) + trace
    if kernel_id == KERNEL_IDS["chain"]:
        return 24 * len_a + trace
    return len_a + len_b + trace


def _result_body_bytes(header) -> int:
    """Bytes the encoded result body occupies, from its header row."""
    len_a = int(header[R_LEN_A])
    if int(header[R_FORMAT]) == FMT_PICKLE or not int(header[R_OK]):
        return len_a
    kernel_id = int(header[R_KERNEL])
    if kernel_id == KERNEL_IDS["chain"]:
        return 16 * len_a + 24
    return 16


@dataclass
class _PendingJob:
    """One job's transit state across publish/retry/collect."""

    batch_index: int
    job_index: int
    kernel: str
    payload: Dict[str, Any]
    program_id: Optional[int]
    attempts: int = 0
    slot: int = -1
    generation: int = -1
    job_id: int = -1


@dataclass
class _BatchState:
    """Per-batch accounting while its jobs ride the ring."""

    batch: Batch
    compiled: CompiledProgram
    results: List[Optional[Dict[str, Any]]]
    remaining: int
    deadline: float
    started: float
    finished: float = 0.0
    transport_bytes: int = 0
    max_attempts: int = 1
    degraded: bool = False


class ShmExecutor:
    """Warm-worker execution over shared-memory job/result rings."""

    backend = "shm"

    def __init__(
        self,
        config: TransportConfig,
        job_timeout_s: float = 30.0,
        max_retries: int = 1,
    ):
        self.config = config
        self.job_timeout_s = job_timeout_s
        self.max_retries = max_retries
        self._inline = InlineExecutor()
        self._segments: Optional[ServeSegments] = None
        self._workers: List[Any] = []
        self._broken = False
        self._job_counter = 0
        self._program_ids: Dict[str, int] = {}
        self._unaccounted_program_bytes = 0
        try:
            self._ctx = mp.get_context("fork")
            self._segments = ServeSegments.create(config.geometry())
            self._job_sem = self._ctx.Semaphore(0)
            self._job_lock = self._ctx.Lock()
            self._result_sem = self._ctx.Semaphore(0)
            self._result_lock = self._ctx.Lock()
            self._shutdown = self._ctx.Event()
            self._workers = [None] * config.workers
            for worker_id in range(config.workers):
                self._spawn(worker_id)
        except Exception:
            self._broken = True
            if self._segments is not None:
                self._segments.close()
                self._segments = None
            _LOG.warning(
                "shared-memory transport unavailable; degrading to inline"
            )

    # ------------------------------------------------------------------
    # workers and programs

    def _spawn(self, worker_id: int) -> None:
        from repro.serve.workers import worker_main

        process = self._ctx.Process(
            target=worker_main,
            args=(
                worker_id,
                self.config.geometry(),
                self._segments.names,
                self._job_sem,
                self._job_lock,
                self._result_sem,
                self._result_lock,
                self._shutdown,
                self.config.poll_interval_s,
            ),
            daemon=True,
        )
        process.start()
        self._workers[worker_id] = process

    def preload(self, compiled: CompiledProgram) -> Optional[int]:
        """Broadcast *compiled* so workers specialize it before traffic."""
        return self._program_id(compiled)

    def _program_id(self, compiled: CompiledProgram) -> Optional[int]:
        """The broadcast id for *compiled* (appending on first sight)."""
        if self._segments is None:
            return None
        key = compiled.program_hash
        program_id = self._program_ids.get(key)
        if program_id is not None:
            return program_id
        try:
            program_id, nbytes = self._segments.programs.append(compiled)
        except RingCapacityError:
            _LOG.warning(
                "program table full; batches with new programs run inline"
            )
            return None
        self._program_ids[key] = program_id
        self._unaccounted_program_bytes += nbytes
        return program_id

    # ------------------------------------------------------------------
    # the drain loop

    def run_batches(
        self, items: Sequence[Tuple[Batch, CompiledProgram]]
    ) -> List[BatchOutcome]:
        if self._broken or self._segments is None:
            outcomes = self._inline.run_batches(items)
            for outcome in outcomes:
                outcome.degraded = True
            return outcomes

        now = time.perf_counter()
        states: List[_BatchState] = []
        queue: List[_PendingJob] = []
        for batch_index, (batch, compiled) in enumerate(items):
            program_id = self._program_id(compiled)
            states.append(
                _BatchState(
                    batch=batch,
                    compiled=compiled,
                    results=[None] * len(batch.jobs),
                    remaining=len(batch.jobs),
                    deadline=now + self.job_timeout_s * max(1, len(batch.jobs)),
                    started=now,
                )
            )
            for job_index, job in enumerate(batch.jobs):
                queue.append(
                    _PendingJob(
                        batch_index=batch_index,
                        job_index=job_index,
                        kernel=batch.kernel,
                        payload=job.payload,
                        program_id=program_id,
                    )
                )
        if states:
            # Program broadcasts are transport traffic too; charge them
            # to the drain that triggered them (first batch).
            states[0].transport_bytes += self._unaccounted_program_bytes
            self._unaccounted_program_bytes = 0

        outstanding: Dict[int, _PendingJob] = {}
        queue.reverse()  # pop() from the tail publishes in order
        while queue or outstanding:
            self._publish(queue, outstanding, states)
            self._result_sem.acquire(timeout=self.config.poll_interval_s)
            self._collect(outstanding, states)
            self._reap_dead_workers(queue, outstanding, states)
            self._expire(queue, outstanding, states)

        return [self._outcome(state) for state in states]

    def _publish(
        self,
        queue: List[_PendingJob],
        outstanding: Dict[int, _PendingJob],
        states: List[_BatchState],
    ) -> None:
        """Fill FREE job slots until the ring pushes back."""
        jobs = self._segments.jobs
        while queue:
            record = queue[-1]
            state = states[record.batch_index]
            if record.program_id is None:
                queue.pop()
                state.degraded = True
                self._run_inline(record, state)
                continue
            slot = jobs.first_free()
            if slot is None:
                return  # ring full: natural backpressure, collect first
            try:
                words = encode_payload(
                    record.kernel, record.payload, jobs.data[slot]
                )
            except SlotOverflowError:
                queue.pop()
                state.degraded = True
                self._run_inline(record, state)
                continue
            queue.pop()
            if record.attempts == 0:
                state.transport_bytes += (
                    _job_body_bytes(words) + JOB_FIELDS * 8
                )
            record.attempts += 1
            state.max_attempts = max(state.max_attempts, record.attempts)
            self._job_counter += 1
            record.job_id = self._job_counter
            record.slot = slot
            record.generation = int(jobs.header[slot, J_GEN])
            words[J_GEN] = record.generation
            words[J_JOB_ID] = record.job_id
            words[J_PROGRAM] = record.program_id
            words[J_WORKER] = -1
            jobs.publish(slot, words)
            outstanding[record.job_id] = record
            self._job_sem.release()

    def _collect(
        self, outstanding: Dict[int, _PendingJob], states: List[_BatchState]
    ) -> None:
        """Drain READY result slots; reclaim both sides of each match."""
        results = self._segments.results
        jobs = self._segments.jobs
        for slot in results.find_state(READY):
            header = results.header[slot]
            record = outstanding.get(int(header[R_JOB_ID]))
            fresh = (
                record is not None
                and record.generation == int(header[R_GEN])
            )
            if fresh:
                state = states[record.batch_index]
                try:
                    ok, value, error = decode_result(
                        header, results.data[slot]
                    )
                    result = (
                        {"ok": True, "value": value}
                        if ok
                        else {"ok": False, "error": error}
                    )
                except Exception as decode_error:
                    result = {
                        "ok": False,
                        "error": (
                            f"{type(decode_error).__name__}: {decode_error}"
                        ),
                    }
                state.transport_bytes += (
                    _result_body_bytes(header) + RESULT_FIELDS * 8
                )
                self._finish(record, state, result)
                del outstanding[record.job_id]
                # Reclaim the job slot (DONE by now): bump generation.
                jobs.header[record.slot, J_GEN] = record.generation + 1
                jobs.header[record.slot, J_STATE] = FREE
            # Stale generations are dropped: their job was revoked and
            # rehomed already.  Either way the result slot frees up.
            header[R_STATE] = FREE

    def _reap_dead_workers(
        self,
        queue: List[_PendingJob],
        outstanding: Dict[int, _PendingJob],
        states: List[_BatchState],
    ) -> None:
        for worker_id, process in enumerate(self._workers):
            if process is None or process.is_alive():
                continue
            process.join(timeout=0)
            _LOG.warning(
                "serve worker died; requeueing its slots",
                extra={"worker": worker_id, "exitcode": process.exitcode},
            )
            victims = [
                record
                for record in outstanding.values()
                if record.slot >= 0
                and int(self._segments.jobs.header[record.slot, J_WORKER])
                == worker_id
                and int(self._segments.jobs.header[record.slot, J_STATE])
                in (RUNNING, DONE)
                and int(self._segments.jobs.header[record.slot, J_GEN])
                == record.generation
            ]
            for record in victims:
                self._revoke(record, outstanding, queue, states)
            self._spawn(worker_id)
            # The dead worker may have consumed semaphore posts it never
            # acted on; overposting is harmless, missing posts hang.
            for _ in self._segments.jobs.find_state(READY):
                self._job_sem.release()

    def _expire(
        self,
        queue: List[_PendingJob],
        outstanding: Dict[int, _PendingJob],
        states: List[_BatchState],
    ) -> None:
        """Revoke every outstanding job of batches past their deadline."""
        now = time.perf_counter()
        expired = [
            index
            for index, state in enumerate(states)
            if state.remaining and now > state.deadline
        ]
        if not expired:
            return
        for batch_index in expired:
            state = states[batch_index]
            victims = [
                record
                for record in outstanding.values()
                if record.batch_index == batch_index
            ]
            _LOG.warning(
                "batch timed out on shm transport",
                extra={
                    "batch_id": state.batch.batch_id,
                    "kernel": state.batch.kernel,
                    "jobs": len(victims),
                },
            )
            for record in victims:
                self._revoke(record, outstanding, queue, states)
            # A retried batch gets a fresh attempt window, like the
            # pool's per-attempt future timeout.
            state.deadline = now + self.job_timeout_s * max(
                1, len(state.batch.jobs)
            )

    def _revoke(
        self,
        record: _PendingJob,
        outstanding: Dict[int, _PendingJob],
        queue: List[_PendingJob],
        states: List[_BatchState],
    ) -> None:
        """Take a job off the ring; requeue it or degrade it to inline.

        The generation bump under the claim lock is what guarantees a
        slow or half-dead worker can neither mark the slot DONE nor get
        a stale result accepted afterwards.
        """
        state = states[record.batch_index]
        with self._job_lock:
            header = self._segments.jobs.header[record.slot]
            if int(header[J_GEN]) == record.generation:
                header[J_GEN] = record.generation + 1
                header[J_STATE] = FREE
        outstanding.pop(record.job_id, None)
        record.slot = -1
        record.generation = -1
        if record.attempts <= self.max_retries:
            queue.append(record)  # republish: the resubmission path
        else:
            state.degraded = True
            self._run_inline(record, state)

    def _run_inline(self, record: _PendingJob, state: _BatchState) -> None:
        """The degradation floor for one job (always correct, serial)."""
        from repro.engine.runners import run_job

        record.attempts += 1
        state.max_attempts = max(state.max_attempts, record.attempts)
        try:
            value = run_job(record.kernel, state.compiled, record.payload)
            result: Dict[str, Any] = {"ok": True, "value": value}
        except Exception as error:
            result = {"ok": False, "error": f"{type(error).__name__}: {error}"}
        self._finish(record, state, result)

    def _finish(
        self,
        record: _PendingJob,
        state: _BatchState,
        result: Dict[str, Any],
    ) -> None:
        if state.results[record.job_index] is None:
            state.remaining -= 1
        state.results[record.job_index] = result
        if state.remaining == 0:
            state.finished = time.perf_counter()

    def _outcome(self, state: _BatchState) -> BatchOutcome:
        finished = state.finished or time.perf_counter()
        return BatchOutcome(
            batch_id=state.batch.batch_id,
            results=[
                result if result is not None else {"ok": False, "error": "lost"}
                for result in state.results
            ],
            backend="inline" if state.degraded else "shm",
            attempts=state.max_attempts,
            execute_seconds=finished - state.started,
            degraded=state.degraded,
            transport_bytes=state.transport_bytes,
        )

    # ------------------------------------------------------------------

    def close(self) -> None:
        if self._segments is None:
            return
        self._shutdown.set()
        for process in self._workers:
            if process is None:
                continue
            process.join(timeout=1.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        self._workers = []
        self._segments.close()
        self._segments = None
