"""Warm-worker program specialization.

A persistent serve worker sees the same compiled program for thousands
of jobs, so it can afford a one-time *specialization* step when a
program is broadcast: the VLIW bundles are translated into one
straight-line Python function (register-file slots become local
variables, each CU way becomes one expression with the exact
:func:`repro.dfg.graph._apply` semantics), compiled once with
``compile``/``exec`` and cached next to the unpickled program.  Per
cell this removes the bundle/way/slot interpretation loop, the operand
list building and the chained opcode dispatch of
:func:`repro.dpmap.codegen.execute_way` -- a 15-40x cell-update
speedup at identical integer semantics.

The inline floor and the cycle simulator deliberately keep the
interpreted path: it is the reference the differential tests compare
against, and it carries the sentinel observe hook.  Accordingly a
specialized cell is only used when sentinels are off; the byte-equal
contract between both executors is enforced by
``tests/serve/test_warm.py``'s seeded sweep over every engine kernel.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.dfg.graph import OPCODE_ARITY, Opcode
from repro.engine.cache import CompiledProgram
from repro.isa.compute import Imm, SlotOp

#: Opcode -> expression template with ``{0}``/``{1}``... operand holes.
#: Semantics mirror :func:`repro.dfg.graph._apply` exactly; any new
#: opcode must be added here *and* covered by the differential test.
_EXPRESSIONS: Dict[Opcode, str] = {
    Opcode.ADD: "({0} + {1})",
    Opcode.SUB: "({0} - {1})",
    Opcode.MUL: "({0} * {1})",
    Opcode.CARRY: "(1 if {0} + {1} >= 4294967296 else 0)",
    Opcode.BORROW: "(1 if {0} < {1} else 0)",
    Opcode.MAX: "max({0}, {1})",
    Opcode.MIN: "min({0}, {1})",
    Opcode.SHL16: "({0} << 16)",
    Opcode.SHR16: "({0} >> 16)",
    Opcode.COPY: "{0}",
    Opcode.MATCH_SCORE: "_match({0}, {1})",
    Opcode.LOG2_LUT: "(0 if {0} <= 0 else int(_log2({0}) * 2.0))",
    Opcode.LOG_SUM_LUT: "_log_sum({0}, {1})",
    Opcode.CMP_GT: "({2} if {0} > {1} else {3})",
    Opcode.CMP_EQ: "({2} if {0} == {1} else {3})",
    Opcode.NOP: "0",
    Opcode.HALT: "0",
}

#: MATCH_SCORE fallback when no match table is bound (mirrors _apply).
_DEFAULT_MATCH = "(1 if {0} == {1} else -1)"


class SpecializationError(ValueError):
    """The program uses a construct the specializer cannot express."""


def _expression(
    opcode: Opcode, operands: List[str], has_match_table: bool
) -> str:
    if opcode is Opcode.MATCH_SCORE and not has_match_table:
        template = _DEFAULT_MATCH
    else:
        template = _EXPRESSIONS.get(opcode)
    if template is None:
        raise SpecializationError(f"no expression template for opcode {opcode}")
    return template.format(*operands)


def _slot_expression(
    slot: SlotOp, registers: set, has_match_table: bool
) -> str:
    operands = []
    for operand in slot.operands:
        if isinstance(operand, Imm):
            operands.append(repr(operand.value))
        else:
            registers.add(operand.index)
            operands.append(f"r{operand.index}")
    return _expression(slot.opcode, operands, has_match_table)


def specialize_source(
    compiled: CompiledProgram, has_match_table: bool
) -> str:
    """The straight-line Python source of one cell update.

    Bundles commit register writes only after every way of the bundle
    has read its operands, exactly like the interpreter: each way's
    value lands in a temporary first, destinations are assigned at the
    bundle boundary.
    """
    registers: set = set(compiled.input_regs.values())
    lines: List[str] = []
    temp = 0
    for bundle in compiled.instructions:
        assigns = []
        for way in bundle.ways:
            if way.kind == "mul":
                expr = _slot_expression(way.mul, registers, has_match_table)
            else:
                left = (
                    _slot_expression(way.left, registers, has_match_table)
                    if way.left is not None
                    else None
                )
                right = (
                    _slot_expression(way.right, registers, has_match_table)
                    if way.right is not None
                    else None
                )
                if way.root is None:
                    expr = left if left is not None else right
                elif OPCODE_ARITY[way.root] == 1:
                    expr = _expression(way.root, [left], has_match_table)
                else:
                    inputs = [left, right]
                    if way.root_swapped:
                        inputs.reverse()
                    expr = _expression(way.root, inputs, has_match_table)
            if expr is None:
                raise SpecializationError("tree way with no populated leaf")
            lines.append(f"    t{temp} = {expr}")
            registers.add(way.dest.index)
            assigns.append((way.dest.index, temp))
            temp += 1
        for dest, t in assigns:
            lines.append(f"    r{dest} = t{t}")

    prologue = [
        f"    r{index} = 0"
        for index in sorted(registers - set(compiled.input_regs.values()))
    ]
    prologue += [
        f"    r{index} = inputs[{name!r}]"
        for name, index in compiled.input_regs.items()
    ]
    returns = ", ".join(
        f"{name!r}: r{index}" for name, index in compiled.output_regs.items()
    )
    return (
        "def _cell(inputs):\n"
        + "\n".join(prologue + lines)
        + "\n    return {"
        + returns
        + "}\n"
    )


def specialize_cell(
    compiled: CompiledProgram,
    match_table: Optional[Callable[[int, int], int]] = None,
) -> Callable[[Dict[str, int]], Dict[str, int]]:
    """Compile *compiled* into one specialized cell-update function.

    Drop-in for the closure :func:`repro.engine.runners._cell_executor`
    builds, minus the sentinel observe hook (callers must keep the
    interpreted path when sentinels are armed).
    """
    import math

    from repro.kernels.pairhmm import log_sum_lookup

    source = specialize_source(compiled, match_table is not None)
    namespace: Dict[str, Any] = {
        "_match": match_table,
        "_log2": math.log2,
        "_log_sum": log_sum_lookup,
    }
    exec(compile(source, "<gendp-specialized>", "exec"), namespace)
    return namespace["_cell"]
