"""Persistent warm workers for the shared-memory transport.

Each worker is a long-lived forked process that attaches the parent's
shared segments by name and loops: wait on the job semaphore, claim a
READY job slot (RUNNING + its worker id, under the claim lock), decode
the payload straight out of shared memory, execute, and write the
result into a claimed result slot.  Nothing crosses a pipe per job --
the only per-job IPC is the two semaphore posts.

Warm means two things here:

- the worker keeps a program cache: each compiled program broadcast
  through the :class:`repro.serve.ring.ProgramTable` is unpickled
  **once**, specialized once (:func:`repro.serve.warm.specialize_cell`)
  and reused for every subsequent job that names its program id;
- the parent pre-seeds that table with the engine's warm kernels
  before the first job is published, so the first request pays no
  compile, no unpickle and no specialization.

Fault-injection markers decoded from the job header behave exactly as
on the pool backend (:mod:`repro.engine.runners` applies delay/exit
only inside worker processes, which a forked serve worker is).  A
worker that dies mid-job leaves its slot RUNNING with its worker id
stamped -- the parent notices the dead process, requeues the slot with
a bumped generation, and respawns the worker.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Dict, Optional, Tuple

from repro.serve.layout import (
    DONE,
    FLAG_SENTINELS,
    J_FLAGS,
    J_GEN,
    J_JOB_ID,
    J_KERNEL,
    J_PROGRAM,
    J_STATE,
    J_WORKER,
    KERNEL_NAMES,
    R_GEN,
    R_JOB_ID,
    R_STATE,
    R_WORKER,
    READY,
    RUNNING,
    decode_payload,
    encode_result,
)
from repro.serve.ring import RingGeometry, SegmentNames, ServeSegments


class _ProgramCache:
    """Worker-side memo of unpickled + specialized programs."""

    def __init__(self, segments: ServeSegments):
        self._segments = segments
        self._entries: Dict[int, Tuple[Any, Optional[Callable]]] = {}

    def get(self, program_id: int) -> Optional[Tuple[Any, Optional[Callable]]]:
        """(compiled, specialized cell or None), or None when unseen."""
        entry = self._entries.get(program_id)
        if entry is not None:
            return entry
        compiled = self._segments.programs.load(program_id)
        if compiled is None:
            return None
        from repro.engine.runners import match_table_for
        from repro.serve.warm import specialize_cell

        try:
            cell = specialize_cell(compiled, match_table_for(compiled.kernel))
        except Exception:
            cell = None  # interpreted path still gives correct results
        entry = (compiled, cell)
        self._entries[program_id] = entry
        return entry

    def sync(self) -> int:
        """Eagerly absorb newly broadcast programs (idle-tick warmup)."""
        count = self._segments.programs.count
        for program_id in range(count):
            self.get(program_id)
        return count


def _claim_job(segments: ServeSegments, lock, worker_id: int) -> Optional[int]:
    """Move one READY job slot to RUNNING; None when none are READY."""
    with lock:
        for index in segments.jobs.find_state(READY):
            header = segments.jobs.header[index]
            if int(header[J_STATE]) != READY:
                continue
            header[J_WORKER] = worker_id
            header[J_STATE] = RUNNING
            return index
    return None


def _claim_result_slot(segments: ServeSegments, lock) -> Optional[int]:
    from repro.serve.layout import FREE

    with lock:
        for index in segments.results.find_state(FREE):
            header = segments.results.header[index]
            if int(header[R_STATE]) != FREE:
                continue
            header[R_STATE] = RUNNING  # reserved while the body is written
            return index
    return None


def _execute(
    segments: ServeSegments, index: int, cache: _ProgramCache
) -> Tuple[bool, Optional[Dict[str, Any]], Optional[str]]:
    """Run the job in slot *index*; never raises."""
    header = segments.jobs.header[index]
    kernel = KERNEL_NAMES.get(int(header[J_KERNEL]))
    try:
        payload = decode_payload(header, segments.jobs.data[index])
        entry = cache.get(int(header[J_PROGRAM]))
        if entry is None:
            return False, None, f"program {int(header[J_PROGRAM])} not broadcast"
        compiled, cell = entry
        if kernel is None:
            kernel = compiled.kernel
        if int(header[J_FLAGS]) & FLAG_SENTINELS:
            cell = None  # interpreted path carries the observe hook
        from repro.engine.runners import run_job

        value = run_job(kernel, compiled, payload, cell)
        return True, value, None
    except Exception as error:  # job-level isolation, like the pool
        return False, None, f"{type(error).__name__}: {error}"


def worker_main(
    worker_id: int,
    geometry: RingGeometry,
    names: SegmentNames,
    job_sem,
    job_lock,
    result_sem,
    result_lock,
    shutdown,
    poll_interval_s: float = 0.05,
) -> None:
    """Entry point of one warm worker process."""
    segments = ServeSegments.attach(geometry, names)
    cache = _ProgramCache(segments)
    cache.sync()  # pre-seed: programs broadcast before spawn are warm
    try:
        while not shutdown.is_set():
            if not job_sem.acquire(timeout=poll_interval_s):
                cache.sync()  # idle tick: absorb new broadcasts
                continue
            index = _claim_job(segments, job_lock, worker_id)
            if index is None:
                continue  # another worker raced us to the slot
            job_header = segments.jobs.header[index]
            job_id = int(job_header[J_JOB_ID])
            generation = int(job_header[J_GEN])
            kernel_id = int(job_header[J_KERNEL])
            ok, value, error = _execute(segments, index, cache)

            # Stamp DONE under the lock *iff* the parent has not revoked
            # the slot meanwhile (timeout requeue bumps the generation);
            # a revoked job's result must never enter the ring.
            with job_lock:
                revoked = (
                    int(job_header[J_GEN]) != generation
                    or int(job_header[J_STATE]) != RUNNING
                )
                if not revoked:
                    job_header[J_STATE] = DONE
            if revoked:
                continue

            result_index = None
            while result_index is None and not shutdown.is_set():
                result_index = _claim_result_slot(segments, result_lock)
                if result_index is None:
                    time.sleep(poll_interval_s / 10)
            if result_index is None:
                break  # shutting down with no slot to report into
            kernel = KERNEL_NAMES.get(kernel_id, "")
            result_header = segments.results.header[result_index]
            try:
                words = encode_result(
                    kernel, ok, value, error, segments.results.data[result_index]
                )
            except Exception as encode_error:  # oversized result, etc.
                words = encode_result(
                    kernel,
                    False,
                    None,
                    f"{type(encode_error).__name__}: {encode_error}",
                    segments.results.data[result_index],
                )
            for field, word in words.items():
                result_header[field] = word
            result_header[R_JOB_ID] = job_id
            result_header[R_GEN] = generation
            result_header[R_WORKER] = worker_id
            result_header[R_STATE] = READY  # publish: state word last
            result_sem.release()
    finally:
        segments.close()
        # A worker must never fall back into the parent's atexit hooks.
        os._exit(0)
