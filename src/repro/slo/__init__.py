"""repro.slo: SLOs, per-tenant accounting, flight recording, and
perf-regression tracking -- the second-generation observability layer
over :mod:`repro.obs`.

- :mod:`repro.slo.objectives` -- declarative latency/availability
  objectives over ``MetricsRegistry.snapshot()`` dicts;
- :mod:`repro.slo.burnrate` -- multi-window multi-burn-rate alerting
  with a deterministic (injectable-clock) alert sequence;
- :mod:`repro.slo.accounting` -- the per-tenant usage ledger;
- :mod:`repro.slo.flight` -- the bounded flight recorder and its
  black-box dumps;
- :mod:`repro.slo.bench` -- benchmark trajectory + baseline gating.

CLI front ends: ``gendp-slo`` and ``gendp-bench``.
"""

from repro.slo.accounting import TENANT_COUNTERS, TenantLedger, estimate_cells
from repro.slo.bench import (
    append_trajectory,
    compare,
    extract_metrics,
    generate_baselines,
    load_baselines,
)
from repro.slo.burnrate import (
    DEFAULT_WINDOWS,
    SLO_COUNTERS,
    Alert,
    BurnWindow,
    SLOEngine,
    synthesize_burn_replay,
)
from repro.slo.flight import (
    FLIGHT_COUNTERS,
    FlightRecorder,
    blackbox_to_chrome_trace,
    canonical_blackbox,
    load_blackbox,
)
from repro.slo.objectives import (
    DEFAULT_OBJECTIVES,
    SLObjective,
    objective_from_dict,
)

__all__ = [
    "TENANT_COUNTERS",
    "TenantLedger",
    "estimate_cells",
    "append_trajectory",
    "compare",
    "extract_metrics",
    "generate_baselines",
    "load_baselines",
    "DEFAULT_WINDOWS",
    "SLO_COUNTERS",
    "Alert",
    "BurnWindow",
    "SLOEngine",
    "synthesize_burn_replay",
    "FLIGHT_COUNTERS",
    "FlightRecorder",
    "blackbox_to_chrome_trace",
    "canonical_blackbox",
    "load_blackbox",
    "DEFAULT_OBJECTIVES",
    "SLObjective",
    "objective_from_dict",
]
