"""Per-tenant usage accounting for the serving tier.

A :class:`TenantLedger` folds the serve front door's admission
decisions and the engine's result envelopes into **one fixed counter
schema per tenant** (:data:`TENANT_COUNTERS`): jobs in/out, DP cells
computed, NDJSON transport bytes, compute time, and quota rejections.
Each tenant gets its own :class:`MetricsRegistry`, so the schema has
real ``incr`` sites (the drift test's contract) and the existing
exporters render each tenant unchanged.

Cells are the DP-native cost unit the paper bills in (a kernel's work
is its table area): ``|query| x |target|`` for the alignment kernels,
``n^2`` for chaining's pairwise predecessor scan.  Compute time is
integer **microseconds** (counters are ints; float seconds would
truncate to zero for sub-second jobs).

The ledger is the reconciliation point for the acceptance test: on a
clean mixed-tenant run, per-tenant ``tenant_jobs_completed`` /
``tenant_jobs_failed`` sums match the engine's ``jobs_completed`` /
``jobs_failed`` counters exactly.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.engine.metrics import MetricsRegistry

#: Per-tenant counters (prefixed ``tenant_``); every name has a
#: literal ``incr`` site below, pinned by the drift test.
TENANT_COUNTERS: Tuple[str, ...] = (
    "tenant_jobs_submitted",  # jobs admitted for this tenant
    "tenant_jobs_completed",  # result envelopes with ok=True
    "tenant_jobs_failed",  # result envelopes with ok=False
    "tenant_rejections",  # admission rejections, any reason
    "tenant_quota_rejections",  # the token-bucket subset
    "tenant_cells_computed",  # estimated DP cells across completed jobs
    "tenant_transport_bytes",  # NDJSON request+response bytes
    "tenant_compute_us",  # execute-time microseconds across envelopes
)

#: Default per-unit prices for the cost report (arbitrary currency;
#: chosen so a small demo run produces legible non-zero totals).
DEFAULT_RATES: Dict[str, float] = {
    "cells_per_unit": 1e-9,  # 1 unit per billion DP cells
    "bytes_per_unit": 1e-9,  # 1 unit per GB of transport
    "compute_s_per_unit": 1e-3,  # 1 unit per 1000 compute-seconds
}


def estimate_cells(kernel: str, payload: Mapping[str, Any]) -> int:
    """Estimated DP-table cells one job sweeps, from its payload dims.

    Mirrors ``_REQUIRED_PAYLOAD_KEYS`` in :mod:`repro.engine.jobs`;
    unknown kernels and malformed payloads estimate zero (accounting
    must never reject work the engine accepted).
    """
    try:
        if kernel == "bsw":
            return len(payload["query"]) * len(payload["target"])
        if kernel == "pairhmm":
            return len(payload["read"]) * len(payload["haplotype"])
        if kernel == "lcs":
            return len(payload["x"]) * len(payload["y"])
        if kernel == "dtw":
            return len(payload["a"]) * len(payload["b"])
        if kernel == "chain":
            return len(payload["anchors"]) ** 2
    except (KeyError, TypeError):
        return 0
    return 0


class TenantLedger:
    """Thread-safe per-tenant usage fold over serve/engine events."""

    def __init__(self) -> None:
        self._tenants: Dict[str, MetricsRegistry] = {}
        self._lock = threading.Lock()

    def _registry(self, tenant: str) -> MetricsRegistry:
        with self._lock:
            registry = self._tenants.get(tenant)
            if registry is None:
                registry = MetricsRegistry()
                for counter in TENANT_COUNTERS:
                    registry.incr(counter, 0)
                self._tenants[tenant] = registry
            return registry

    # ------------------------------------------------------------------
    # event folds (called from the serve request path)

    def record_admission(
        self, tenant: str, admitted: bool, reason: Optional[str] = None
    ) -> None:
        """Fold one admission decision (``GendpServer._admit``)."""
        registry = self._registry(tenant)
        if admitted:
            registry.incr("tenant_jobs_submitted")
            return
        registry.incr("tenant_rejections")
        if reason and "quota" in reason:
            registry.incr("tenant_quota_rejections")

    def record_result(self, tenant: str, job: Any, result: Any) -> None:
        """Fold one result envelope against the job that earned it."""
        registry = self._registry(tenant)
        ok = bool(getattr(result, "ok", False))
        if ok:
            registry.incr("tenant_jobs_completed")
        else:
            registry.incr("tenant_jobs_failed")
        if ok:
            registry.incr(
                "tenant_cells_computed",
                estimate_cells(
                    getattr(job, "kernel", ""),
                    getattr(job, "payload", {}) or {},
                ),
            )
        timings = getattr(result, "timings", None) or {}
        execute_s = float(timings.get("execute_s", 0.0) or 0.0)
        if execute_s > 0:
            registry.incr("tenant_compute_us", int(execute_s * 1e6))

    def record_transport(self, tenant: str, byte_count: int) -> None:
        """Fold NDJSON bytes moved for *tenant* (request + response)."""
        if byte_count > 0:
            self._registry(tenant).incr(
                "tenant_transport_bytes", int(byte_count)
            )

    # ------------------------------------------------------------------
    # export

    @property
    def tenants(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._tenants))

    def usage(self, tenant: str) -> Dict[str, int]:
        """One tenant's counters as the fixed schema dict."""
        registry = self._registry(tenant)
        return {
            name: registry.counter(name) for name in TENANT_COUNTERS
        }

    def snapshot_section(self) -> Dict[str, Dict[str, int]]:
        """All tenants for the labelled ``tenants`` snapshot section
        (``gendp_tenant_<metric>{tenant=...}`` series)."""
        return {tenant: self.usage(tenant) for tenant in self.tenants}

    def annotate(self, snapshot: Dict[str, Any]) -> Dict[str, Any]:
        """Return *snapshot* with the ``tenants`` section folded in."""
        enriched = dict(snapshot)
        enriched["tenants"] = self.snapshot_section()
        return enriched

    def totals(self) -> Dict[str, int]:
        """Schema counters summed across every tenant (the numbers the
        reconciliation test checks against the engine)."""
        totals = {name: 0 for name in TENANT_COUNTERS}
        for tenant in self.tenants:
            for name, value in self.usage(tenant).items():
                totals[name] += value
        return totals

    def cost_report(
        self, rates: Optional[Mapping[str, float]] = None
    ) -> Dict[str, Any]:
        """Per-tenant usage priced at *rates* (``gendp-slo report``)."""
        rates = dict(DEFAULT_RATES, **(rates or {}))
        tenants: Dict[str, Any] = {}
        grand_total = 0.0
        for tenant in self.tenants:
            usage = self.usage(tenant)
            cost = (
                usage["tenant_cells_computed"] * rates["cells_per_unit"]
                + usage["tenant_transport_bytes"] * rates["bytes_per_unit"]
                + (usage["tenant_compute_us"] / 1e6)
                * rates["compute_s_per_unit"]
            )
            grand_total += cost
            tenants[tenant] = {"usage": usage, "cost_units": round(cost, 9)}
        return {
            "rates": rates,
            "tenants": tenants,
            "total_cost_units": round(grand_total, 9),
        }
