"""Benchmark trajectory tracking and regression gating.

The four ``results/BENCH_*.json`` files each grew their own shape
(configuration tables, scaling curves, stream phases, certification
grids).  This module gives them one **shared metric namespace**
without rewriting them: :func:`extract_metrics` walks any BENCH
document and flattens every numeric leaf to a dotted path, using
label-like keys (``label``, ``program``, ``shards``, ``records``) as
path segments so list entries stay addressable
(``configurations.shm-warm.jobs_per_s``).

On top of that:

- :func:`append_trajectory` appends one normalized record per
  benchmark per run to ``results/trajectory.jsonl`` -- the append-only
  perf history CI uploads as an artifact;
- :func:`compare` gates current metrics against committed baselines
  (``results/bench_baselines.json``) with per-metric tolerance bands
  and directions (``higher`` is better / ``lower`` is better /
  ``info`` = tracked, never gated), so losing the shm warm-worker win
  or the scaling curve fails CI instead of shipping silently;
- :func:`generate_baselines` seeds the baseline file from current
  results, inferring directions from metric names.

``gendp-bench`` (:mod:`repro.cli`) is the front end: ``collect``,
``compare``, ``baseline``.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Mapping, Optional, Tuple

#: Keys whose values name their containing dict (become path segments).
LABEL_KEYS: Tuple[str, ...] = (
    "label",
    "program",
    "kernel",
    "name",
    "shards",
    "records",
)

#: Keys never flattened into metrics (identity/config, not measurement).
SKIP_KEYS: Tuple[str, ...] = ("seed", "timestamp", "generated_at")

#: Default tolerance band, percent, for generated baselines.
DEFAULT_TOLERANCE_PCT = 25.0

#: Substrings that mark a metric as higher-is-better.
_HIGHER_HINTS = (
    "per_s",
    "per_sec",
    "per_virtual_s",
    "throughput",
    "speedup",
    "hit_rate",
    "amortization",
    "survived",
    "recovered",
    "efficiency",
)

#: Substrings/suffixes that mark a metric as lower-is-better.
_LOWER_HINTS = (
    "latency",
    "overhead",
    "cycles",
    "_ms",
    "_us",
    "p50",
    "p95",
    "p99",
    "lost",
    "errors",
    "duplicates",
)


def infer_direction(metric: str) -> str:
    """``higher`` / ``lower`` / ``info`` from the metric's name."""
    lowered = metric.lower()
    leaf = lowered.rsplit(".", 1)[-1]
    if any(hint in leaf for hint in _HIGHER_HINTS):
        return "higher"
    if any(hint in leaf for hint in _LOWER_HINTS) or leaf.endswith("_s"):
        return "lower"
    return "info"


def _segment(value: Any) -> str:
    return str(value).replace(".", "_").replace(" ", "_")


def _label_for(item: Mapping[str, Any]) -> Optional[str]:
    for key in LABEL_KEYS:
        if key in item and isinstance(item[key], (str, int, float)):
            return _segment(item[key])
    return None


def extract_metrics(
    document: Any, prefix: str = ""
) -> Dict[str, float]:
    """Flatten every numeric leaf of a BENCH document to dotted paths."""
    metrics: Dict[str, float] = {}
    if isinstance(document, Mapping):
        for key, value in document.items():
            if key in SKIP_KEYS or key in LABEL_KEYS:
                continue
            path = f"{prefix}.{_segment(key)}" if prefix else _segment(key)
            metrics.update(extract_metrics(value, path))
    elif isinstance(document, (list, tuple)):
        for index, item in enumerate(document):
            if isinstance(item, Mapping):
                label = _label_for(item) or str(index)
                path = f"{prefix}.{label}" if prefix else label
                metrics.update(extract_metrics(item, path))
            # Scalar lists (bucket arrays etc.) are shapes, not metrics.
    elif isinstance(document, bool):
        pass  # flags are config, not measurements
    elif isinstance(document, (int, float)):
        if prefix:
            metrics[prefix] = float(document)
    return metrics


def benchmark_name(path: str) -> str:
    """``results/BENCH_serving.json`` -> ``serving``."""
    stem = os.path.splitext(os.path.basename(path))[0]
    return stem[len("BENCH_") :] if stem.startswith("BENCH_") else stem


def load_bench_file(path: str) -> Tuple[str, Dict[str, float]]:
    """One BENCH file as ``(benchmark, metrics)``."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    return benchmark_name(path), extract_metrics(document)


def trajectory_record(
    benchmark: str,
    metrics: Mapping[str, float],
    timestamp: Optional[str] = None,
    revision: Optional[str] = None,
) -> Dict[str, Any]:
    """One normalized trajectory line (the shared BENCH schema)."""
    record: Dict[str, Any] = {
        "schema": "gendp-bench/1",
        "benchmark": benchmark,
        "metrics": {key: metrics[key] for key in sorted(metrics)},
    }
    if timestamp is not None:
        record["timestamp"] = timestamp
    if revision is not None:
        record["revision"] = revision
    return record


def append_trajectory(path: str, records: List[Dict[str, Any]]) -> int:
    """Append *records* to the JSONL trajectory; returns lines added."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    return len(records)


def read_trajectory(path: str) -> List[Dict[str, Any]]:
    """Parse the trajectory file, skipping malformed lines."""
    records: List[Dict[str, Any]] = []
    if not os.path.exists(path):
        return records
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                records.append(record)
    return records


# ----------------------------------------------------------------------
# baselines and gating


def generate_baselines(
    metrics_by_bench: Mapping[str, Mapping[str, float]],
    tolerance_pct: float = DEFAULT_TOLERANCE_PCT,
) -> Dict[str, Any]:
    """Seed a baseline document from current results.

    Only metrics with an inferable direction are gated; the rest are
    recorded as ``info`` so the trajectory still tracks them.
    """
    baselines: Dict[str, Any] = {"schema": "gendp-bench-baselines/1"}
    benchmarks: Dict[str, Any] = {}
    for benchmark in sorted(metrics_by_bench):
        entries: Dict[str, Any] = {}
        for metric in sorted(metrics_by_bench[benchmark]):
            entries[metric] = {
                "value": metrics_by_bench[benchmark][metric],
                "tolerance_pct": tolerance_pct,
                "direction": infer_direction(metric),
            }
        benchmarks[benchmark] = entries
    baselines["benchmarks"] = benchmarks
    return baselines


def load_baselines(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or "benchmarks" not in document:
        raise ValueError(f"{path} is not a gendp-bench baseline file")
    return document


def compare(
    metrics_by_bench: Mapping[str, Mapping[str, float]],
    baselines: Mapping[str, Any],
) -> List[Dict[str, Any]]:
    """Gate current metrics against baselines.

    Returns one finding per baselined metric with ``status`` in:

    - ``ok`` -- within the tolerance band (or moved the good way);
    - ``regressed`` -- beyond tolerance in the bad direction (gates);
    - ``improved`` -- beyond tolerance in the good direction;
    - ``missing`` -- baselined metric absent from current results
      (gates: a vanished benchmark is a silent regression too);
    - ``info`` -- tracked, never gated.
    """
    findings: List[Dict[str, Any]] = []
    for benchmark in sorted(baselines.get("benchmarks", {})):
        entries = baselines["benchmarks"][benchmark]
        current_metrics = metrics_by_bench.get(benchmark, {})
        for metric in sorted(entries):
            entry = entries[metric]
            baseline_value = float(entry["value"])
            tolerance_pct = float(
                entry.get("tolerance_pct", DEFAULT_TOLERANCE_PCT)
            )
            direction = str(entry.get("direction", "info"))
            finding = {
                "benchmark": benchmark,
                "metric": metric,
                "baseline": baseline_value,
                "tolerance_pct": tolerance_pct,
                "direction": direction,
            }
            if metric not in current_metrics:
                finding["current"] = None
                finding["status"] = (
                    "info" if direction == "info" else "missing"
                )
                findings.append(finding)
                continue
            current = float(current_metrics[metric])
            finding["current"] = current
            if baseline_value == 0.0:
                delta_pct = 0.0 if current == 0.0 else float("inf")
            else:
                delta_pct = (
                    (current - baseline_value) / abs(baseline_value) * 100.0
                )
            finding["delta_pct"] = (
                round(delta_pct, 3) if delta_pct != float("inf") else None
            )
            if direction == "info":
                finding["status"] = "info"
            elif direction == "higher":
                if delta_pct < -tolerance_pct:
                    finding["status"] = "regressed"
                elif delta_pct > tolerance_pct:
                    finding["status"] = "improved"
                else:
                    finding["status"] = "ok"
            else:  # lower is better
                if delta_pct > tolerance_pct:
                    finding["status"] = "regressed"
                elif delta_pct < -tolerance_pct:
                    finding["status"] = "improved"
                else:
                    finding["status"] = "ok"
            findings.append(finding)
    return findings


def gate(findings: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """The findings that should fail CI (regressed or missing)."""
    return [
        finding
        for finding in findings
        if finding["status"] in ("regressed", "missing")
    ]
