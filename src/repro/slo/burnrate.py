"""Multi-window multi-burn-rate SLO evaluation (the Google-SRE pager).

A **burn rate** is how fast a service is spending its error budget:
``burn = error_rate / (1 - target)``.  Burn 1.0 exactly exhausts the
budget over the SLO period; burn 14.4 exhausts a 30-day budget in two
days.  Paging on a single window is either noisy (short window) or
slow (long window), so each :class:`BurnWindow` pairs a long window
with a short **probe** window and alerts only when *both* exceed the
threshold -- the long window proves the burn is sustained, the probe
proves it is still happening (Google SRE Workbook ch. 5).

:class:`SLOEngine` holds a rolling history of cumulative good/total
event counts per objective (fed from ``MetricsRegistry.snapshot()``
dicts via :meth:`SLOEngine.observe`) and evaluates every
objective x window pair at each observation.  The clock is injectable
(:class:`repro.cluster.clock.SimClock` in tests and replays), so the
fired/resolved alert sequence is deterministic for a deterministic
snapshot sequence.  When a window starts burning the engine trips the
flight recorder -- an SLO burn is exactly the moment you want the
black box written, while the evidence is still in the ring.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.metrics import MetricsRegistry
from repro.obs.logs import get_logger
from repro.slo.objectives import DEFAULT_OBJECTIVES, SLObjective

_LOG = get_logger("repro.slo.burnrate")

#: SLO-engine counters (prefixed ``slo_``); live in whatever registry
#: the evaluator is handed (the engine's, for one scrape surface).
#: The drift test in ``tests/engine`` pins this schema.
SLO_COUNTERS: Tuple[str, ...] = (
    "slo_evaluations",  # observe() calls folded into the history
    "slo_alerts_fired",  # window transitions into burning
    "slo_alerts_resolved",  # window transitions out of burning
    "slo_windows_burning",  # objective x window pairs burning now
)


@dataclass(frozen=True)
class BurnWindow:
    """One (long window, probe window, threshold) alerting rule."""

    #: Stable identifier (a Prometheus label value).
    name: str
    #: Long lookback, seconds: proves the burn is sustained.
    window_s: float
    #: Short probe, seconds: proves the burn is still happening.
    probe_s: float
    #: Both windows must burn at/above this multiple of budget spend.
    max_burn: float

    def __post_init__(self) -> None:
        if self.window_s <= 0 or self.probe_s <= 0:
            raise ValueError("window_s and probe_s must be positive")
        if self.probe_s > self.window_s:
            raise ValueError("probe_s must not exceed window_s")
        if self.max_burn <= 0:
            raise ValueError("max_burn must be positive")


#: The classic 5m/1h fast page plus a 1h/6h slow ticket, scaled to
#: this repo's minutes-long campaigns: "fast" pages within one probe
#: of a hard outage, "slow" catches budget-nibbling degradation.
DEFAULT_WINDOWS: Tuple[BurnWindow, ...] = (
    BurnWindow(name="fast", window_s=300.0, probe_s=25.0, max_burn=14.4),
    BurnWindow(name="slow", window_s=3600.0, probe_s=300.0, max_burn=6.0),
)


@dataclass
class Alert:
    """One fired/resolved transition in the deterministic sequence."""

    at: float
    objective: str
    window: str
    state: str  # "fired" | "resolved"
    burn_long: float
    burn_probe: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "at": self.at,
            "objective": self.objective,
            "window": self.window,
            "state": self.state,
            "burn_long": self.burn_long,
            "burn_probe": self.burn_probe,
        }


@dataclass
class _History:
    """Rolling ``(t, good, total)`` samples for one objective."""

    samples: List[Tuple[float, int, int]] = field(default_factory=list)

    def append(self, t: float, good: int, total: int) -> None:
        self.samples.append((t, good, total))

    def trim(self, horizon: float) -> None:
        """Drop samples older than *horizon*, keeping one baseline
        sample at/before it so the longest window still differences
        against something."""
        cut = 0
        for index, (t, _, _) in enumerate(self.samples):
            if t < horizon:
                cut = index
            else:
                break
        if cut > 0:
            del self.samples[:cut]

    def rate_over(self, start: float) -> Optional[float]:
        """Error rate of events that arrived at/after *start*.

        Differences the newest sample against the newest sample
        at/before *start*; when history is shorter than the window the
        earliest sample is the baseline (a cold start burns from its
        first errors rather than waiting a full window).  ``None``
        when the window saw no events.
        """
        if not self.samples:
            return None
        baseline = self.samples[0]
        for sample in self.samples:
            if sample[0] <= start:
                baseline = sample
            else:
                break
        _, good_now, total_now = self.samples[-1]
        good = good_now - baseline[1]
        total = total_now - baseline[2]
        if total <= 0:
            return None
        return max(0.0, 1.0 - good / total)


class SLOEngine:
    """Evaluate objectives x windows over a snapshot stream."""

    def __init__(
        self,
        objectives: Optional[Sequence[SLObjective]] = None,
        windows: Optional[Sequence[BurnWindow]] = None,
        clock: Optional[Callable[[], float]] = None,
        metrics: Optional[MetricsRegistry] = None,
        flight: Optional[object] = None,
    ):
        self.objectives: Tuple[SLObjective, ...] = tuple(
            objectives if objectives is not None else DEFAULT_OBJECTIVES
        )
        names = [objective.name for objective in self.objectives]
        if len(names) != len(set(names)):
            raise ValueError("objective names must be unique")
        self.windows: Tuple[BurnWindow, ...] = tuple(
            windows if windows is not None else DEFAULT_WINDOWS
        )
        self.clock = clock if clock is not None else time.monotonic
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Optional :class:`repro.slo.flight.FlightRecorder`; tripped
        #: on every fired alert.
        self.flight = flight
        self._history: Dict[str, _History] = {
            objective.name: _History() for objective in self.objectives
        }
        #: (objective, window) pairs currently burning.
        self._burning: Dict[Tuple[str, str], bool] = {}
        #: Every fired/resolved transition, in evaluation order -- the
        #: deterministic alert sequence the acceptance test pins.
        self.alerts: List[Alert] = []
        for counter in SLO_COUNTERS:
            self.metrics.incr(counter, 0)

    # ------------------------------------------------------------------
    # observation

    def observe(
        self, snapshot: Dict[str, Any], at: Optional[float] = None
    ) -> List[Alert]:
        """Fold one metrics snapshot; returns transitions it caused."""
        t = self.clock() if at is None else float(at)
        horizon = t - max(window.window_s for window in self.windows)
        for objective in self.objectives:
            good, total = objective.events(snapshot)
            history = self._history[objective.name]
            history.append(t, good, total)
            history.trim(horizon)
        self.metrics.incr("slo_evaluations")
        return self._evaluate(t)

    def _evaluate(self, t: float) -> List[Alert]:
        transitions: List[Alert] = []
        for objective in self.objectives:
            history = self._history[objective.name]
            for window in self.windows:
                burn_long = self._burn(
                    history, objective, t - window.window_s
                )
                burn_probe = self._burn(
                    history, objective, t - window.probe_s
                )
                burning = (
                    burn_long is not None
                    and burn_probe is not None
                    and burn_long >= window.max_burn
                    and burn_probe >= window.max_burn
                )
                key = (objective.name, window.name)
                was_burning = self._burning.get(key, False)
                if burning == was_burning:
                    continue
                self._burning[key] = burning
                alert = Alert(
                    at=t,
                    objective=objective.name,
                    window=window.name,
                    state="fired" if burning else "resolved",
                    burn_long=burn_long or 0.0,
                    burn_probe=burn_probe or 0.0,
                )
                self.alerts.append(alert)
                transitions.append(alert)
                if burning:
                    self.metrics.incr("slo_alerts_fired")
                    self.metrics.incr("slo_windows_burning")
                    _LOG.warning(
                        "SLO burn alert fired",
                        extra={
                            "objective": objective.name,
                            "window": window.name,
                            "burn_long": alert.burn_long,
                            "burn_probe": alert.burn_probe,
                        },
                    )
                    if self.flight is not None:
                        self.flight.trip(
                            "slo-burn",
                            objective=objective.name,
                            window=window.name,
                            burn_long=round(alert.burn_long, 6),
                            burn_probe=round(alert.burn_probe, 6),
                        )
                else:
                    self.metrics.incr("slo_alerts_resolved")
                    self.metrics.incr("slo_windows_burning", -1)
                    _LOG.info(
                        "SLO burn alert resolved",
                        extra={
                            "objective": objective.name,
                            "window": window.name,
                        },
                    )
        return transitions

    def _burn(
        self, history: _History, objective: SLObjective, start: float
    ) -> Optional[float]:
        rate = history.rate_over(start)
        if rate is None:
            return None
        return rate / objective.budget

    # ------------------------------------------------------------------
    # export

    @property
    def burning(self) -> bool:
        """True while any objective x window pair is burning."""
        return any(self._burning.values())

    def status(self) -> Dict[str, Any]:
        """The full evaluation state as one JSON-able document
        (the ``/slo`` endpoint body and ``gendp-slo report --json``)."""
        t = (
            self._history[self.objectives[0].name].samples[-1][0]
            if self.objectives and self._history[self.objectives[0].name].samples
            else None
        )
        objectives = []
        for objective in self.objectives:
            history = self._history[objective.name]
            windows = []
            for window in self.windows:
                burn_long = (
                    self._burn(history, objective, t - window.window_s)
                    if t is not None
                    else None
                )
                burn_probe = (
                    self._burn(history, objective, t - window.probe_s)
                    if t is not None
                    else None
                )
                windows.append(
                    {
                        "window": window.name,
                        "max_burn": window.max_burn,
                        "burn_long": burn_long,
                        "burn_probe": burn_probe,
                        "burning": self._burning.get(
                            (objective.name, window.name), False
                        ),
                    }
                )
            doc = objective.to_dict()
            doc["windows"] = windows
            doc["burning"] = any(w["burning"] for w in windows)
            if history.samples:
                _, good, total = history.samples[-1]
                doc["events"] = {"good": good, "total": total}
            objectives.append(doc)
        return {
            "burning": self.burning,
            "evaluations": self.metrics.counter("slo_evaluations"),
            "objectives": objectives,
            "alerts": [alert.to_dict() for alert in self.alerts],
        }

    def export_section(self) -> Dict[str, Dict[str, float]]:
        """Per-objective gauges for the labelled ``slo`` snapshot
        section (``gendp_slo_<metric>{objective=...}`` series)."""
        section: Dict[str, Dict[str, float]] = {}
        for doc in self.status()["objectives"]:
            gauges: Dict[str, float] = {
                "target": float(doc["target"]),
                "burning": 1.0 if doc["burning"] else 0.0,
            }
            for window in doc["windows"]:
                burn = window["burn_long"]
                if burn is not None:
                    gauges[f"burn_{window['window']}"] = float(burn)
            section[doc["name"]] = gauges
        return section

    def annotate(self, snapshot: Dict[str, Any]) -> Dict[str, Any]:
        """Return *snapshot* with the ``slo`` section (and the
        evaluator's own counters) folded in for the exporters."""
        enriched = dict(snapshot)
        counters = dict(enriched.get("counters") or {})
        for name in SLO_COUNTERS:
            # Overwrite, not add: when the evaluator shares the
            # engine's registry these counters are already in the
            # snapshot, and adding would double-count them.
            counters[name] = self.metrics.counter(name)
        enriched["counters"] = counters
        enriched["slo"] = self.export_section()
        return enriched


def synthesize_burn_replay(
    objective: Optional[SLObjective] = None,
    healthy_ticks: int = 6,
    burn_ticks: int = 6,
    tick_s: float = 10.0,
    events_per_tick: int = 50,
    mode: str = "burn",
) -> List[Dict[str, Any]]:
    """A deterministic ``[{"t": ..., "snapshot": ...}, ...]`` stream.

    Healthy ticks observe every event under the latency threshold;
    burn ticks (``mode="burn"``) push 100% of new events over it, so a
    fast window crosses ``max_burn`` within one probe interval.  Used
    by the acceptance test and ``gendp-slo synth`` (the CI replay).
    """
    objective = objective or DEFAULT_OBJECTIVES[0]
    if objective.kind != "latency":
        raise ValueError("replay synthesis models a latency objective")
    if mode not in ("burn", "healthy"):
        raise ValueError("mode must be 'burn' or 'healthy'")
    bounds = [objective.threshold_s, objective.threshold_s * 10.0]
    records: List[Dict[str, Any]] = []
    good = 0
    total = 0
    ticks = healthy_ticks + (burn_ticks if mode == "burn" else 0)
    for tick in range(ticks):
        burning = mode == "burn" and tick >= healthy_ticks
        total += events_per_tick
        if not burning:
            good += events_per_tick
        snapshot = {
            "counters": {},
            "histograms": {
                objective.histogram: {
                    "count": total,
                    "sum": 0.0,
                    "min": 0.0,
                    "max": bounds[-1],
                    "buckets": [
                        [bounds[0], good],
                        [bounds[1], total - good],
                        ["inf", 0],
                    ],
                }
            },
        }
        records.append({"t": (tick + 1) * tick_s, "snapshot": snapshot})
    return records
