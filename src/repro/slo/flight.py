"""The flight recorder: a bounded black box for crash forensics.

A :class:`FlightRecorder` keeps the last ``capacity`` interesting
things that happened in this process -- spans (tapped off
:class:`repro.obs.trace.TraceRecorder` with a head-sampling knob),
instant notes from the reliability machinery, log records, and
counter deltas -- and writes the whole ring plus trigger context as a
self-contained JSON **black box** when something goes wrong: a DLQ
push, a breaker trip, a sentinel firing, a drain fault, a shard kill,
a journal recovery, or an SLO burn.

Dumps are meant to be diffable across runs of a *seeded* campaign, so
entries carry no pids, tids, or host names, and every wall-clock
derived field is confined to a fixed, documented set
(:func:`canonical_blackbox` strips them; the determinism test asserts
byte-identical canonical dumps).  Filenames are sequence-numbered, not
timestamped, for the same reason.  ``max_dumps`` caps disk use: a
crash loop writes its first N boxes and then counts suppressions
instead of filling the disk.

``gendp-trace --replay box.json`` rebuilds a Chrome trace from a
black box (:func:`blackbox_to_chrome_trace`), so the existing trace
tooling opens post-mortems too.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.engine.metrics import MetricsRegistry
from repro.obs.logs import get_logger

_LOG = get_logger("repro.slo.flight")

#: Flight-recorder counters (prefixed ``flight_``); live in whatever
#: registry the recorder is handed.  Pinned by the drift test.
FLIGHT_COUNTERS: Tuple[str, ...] = (
    "flight_entries_recorded",  # ring appends (post-sampling)
    "flight_trips",  # trigger events seen (dumped or not)
    "flight_dumps_written",  # black boxes written to disk
    "flight_dumps_suppressed",  # trips past the max_dumps cap
)

#: Wall-clock-derived fields :func:`canonical_blackbox` removes: the
#: dump stamp, per-entry clock readings, and span timing args.  The
#: determinism contract is "byte-identical modulo exactly this set".
WALL_CLOCK_DOC_FIELDS: Tuple[str, ...] = ("wall_clock_unix", "clock_s")
WALL_CLOCK_ENTRY_FIELDS: Tuple[str, ...] = ("t",)
WALL_CLOCK_ARG_FIELDS: Tuple[str, ...] = (
    "start",
    "end",
    "duration_s",
    "queue_wait_s",
    "compile_s",
    "execute_s",
    "elapsed_s",
    "peer",
)

#: Black-box document version (bump on schema changes).
BLACKBOX_VERSION = 1


class FlightRecorder:
    """Bounded in-memory ring with black-box dumps on trips."""

    def __init__(
        self,
        capacity: int = 512,
        dir_path: Optional[str] = None,
        max_dumps: int = 8,
        clock: Optional[Any] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        #: Default dump directory (``dump`` may override per call);
        #: None keeps the recorder in-memory-only until a caller
        #: supplies one (the recovery path dumps beside the journal).
        self.dir_path = dir_path
        self.max_dumps = max_dumps
        self.clock = clock if clock is not None else time.monotonic
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._entries: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._seq = 0
        self._dump_seq = 0
        self._dropped = 0
        self._last_counters: Dict[str, int] = {}
        self._lock = threading.Lock()
        for counter in FLIGHT_COUNTERS:
            self.metrics.incr(counter, 0)

    # ------------------------------------------------------------------
    # recording

    def _append(self, kind: str, name: str, args: Dict[str, Any]) -> None:
        with self._lock:
            if len(self._entries) == self.capacity:
                self._dropped += 1
            entry = {
                "seq": self._seq,
                "t": float(self.clock()),
                "kind": kind,
                "name": name,
                "args": args,
            }
            self._seq += 1
            self._entries.append(entry)
        self.metrics.incr("flight_entries_recorded")

    def note(self, name: str, **args: Any) -> None:
        """Record one instant note (reliability events, milestones)."""
        self._append(
            "note", name, {k: v for k, v in args.items() if v is not None}
        )

    def record_span(
        self,
        name: str,
        cat: str,
        start: float,
        end: float,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record one span tapped off a tracer.

        Deliberately drops pid/tid (nondeterministic across runs) and
        folds timing into args where the canonical strip finds it.
        """
        span_args = dict(args or {})
        span_args["start"] = start
        span_args["end"] = end
        self._append("span", name, {"cat": cat, **span_args})

    def record_log(self, record: logging.LogRecord) -> None:
        """Fold one log record (see :meth:`attach_log_handler`)."""
        self._append(
            "log",
            record.name,
            {"level": record.levelname, "message": record.getMessage()},
        )

    def note_counters(self, counters: Dict[str, int]) -> None:
        """Record the delta of *counters* against the last fold.

        Only changed counters land in the ring, so periodic folds of a
        big registry cost one small entry.
        """
        delta: Dict[str, int] = {}
        with self._lock:
            for name, value in sorted(counters.items()):
                value = int(value)
                if value != self._last_counters.get(name, 0):
                    delta[name] = value - self._last_counters.get(name, 0)
                    self._last_counters[name] = value
        if delta:
            self._append("counters", "delta", delta)

    def attach_log_handler(
        self, logger_name: str = "repro", level: int = logging.WARNING
    ) -> logging.Handler:
        """Tap warnings+ from *logger_name* into the ring; returns the
        handler so callers can detach it."""
        recorder = self

        class _FlightHandler(logging.Handler):
            def emit(self, record: logging.LogRecord) -> None:
                try:
                    recorder.record_log(record)
                except Exception:  # never let forensics break logging
                    pass

        handler = _FlightHandler(level=level)
        logging.getLogger(logger_name).addHandler(handler)
        return handler

    # ------------------------------------------------------------------
    # introspection

    def entries(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [dict(entry) for entry in self._entries]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def dropped(self) -> int:
        return self._dropped

    @property
    def dumps_written(self) -> int:
        return self._dump_seq

    # ------------------------------------------------------------------
    # dumping

    def blackbox(self, reason: str, **context: Any) -> Dict[str, Any]:
        """The black-box document for a trip, without writing it."""
        with self._lock:
            entries = [dict(entry) for entry in self._entries]
            dropped = self._dropped
        return {
            "kind": "gendp-blackbox",
            "version": BLACKBOX_VERSION,
            "reason": reason,
            "context": {
                key: value
                for key, value in sorted(context.items())
                if value is not None
            },
            "entries": entries,
            "entries_dropped": dropped,
            "clock_s": float(self.clock()),
            "wall_clock_unix": time.time(),
        }

    def trip(self, reason: str, **context: Any) -> Optional[str]:
        """Record a trigger and dump the black box if a directory is
        configured; returns the dump path (None when suppressed or
        in-memory-only)."""
        self.metrics.incr("flight_trips")
        self.note(f"trip:{reason}", **context)
        if self.dir_path is None:
            return None
        return self.dump(reason, **context)

    def dump(
        self, reason: str, dir_path: Optional[str] = None, **context: Any
    ) -> Optional[str]:
        """Write the black box to disk; returns the path.

        Honors ``max_dumps`` (suppressed trips are counted, never
        raised) and never lets a forensics failure propagate into the
        path that tripped it.
        """
        target_dir = dir_path or self.dir_path
        if target_dir is None:
            return None
        with self._lock:
            if self._dump_seq >= self.max_dumps:
                suppress = True
            else:
                suppress = False
                self._dump_seq += 1
                seq = self._dump_seq
        if suppress:
            self.metrics.incr("flight_dumps_suppressed")
            return None
        document = self.blackbox(reason, **context)
        document["dump_seq"] = seq
        safe_reason = "".join(
            ch if ch.isalnum() or ch == "-" else "-" for ch in reason
        )
        path = os.path.join(
            target_dir, f"blackbox-{seq:03d}-{safe_reason}.json"
        )
        try:
            os.makedirs(target_dir, exist_ok=True)
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(
                    document, handle, indent=2, sort_keys=True, default=str
                )
                handle.write("\n")
        except OSError as error:
            _LOG.warning(
                "black-box dump failed",
                extra={"path": path, "error": str(error)},
            )
            return None
        self.metrics.incr("flight_dumps_written")
        _LOG.info(
            "black box written", extra={"path": path, "reason": reason}
        )
        return path


# ----------------------------------------------------------------------
# post-mortem helpers


def canonical_blackbox(document: Dict[str, Any]) -> Dict[str, Any]:
    """*document* minus every wall-clock-derived field.

    Two dumps from identical seeded runs are byte-identical after this
    strip (``json.dumps(..., sort_keys=True)`` both sides) -- the
    determinism contract the chaos tests pin.
    """
    canonical = {
        key: value
        for key, value in document.items()
        if key not in WALL_CLOCK_DOC_FIELDS
    }
    entries = []
    for entry in canonical.get("entries", []):
        entry = {
            key: value
            for key, value in entry.items()
            if key not in WALL_CLOCK_ENTRY_FIELDS
        }
        args = entry.get("args")
        if isinstance(args, dict):
            entry["args"] = {
                key: value
                for key, value in args.items()
                if key not in WALL_CLOCK_ARG_FIELDS
            }
        entries.append(entry)
    canonical["entries"] = entries
    return canonical


def load_blackbox(path: str) -> Dict[str, Any]:
    """Read and schema-check one black-box file."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if (
        not isinstance(document, dict)
        or document.get("kind") != "gendp-blackbox"
    ):
        raise ValueError(f"{path} is not a gendp black box")
    return document


def blackbox_to_chrome_trace(document: Dict[str, Any]) -> Dict[str, Any]:
    """Rebuild a Chrome trace from a black box (``gendp-trace
    --replay``).

    Span entries become complete events; notes, logs and counter
    deltas become instants.  Entries carry no pid/tid by design, so
    everything lands on one synthetic track (pid 0 / tid 0) -- a
    post-mortem timeline, not a concurrency picture.
    """
    entries = document.get("entries", [])
    origin = None
    for entry in entries:
        args = entry.get("args") or {}
        t = args.get("start", entry.get("t"))
        if isinstance(t, (int, float)):
            origin = t if origin is None else min(origin, t)
    origin = origin or 0.0
    events: List[Dict[str, Any]] = []
    for entry in entries:
        args = dict(entry.get("args") or {})
        kind = entry.get("kind", "note")
        cat = args.pop("cat", kind)
        start = args.pop("start", None)
        end = args.pop("end", None)
        if kind == "span" and isinstance(start, (int, float)):
            event: Dict[str, Any] = {
                "name": str(entry.get("name", "span")),
                "cat": str(cat),
                "ph": "X",
                "ts": (float(start) - origin) * 1e6,
                "dur": max(0.0, (float(end or start) - float(start)) * 1e6),
                "pid": 0,
                "tid": 0,
                "args": args,
            }
        else:
            t = entry.get("t", origin)
            t = t if isinstance(t, (int, float)) else origin
            event = {
                "name": f"{kind}:{entry.get('name', '')}",
                "cat": str(cat),
                "ph": "i",
                "s": "t",
                "ts": max(0.0, (float(t) - origin) * 1e6),
                "pid": 0,
                "tid": 0,
                "args": args,
            }
        events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "blackbox_reason": document.get("reason"),
            "blackbox_version": document.get("version"),
            "entries_dropped": document.get("entries_dropped", 0),
        },
    }
