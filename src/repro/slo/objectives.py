"""Declarative service-level objectives over metrics snapshots.

An :class:`SLObjective` names a user-visible promise ("99% of jobs
finish under 500 ms", "99.9% of admitted requests succeed") and knows
how to read its **good/total event counts** out of one
``MetricsRegistry.snapshot()`` dict.  Everything downstream -- the
burn-rate evaluator (:mod:`repro.slo.burnrate`), the ``/slo``
endpoint, ``gendp-slo`` -- consumes objectives only through
:meth:`SLObjective.events`, so adding an objective is one declaration,
not a new code path.

Two kinds:

- ``latency``: good events are histogram observations at or under
  ``threshold_s``.  The engine's fixed-bucket histograms make this
  exact as long as the threshold sits on a bucket bound (the
  constructor enforces nothing -- a mid-bucket threshold simply counts
  the enclosing bucket's floor, which is conservative).
- ``availability``: good/bad events are counter sums (``good`` minus
  nothing vs ``bad``); total is their sum.

Both read **cumulative** counts; windowing (and therefore burn rates)
lives in the evaluator, which differences snapshots over time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

#: The objective kinds :meth:`SLObjective.events` understands.
OBJECTIVE_KINDS = ("latency", "availability")


@dataclass(frozen=True)
class SLObjective:
    """One declarative objective over the snapshot contract."""

    #: Stable identifier (a Prometheus label value; keep it short).
    name: str
    #: ``latency`` or ``availability``.
    kind: str
    #: Target good/total ratio in (0, 1); the error budget is
    #: ``1 - target``.
    target: float
    #: One-line human description for reports.
    description: str = ""
    #: Latency only: histogram name in ``snapshot["histograms"]``.
    histogram: str = ""
    #: Latency only: observations at/under this bound are good.
    threshold_s: float = 0.0
    #: Availability only: counters whose sum is the good-event count.
    good: Tuple[str, ...] = field(default_factory=tuple)
    #: Availability only: counters whose sum is the bad-event count.
    bad: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.kind not in OBJECTIVE_KINDS:
            raise ValueError(
                f"kind must be one of {OBJECTIVE_KINDS}, got {self.kind!r}"
            )
        if not 0.0 < self.target < 1.0:
            raise ValueError("target must be in (0, 1)")
        if self.kind == "latency" and not self.histogram:
            raise ValueError("latency objectives need a histogram name")
        if self.kind == "availability" and not (self.good or self.bad):
            raise ValueError("availability objectives need counters")

    @property
    def budget(self) -> float:
        """The error budget (allowed bad fraction)."""
        return 1.0 - self.target

    def events(self, snapshot: Dict[str, Any]) -> Tuple[int, int]:
        """Cumulative ``(good, total)`` event counts from *snapshot*.

        Missing histograms/counters read as zero, so an objective can
        be declared before its subsystem ever runs (a cold serve tier
        has no ``serve_*`` counters yet).
        """
        if self.kind == "latency":
            return self._latency_events(snapshot)
        return self._availability_events(snapshot)

    def _latency_events(self, snapshot: Dict[str, Any]) -> Tuple[int, int]:
        histogram = (snapshot.get("histograms") or {}).get(self.histogram)
        if not isinstance(histogram, dict):
            return (0, 0)
        good = 0
        for bound, count in histogram.get("buckets", []):
            if isinstance(bound, (int, float)) and not isinstance(
                bound, bool
            ):
                if float(bound) <= self.threshold_s:
                    good += int(count)
        return (good, int(histogram.get("count", 0)))

    def _availability_events(
        self, snapshot: Dict[str, Any]
    ) -> Tuple[int, int]:
        counters = snapshot.get("counters") or {}
        good = sum(int(counters.get(name, 0)) for name in self.good)
        bad = sum(int(counters.get(name, 0)) for name in self.bad)
        return (good, good + bad)

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "target": self.target,
            "description": self.description,
        }
        if self.kind == "latency":
            doc["histogram"] = self.histogram
            doc["threshold_s"] = self.threshold_s
        else:
            doc["good"] = list(self.good)
            doc["bad"] = list(self.bad)
        return doc


def objective_from_dict(doc: Dict[str, Any]) -> SLObjective:
    """Rebuild an objective from :meth:`SLObjective.to_dict` (or a
    hand-written config file entry)."""
    return SLObjective(
        name=str(doc["name"]),
        kind=str(doc["kind"]),
        target=float(doc["target"]),
        description=str(doc.get("description", "")),
        histogram=str(doc.get("histogram", "")),
        threshold_s=float(doc.get("threshold_s", 0.0)),
        good=tuple(doc.get("good", ())),
        bad=tuple(doc.get("bad", ())),
    )


#: The objectives every gendp deployment watches out of the box.
#: Latency thresholds sit on DEFAULT_LATENCY_BOUNDS bucket edges so
#: the good-event count is exact, not interpolated.
DEFAULT_OBJECTIVES: Tuple[SLObjective, ...] = (
    SLObjective(
        name="job-latency",
        kind="latency",
        target=0.99,
        description="99% of batch executions finish within 500 ms",
        histogram="execute_s",
        threshold_s=0.5,
    ),
    SLObjective(
        name="job-availability",
        kind="availability",
        target=0.99,
        description="99% of drained jobs complete without error",
        good=("jobs_completed",),
        bad=("jobs_failed",),
    ),
    SLObjective(
        name="serve-admission",
        kind="availability",
        target=0.995,
        description="99.5% of serve requests clear admission control",
        good=("serve_admitted",),
        bad=(
            "serve_rejected_draining",
            "serve_rejected_backpressure",
            "serve_rejected_quota",
        ),
    ),
    SLObjective(
        name="durability",
        kind="availability",
        target=0.999,
        description="99.9% of journal appends land intact",
        good=("durable_records_appended",),
        bad=("durable_write_errors", "durable_corrupt_frames"),
    ),
)
