"""Static analysis over cell programs: value ranges, certificates, hazards.

``repro.static`` is the compile-time counterpart of the guard layer's
runtime sentinels.  Where the sentinels *watch* every executed way for
int32 overflow, SIMD-lane saturation, and log-floor underflow, this
package *proves* their absence by abstract interpretation over the same
:class:`repro.opt.model.LinearProgram` def/use model the optimizer and
lint layers already share:

- :mod:`repro.static.intervals` -- the interval (value-range) abstract
  domain with widening to the machine's power-of-two rails.
- :mod:`repro.static.absint` -- a generic forward dataflow engine whose
  abstract transfer mirrors ``execute_way``'s observe order exactly.
- :mod:`repro.static.contracts` -- per-kernel declared input contracts
  (seeded from ``repro.opt.kernels`` sweep contracts) that condition
  every proof.
- :mod:`repro.static.certify` -- :class:`ProgramSafetyCertificate`
  construction; certified programs let the engine elide the sentinel
  observe hook on the hot path.
- :mod:`repro.static.hazards` -- SPM alias/read-before-write analysis,
  RF pressure from exact liveness, and FIFO send/recv protocol checks
  that catch PE-array deadlocks before the simulator hangs.
- :mod:`repro.static.report` -- the ``gendp-analyze`` report model,
  sharing the guard/lint :class:`repro.diagnostics.Diagnostic` schema.
"""

from repro.static.absint import (
    ProgramAnalysis,
    WayAnalysis,
    analyze_fixpoint,
    analyze_program,
)
from repro.static.certify import (
    HazardVerdict,
    ProgramSafetyCertificate,
    certify_program,
    compiled_certificate,
)
from repro.static.contracts import (
    KernelContract,
    contract_names,
    kernel_contract,
)
from repro.static.hazards import (
    areg_value_intervals,
    control_spm_diagnostics,
    count_port_ops,
    rf_pressure_diagnostics,
    wavefront_protocol_diagnostics,
)
from repro.static.intervals import INT32, LANE8, Interval, IntervalDomain
from repro.static.report import (
    AnalysisReport,
    ProgramAnalysisEntry,
    run_analysis,
)

__all__ = [
    "AnalysisReport",
    "HazardVerdict",
    "INT32",
    "Interval",
    "IntervalDomain",
    "KernelContract",
    "LANE8",
    "ProgramAnalysis",
    "ProgramAnalysisEntry",
    "ProgramSafetyCertificate",
    "WayAnalysis",
    "analyze_fixpoint",
    "analyze_program",
    "areg_value_intervals",
    "certify_program",
    "compiled_certificate",
    "contract_names",
    "control_spm_diagnostics",
    "count_port_ops",
    "kernel_contract",
    "rf_pressure_diagnostics",
    "run_analysis",
    "wavefront_protocol_diagnostics",
]
