"""Generic forward dataflow over the shared ``LinearProgram`` model.

The analysis walks the same def/use-ordered way list the optimizer
passes transform (:func:`repro.opt.model.linearize`), so guard, opt,
and static literally share one program representation.  Because cell
programs are SSA and straight-line, one in-order pass per seeding is a
fixpoint; recurrence across *cell invocations* (this cell's outputs
feeding the next cell's recurrent inputs) is closed separately by
Kleene iteration with widening/narrowing in :func:`analyze_fixpoint`.

The abstract transfer for one way, :func:`abstract_way`, mirrors
:func:`repro.dpmap.codegen.execute_way` **step for step**, including
the order and count of ``observe`` callbacks -- that alignment is what
lets a certificate speak for every value the runtime sentinel would
have seen, and what the property tests in ``tests/properties`` check
by replaying concrete executions against the abstract observation
sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import Dict, List, Optional, Tuple

from repro.dfg.graph import OPCODE_ARITY
from repro.isa.compute import CUInstruction, Imm, SlotOp
from repro.opt.model import LinearProgram, linearize
from repro.static.intervals import Interval, IntervalDomain

#: Iteration cap for the feedback fixpoint; widening to the rails makes
#: real kernels converge in < 5 passes, so hitting this is a bug.
MAX_FIXPOINT_ITERATIONS = 32


def _linear(program) -> LinearProgram:
    """Linearize a cell program or an engine ``CompiledProgram``.

    ``CompiledProgram`` carries no ``node_regs``; :func:`linearize`
    only reads it as a passthrough, so an empty mapping is fine.
    """
    if isinstance(program, LinearProgram):
        return program
    if hasattr(program, "node_regs"):
        return linearize(program)
    shim = SimpleNamespace(
        instructions=list(program.instructions),
        input_regs=dict(program.input_regs),
        output_regs=dict(program.output_regs),
        node_regs={},
    )
    return linearize(shim)


@dataclass(frozen=True)
class WayAnalysis:
    """Abstract result of one CU way.

    ``observed`` holds one interval per ``observe`` callback the
    runtime would issue for this way, in callback order.
    """

    index: int
    bundle: Optional[int]
    dest: int
    observed: Tuple[Interval, ...]
    result: Interval


@dataclass
class ProgramAnalysis:
    """One contract-seeded forward pass over a program."""

    ways: List[WayAnalysis]
    state: Dict[int, Interval]
    inputs: Dict[str, Interval]
    outputs: Dict[str, Interval]

    @property
    def observed(self) -> List[Interval]:
        """The full observation sequence, one entry per runtime
        ``observe`` call across one cell execution."""
        return [
            interval for way in self.ways for interval in way.observed
        ]


def abstract_way(
    way: CUInstruction,
    state: Dict[int, Interval],
    domain: Optional[IntervalDomain] = None,
    match_range: Optional[Interval] = None,
) -> Tuple[Interval, List[Interval]]:
    """Abstract mirror of ``execute_way``; returns (result, observed)."""
    if domain is None:
        domain = IntervalDomain()
    observed: List[Interval] = []

    def operand(op) -> Interval:
        if isinstance(op, Imm):
            return domain.const(op.value)
        # execute_way reads missing registers as 0 (rf.get(index, 0)).
        return state.get(op.index, domain.const(0))

    def run_slot(slot: SlotOp) -> Interval:
        args = [operand(op) for op in slot.operands]
        value = domain.transfer(slot.opcode, args, match_range)
        observed.append(value)
        return value

    if way.kind == "mul":
        return run_slot(way.mul), observed
    left_out = run_slot(way.left) if way.left is not None else None
    right_out = run_slot(way.right) if way.right is not None else None
    if way.root is None:
        result = left_out if left_out is not None else right_out
        return result, observed
    if OPCODE_ARITY[way.root] == 1:
        value = domain.transfer(way.root, [left_out], match_range)
    else:
        inputs = [left_out, right_out]
        if way.root_swapped:
            inputs.reverse()
        value = domain.transfer(way.root, inputs, match_range)
    observed.append(value)
    return value, observed


def analyze_program(
    program,
    contract_inputs: Dict[str, Interval],
    match_range: Optional[Interval] = None,
    domain: Optional[IntervalDomain] = None,
) -> ProgramAnalysis:
    """Forward value-range pass seeded from a declared input contract.

    Inputs missing from the contract start at lattice top (sound: the
    analysis then claims nothing about values derived from them).
    """
    if domain is None:
        domain = IntervalDomain()
    lp = _linear(program)
    state: Dict[int, Interval] = {}
    seeded: Dict[str, Interval] = {}
    for name, reg in lp.input_regs.items():
        interval = contract_inputs.get(name, domain.top())
        seeded[name] = interval
        state[reg] = interval
    ways: List[WayAnalysis] = []
    for index, way in enumerate(lp.ways):
        result, observed = abstract_way(way, state, domain, match_range)
        state[way.dest.index] = result
        ways.append(
            WayAnalysis(
                index=index,
                bundle=lp.origin_bundles[index],
                dest=way.dest.index,
                observed=tuple(observed),
                result=result,
            )
        )
    outputs = {
        name: state.get(reg, domain.const(0))
        for name, reg in lp.output_regs.items()
    }
    return ProgramAnalysis(
        ways=ways, state=state, inputs=seeded, outputs=outputs
    )


@dataclass
class FixpointResult:
    """Steady-state summary of the cross-invocation recurrence."""

    analysis: ProgramAnalysis
    iterations: int
    #: True when one contract-seeded pass already maps every recurrent
    #: output back inside its declared input interval -- i.e. the
    #: contract is inductively closed and holds for *every* sweep
    #: length, not just per-invocation.  Monotone accumulator kernels
    #: (DTW's distance, LCS's counter, chaining's score) are expected
    #: to report False here: their certificates are per-invocation
    #: conditional and the contract's validity over whole sweeps is
    #: enforced empirically by the fuzz harness and the runtime
    #: sentinel cross-check.
    inductively_closed: bool
    #: Feedback-input intervals at the post-widening/narrowing fixpoint.
    steady_inputs: Dict[str, Interval] = field(default_factory=dict)


def analyze_fixpoint(
    program,
    contract_inputs: Dict[str, Interval],
    feedback: Dict[str, Tuple[str, ...]],
    match_range: Optional[Interval] = None,
    domain: Optional[IntervalDomain] = None,
) -> FixpointResult:
    """Kleene-iterate the output -> recurrent-input feedback edges.

    Each iteration joins the previous pass's output intervals into the
    recurrent inputs named by *feedback*, widening to the rails after
    the first ascent so unbounded accumulators reach a stable (if
    coarse) summary; one narrowing descent then tightens endpoints the
    widening overshot.
    """
    if domain is None:
        domain = IntervalDomain()
    inputs = dict(contract_inputs)
    first = analyze_program(program, inputs, match_range, domain)
    closed = all(
        first.outputs[out].within(
            contract_inputs.get(name, domain.top())
        )
        for out, names in feedback.items()
        if out in first.outputs
        for name in names
    )

    analysis = first
    iterations = 1
    while iterations < MAX_FIXPOINT_ITERATIONS:
        changed = False
        for out, names in feedback.items():
            if out not in analysis.outputs:
                continue
            produced = analysis.outputs[out]
            for name in names:
                old = inputs.get(name, domain.top())
                grown = domain.join(old, produced)
                if not domain.leq(grown, old):
                    inputs[name] = domain.widen(old, grown)
                    changed = True
        if not changed:
            break
        analysis = analyze_program(program, inputs, match_range, domain)
        iterations += 1

    # One narrowing descent: recompute from the widened inputs and pull
    # infinite endpoints back toward what the program actually produces.
    narrowed = dict(inputs)
    for out, names in feedback.items():
        if out not in analysis.outputs:
            continue
        produced = analysis.outputs[out]
        for name in names:
            declared = contract_inputs.get(name, domain.top())
            refined = domain.narrow(
                narrowed.get(name, domain.top()),
                domain.join(declared, produced),
            )
            narrowed[name] = refined
    analysis = analyze_program(program, narrowed, match_range, domain)
    iterations += 1
    return FixpointResult(
        analysis=analysis,
        iterations=iterations,
        inductively_closed=closed,
        steady_inputs=narrowed,
    )
