"""Compile-time safety certificates for cell programs.

A :class:`ProgramSafetyCertificate` records, per hazard class the
runtime sentinel for that kernel arms (:func:`make_sentinel`), whether
the interval analysis proved the hazard *cannot* fire for any cell
invocation whose inputs respect the declared contract:

- ``int32-overflow`` -- every observed value inside [INT32_MIN,
  INT32_MAX]; armed for every kernel.
- ``lane-saturation`` -- every observed value inside the signed 8-bit
  lane range; armed for BSW (the paper's SIMD kernel).
- ``log-underflow`` -- every observed value strictly above the log2
  fixed-point floor; armed for PairHMM.

``sentinel_free`` is the conjunction over armed classes.  The proof is
*per-invocation conditional*: monotone DP accumulators (DTW's
distance, LCS's counter, chaining's score) grow across cells, so a
contract closed under the recurrence is impossible for them --
``inductively_closed`` reports whether the declared contract happens
to be a recurrence invariant (POA's edge fold and Bellman-Ford's
relaxation are), purely as information.  Contract validity on real
sweeps is enforced by the fuzz soundness harness and by the engine's
runtime cross-check: a sentinel firing on a certified program
increments ``static_certificate_violations`` and is a hard test
failure.

The engine attaches certificates as plain dicts
(:func:`compiled_certificate`) so ``CompiledProgram`` stays a simple
picklable value crossing the shared-memory worker boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dpax.pe import INT32_MAX, INT32_MIN, LANE8_MAX, LANE8_MIN
from repro.guard.sentinels import PAIRHMM_UNDERFLOW_FLOOR
from repro.static.absint import analyze_fixpoint, analyze_program
from repro.static.contracts import KernelContract, kernel_contract
from repro.static.intervals import Interval

#: Hazard classes in report order.
HAZARD_CLASSES = ("int32-overflow", "lane-saturation", "log-underflow")

_INT32 = Interval(INT32_MIN, INT32_MAX)
_LANE8 = Interval(LANE8_MIN, LANE8_MAX)


def armed_hazards(kernel: str) -> Tuple[str, ...]:
    """The hazard classes :func:`make_sentinel` arms for *kernel*."""
    armed = ["int32-overflow"]
    if kernel == "bsw":
        armed.append("lane-saturation")
    if kernel == "pairhmm":
        armed.append("log-underflow")
    return tuple(armed)


def _hazard_ok(hazard: str, interval: Interval) -> bool:
    if hazard == "int32-overflow":
        return interval.within(_INT32)
    if hazard == "lane-saturation":
        return interval.within(_LANE8)
    if hazard == "log-underflow":
        # Sentinel semantics: value <= floor counts as an underflow.
        return interval.definitely_above(PAIRHMM_UNDERFLOW_FLOOR)
    raise ValueError(f"unknown hazard class {hazard!r}")


@dataclass(frozen=True)
class HazardVerdict:
    """One hazard class's proof outcome."""

    hazard: str
    armed: bool
    proven_absent: bool
    #: Observation index + bundle of the first unprovable value, for
    #: diagnostics ("observation 12, bundle 3"); None when proven.
    witness: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "hazard": self.hazard,
            "armed": self.armed,
            "proven_absent": self.proven_absent,
            "witness": self.witness,
        }


@dataclass(frozen=True)
class ProgramSafetyCertificate:
    name: str
    kernel: str
    program_hash: str
    contract: bool
    sentinel_free: bool
    verdicts: Tuple[HazardVerdict, ...]
    inductively_closed: bool
    fixpoint_iterations: int
    #: (lo, hi) per runtime observe call, in observation order; the
    #: soundness harness replays concrete executions against this.
    observed_intervals: Tuple[Tuple[Optional[int], Optional[int]], ...]

    def verdict(self, hazard: str) -> Optional[HazardVerdict]:
        for entry in self.verdicts:
            if entry.hazard == hazard:
                return entry
        return None

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kernel": self.kernel,
            "program_hash": self.program_hash,
            "contract": self.contract,
            "sentinel_free": self.sentinel_free,
            "verdicts": [entry.to_dict() for entry in self.verdicts],
            "inductively_closed": self.inductively_closed,
            "fixpoint_iterations": self.fixpoint_iterations,
            "observed_intervals": [
                list(pair) for pair in self.observed_intervals
            ],
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "ProgramSafetyCertificate":
        return ProgramSafetyCertificate(
            name=str(data["name"]),
            kernel=str(data["kernel"]),
            program_hash=str(data["program_hash"]),
            contract=bool(data["contract"]),
            sentinel_free=bool(data["sentinel_free"]),
            verdicts=tuple(
                HazardVerdict(
                    hazard=str(entry["hazard"]),
                    armed=bool(entry["armed"]),
                    proven_absent=bool(entry["proven_absent"]),
                    witness=entry.get("witness"),
                )
                for entry in data.get("verdicts", ())
            ),
            inductively_closed=bool(data["inductively_closed"]),
            fixpoint_iterations=int(data["fixpoint_iterations"]),
            observed_intervals=tuple(
                (pair[0], pair[1])
                for pair in data.get("observed_intervals", ())
            ),
        )


def _uncertified(
    name: str, kernel: str, program_hash: str
) -> ProgramSafetyCertificate:
    verdicts = tuple(
        HazardVerdict(
            hazard=hazard,
            armed=hazard in armed_hazards(kernel),
            proven_absent=False,
            witness="no declared input contract",
        )
        for hazard in HAZARD_CLASSES
    )
    return ProgramSafetyCertificate(
        name=name,
        kernel=kernel,
        program_hash=program_hash,
        contract=False,
        sentinel_free=False,
        verdicts=verdicts,
        inductively_closed=False,
        fixpoint_iterations=0,
        observed_intervals=(),
    )


def certify_program(
    kernel: str,
    program,
    name: Optional[str] = None,
    contract: Optional[KernelContract] = None,
) -> ProgramSafetyCertificate:
    """Run the value-range analysis and issue a certificate.

    *program* is a :class:`repro.dpmap.codegen.CellProgram` or an
    engine :class:`repro.engine.cache.CompiledProgram`.  With no
    contract (declared or passed), the program is honestly reported
    uncertified rather than guessed at.
    """
    label = name or kernel
    if contract is None:
        contract = kernel_contract(label)
    program_hash = getattr(program, "program_hash", "")
    if not program_hash and hasattr(program, "content_hash"):
        program_hash = program.content_hash()
    if contract is None:
        return _uncertified(label, kernel, program_hash)

    analysis = analyze_program(
        program, dict(contract.inputs), contract.match_range
    )
    observed: List[Tuple[Interval, Optional[int]]] = []
    for way in analysis.ways:
        for interval in way.observed:
            observed.append((interval, way.bundle))

    armed = armed_hazards(contract.kernel)
    verdicts = []
    for hazard in HAZARD_CLASSES:
        witness = None
        proven = True
        for index, (interval, bundle) in enumerate(observed):
            if not _hazard_ok(hazard, interval):
                proven = False
                witness = (
                    f"observation {index}"
                    + (f", bundle {bundle}" if bundle is not None else "")
                    + f": {interval}"
                )
                break
        verdicts.append(
            HazardVerdict(
                hazard=hazard,
                armed=hazard in armed,
                proven_absent=proven,
                witness=witness,
            )
        )

    fixpoint = analyze_fixpoint(
        program,
        dict(contract.inputs),
        dict(contract.feedback),
        contract.match_range,
    )
    sentinel_free = all(
        verdict.proven_absent for verdict in verdicts if verdict.armed
    )
    return ProgramSafetyCertificate(
        name=label,
        kernel=contract.kernel,
        program_hash=program_hash,
        contract=True,
        sentinel_free=sentinel_free,
        verdicts=tuple(verdicts),
        inductively_closed=fixpoint.inductively_closed,
        fixpoint_iterations=fixpoint.iterations,
        observed_intervals=tuple(
            (interval.lo, interval.hi) for interval, _ in observed
        ),
    )


def compiled_certificate(
    kernel: str, compiled
) -> Optional[Dict[str, object]]:
    """Certificate dict for the engine's compile seam, or None.

    Analysis failures (exotic programs the linearizer rejects) must
    never fail a compile, so they degrade to "no certificate" -- the
    engine then simply keeps the sentinels on.
    """
    try:
        certificate = certify_program(kernel, compiled, name=kernel)
    except Exception:
        return None
    return certificate.to_dict()
