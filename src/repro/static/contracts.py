"""Declared input contracts conditioning every value-range proof.

A :class:`KernelContract` states, per cell program, the interval every
named input is promised to stay inside.  The numbers come from the
ground truth the runtime layers already encode:

- boundary constants and sweep initialisation in
  :mod:`repro.engine.runners` and :mod:`repro.guard.diff` (``NEG``,
  DTW's ``INF``, chaining's scaled seed weights),
- the substitution / emission tables behind ``MATCH_SCORE``
  (:func:`repro.engine.runners.match_table_for`),
- declared workload caps (sequence lengths up to
  :data:`MAX_SEQUENCE_LENGTH`, coordinates up to 2^20).

Certificates issued by :mod:`repro.static.certify` are *conditional*
on these contracts: the proof says "no armed sentinel can fire for any
cell invocation whose inputs respect the declared intervals".  The
feedback edges (which output feeds which recurrent input of the next
cell) are cross-checked against the optimizer's sweep contracts
(:func:`repro.opt.kernels.contract_for`), so static, opt, and guard
agree on what recurs.  Contract *validity* on real sweeps is enforced
empirically by ``tests/properties/test_static_soundness.py`` and by
the engine's runtime certificate cross-check.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.kernels.pairhmm import LOG_FRACTION_BITS, HMMParameters
from repro.opt.kernels import contract_for
from repro.static.intervals import Interval

#: Declared cap on sequence / signal lengths a contract covers.  Real
#: workloads (reads, haplotypes, DTW signals) are orders of magnitude
#: shorter; the cap only needs to keep accumulated scores far from the
#: int32 boundary.
MAX_SEQUENCE_LENGTH = 4096

#: Integer "minus infinity" for gap/log states -- mirrors the runners.
NEG = -(1 << 20)

#: DTW's unreachable-cell boundary cost -- mirrors the runners.
INF = 1 << 20


def _pairhmm_fixed_params() -> Dict[str, int]:
    """Default log2 fixed-point transitions, matching the engine runner."""
    params = HMMParameters()
    scale = 1 << LOG_FRACTION_BITS

    def to_fixed(probability: float) -> int:
        return int(round(math.log2(probability) * scale))

    error = 10.0 ** (-params.base_quality / 10.0)
    return {
        "a_mm": to_fixed(params.match_to_match),
        "a_im": to_fixed(params.indel_to_match),
        "a_gap": to_fixed(params.gap_open),
        "a_ext": to_fixed(params.gap_extend),
        "emit_match": to_fixed(1.0 - error),
        "emit_mismatch": to_fixed(error / 3.0),
    }


@dataclass(frozen=True)
class KernelContract:
    """Declared input ranges + recurrence wiring for one cell program."""

    name: str
    #: Base kernel the sentinel policy keys on ("poa:edge" -> "poa").
    kernel: str
    inputs: Mapping[str, Interval]
    #: Range of the kernel's MATCH_SCORE table, when the program uses one.
    match_range: Optional[Interval] = None
    #: output name -> recurrent input names it feeds on the next cell.
    feedback: Mapping[str, Tuple[str, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        consumed = contract_for(self.name)
        if consumed is not None and set(self.feedback) != set(consumed):
            raise ValueError(
                f"{self.name}: feedback outputs {sorted(self.feedback)} "
                f"disagree with the sweep contract {sorted(consumed)}"
            )


def _build_contracts() -> Dict[str, KernelContract]:
    base = Interval(0, 3)
    hmm = _pairhmm_fixed_params()
    log_state = Interval(NEG, 0)
    score = Interval(0, 1 << 16)
    gap_state = Interval(NEG - MAX_SEQUENCE_LENGTH, 1 << 16)
    coord = Interval(0, 1 << 20)

    contracts = [
        KernelContract(
            name="bsw",
            kernel="bsw",
            inputs={
                "q": base,
                "t": base,
                "h_diag": score,
                "h_up": score,
                "h_left": score,
                "e_up": Interval(NEG, 1 << 16),
                "f_left": Interval(NEG, 1 << 16),
            },
            match_range=Interval(-1, 1),
            feedback={
                "h": ("h_diag", "h_up", "h_left"),
                "e": ("e_up",),
                "f": ("f_left",),
            },
        ),
        KernelContract(
            name="pairhmm",
            kernel="pairhmm",
            inputs={
                "q": base,
                "t": base,
                "m_diag": log_state,
                "i_diag": log_state,
                "d_diag": log_state,
                "m_up": log_state,
                "i_up": log_state,
                "m_left": log_state,
                "d_left": log_state,
                "a_mm": Interval.const(hmm["a_mm"]),
                "a_im": Interval.const(hmm["a_im"]),
                "a_gap": Interval.const(hmm["a_gap"]),
                "a_ext": Interval.const(hmm["a_ext"]),
            },
            match_range=Interval(
                hmm["emit_mismatch"], hmm["emit_match"]
            ),
            feedback={
                "m": ("m_diag", "m_up", "m_left"),
                "i": ("i_diag", "i_up"),
                "d": ("d_diag", "d_left"),
            },
        ),
        KernelContract(
            name="lcs",
            kernel="lcs",
            # LCS compares raw symbol codes with CMP_EQ; any byte
            # alphabet is covered.
            inputs={
                "x": Interval(0, 255),
                "y": Interval(0, 255),
                "c_diag": Interval(0, 1 << 16),
                "c_up": Interval(0, 1 << 16),
                "c_left": Interval(0, 1 << 16),
            },
            feedback={"c": ("c_diag", "c_up", "c_left")},
        ),
        KernelContract(
            name="dtw",
            kernel="dtw",
            # d accumulates INF + rows * |a - b|, so the recurrent
            # state rail sits at 2^29 > 2^20 + 4096 * 65535.
            inputs={
                "a": Interval(0, (1 << 16) - 1),
                "b": Interval(0, (1 << 16) - 1),
                "d_diag": Interval(0, 1 << 29),
                "d_up": Interval(0, 1 << 29),
                "d_left": Interval(0, 1 << 29),
            },
            feedback={"d": ("d_diag", "d_up", "d_left")},
        ),
        KernelContract(
            name="chain",
            kernel="chain",
            inputs={
                "x_i": coord,
                "y_i": coord,
                "x_j": coord,
                "y_j": coord,
                "w": Interval(0, 1 << 10),
                "f_j": Interval(0, 1 << 28),
                "f_i": Interval(0, 1 << 28),
                "j_idx": coord,
                "parent": Interval(-1, 1 << 20),
            },
            feedback={"f": ("f_j", "f_i"), "parent": ("parent",)},
        ),
        KernelContract(
            name="poa:edge",
            kernel="poa",
            inputs={
                "diag_best": gap_state,
                "up_best": gap_state,
                "h_pred_diag": score,
                "h_pred_up": score,
                "f_pred_up": gap_state,
            },
            feedback={
                "diag_best": ("diag_best",),
                "up_best": ("up_best",),
            },
        ),
        KernelContract(
            name="poa:final",
            kernel="poa",
            inputs={
                "q": base,
                "t": base,
                "diag_best": gap_state,
                "up_best": gap_state,
                "h_left": score,
                "e_left": gap_state,
            },
            match_range=Interval(-1, 1),
            feedback={"h": ("h_left",), "e": ("e_left",)},
        ),
        KernelContract(
            name="bellman_ford",
            kernel="bellman_ford",
            # Negative edge weights are in-contract (the range-analysis
            # stress case): distances may descend below zero, bounded
            # by rounds * |min weight|.
            inputs={
                "dist_u": Interval(-(1 << 24), 1 << 25),
                "dist_v": Interval(-(1 << 24), 1 << 25),
                "weight": Interval(-(1 << 10), 1 << 20),
                "u_idx": coord,
                "pred": Interval(-1, 1 << 20),
            },
            feedback={
                "dist": ("dist_u", "dist_v"),
                "pred": ("pred",),
            },
        ),
    ]
    return {contract.name: contract for contract in contracts}


_CONTRACTS = _build_contracts()


def kernel_contract(name: str) -> Optional[KernelContract]:
    """The declared contract for a cell program label, or None.

    Labels follow the guard's convention: the kernel name for
    single-cell kernels, ``kernel:cell`` for multi-program kernels
    (``poa:edge``, ``poa:final``).
    """
    return _CONTRACTS.get(name)


def contract_names() -> Tuple[str, ...]:
    return tuple(sorted(_CONTRACTS))
