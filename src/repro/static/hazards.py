"""Hazard and deadlock analyses over control threads and cell programs.

Three analyses, all emitting the shared :class:`repro.diagnostics.
Diagnostic` schema so ``gendp-analyze`` and the verifier speak one
severity model:

- **Scratchpad access analysis** -- abstract interpretation of the
  decoder's address registers (LI/ADDI/ADD over the interval domain,
  branch-aware worklist fixpoint with widening) resolves computed SPM
  offsets to intervals.  Definitely-out-of-bounds indirect accesses
  are errors; reads of slots no write can ever reach are flagged, and
  overlapping write ranges are reported as aliases.
- **RF pressure** -- exact backward liveness
  (:func:`repro.opt.model.peak_live`) against the machine's register
  file capacity, tighter than lint's allocation-width heuristic.
- **FIFO protocol analysis** -- statically counts port operations in
  every control thread of a wavefront load-out by abstract execution
  (address registers concrete, everything else opaque) and checks
  send/recv conservation on each link.  A mismatch means a PE blocks
  forever on a pop that never arrives: the PE-array deadlock the
  simulator would otherwise only reveal by hanging.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.diagnostics import Diagnostic, Severity
from repro.isa.control import (
    BRANCH_OPS,
    ControlInstruction,
    ControlOp,
    Loc,
    PORT_SPACES,
    Space,
)
from repro.opt.model import peak_live
from repro.static.intervals import Interval

#: Joins at a CFG node beyond this count switch to widening, bounding
#: the fixpoint on loops whose trip counts the analysis cannot see.
_WIDEN_AFTER = 4

#: Step budget for the concrete port-op counter; the largest wavefront
#: load-outs in the tests run a few thousand control steps.
_PORT_COUNT_BUDGET = 1_000_000


def _successors(
    index: int, instruction: ControlInstruction, length: int
) -> List[int]:
    if instruction.op is ControlOp.HALT:
        return []
    successors = []
    if index + 1 < length:
        successors.append(index + 1)
    if instruction.op in BRANCH_OPS and instruction.offset is not None:
        target = index + instruction.offset
        if 0 <= target < length:
            successors.append(target)
    return successors


def _transfer_aregs(
    instruction: ControlInstruction, state: Dict[int, Interval]
) -> Dict[int, Interval]:
    op = instruction.op
    if op is ControlOp.LI:
        dest = instruction.dest
        if dest is not None and dest.space is Space.ADDR:
            state = dict(state)
            state[dest.index] = Interval.const(instruction.imm)
        return state
    if op is ControlOp.ADDI:
        state = dict(state)
        base = state.get(instruction.rs1, Interval.const(0))
        state[instruction.rd] = Interval(
            None if base.lo is None else base.lo + instruction.imm,
            None if base.hi is None else base.hi + instruction.imm,
        )
        return state
    if op is ControlOp.ADD:
        state = dict(state)
        a = state.get(instruction.rs1, Interval.const(0))
        b = state.get(instruction.rs2, Interval.const(0))
        state[instruction.rd] = Interval(
            None if a.lo is None or b.lo is None else a.lo + b.lo,
            None if a.hi is None or b.hi is None else a.hi + b.hi,
        )
        return state
    if op is ControlOp.MV:
        dest = instruction.dest
        if dest is not None and dest.space is Space.ADDR:
            # Loaded from memory: value unknown to this analysis.
            state = dict(state)
            state[dest.index] = Interval.top()
        return state
    return state


def _join_states(
    old: Dict[int, Interval],
    new: Dict[int, Interval],
    widen: bool,
) -> Tuple[Dict[int, Interval], bool]:
    merged = dict(old)
    changed = False
    for index, interval in new.items():
        if index not in merged:
            merged[index] = interval
            changed = True
            continue
        grown = merged[index].join(interval)
        if not grown.within(merged[index]):
            merged[index] = (
                merged[index].widen(grown) if widen else grown
            )
            changed = True
    return merged, changed


def areg_value_intervals(
    instructions: Sequence[ControlInstruction],
) -> List[Dict[int, Interval]]:
    """Per-instruction *entry* states of the address registers.

    Address registers reset to zero, so an untouched register is the
    constant 0; registers loaded from memory (``mv a<i>, s...``) go to
    top.  Branch targets are join points; widening past a visit budget
    bounds loops with data-dependent trip counts.
    """
    length = len(instructions)
    states: List[Optional[Dict[int, Interval]]] = [None] * length
    visits = [0] * length
    if length == 0:
        return []
    states[0] = {}
    worklist = [0]
    while worklist:
        index = worklist.pop()
        entry = states[index]
        exit_state = _transfer_aregs(instructions[index], entry)
        for successor in _successors(index, instructions[index], length):
            visits[successor] += 1
            if states[successor] is None:
                states[successor] = dict(exit_state)
                worklist.append(successor)
                continue
            merged, changed = _join_states(
                states[successor],
                exit_state,
                widen=visits[successor] > _WIDEN_AFTER,
            )
            if changed:
                states[successor] = merged
                worklist.append(successor)
    return [state if state is not None else {} for state in states]


def _loc_interval(
    loc: Loc, state: Dict[int, Interval]
) -> Interval:
    if loc.indirect:
        return state.get(loc.index, Interval.const(0))
    return Interval.const(loc.index)


def _spm_accesses(
    instructions: Sequence[ControlInstruction],
    states: List[Dict[int, Interval]],
) -> Tuple[List[Tuple[int, Loc, Interval]], List[Tuple[int, Loc, Interval]]]:
    """(writes, reads): (instruction index, loc, address interval)."""
    writes: List[Tuple[int, Loc, Interval]] = []
    reads: List[Tuple[int, Loc, Interval]] = []
    for index, instruction in enumerate(instructions):
        state = states[index]
        dest, src = instruction.dest, instruction.src
        if dest is not None and dest.space is Space.SPM:
            writes.append((index, dest, _loc_interval(dest, state)))
        if src is not None and src.space is Space.SPM:
            reads.append((index, src, _loc_interval(src, state)))
    return writes, reads


def control_spm_diagnostics(
    instructions: Sequence[ControlInstruction],
    spm_size: int,
) -> List[Diagnostic]:
    """Computed-offset scratchpad hazards for one control thread."""
    states = areg_value_intervals(instructions)
    writes, reads = _spm_accesses(instructions, states)
    spm_bounds = Interval(0, spm_size - 1)
    out: List[Diagnostic] = []

    for index, loc, interval in writes + reads:
        if not loc.indirect:
            continue  # direct slots are checked by the verifier already
        if interval.meet(spm_bounds) is None:
            out.append(
                Diagnostic(
                    rule="spm-indirect-out-of-bounds",
                    message=(
                        f"indirect scratchpad access via a{loc.index} "
                        f"resolves to {interval}, entirely outside the "
                        f"{spm_size}-word scratchpad"
                    ),
                    bundle=index,
                )
            )

    write_ranges = [interval for _, _, interval in writes]
    for index, loc, interval in reads:
        if not loc.indirect:
            continue  # literal slots: scripted preloads read reset state
        clamped = interval.meet(spm_bounds)
        if clamped is None:
            continue  # already reported out-of-bounds above
        if any(
            clamped.meet(written) is not None for written in write_ranges
        ):
            continue
        out.append(
            Diagnostic(
                rule="spm-read-before-write",
                message=(
                    f"scratchpad read at {clamped} but no write in this "
                    "program can reach that range; the read sees reset "
                    "zeros"
                ),
                bundle=index,
                severity=Severity.WARNING,
            )
        )

    # Overlapping *indirect* write ranges can silently alias distinct
    # logical cells -- worth a note, not a failure.
    indirect_writes = [
        (index, interval)
        for index, loc, interval in writes
        if loc.indirect and interval.meet(spm_bounds) is not None
    ]
    for position, (index, interval) in enumerate(indirect_writes):
        for other_index, other in indirect_writes[position + 1 :]:
            if interval.meet(other) is not None:
                out.append(
                    Diagnostic(
                        rule="spm-write-alias",
                        message=(
                            f"indirect scratchpad writes at instructions "
                            f"{index} and {other_index} may alias "
                            f"({interval} overlaps {other})"
                        ),
                        bundle=index,
                        severity=Severity.INFO,
                    )
                )
                break
    return out


# ----------------------------------------------------------------------
# RF pressure from exact liveness


def rf_pressure_diagnostics(
    name: str,
    program,
    rf_size: int,
) -> List[Diagnostic]:
    """Peak simultaneous liveness vs the register file's capacity."""
    peak = peak_live(
        list(program.instructions),
        dict(program.input_regs),
        dict(program.output_regs),
    )
    out: List[Diagnostic] = []
    if peak > rf_size:
        out.append(
            Diagnostic(
                rule="rf-live-exceeds-capacity",
                message=(
                    f"{name}: {peak} values live at once; the register "
                    f"file holds {rf_size}"
                ),
            )
        )
    elif peak >= 0.75 * rf_size:
        out.append(
            Diagnostic(
                rule="rf-live-pressure",
                message=(
                    f"{name}: peak liveness {peak} of {rf_size} registers "
                    "(>= 75%); rebanding or spill planning advised"
                ),
                severity=Severity.WARNING,
            )
        )
    return out


# ----------------------------------------------------------------------
# FIFO / stream protocol analysis


def count_port_ops(
    instructions: Sequence[ControlInstruction],
    max_steps: int = _PORT_COUNT_BUDGET,
) -> Optional[Dict[str, Dict[str, int]]]:
    """Statically execute one control thread, counting port traffic.

    Only address registers are tracked concretely (they drive every
    loop bound the generators emit); all data movement is opaque.
    Returns ``{space: {"reads": n, "writes": n}}`` for the port
    spaces, or ``None`` when the thread branches on a value the
    analysis cannot see (an areg loaded from memory) or exceeds the
    step budget -- callers must then fall back to runtime checks.
    """
    counts = {
        space.value: {"reads": 0, "writes": 0}
        for space in (Space.IN, Space.OUT, Space.FIFO)
    }
    aregs: Dict[int, Optional[int]] = {}
    pc = 0
    steps = 0
    length = len(instructions)
    while 0 <= pc < length:
        steps += 1
        if steps > max_steps:
            return None
        instruction = instructions[pc]
        op = instruction.op
        if op is ControlOp.HALT:
            return counts
        dest, src = instruction.dest, instruction.src
        if src is not None and src.space in PORT_SPACES:
            counts[src.space.value]["reads"] += 1
        if dest is not None and dest.space in PORT_SPACES:
            counts[dest.space.value]["writes"] += 1
        if op is ControlOp.LI and dest is not None:
            if dest.space is Space.ADDR:
                aregs[dest.index] = instruction.imm
        elif op is ControlOp.ADDI:
            base = aregs.get(instruction.rs1, 0)
            aregs[instruction.rd] = (
                None if base is None else base + instruction.imm
            )
        elif op is ControlOp.ADD:
            a = aregs.get(instruction.rs1, 0)
            b = aregs.get(instruction.rs2, 0)
            aregs[instruction.rd] = (
                None if a is None or b is None else a + b
            )
        elif op is ControlOp.MV and dest is not None:
            if dest.space is Space.ADDR:
                aregs[dest.index] = None
        elif op in BRANCH_OPS:
            a = aregs.get(instruction.rs1, 0)
            b = aregs.get(instruction.rs2, 0)
            if a is None or b is None:
                return None
            taken = {
                ControlOp.BEQ: a == b,
                ControlOp.BNE: a != b,
                ControlOp.BGE: a >= b,
                ControlOp.BLT: a < b,
            }[op]
            if taken:
                pc += instruction.offset
                continue
        pc += 1
    return counts


def _link_mismatch(
    rule: str, message: str
) -> Diagnostic:
    return Diagnostic(rule=rule, message=message)


def wavefront_protocol_diagnostics(programs) -> List[Diagnostic]:
    """Send/recv conservation across one wavefront load-out.

    *programs* is a :class:`repro.mapping.wavefront2d.WavefrontPrograms`
    (duck-typed: ``array_control`` + ``pe_control`` suffice).  Checks,
    per link of the systolic chain ``array -> pe0 -> ... -> tail ->
    array`` plus the array FIFO back-channel, that the words pushed
    equal the words popped; any imbalance leaves some thread blocked
    on a port forever.
    """
    out: List[Diagnostic] = []
    array_counts = count_port_ops(programs.array_control)
    pe_counts = [count_port_ops(thread) for thread in programs.pe_control]
    if array_counts is None or any(c is None for c in pe_counts):
        out.append(
            Diagnostic(
                rule="fifo-protocol-unknown",
                message=(
                    "a control thread is not statically evaluable "
                    "(data-dependent loop bound); protocol conservation "
                    "not proven"
                ),
                severity=Severity.WARNING,
            )
        )
        return out

    pe_count = len(pe_counts)
    # The array's OUT feeds PE 0's IN; PE i's OUT feeds PE i+1's IN;
    # the tail PE's OUT returns to the array's IN.
    links = [
        (
            "array.out",
            array_counts["out"]["writes"],
            "pe0.in",
            pe_counts[0]["in"]["reads"],
        )
    ]
    for index in range(pe_count - 1):
        links.append(
            (
                f"pe{index}.out",
                pe_counts[index]["out"]["writes"],
                f"pe{index + 1}.in",
                pe_counts[index + 1]["in"]["reads"],
            )
        )
    links.append(
        (
            f"pe{pe_count - 1}.out",
            pe_counts[pe_count - 1]["out"]["writes"],
            "array.in",
            array_counts["in"]["reads"],
        )
    )
    for sender, sent, receiver, received in links:
        if sent != received:
            out.append(
                _link_mismatch(
                    "stream-send-recv-mismatch",
                    f"{sender} pushes {sent} words but {receiver} pops "
                    f"{received}; the array deadlocks on the "
                    f"{'pop' if received > sent else 'push'}",
                )
            )

    # FIFO back-channel: the array preloads boundary words and the tail
    # PE appends one boundary set per pass; PE 0 pops.  More pops than
    # pushes is guaranteed starvation (deadlock).  A push surplus is
    # normal -- the tail's final-pass words have no next pass to feed --
    # but is surfaced as a note so an unexpected imbalance is visible.
    fifo_writes = array_counts["fifo"]["writes"] + sum(
        counts["fifo"]["writes"] for counts in pe_counts
    )
    fifo_reads = array_counts["fifo"]["reads"] + sum(
        counts["fifo"]["reads"] for counts in pe_counts
    )
    if fifo_reads > fifo_writes:
        out.append(
            _link_mismatch(
                "fifo-send-recv-mismatch",
                f"PE-array FIFO sees {fifo_writes} pushes but "
                f"{fifo_reads} pops; the wavefront deadlocks on the "
                "missing words",
            )
        )
    elif fifo_writes > fifo_reads:
        out.append(
            Diagnostic(
                rule="fifo-residual-words",
                message=(
                    f"{fifo_writes - fifo_reads} words remain queued in "
                    "the PE-array FIFO at halt (the tail PE's final-pass "
                    "boundary set)"
                ),
                severity=Severity.INFO,
            )
        )
    return out
