"""The interval (value-range) abstract domain.

One :class:`Interval` over-approximates the set of concrete integers a
register (or SPM slot, or address register) may hold.  ``None``
endpoints mean unbounded, so ``Interval(None, None)`` is the lattice
top.  Every transfer function here is a sound abstraction of the
concrete ALU semantics in :func:`repro.dfg.graph._apply`: for any
concrete arguments inside the argument intervals, the concrete result
lies inside the returned interval (the property the fuzz soundness
harness in ``tests/properties`` hammers on).

Widening jumps endpoints outward to the machine's power-of-two rails
(8-bit SIMD lanes, the +/-2^20 log-domain floor, the int32 boundary)
instead of creeping one step per iteration, so feedback fixpoints over
recurrent DP state converge in a handful of passes; narrowing then
claws back the unbounded endpoints the widening introduced.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.dfg.graph import OPCODE_ARITY, Opcode
from repro.dpax.pe import INT32_MAX, INT32_MIN, LANE8_MAX, LANE8_MIN
from repro.kernels.pairhmm import LOG_FRACTION_BITS

#: Widening rails, outermost last: the 8-bit lane boundary, the log
#: fixed-point "minus infinity" magnitude, and the int32 boundary.
#: A widened endpoint lands on the nearest rail that still contains it;
#: past the last rail it drops to unbounded.
WIDENING_RAILS = (1 << 7, 1 << 20, 1 << 31)

#: LOG_SUM_LUT's correction term is bounded by one unit of log2(2) at
#: the fixed-point scale: result in [max(a, b), max(a, b) + scale].
_LOG_SUM_SLACK = 1 << LOG_FRACTION_BITS

_NEG_INF = float("-inf")
_POS_INF = float("inf")


def _lo_key(value: Optional[int]) -> float:
    return _NEG_INF if value is None else value


def _hi_key(value: Optional[int]) -> float:
    return _POS_INF if value is None else value


def _add(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None or b is None:
        return None
    return a + b


@dataclass(frozen=True)
class Interval:
    """A closed integer interval; ``None`` endpoints are unbounded."""

    lo: Optional[int]
    hi: Optional[int]

    def __post_init__(self) -> None:
        if (
            self.lo is not None
            and self.hi is not None
            and self.lo > self.hi
        ):
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    # -- constructors --------------------------------------------------

    @staticmethod
    def top() -> "Interval":
        return Interval(None, None)

    @staticmethod
    def const(value: int) -> "Interval":
        return Interval(value, value)

    # -- predicates ----------------------------------------------------

    @property
    def bounded(self) -> bool:
        return self.lo is not None and self.hi is not None

    def contains(self, value: int) -> bool:
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True

    def within(self, other: "Interval") -> bool:
        """True when every value of self lies inside *other*."""
        if other.lo is not None and (self.lo is None or self.lo < other.lo):
            return False
        if other.hi is not None and (self.hi is None or self.hi > other.hi):
            return False
        return True

    def definitely_above(self, bound: int) -> bool:
        """True when every value of self is > *bound*."""
        return self.lo is not None and self.lo > bound

    # -- lattice operations --------------------------------------------

    def join(self, other: "Interval") -> "Interval":
        lo = None
        if self.lo is not None and other.lo is not None:
            lo = min(self.lo, other.lo)
        hi = None
        if self.hi is not None and other.hi is not None:
            hi = max(self.hi, other.hi)
        return Interval(lo, hi)

    def meet(self, other: "Interval") -> Optional["Interval"]:
        """Intersection; ``None`` when the intervals are disjoint."""
        lo = max(_lo_key(self.lo), _lo_key(other.lo))
        hi = min(_hi_key(self.hi), _hi_key(other.hi))
        if lo > hi:
            return None
        return Interval(
            None if lo == _NEG_INF else int(lo),
            None if hi == _POS_INF else int(hi),
        )

    def widen(self, newer: "Interval") -> "Interval":
        """Classic threshold widening of self toward *newer*."""
        lo = self.lo
        if newer.lo is None:
            lo = None
        elif lo is not None and newer.lo < lo:
            lo = _rail_below(newer.lo)
        hi = self.hi
        if newer.hi is None:
            hi = None
        elif hi is not None and newer.hi > hi:
            hi = _rail_above(newer.hi)
        return Interval(lo, hi)

    def narrow(self, newer: "Interval") -> "Interval":
        """Refine only the endpoints widening pushed to infinity."""
        lo = newer.lo if self.lo is None else self.lo
        hi = newer.hi if self.hi is None else self.hi
        if lo is not None and hi is not None and lo > hi:
            return newer
        return Interval(lo, hi)

    def __str__(self) -> str:
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"


def _rail_below(value: int) -> Optional[int]:
    for rail in WIDENING_RAILS:
        if value >= -rail:
            return -rail
    return None


def _rail_above(value: int) -> Optional[int]:
    for rail in WIDENING_RAILS:
        if value <= rail:
            return rail
    return None


def join_all(intervals: Iterable[Interval]) -> Interval:
    result: Optional[Interval] = None
    for interval in intervals:
        result = interval if result is None else result.join(interval)
    if result is None:
        raise ValueError("join of no intervals")
    return result


#: The two hazard rails the sentinels watch, as intervals.
INT32 = Interval(INT32_MIN, INT32_MAX)
LANE8 = Interval(LANE8_MIN, LANE8_MAX)


# ----------------------------------------------------------------------
# arithmetic transfers


def _interval_add(a: Interval, b: Interval) -> Interval:
    return Interval(_add(a.lo, b.lo), _add(a.hi, b.hi))


def _interval_sub(a: Interval, b: Interval) -> Interval:
    return Interval(_add(a.lo, _neg(b.hi)), _add(a.hi, _neg(b.lo)))


def _neg(value: Optional[int]) -> Optional[int]:
    return None if value is None else -value


def _interval_mul(a: Interval, b: Interval) -> Interval:
    def product(x: float, y: float) -> float:
        # inf * 0 is 0 here: a genuinely-zero factor pins the product.
        if x == 0 or y == 0:
            return 0
        return x * y

    corners = [
        product(x, y)
        for x in (_lo_key(a.lo), _hi_key(a.hi))
        for y in (_lo_key(b.lo), _hi_key(b.hi))
    ]
    lo, hi = min(corners), max(corners)
    return Interval(
        None if lo == _NEG_INF else int(lo),
        None if hi == _POS_INF else int(hi),
    )


def _interval_max(a: Interval, b: Interval) -> Interval:
    lo = max(_lo_key(a.lo), _lo_key(b.lo))
    hi = max(_hi_key(a.hi), _hi_key(b.hi))
    return Interval(
        None if lo == _NEG_INF else int(lo),
        None if hi == _POS_INF else int(hi),
    )


def _interval_min(a: Interval, b: Interval) -> Interval:
    lo = min(_lo_key(a.lo), _lo_key(b.lo))
    hi = min(_hi_key(a.hi), _hi_key(b.hi))
    return Interval(
        None if lo == _NEG_INF else int(lo),
        None if hi == _POS_INF else int(hi),
    )


def _interval_carry(a: Interval, b: Interval) -> Interval:
    total = _interval_add(a, b)
    edge = 1 << 32
    if total.hi is not None and total.hi < edge:
        return Interval.const(0)
    if total.lo is not None and total.lo >= edge:
        return Interval.const(1)
    return Interval(0, 1)


def _interval_borrow(a: Interval, b: Interval) -> Interval:
    # BORROW(a, b) = 1 iff a < b.
    if a.hi is not None and b.lo is not None and a.hi < b.lo:
        return Interval.const(1)
    if a.lo is not None and b.hi is not None and a.lo >= b.hi:
        return Interval.const(0)
    return Interval(0, 1)


def _log2_lut(value: int) -> int:
    # Mirrors _apply's LOG2_LUT: 0 for value <= 0, else int(log2 * 2).
    if value <= 0:
        return 0
    return int(math.log2(value) * 2.0)


def _interval_log2(a: Interval) -> Interval:
    if a.hi is None:
        hi: Optional[int] = None
    else:
        hi = _log2_lut(a.hi)
    if a.lo is None or a.lo <= 0:
        lo = 0
        hi = hi if hi is None else max(hi, 0)
    else:
        lo = _log2_lut(a.lo)
    return Interval(lo, hi)


def _interval_log_sum(a: Interval, b: Interval) -> Interval:
    # log_sum_lookup(a, b) = max(a, b) + table[|a - b|], and the table
    # is bounded by [0, scale]; the result is monotone in both args.
    base = _interval_max(a, b)
    return Interval(base.lo, _add(base.hi, _LOG_SUM_SLACK))


def _interval_shl16(a: Interval) -> Interval:
    scale = 1 << 16
    return _interval_mul(a, Interval.const(scale))


def _interval_shr16(a: Interval) -> Interval:
    # Arithmetic shift is monotone: shift the endpoints.
    return Interval(
        None if a.lo is None else a.lo >> 16,
        None if a.hi is None else a.hi >> 16,
    )


def _interval_select(
    taken: Interval, not_taken: Interval, decided: Optional[bool]
) -> Interval:
    if decided is True:
        return taken
    if decided is False:
        return not_taken
    return taken.join(not_taken)


def _gt_decision(a: Interval, b: Interval) -> Optional[bool]:
    if a.lo is not None and b.hi is not None and a.lo > b.hi:
        return True
    if a.hi is not None and b.lo is not None and a.hi <= b.lo:
        return False
    return None


def _eq_decision(a: Interval, b: Interval) -> Optional[bool]:
    if (
        a.lo is not None
        and a.lo == a.hi
        and b.lo is not None
        and b.lo == b.hi
        and a.lo == b.lo
    ):
        return True
    if a.meet(b) is None:
        return False
    return None


def transfer(
    opcode: Opcode,
    args: Sequence[Interval],
    match_range: Optional[Interval] = None,
) -> Interval:
    """Abstract counterpart of :func:`repro.dfg.graph._apply`."""
    if opcode is Opcode.ADD:
        return _interval_add(args[0], args[1])
    if opcode is Opcode.SUB:
        return _interval_sub(args[0], args[1])
    if opcode is Opcode.MUL:
        return _interval_mul(args[0], args[1])
    if opcode is Opcode.CARRY:
        return _interval_carry(args[0], args[1])
    if opcode is Opcode.BORROW:
        return _interval_borrow(args[0], args[1])
    if opcode is Opcode.MAX:
        return _interval_max(args[0], args[1])
    if opcode is Opcode.MIN:
        return _interval_min(args[0], args[1])
    if opcode is Opcode.SHL16:
        return _interval_shl16(args[0])
    if opcode is Opcode.SHR16:
        return _interval_shr16(args[0])
    if opcode is Opcode.COPY:
        return args[0]
    if opcode is Opcode.MATCH_SCORE:
        # The concrete result comes from the kernel's substitution /
        # emission table; the contract declares its range.  Without a
        # declared range, the default +1/-1 scorer applies.
        return match_range if match_range is not None else Interval(-1, 1)
    if opcode is Opcode.LOG2_LUT:
        return _interval_log2(args[0])
    if opcode is Opcode.LOG_SUM_LUT:
        return _interval_log_sum(args[0], args[1])
    if opcode is Opcode.CMP_GT:
        return _interval_select(
            args[2], args[3], _gt_decision(args[0], args[1])
        )
    if opcode is Opcode.CMP_EQ:
        return _interval_select(
            args[2], args[3], _eq_decision(args[0], args[1])
        )
    if opcode in (Opcode.NOP, Opcode.HALT):
        return Interval.const(0)
    raise ValueError(f"no interval transfer for opcode {opcode!r}")


class IntervalDomain:
    """The interval lattice packaged for the generic dataflow engine.

    The engine in :mod:`repro.static.absint` is parametric in the
    domain: any object with this surface (``top``/``const``/``join``/
    ``widen``/``narrow``/``transfer``/``leq``) plugs in.  Intervals are
    the workhorse; the verifier's SIMD lane-mask and the control
    thread's address-register analyses reuse the same engine shape with
    their own lattices.
    """

    name = "interval"

    def top(self) -> Interval:
        return Interval.top()

    def const(self, value: int) -> Interval:
        return Interval.const(value)

    def join(self, a: Interval, b: Interval) -> Interval:
        return a.join(b)

    def widen(self, older: Interval, newer: Interval) -> Interval:
        return older.widen(newer)

    def narrow(self, older: Interval, newer: Interval) -> Interval:
        return older.narrow(newer)

    def leq(self, a: Interval, b: Interval) -> bool:
        return a.within(b)

    def transfer(
        self,
        opcode: Opcode,
        args: List[Interval],
        match_range: Optional[Interval] = None,
    ) -> Interval:
        if OPCODE_ARITY[opcode] > len(args):
            raise ValueError(
                f"{opcode!r} needs {OPCODE_ARITY[opcode]} args, got "
                f"{len(args)}"
            )
        return transfer(opcode, args, match_range)
