"""The ``gendp-analyze`` report: certificates + hazards per program.

Mirrors the shape of :mod:`repro.opt.lint` so CI gates on both tools
the same way -- structured :class:`repro.diagnostics.Diagnostic`
entries, a JSON-stable ``to_dict``, and ``exit_code(fail_on)`` keyed
on the shared severity model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.diagnostics import Diagnostic, Severity
from repro.static.certify import (
    ProgramSafetyCertificate,
    certify_program,
)
from repro.static.hazards import (
    control_spm_diagnostics,
    rf_pressure_diagnostics,
    wavefront_protocol_diagnostics,
)

#: Rule names for unprovable hazard classes (possible = the analysis
#: could not exclude the hazard under the declared contract, not that
#: it must occur).
_HAZARD_RULES = {
    "int32-overflow": "possible-int32-overflow",
    "lane-saturation": "possible-lane-saturation",
    "log-underflow": "possible-log-underflow",
}

#: Wavefront build dimensions for the protocol smoke analysis: small
#: enough to build instantly, large enough to exercise the loop
#: structure (two passes over a four-PE array).
_WAVEFRONT_TARGET = 8
_WAVEFRONT_QUERY = 4
_WAVEFRONT_PES = 4


def certificate_diagnostics(
    certificate: ProgramSafetyCertificate,
) -> List[Diagnostic]:
    """Value-range verdicts as diagnostics.

    Armed-but-unproven hazards are warnings (the runtime sentinel still
    covers them); a fully certified program gets one info note so the
    report says *why* the engine may elide its sentinels.
    """
    out: List[Diagnostic] = []
    if not certificate.contract:
        out.append(
            Diagnostic(
                rule="no-input-contract",
                message=(
                    f"{certificate.name}: no declared input contract; "
                    "value-range analysis skipped"
                ),
                severity=Severity.INFO,
            )
        )
        return out
    for verdict in certificate.verdicts:
        if not verdict.armed or verdict.proven_absent:
            continue
        out.append(
            Diagnostic(
                rule=_HAZARD_RULES[verdict.hazard],
                message=(
                    f"{certificate.name}: {verdict.hazard} not provable "
                    f"under the declared contract ({verdict.witness}); "
                    "runtime sentinel stays armed"
                ),
                severity=Severity.WARNING,
            )
        )
    if certificate.sentinel_free:
        closure = (
            "contract is inductively closed"
            if certificate.inductively_closed
            else "per-invocation conditional on the contract"
        )
        out.append(
            Diagnostic(
                rule="certified-sentinel-free",
                message=(
                    f"{certificate.name}: every armed hazard proven "
                    f"absent ({closure}); sentinel observation elidable"
                ),
                severity=Severity.INFO,
            )
        )
    return out


@dataclass(frozen=True)
class ProgramAnalysisEntry:
    """Analysis outcome for one program (cell or control thread)."""

    name: str
    diagnostics: Tuple[Diagnostic, ...]
    certificate: Optional[ProgramSafetyCertificate] = None

    def count(self, severity: Severity) -> int:
        return sum(1 for d in self.diagnostics if d.severity is severity)

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "name": self.name,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }
        if self.certificate is not None:
            summary = self.certificate.to_dict()
            # The per-observation interval table is harness fodder, not
            # report material; keep the JSON artifact reviewable.
            summary.pop("observed_intervals", None)
            data["certificate"] = summary
        return data


@dataclass(frozen=True)
class AnalysisReport:
    """All analyzed programs plus the overall verdict."""

    programs: Tuple[ProgramAnalysisEntry, ...]

    def count(self, severity: Severity) -> int:
        return sum(p.count(severity) for p in self.programs)

    @property
    def ok(self) -> bool:
        return self.count(Severity.ERROR) == 0

    @property
    def certified(self) -> Tuple[str, ...]:
        return tuple(
            p.name
            for p in self.programs
            if p.certificate is not None and p.certificate.sentinel_free
        )

    def exit_code(self, fail_on: Severity = Severity.ERROR) -> int:
        worst = max(
            (d.severity for p in self.programs for d in p.diagnostics),
            default=None,
        )
        return 1 if worst is not None and worst >= fail_on else 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "programs": [p.to_dict() for p in self.programs],
            "certified": list(self.certified),
            "errors": self.count(Severity.ERROR),
            "warnings": self.count(Severity.WARNING),
            "notes": self.count(Severity.INFO),
            "ok": self.ok,
        }

    def render(self) -> str:
        lines = [
            "gendp-analyze: "
            f"{len(self.programs)} programs, "
            f"{len(self.certified)} certified sentinel-free, "
            f"{self.count(Severity.ERROR)} errors, "
            f"{self.count(Severity.WARNING)} warnings, "
            f"{self.count(Severity.INFO)} notes"
        ]
        for program in self.programs:
            if program.certificate is None:
                status = "control"
            elif program.certificate.sentinel_free:
                status = "certified"
            elif program.certificate.contract:
                status = "sentinels stay armed"
            else:
                status = "no contract"
            lines.append(f"  {program.name:<18} {status}")
            for diagnostic in program.diagnostics:
                lines.append(f"    {diagnostic}")
        return "\n".join(lines)


def _wavefront_spec(kernel: str):
    from repro.mapping import kernels2d

    builders = {
        "bsw": kernels2d.bsw_wavefront_spec,
        "pairhmm": kernels2d.pairhmm_wavefront_spec,
        "lcs": kernels2d.lcs_wavefront_spec,
        "dtw": kernels2d.dtw_wavefront_spec,
    }
    builder = builders.get(kernel)
    return builder() if builder is not None else None


def _analyze_wavefront(kernel: str) -> Optional[ProgramAnalysisEntry]:
    from repro.guard.verifier import MachineLimits
    from repro.mapping.wavefront2d import build_wavefront_programs

    spec = _wavefront_spec(kernel)
    if spec is None:
        return None
    programs = build_wavefront_programs(
        spec,
        target_length=_WAVEFRONT_TARGET,
        query_length=_WAVEFRONT_QUERY,
        pe_count=_WAVEFRONT_PES,
    )
    limits = MachineLimits()
    diagnostics: List[Diagnostic] = []
    diagnostics.extend(wavefront_protocol_diagnostics(programs))
    diagnostics.extend(
        control_spm_diagnostics(programs.array_control, limits.spm_size)
    )
    for thread in programs.pe_control:
        diagnostics.extend(
            control_spm_diagnostics(thread, limits.spm_size)
        )
    return ProgramAnalysisEntry(
        name=f"{kernel}:wavefront",
        diagnostics=tuple(diagnostics),
    )


def run_analysis(
    kernels: Optional[Sequence[str]] = None,
    include_wavefront: bool = True,
) -> AnalysisReport:
    """Analyze every kernel's programs: certificates + hazards.

    Cell programs get the value-range certificate and exact-liveness
    RF pressure; kernels with a 2D wavefront spec additionally get the
    FIFO protocol and scratchpad analyses over a small generated
    load-out.
    """
    from repro.guard.diff import DIFF_KERNELS, compile_kernel_programs
    from repro.guard.verifier import MachineLimits

    limits = MachineLimits()
    entries: List[ProgramAnalysisEntry] = []
    for kernel in kernels if kernels is not None else DIFF_KERNELS:
        programs = compile_kernel_programs(kernel)
        for cell_name, cell in programs.cells.items():
            label = (
                kernel if cell_name == "cell" else f"{kernel}:{cell_name}"
            )
            certificate = certify_program(kernel, cell, name=label)
            diagnostics = certificate_diagnostics(certificate)
            diagnostics.extend(
                rf_pressure_diagnostics(label, cell, limits.rf_size)
            )
            entries.append(
                ProgramAnalysisEntry(
                    name=label,
                    diagnostics=tuple(diagnostics),
                    certificate=certificate,
                )
            )
        if include_wavefront:
            wavefront = _analyze_wavefront(kernel)
            if wavefront is not None:
                entries.append(wavefront)
    return AnalysisReport(programs=tuple(entries))
