"""Alignment traceback from accelerator trace output.

Section 7.2: "downstream trace-back functions in POA need the move
directions on the DP table for each cell, which requires 8-byte
outputs to be written to the output data buffer from each cell."  The
simulator's POA mapping emits exactly those (H value, direction code)
pairs; this module is the downstream consumer -- it walks the
direction codes back into an alignment.

Direction encoding (what the kernel DFGs' comparison operators emit):

====  =========================================================
1     diagonal: consume one row (node/base) and one column
2     vertical: consume a row only (a gap in the query sequence)
3     horizontal: consume a column only (a gap in the target)
====  =========================================================

Local alignments stop where H reaches zero.  For graph kernels the
vertical/diagonal moves go to *a* predecessor row; the direction word
does not say which, so the walker re-derives the argmax predecessor
from the H table -- exact when predecessors are unique (linear chains)
and score-preserving in general (ties pick an equally-scoring path).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.kernels.base import TracebackOp, compress_ops
from repro.kernels.poa import PartialOrderGraph
from repro.seq.scoring import AffineGap, ScoringScheme

DIR_DIAG = 1
DIR_VERTICAL = 2
DIR_HORIZONTAL = 3


def best_cell(h: Sequence[Sequence[int]]) -> Tuple[int, int]:
    """Coordinates of the highest-scoring cell (row-major first hit)."""
    best_row, best_col, best_value = 0, 0, None
    for row_index, row in enumerate(h):
        for col_index, value in enumerate(row):
            if best_value is None or value > best_value:
                best_row, best_col, best_value = row_index, col_index, value
    return best_row, best_col


def traceback_table(
    h: Sequence[Sequence[int]],
    directions: Sequence[Sequence[int]],
    start: Optional[Tuple[int, int]] = None,
) -> List[Tuple[TracebackOp, int]]:
    """CIGAR from a 2D local-alignment trace (H + direction codes).

    ``h`` and ``directions`` are [row][col] over the computed cells
    (column index 0 = DP column 1).  The walk starts at *start* (or
    the best cell) and stops when H reaches zero or the table edge.
    """
    if start is None:
        start = best_cell(h)
    row, col = start
    ops: List[TracebackOp] = []
    while row >= 0 and col >= 0 and h[row][col] > 0:
        code = directions[row][col]
        if code == DIR_DIAG:
            ops.append(TracebackOp.MATCH)
            row -= 1
            col -= 1
        elif code == DIR_VERTICAL:
            ops.append(TracebackOp.INSERTION)
            row -= 1
        elif code == DIR_HORIZONTAL:
            ops.append(TracebackOp.DELETION)
            col -= 1
        else:
            raise ValueError(f"unknown direction code {code} at ({row}, {col})")
    ops.reverse()
    return compress_ops(ops)


def poa_traceback(
    h: Sequence[Sequence[int]],
    directions: Sequence[Sequence[int]],
    graph: PartialOrderGraph,
    start: Optional[Tuple[int, int]] = None,
) -> List[Tuple[Optional[int], Optional[int]]]:
    """(node, sequence position) pairs from a POA trace.

    Row indices are node indices; vertical/diagonal moves pick the
    predecessor whose H (at the relevant column) is largest -- the
    same argmax the cell computed, re-derived on the host from the
    H values the accelerator already emitted.
    """
    if start is None:
        start = best_cell(h)
    row, col = start
    pairs: List[Tuple[Optional[int], Optional[int]]] = []
    while row >= 0 and col >= 0 and h[row][col] > 0:
        code = directions[row][col]
        preds = graph.nodes[row].predecessors
        if code == DIR_DIAG:
            pairs.append((row, col))
            next_row = _argmax_pred(h, preds, col - 1)
            row, col = next_row, col - 1
        elif code == DIR_VERTICAL:
            pairs.append((row, None))
            row = _argmax_pred(h, preds, col)
        elif code == DIR_HORIZONTAL:
            pairs.append((None, col))
            col -= 1
        else:
            raise ValueError(f"unknown direction code {code} at ({row}, {col})")
    pairs.reverse()
    return pairs


def _argmax_pred(
    h: Sequence[Sequence[int]], preds: Sequence[int], col: int
) -> int:
    """The predecessor row with the best H at *col* (-1 = virtual start)."""
    if not preds:
        return -1
    if col < 0:
        return preds[0]
    return max(preds, key=lambda pred: h[pred][col])


def score_pairs(
    pairs: Sequence[Tuple[Optional[int], Optional[int]]],
    graph: PartialOrderGraph,
    sequence: str,
    scheme: Optional[ScoringScheme] = None,
) -> int:
    """Re-score a traced POA path with affine gaps.

    The tie-robust validation: whatever equally-scoring path the trace
    picked, its score must equal the H value it started from.
    """
    if scheme is None:
        scheme = ScoringScheme()
    gap = scheme.gap
    if not isinstance(gap, AffineGap):
        raise TypeError("score_pairs expects an affine scheme")
    score = 0
    gap_run: Optional[str] = None
    for node_index, seq_index in pairs:
        if node_index is not None and seq_index is not None:
            score += scheme.score(
                graph.nodes[node_index].base, sequence[seq_index]
            )
            gap_run = None
        else:
            kind = "v" if seq_index is None else "h"
            if gap_run == kind:
                score -= gap.extend
            else:
                score -= gap.open + gap.extend
            gap_run = kind
    return score


def cigar_consumes(
    cigar: Sequence[Tuple[TracebackOp, int]]
) -> Tuple[int, int]:
    """(rows consumed, columns consumed) by a CIGAR -- sanity checks."""
    rows = sum(
        count
        for op, count in cigar
        if op in (TracebackOp.MATCH, TracebackOp.MISMATCH, TracebackOp.INSERTION)
    )
    cols = sum(
        count
        for op, count in cigar
        if op in (TracebackOp.MATCH, TracebackOp.MISMATCH, TracebackOp.DELETION)
    )
    return rows, cols
