"""Synthetic workload generators for every kernel's evaluation.

The paper evaluates on real datasets that are not available offline
(Illumina ERR194147, PacBio C. elegans, human chr22, ONT S. aureus);
these generators synthesize workloads with the same shape parameters --
sequence lengths, error profiles, band widths, anchor geometry and
read-group sizes from Table 1 and Section 6 -- so every experiment
exercises the same code paths on statistically equivalent inputs (see
the substitution table in DESIGN.md).

All generators take an explicit seed and are deterministic.
"""

from repro.workloads.reads import BSWWorkload, generate_bsw_workload
from repro.workloads.haplotypes import PairHMMWorkload, generate_pairhmm_workload
from repro.workloads.anchors import ChainWorkload, generate_chain_workload
from repro.workloads.poa_groups import POAWorkload, generate_poa_workload
from repro.workloads.signals import DTWWorkload, generate_dtw_workload
from repro.workloads.graphs import BFWorkload, generate_bf_workload

__all__ = [
    "BSWWorkload",
    "generate_bsw_workload",
    "PairHMMWorkload",
    "generate_pairhmm_workload",
    "ChainWorkload",
    "generate_chain_workload",
    "POAWorkload",
    "generate_poa_workload",
    "DTWWorkload",
    "generate_dtw_workload",
    "BFWorkload",
    "generate_bf_workload",
]
