"""Chain workload: anchor streams with long-read overlap geometry.

The paper's Chain dataset is 10K PacBio C. elegans reads overlapped with
themselves (Table 1: ~20,000-anchor 1-D tables).  A real overlap's
anchors are collinear runs (seed hits along the shared diagonal, with
indel jitter) buried in scattered repeat-induced noise; the generator
reproduces exactly that geometry, which is what the chaining score and
the Table 6 accuracy study are sensitive to.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.kernels.chain import DEFAULT_AVG_SEED_WEIGHT, Anchor


@dataclass
class AnchorTask:
    """One read-pair chaining task: a sorted anchor stream plus truth.

    ``true_span`` is the query span of the planted collinear run, used
    by the accuracy study to decide whether a chain 'mapped' correctly.
    """

    anchors: List[Anchor]
    true_span: int
    name: str


@dataclass
class ChainWorkload:
    """A batch of chaining tasks."""

    tasks: List[AnchorTask]

    def total_cells(self, n: int) -> int:
        """Anchor-pair evaluations at lookback window *n* (CUPS unit)."""
        total = 0
        for task in self.tasks:
            count = len(task.anchors)
            # Each anchor i compares with min(i, n) predecessors.
            full = max(0, count - n)
            total += full * n + (min(count, n) * (min(count, n) - 1)) // 2
        return total


def generate_chain_workload(
    tasks: int = 20,
    anchors_per_task: int = 2000,
    collinear_fraction: float = 0.7,
    query_span: int = 10000,
    indel_jitter: int = 30,
    seed: int = 0,
) -> ChainWorkload:
    """Generate chaining tasks with planted collinear overlap runs.

    ``collinear_fraction`` of each task's anchors lie along one true
    overlap diagonal (positions advancing together, +-``indel_jitter``
    diagonal drift); the rest are uniform noise.  Anchors are returned
    sorted by (x, y) as the chaining kernels require.
    """
    if tasks < 0 or anchors_per_task <= 0:
        raise ValueError("tasks must be >= 0 and anchors_per_task positive")
    if not 0.0 <= collinear_fraction <= 1.0:
        raise ValueError("collinear_fraction must be within [0, 1]")
    rng = random.Random(seed)
    out: List[AnchorTask] = []
    for index in range(tasks):
        collinear = int(anchors_per_task * collinear_fraction)
        noise = anchors_per_task - collinear
        anchors: List[Anchor] = []

        # Planted overlap: anchors march along a shared diagonal.
        offset = rng.randint(-200, 200)
        step = max(1, query_span // max(collinear, 1))
        y = rng.randint(0, 100)
        first_y, last_anchor_y = y, y
        for _ in range(collinear):
            y += rng.randint(max(1, step // 2), step + step // 2)
            drift = rng.randint(-indel_jitter, indel_jitter)
            anchors.append(
                Anchor(x=y + offset + drift, y=y, w=DEFAULT_AVG_SEED_WEIGHT)
            )
            last_anchor_y = y
        true_span = last_anchor_y - first_y

        # Repeat-induced noise: uniform over the rectangle.
        max_x = max((anchor.x for anchor in anchors), default=query_span) + 100
        for _ in range(noise):
            anchors.append(
                Anchor(
                    x=rng.randint(0, max_x),
                    y=rng.randint(0, last_anchor_y + 100),
                    w=DEFAULT_AVG_SEED_WEIGHT,
                )
            )
        anchors.sort(key=lambda anchor: (anchor.x, anchor.y))
        out.append(AnchorTask(anchors=anchors, true_span=true_span, name=f"chain-{index}"))
    return ChainWorkload(tasks=out)
