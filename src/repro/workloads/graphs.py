"""Bellman-Ford workload: roadmap graphs (robot-motion-planning shaped).

Section 7.6.5's BF study targets robotic motion planning, where the
graph is a probabilistic roadmap: vertices are configurations, edges
connect nearby configurations with distance weights.  The generator
builds exactly that -- random points in the unit square joined to their
k nearest neighbors -- which also yields the mixed near/ultra-long
vertex-index dependency profile the scratchpad-vs-DRAM split cares
about.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.kernels.bellman_ford import Edge


@dataclass
class BFWorkload:
    """One roadmap: vertex count, edges, and the query endpoints."""

    vertex_count: int
    edges: List[Edge]
    source: int
    goal: int

    @property
    def total_relaxation_cells(self) -> int:
        """Worst-case relaxations (rounds x edges) -- the CUPS bound."""
        return (self.vertex_count - 1) * len(self.edges)


def generate_bf_workload(
    vertices: int = 100,
    neighbors: int = 6,
    seed: int = 0,
) -> BFWorkload:
    """Generate a k-nearest-neighbor roadmap over random 2-D points.

    Edges are bidirectional (two directed edges) weighted by Euclidean
    distance; source/goal are the extreme corners, giving long paths.
    """
    if vertices < 2:
        raise ValueError("need at least two vertices")
    if neighbors < 1:
        raise ValueError("need at least one neighbor per vertex")
    rng = random.Random(seed)
    points: List[Tuple[float, float]] = [
        (rng.random(), rng.random()) for _ in range(vertices)
    ]

    edges: List[Edge] = []
    seen = set()
    for index, point in enumerate(points):
        ranked = sorted(
            (candidate for candidate in range(vertices) if candidate != index),
            key=lambda candidate: _distance(point, points[candidate]),
        )
        for candidate in ranked[:neighbors]:
            key = (min(index, candidate), max(index, candidate))
            if key in seen:
                continue
            seen.add(key)
            weight = _distance(point, points[candidate])
            edges.append(Edge(index, candidate, weight))
            edges.append(Edge(candidate, index, weight))

    source = min(range(vertices), key=lambda i: points[i][0] + points[i][1])
    goal = max(range(vertices), key=lambda i: points[i][0] + points[i][1])
    return BFWorkload(vertex_count=vertices, edges=edges, source=source, goal=goal)


def _distance(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    return math.hypot(a[0] - b[0], a[1] - b[1])
