"""PairHMM workload: read / candidate-haplotype pairs.

GATK HaplotypeCaller re-assembles an active region into a handful of
candidate haplotypes and scores every (read, haplotype) pair with the
PairHMM forward algorithm.  The generator mirrors that structure: each
active region yields one reference haplotype plus a few variant
haplotypes (SNVs/indels injected), and Illumina-like reads drawn from
one of them -- so likelihoods meaningfully discriminate haplotypes, as
they must for the example pipelines.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Sequence

from repro.seq.alphabet import DNA_ALPHABET, random_sequence
from repro.seq.mutate import MutationProfile, Mutator


@dataclass
class ReadHaplotypePair:
    """One forward-pass task: a read, its qualities, and a haplotype."""

    read: str
    haplotype: str
    qualities: List[int]
    region: int
    true_haplotype: int

    @property
    def cells(self) -> int:
        return len(self.read) * len(self.haplotype)


@dataclass
class PairHMMWorkload:
    """A batch of read-haplotype scoring tasks."""

    pairs: List[ReadHaplotypePair]
    haplotypes_per_region: int

    @property
    def total_cells(self) -> int:
        return sum(pair.cells for pair in self.pairs)


def generate_pairhmm_workload(
    regions: int = 10,
    reads_per_region: int = 8,
    haplotypes_per_region: int = 3,
    read_length: int = 100,
    haplotype_length: int = 60,
    seed: int = 0,
) -> PairHMMWorkload:
    """Generate PairHMM tasks shaped like Table 1's ~100 x 60 tables.

    Every read in a region is scored against every candidate haplotype
    of that region (the all-pairs pattern of ``calcLikelihoodScore``),
    so the task count is ``regions * reads_per_region *
    haplotypes_per_region``.
    """
    if min(regions, reads_per_region, haplotypes_per_region) < 0:
        raise ValueError("counts must be non-negative")
    if read_length <= 0 or haplotype_length <= 0:
        raise ValueError("lengths must be positive")
    rng = random.Random(seed)
    mutator = Mutator(MutationProfile.illumina(), rng)

    pairs: List[ReadHaplotypePair] = []
    for region in range(regions):
        reference = random_sequence(haplotype_length, rng)
        haplotypes = [reference] + [
            _inject_variant(reference, rng)
            for _ in range(haplotypes_per_region - 1)
        ]
        for _ in range(reads_per_region):
            true_index = rng.randrange(len(haplotypes))
            source = haplotypes[true_index]
            # Reads span the haplotype; longer reads wrap fresh context.
            template = source * (read_length // len(source) + 1)
            read = mutator.mutate(template)[:read_length]
            if len(read) < read_length:
                read += random_sequence(read_length - len(read), rng)
            qualities = [
                max(10, min(40, int(rng.gauss(30, 4)))) for _ in range(len(read))
            ]
            for haplotype in haplotypes:
                pairs.append(
                    ReadHaplotypePair(
                        read=read,
                        haplotype=haplotype,
                        qualities=qualities,
                        region=region,
                        true_haplotype=true_index,
                    )
                )
    return PairHMMWorkload(pairs=pairs, haplotypes_per_region=haplotypes_per_region)


def _inject_variant(reference: str, rng: random.Random) -> str:
    """Inject one SNV or short indel into *reference*."""
    position = rng.randrange(len(reference))
    kind = rng.random()
    if kind < 0.6:  # SNV
        alternatives = [base for base in DNA_ALPHABET if base != reference[position]]
        return (
            reference[:position] + rng.choice(alternatives) + reference[position + 1 :]
        )
    if kind < 0.8:  # short insertion
        insert = random_sequence(rng.randint(1, 3), rng)
        return reference[:position] + insert + reference[position:]
    # short deletion
    end = min(len(reference), position + rng.randint(1, 3))
    return reference[:position] + reference[end:]
