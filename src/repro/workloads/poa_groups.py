"""POA workload: read groups for consensus polishing.

The paper's POA dataset is 6217 consensus tasks from polishing a
Flye-assembled S. aureus genome with ONT reads, each task a group of
10-100 long reads covering one window (Table 1: ~1000 x 500 tables).
The generator synthesizes each group from a shared template with
ONT-like errors, so consensus accuracy (how well POA recovers the
template) is directly measurable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.seq.alphabet import random_sequence
from repro.seq.mutate import MutationProfile, Mutator


@dataclass
class ConsensusTask:
    """One polishing window: the true template and its noisy reads."""

    template: str
    reads: List[str]
    name: str

    @property
    def cells(self) -> int:
        """Approximate DP cells: each read aligns to a growing graph.

        The graph starts at len(reads[0]) nodes and grows with fused
        novel bases; the estimate uses the template length as the graph
        size, matching how the paper counts POA cell updates.
        """
        return sum(len(read) * len(self.template) for read in self.reads[1:])


@dataclass
class POAWorkload:
    """A batch of consensus tasks."""

    tasks: List[ConsensusTask]

    @property
    def total_cells(self) -> int:
        return sum(task.cells for task in self.tasks)


def generate_poa_workload(
    tasks: int = 5,
    reads_per_task: int = 10,
    template_length: int = 200,
    profile: MutationProfile = None,
    seed: int = 0,
) -> POAWorkload:
    """Generate consensus tasks (template + ONT-like noisy reads).

    Defaults are scaled down from the paper's ~1000-base windows so unit
    tests stay fast; benchmarks pass larger ``template_length``.
    """
    if tasks < 0 or reads_per_task <= 0:
        raise ValueError("tasks must be >= 0 and reads_per_task positive")
    if template_length <= 0:
        raise ValueError("template_length must be positive")
    rng = random.Random(seed)
    mutator = Mutator(profile or MutationProfile.nanopore(), rng)

    out: List[ConsensusTask] = []
    for index in range(tasks):
        template = random_sequence(template_length, rng)
        reads = []
        for _ in range(reads_per_task):
            read = mutator.mutate(template)
            if not read:
                read = template  # pathological all-deleted draw
            reads.append(read)
        out.append(ConsensusTask(template=template, reads=reads, name=f"poa-{index}"))
    return POAWorkload(tasks=out)
