"""BSW workload: seed-extension pairs, Illumina short-read shaped.

The paper's BSW dataset is two million seed-extension pairs from
BWA-MEM2 on ERR194147 (101 bp Illumina reads).  A seed-extension pair is
the part of a read beyond an exact-match seed, paired with the
corresponding reference window -- so query and target are highly similar
(read error + variant divergence only) and lengths sit near 100 x 60
(Table 1's BSW table size).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.kernels.bsw import band_cells
from repro.seq.alphabet import random_sequence
from repro.seq.mutate import MutationProfile, Mutator
from repro.seq.records import ReadPair


@dataclass
class BSWWorkload:
    """A batch of seed-extension pairs plus its cell accounting."""

    pairs: List[ReadPair]
    band: int
    precision_bits: int

    @property
    def total_cells(self) -> int:
        """Band cells across all pairs -- the CUPS denominator."""
        return sum(
            band_cells(len(pair.query), len(pair.target), self.band)
            for pair in self.pairs
        )


def generate_bsw_workload(
    count: int = 100,
    query_length: int = 100,
    target_length: int = 60,
    band: int = 8,
    precision_bits: int = 16,
    profile: MutationProfile = None,
    seed: int = 0,
) -> BSWWorkload:
    """Generate *count* seed-extension pairs.

    The target is a window of a random template; the query is a mutated
    extension of the same window (padded with fresh sequence when the
    query is longer, as real extensions run past the reference window).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if query_length <= 0 or target_length <= 0:
        raise ValueError("sequence lengths must be positive")
    rng = random.Random(seed)
    mutator = Mutator(profile or MutationProfile.illumina(), rng)

    pairs: List[ReadPair] = []
    for index in range(count):
        template = random_sequence(max(query_length, target_length), rng)
        target = template[:target_length]
        query = mutator.mutate(template)[:query_length]
        if len(query) < query_length:
            query += random_sequence(query_length - len(query), rng)
        pairs.append(
            ReadPair(query=query, target=target, name=f"bsw-{index}")
        )
    return BSWWorkload(pairs=pairs, band=band, precision_bits=precision_bits)
