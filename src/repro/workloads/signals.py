"""DTW workload: warped/noisy signal pairs (nanopore-squiggle shaped).

Section 7.6.5 extends GenDP to dynamic time warping for basecalling and
speech.  The generator emits pairs where one signal is a time-warped,
noise-perturbed copy of the other, so DTW distances separate true pairs
from random pairs -- the property the Figure 11 study relies on.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Tuple


@dataclass
class SignalPair:
    """One DTW task: reference signal, query signal, and truth flag."""

    reference: List[float]
    query: List[float]
    is_match: bool
    name: str

    @property
    def cells(self) -> int:
        return len(self.reference) * len(self.query)


@dataclass
class DTWWorkload:
    """A batch of DTW tasks (half matching pairs, half decoys)."""

    pairs: List[SignalPair]

    @property
    def total_cells(self) -> int:
        return sum(pair.cells for pair in self.pairs)


def generate_dtw_workload(
    pairs: int = 10,
    length: int = 100,
    noise: float = 0.05,
    warp: float = 0.2,
    seed: int = 0,
) -> DTWWorkload:
    """Generate *pairs* signal pairs, alternating matches and decoys.

    A reference is a smooth random walk (sum of sinusoids with random
    phases, squiggle-like); a matching query is the reference locally
    time-warped by up to ``warp`` and perturbed with Gaussian ``noise``;
    a decoy query is an independent reference.
    """
    if pairs < 0 or length <= 1:
        raise ValueError("pairs must be >= 0 and length > 1")
    rng = random.Random(seed)
    out: List[SignalPair] = []
    for index in range(pairs):
        reference = _squiggle(length, rng)
        if index % 2 == 0:
            query = _warp_signal(reference, warp, noise, rng)
            out.append(SignalPair(reference, query, True, f"dtw-match-{index}"))
        else:
            decoy = _squiggle(length, rng)
            out.append(SignalPair(reference, decoy, False, f"dtw-decoy-{index}"))
    return DTWWorkload(pairs=out)


def _squiggle(length: int, rng: random.Random) -> List[float]:
    """A smooth pseudo-random signal: three sinusoids + slow drift."""
    phases = [rng.uniform(0, 2 * math.pi) for _ in range(3)]
    freqs = [rng.uniform(0.02, 0.15) for _ in range(3)]
    drift = rng.uniform(-0.01, 0.01)
    return [
        sum(math.sin(2 * math.pi * f * t + p) for f, p in zip(freqs, phases))
        + drift * t
        for t in range(length)
    ]


def _warp_signal(
    signal: List[float], warp: float, noise: float, rng: random.Random
) -> List[float]:
    """Locally time-warp and noise a signal (piecewise resampling)."""
    warped: List[float] = []
    position = 0.0
    while position < len(signal) - 1:
        lo = int(position)
        frac = position - lo
        value = signal[lo] * (1 - frac) + signal[lo + 1] * frac
        warped.append(value + rng.gauss(0.0, noise))
        position += 1.0 + rng.uniform(-warp, warp)
    if not warped:
        warped.append(signal[0])
    return warped
