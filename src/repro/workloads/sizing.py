"""Workload sizing: the artifact appendix's Table 16 for this repo.

The paper's artifact relates dataset size to simulation time (Table
16: the full datasets need ~250 hours and 2 TB).  Our Python
instruction-level simulator is slower per cell but the workloads
scale the same way; this module predicts simulation time for a
requested size from the measured per-cell simulation rates, so users
can size runs the way the artifact's README does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

#: Simulated cells per wall-clock second for this Python simulator,
#: measured on the validation workloads (tests keep these honest
#: within a generous band -- they are host-dependent).
SIMULATOR_CELLS_PER_SECOND: Dict[str, float] = {
    "bsw": 3000.0,
    "pairhmm": 2500.0,
    "chain": 2500.0,
    "poa": 1500.0,
}

#: Full-dataset cell counts (Table 15).
FULL_DATASET_CELLS: Dict[str, int] = {
    "bsw": 2_431_855_834,
    "chain": 20_736_142_007,
    "pairhmm": 258_363_282_803,
    "poa": 6_448_581_509,
}


@dataclass
class SizingEstimate:
    """Predicted simulation cost of one workload slice."""

    kernel: str
    cells: int
    seconds: float

    @property
    def hours(self) -> float:
        return self.seconds / 3600.0


def estimate_simulation(kernel: str, cells: int) -> SizingEstimate:
    """Wall-clock estimate for simulating *cells* cell updates."""
    if kernel not in SIMULATOR_CELLS_PER_SECOND:
        raise KeyError(f"no simulation rate for kernel {kernel!r}")
    if cells < 0:
        raise ValueError("cells must be non-negative")
    rate = SIMULATOR_CELLS_PER_SECOND[kernel]
    return SizingEstimate(kernel=kernel, cells=cells, seconds=cells / rate)


def cells_for_budget(kernel: str, seconds: float) -> int:
    """Largest workload simulatable in *seconds* (the Table 16 view)."""
    if seconds <= 0:
        raise ValueError("budget must be positive")
    rate = SIMULATOR_CELLS_PER_SECOND[kernel]
    return int(rate * seconds)


def full_dataset_estimate(kernel: str) -> SizingEstimate:
    """What the paper's full dataset would cost on this simulator.

    (The artifact quotes ~250 hours for its C++ simulator; ours is
    10^2-10^3x slower per cell -- hence synthetic slices everywhere.)
    """
    return estimate_simulation(kernel, FULL_DATASET_CELLS[kernel])
