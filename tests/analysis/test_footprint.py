"""Tests for the instruction-footprint analysis."""

import pytest

from repro.analysis.footprint import (
    PER_ARRAY_BUDGET,
    footprint_report,
    measure_chain_footprint,
    measure_wavefront_footprint,
)


class TestFootprints:
    def test_every_kernel_fits_the_buffer(self):
        # The Table 7 sizing claim: preloaded programs fit the 208KB
        # instruction buffer's per-array share.
        for row in footprint_report():
            assert row.total_bytes <= PER_ARRAY_BUDGET, row.kernel

    def test_footprint_independent_of_workload_size(self):
        # Programs loop over the data; more passes/anchors must not
        # grow the instruction stream (only immediate counters change).
        small = measure_wavefront_footprint("bsw", passes=2)
        large = measure_wavefront_footprint("bsw", passes=8)
        assert small.total_bytes == large.total_bytes

    def test_chain_footprint_constant_in_anchors(self):
        small = measure_chain_footprint(100)
        large = measure_chain_footprint(5000)
        assert small.total_bytes == large.total_bytes

    def test_compute_smaller_than_control(self):
        # The decoupled design's footprint shape: control streams
        # (movement + loops) outweigh the compact VLIW windows.
        row = measure_wavefront_footprint("bsw")
        assert row.pe_control > row.pe_compute

    def test_unknown_kernel_rejected(self):
        with pytest.raises(KeyError):
            measure_wavefront_footprint("chain")

    def test_budget_fraction(self):
        row = measure_wavefront_footprint("lcs")
        assert 0 < row.budget_fraction < 1
