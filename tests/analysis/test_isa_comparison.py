"""Tests for the Figure 10(d) ISA comparison."""

import pytest

from repro.analysis.isa_comparison import (
    ISAComparisonRow,
    average_reduction,
    isa_comparison,
    scalar_instruction_count,
)
from repro.dfg.kernels import KERNEL_DFGS


def four_kernels():
    return {k: KERNEL_DFGS[k]() for k in ("bsw", "pairhmm", "poa", "chain")}


class TestScalarModel:
    def test_riscv_costs_more_than_x86_on_selects(self):
        # riscv64 lacks cmov; kernels heavy in max/min/select cost more.
        dfg = KERNEL_DFGS["bsw"]()
        assert scalar_instruction_count(dfg, "riscv64") > scalar_instruction_count(
            dfg, "x86_64"
        )

    def test_counts_exceed_operator_count(self):
        for dfg in four_kernels().values():
            assert scalar_instruction_count(dfg, "riscv64") > dfg.operator_count()

    def test_unknown_isa_rejected(self):
        with pytest.raises(KeyError):
            scalar_instruction_count(KERNEL_DFGS["lcs"](), "arm64")


class TestComparison:
    def test_gendp_always_fewest(self):
        for row in isa_comparison(four_kernels()).values():
            assert row.gendp < row.x86_64 < row.riscv64

    def test_reductions_order_matches_paper(self):
        # Paper: 8.1x vs riscv64 > 4.0x vs x86-64.
        reductions = average_reduction(isa_comparison(four_kernels()))
        assert reductions["riscv64"] > reductions["x86_64"] > 1.0

    def test_reductions_in_paper_ballpark(self):
        reductions = average_reduction(isa_comparison(four_kernels()))
        assert 3.0 < reductions["riscv64"] < 25.0
        assert 2.0 < reductions["x86_64"] < 20.0

    def test_chain_is_gendp_heaviest(self):
        # Chain's muls and gates need the most VLIW bundles (its low
        # Table 11 utilization comes from the same structure).
        rows = isa_comparison(four_kernels())
        assert rows["chain"].gendp == max(r.gendp for r in rows.values())

    def test_row_properties(self):
        row = ISAComparisonRow(kernel="k", gendp=4, riscv64=40, x86_64=20)
        assert row.reduction_vs_riscv == 10.0
        assert row.reduction_vs_x86 == 5.0
