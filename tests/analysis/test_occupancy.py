"""Tests for the PE occupancy analysis."""

import pytest

from repro.analysis.occupancy import (
    OccupancyReport,
    occupancy_from_stats,
    per_pe_occupancies,
)
from repro.dpax.pe import PEStats


class TestReportArithmetic:
    def test_compute_occupancy(self):
        report = OccupancyReport(
            pe_cycles=100, compute_bundles=40, compute_idle=60,
            control_executed=80, control_stalls=20,
        )
        assert report.compute_occupancy == pytest.approx(0.4)
        assert report.control_stall_fraction == pytest.approx(0.2)

    def test_empty_run(self):
        report = OccupancyReport(0, 0, 0, 0, 0)
        assert report.compute_occupancy == 0.0
        assert report.control_stall_fraction == 0.0

    def test_from_stats(self):
        stats = PEStats(cycles=10, compute_bundles=5)
        assert occupancy_from_stats(stats).compute_occupancy == 0.5


class TestSimulatedOccupancy:
    def _run_lcs_array(self, rng):
        from repro.mapping.kernels2d import lcs_wavefront_spec
        from repro.mapping.wavefront2d import build_wavefront_programs
        from repro.dpax.pe_array import PEArray
        from repro.seq.alphabet import encode, random_sequence

        x = random_sequence(16, rng)
        y = random_sequence(8, rng)
        programs = build_wavefront_programs(lcs_wavefront_spec(), 8, 16)
        array = PEArray()
        array.ibuf.preload(encode(y), base=0)
        array.ibuf.preload(encode(x), base=8)
        array.load_array_control(programs.array_control)
        for position in range(4):
            array.load_pe(
                position, programs.pe_control[position], programs.pe_compute[position]
            )
        for _ in range(100_000):
            array.step()
            if array.done:
                break
        assert array.done
        return array

    def test_wavefront_keeps_all_pes_comparably_busy(self, rng):
        array = self._run_lcs_array(rng)
        occupancies = per_pe_occupancies(array)
        assert all(o > 0 for o in occupancies)
        # Wavefront balance: no PE does wildly more than another.
        assert max(occupancies) < 3 * min(occupancies)

    def test_fence_stalls_are_visible(self, rng):
        from repro.analysis.occupancy import occupancy_from_array

        array = self._run_lcs_array(rng)
        report = occupancy_from_array(array)
        # The conservative fence shows up as nonzero control stalls --
        # the measured gap EXPERIMENTS.md's deviation note explains.
        assert report.control_stall_fraction > 0.0
        assert 0.0 < report.compute_occupancy < 1.0
