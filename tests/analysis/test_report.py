"""Tests for the fixed-width report renderer."""

import pytest

from repro.analysis.report import render_table


class TestRenderTable:
    def test_title_and_headers_present(self):
        text = render_table("Table X", ["a", "b"], [[1, 2]])
        assert "== Table X ==" in text
        assert "a" in text and "b" in text

    def test_rows_aligned(self):
        text = render_table("t", ["col"], [[1], [1000]])
        lines = text.splitlines()
        assert len({len(line) for line in lines[1:]}) == 1

    def test_none_renders_dash(self):
        text = render_table("t", ["x"], [[None]])
        assert "-" in text.splitlines()[-1]

    def test_float_formats(self):
        text = render_table("t", ["x"], [[123456.0], [12.34], [0.123], [1.2e-5]])
        assert "123,456" in text
        assert "12.3" in text
        assert "0.123" in text
        assert "1.20e-05" in text

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            render_table("t", ["a", "b"], [[1]])

    def test_note_rendered(self):
        assert "shape" in render_table("t", ["a"], [[1]], note="shape only")
