"""Tests for the Table 15 / Figure 10 speedup roll-up."""

import pytest

from repro.analysis.speedups import (
    geomean,
    headline_speedups,
    paper_row,
    speedup_rollup,
)
from repro.baselines.data import KERNELS, PAPER_HEADLINE


class TestRollup:
    def test_row_per_kernel(self):
        assert set(speedup_rollup()) == set(KERNELS)

    def test_gendp_beats_cpu_and_gpu_everywhere(self):
        # The Figure 10(a) shape: GenDP wins on every kernel.
        for row in speedup_rollup().values():
            assert row.speedup_vs_cpu > 10
            assert row.speedup_vs_gpu > 10

    def test_asics_beat_gendp(self):
        # Figure 10(c): specialization costs 2-8x.
        rows = speedup_rollup()
        for kernel in ("bsw", "pairhmm"):
            assert rows[kernel].asic_slowdown > 1.0

    def test_no_asic_for_long_read_kernels(self):
        rows = speedup_rollup()
        assert rows["chain"].asic_slowdown is None
        assert rows["poa"].asic_slowdown is None

    def test_poa_smallest_gpu_speedup(self):
        # Section 7.2: POA is the memory-bound straggler.
        rows = speedup_rollup()
        assert rows["poa"].speedup_vs_gpu == min(
            row.speedup_vs_gpu for row in rows.values()
        )

    def test_watt_speedup_positive(self):
        for row in speedup_rollup().values():
            assert row.watt_speedup_vs_gpu > 1.0


class TestHeadlines:
    def test_order_of_magnitude_matches_abstract(self):
        headlines = headline_speedups(speedup_rollup())
        # Paper: 132x CPU, 157.8x GPU; we accept the same two orders of
        # magnitude with model tolerance.
        assert 50 < headlines["speedup_vs_cpu_per_mm2"] < 400
        assert 50 < headlines["speedup_vs_gpu_per_mm2"] < 400

    def test_watt_headline_order(self):
        # Paper: 15.1x throughput/W over the GPU.
        headlines = headline_speedups(speedup_rollup())
        assert 5 < headlines["throughput_per_watt_vs_gpu"] < 40

    def test_asic_slowdown_band(self):
        headlines = headline_speedups(speedup_rollup())
        assert 1.5 < headlines["asic_slowdown_geomean"] < 10.0


class TestHelpers:
    def test_geomean(self):
        assert geomean([1, 100]) == pytest.approx(10.0)

    def test_geomean_rejects_empty(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_paper_row_lookup(self):
        assert paper_row("bsw")["speedup_cpu"] == pytest.approx(365.1)
