"""Tests for the Table 2 / Table 11 utilization studies."""

import pytest

from repro.analysis.utilization import (
    MEASURED_KERNELS,
    measured_kernel_profile,
    measured_vliw_utilization,
    reduction_tree_study,
    vliw_utilization,
)
from repro.baselines.data import PAPER_TABLE2, PAPER_VLIW_UTILIZATION
from repro.dfg.kernels import KERNEL_DFGS


def four_kernels():
    return {k: KERNEL_DFGS[k]() for k in ("bsw", "pairhmm", "poa", "chain")}


class TestReductionTreeStudy:
    def test_row_per_kernel_per_depth(self):
        rows = reduction_tree_study(four_kernels())
        assert len(rows) == 12

    def test_rf_accesses_monotone_in_depth(self):
        rows = reduction_tree_study(four_kernels())
        by_kernel = {}
        for row in rows:
            by_kernel.setdefault(row.kernel, {})[row.levels] = row
        for kernel, levels in by_kernel.items():
            assert levels[1].rf_accesses >= levels[2].rf_accesses >= levels[3].rf_accesses

    def test_utilization_monotone_in_depth(self):
        rows = reduction_tree_study(four_kernels())
        by_kernel = {}
        for row in rows:
            by_kernel.setdefault(row.kernel, {})[row.levels] = row
        for kernel, levels in by_kernel.items():
            assert (
                levels[1].cu_utilization
                >= levels[2].cu_utilization
                >= levels[3].cu_utilization
            )

    def test_two_level_sweet_spot(self):
        """The Section 4.3 design argument: going 2 -> 3 levels barely
        reduces RF accesses but halves utilization (or worse)."""
        rows = reduction_tree_study(four_kernels())
        by_kernel = {}
        for row in rows:
            by_kernel.setdefault(row.kernel, {})[row.levels] = row
        savings_12 = sum(
            levels[1].rf_accesses - levels[2].rf_accesses
            for levels in by_kernel.values()
        )
        savings_23 = sum(
            levels[2].rf_accesses - levels[3].rf_accesses
            for levels in by_kernel.values()
        )
        assert savings_12 > savings_23


class TestVLIWUtilization:
    def test_between_zero_and_one(self):
        for value in vliw_utilization(four_kernels()).values():
            assert 0.0 < value <= 1.0

    def test_bsw_utilization_close_to_paper(self):
        # Paper: 60.6%; our BSW DFG maps to 58.3%.
        utils = vliw_utilization(four_kernels())
        assert utils["bsw"] == pytest.approx(PAPER_VLIW_UTILIZATION["bsw"], abs=0.1)

    def test_chain_utilization_close_to_paper(self):
        # Paper: 38.3% -- the muls and selects limit VLIW packing.
        utils = vliw_utilization(four_kernels())
        assert utils["chain"] == pytest.approx(
            PAPER_VLIW_UTILIZATION["chain"], abs=0.1
        )

    def test_chain_is_worst_of_non_graph_kernels(self):
        utils = vliw_utilization(four_kernels())
        assert utils["chain"] < utils["bsw"]
        assert utils["chain"] < utils["pairhmm"]


class TestMeasuredVLIWUtilization:
    """Table 11 a second way: from profiled simulator activity."""

    def test_measured_tracks_static_within_tolerance(self):
        static = vliw_utilization(
            {k: KERNEL_DFGS[k]() for k in ("bsw", "chain")}
        )
        measured = measured_vliw_utilization(kernels=("bsw", "chain"))
        for kernel in ("bsw", "chain"):
            # Steady-state bundles issue the mapped schedule; boundary
            # and epilogue bundles account for the residual gap.
            assert measured[kernel] == pytest.approx(
                static[kernel], abs=0.1
            )

    def test_all_recipes_run_and_bound(self):
        measured = measured_vliw_utilization()
        assert set(measured) == set(MEASURED_KERNELS)
        for value in measured.values():
            assert 0.0 < value <= 1.0

    def test_profile_report_has_activity(self):
        report = measured_kernel_profile("lcs")
        assert report.bundles > 0
        assert report.alu_ops > 0
        assert sum(report.way_histogram().values()) == report.bundles

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError):
            measured_kernel_profile("poa")
