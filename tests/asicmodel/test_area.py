"""Tests for the Table 7/8 area & power model."""

import pytest

from repro.asicmodel.area import (
    DPAX_28NM,
    dpax_area_breakdown,
    dpax_power_breakdown,
    pe_area_fractions,
)


class TestAreaBreakdown:
    def test_total_matches_paper(self):
        assert dpax_area_breakdown()["total"] == pytest.approx(5.391, abs=0.01)

    def test_sixteen_arrays_rollup(self):
        breakdown = dpax_area_breakdown()
        assert breakdown["integer_pe_arrays_16"] == pytest.approx(
            16 * breakdown["integer_pe_array"]
        )
        assert breakdown["integer_pe_arrays_16"] == pytest.approx(2.381, abs=0.005)

    def test_logic_and_memory_subtotals(self):
        # Tolerances absorb Table 7's own rounding: its leaf rows sum
        # to 2.816 for memory although it prints 2.845, and 16 x its
        # PE-array row is 2.384 although it prints 2.381.
        breakdown = dpax_area_breakdown()
        assert breakdown["logic_subtotal"] == pytest.approx(2.577, abs=0.01)
        assert breakdown["memory_subtotal"] == pytest.approx(2.845, abs=0.05)

    def test_memory_is_about_half_the_tile(self):
        breakdown = dpax_area_breakdown()
        fraction = breakdown["memory_subtotal"] / breakdown["total"]
        assert 0.4 < fraction < 0.6


class TestPowerBreakdown:
    def test_total_matches_paper(self):
        # Table 7's leaf rows roll up near Table 8's 3.569 W tile power.
        assert dpax_power_breakdown()["total"] == pytest.approx(3.569, abs=0.02)

    def test_static_dynamic_split(self):
        assert DPAX_28NM.static_power_w + DPAX_28NM.dynamic_power_w == pytest.approx(
            3.569, abs=0.001
        )


class TestPEFractions:
    """Section 7.1's within-PE split (RF > CU array > decoders).

    The prose percentages (30/22/16) do not reconcile exactly with
    Table 7's leaf areas (the prose likely includes each PE's SRAM
    share), so we assert the ordering and rough magnitudes the
    argument rests on: the register file is the largest logic block.
    """

    def test_register_file_dominates(self):
        fractions = pe_area_fractions()
        assert fractions["register_file"] > fractions["compute_unit_array"]
        assert 0.25 <= fractions["register_file"] <= 0.5

    def test_compute_units_second(self):
        fractions = pe_area_fractions()
        assert fractions["compute_unit_array"] > fractions["decoder"]
        assert 0.15 <= fractions["compute_unit_array"] <= 0.4

    def test_decoders_smallest_named_block(self):
        assert 0.1 <= pe_area_fractions()["decoder"] <= 0.3


class TestScaledBudget:
    def test_component_scaling(self):
        scaled = DPAX_28NM.integer_pe.scaled(0.5, 0.25)
        assert scaled.area_mm2 == pytest.approx(0.0175)
        assert scaled.power_w == pytest.approx(0.005)
