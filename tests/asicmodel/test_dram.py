"""Tests for the DRAM bandwidth/power model."""

import pytest

from repro.asicmodel.dram import (
    DDR4_2400_8CH,
    DRAMConfig,
    kernel_traffic_bytes_per_cell,
)


class TestPower:
    def test_static_matches_table8(self):
        assert DDR4_2400_8CH.static_power_w == pytest.approx(0.446)

    def test_dynamic_reproduces_table8_at_average_traffic(self):
        # ~2.4 GB/s average single-tile traffic -> ~0.645 W dynamic.
        dynamic = DDR4_2400_8CH.dynamic_power(2.4e9)
        assert dynamic == pytest.approx(0.645, abs=0.01)

    def test_total_power(self):
        assert DDR4_2400_8CH.total_power(0) == DDR4_2400_8CH.static_power_w

    def test_negative_traffic_rejected(self):
        with pytest.raises(ValueError):
            DDR4_2400_8CH.dynamic_power(-1)


class TestBandwidthCeiling:
    def test_64_tiles_supported(self):
        # Table 12: the 8-channel system feeds ~64 tiles at average
        # per-tile traffic.
        assert DDR4_2400_8CH.max_tiles(2.4) in range(60, 68)

    def test_heavier_tiles_fit_fewer(self):
        assert DDR4_2400_8CH.max_tiles(10.0) < DDR4_2400_8CH.max_tiles(2.0)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            DDR4_2400_8CH.max_tiles(0)


class TestTraffic:
    def test_bytes_per_cell(self):
        assert kernel_traffic_bytes_per_cell(0.5, 2.0) == 10.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            kernel_traffic_bytes_per_cell(-1, 0)
