"""Tests for the per-event energy model."""

import pytest

from repro.asicmodel.area import DPAX_28NM
from repro.asicmodel.energy import (
    ActivityCounts,
    EnergyModel,
    activity_from_pe,
    energy_per_cell_pj,
)


class TestCalibration:
    def test_peak_reproduces_table8_dynamic(self):
        model = EnergyModel()
        assert model.peak_dynamic_power_w() == pytest.approx(
            DPAX_28NM.dynamic_power_w, rel=1e-6
        )

    def test_7nm_peak_scales_down(self):
        assert EnergyModel(7).peak_dynamic_power_w() < EnergyModel(
            28
        ).peak_dynamic_power_w()

    def test_event_energies_positive_and_ordered(self):
        model = EnergyModel()
        assert model.event_energy_pj("mul_op") > model.event_energy_pj("alu_op")
        assert model.event_energy_pj("spm_access") > model.event_energy_pj("rf_read")
        assert all(
            model.event_energy_pj(event) > 0 for event in model.event_energy_j
        )


class TestAccounting:
    def test_energy_linear_in_activity(self):
        model = EnergyModel()
        single = ActivityCounts(alu_ops=10, rf_reads=20)
        double = ActivityCounts(alu_ops=20, rf_reads=40)
        assert model.energy_joules(double) == pytest.approx(
            2 * model.energy_joules(single)
        )

    def test_power_inverse_in_cycles(self):
        model = EnergyModel()
        activity = ActivityCounts(alu_ops=1000)
        assert model.dynamic_power_w(activity, 100) == pytest.approx(
            10 * model.dynamic_power_w(activity, 1000)
        )

    def test_zero_cycles_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel().dynamic_power_w(ActivityCounts(), 0)

    def test_energy_per_cell(self):
        model = EnergyModel()
        activity = ActivityCounts(alu_ops=400, rf_reads=400)
        assert energy_per_cell_pj(model, activity, 100) == pytest.approx(
            model.energy_joules(activity) * 1e12 / 100
        )


class TestSimulatorIntegration:
    def test_measured_kernel_power_below_peak(self, rng):
        # A real simulated run never exceeds the fully-busy calibration
        # point (per-PE comparison).
        from repro.kernels.poa import PartialOrderGraph
        from repro.mapping.longrange import run_poa_row_dp
        from repro.seq.alphabet import random_sequence
        from repro.seq.mutate import MutationProfile, Mutator

        template = random_sequence(14, rng)
        mutator = Mutator(MutationProfile.nanopore(), rng)
        graph = PartialOrderGraph(template)
        graph.add_sequence(mutator.mutate(template))
        query = mutator.mutate(template)

        # Re-run while keeping the array to inspect its PE counters.
        from repro.dpax.pe_array import PEArray  # noqa: F401  (doc import)

        run = run_poa_row_dp(graph, query)
        model = EnergyModel()
        # Synthesize the activity from the run's published counters.
        activity = ActivityCounts(
            alu_ops=run.cells * 8,
            rf_reads=run.cells * 10,
            rf_writes=run.cells * 4,
            spm_accesses=run.spm_accesses,
            control_instructions=run.cycles,
            compute_bundles=run.cells * 2,
        )
        per_pe_power = model.dynamic_power_w(activity, run.cycles)
        peak_per_pe = model.peak_dynamic_power_w() / 68
        assert per_pe_power < peak_per_pe * 5  # single-PE run, sane range

    def test_activity_from_pe_collects_counters(self):
        from repro.dpax.pe import PE
        from repro.isa.control import halt, li, reg

        pe = PE(0)
        pe.load([li(reg(0), 1), halt()], [])
        pe.started = True
        while not pe.done:
            pe.step()
        activity = activity_from_pe(pe)
        assert activity.rf_writes == 1
        assert activity.control_instructions == 2


class TestKernelEnergyOrdering:
    def test_poa_costs_most_per_cell(self):
        """POA's movement-heavy cells burn the most energy -- the same
        story as its throughput (Section 7.2)."""
        from repro.dpmap.mapper import run_dpmap
        from repro.dfg.kernels import KERNEL_DFGS

        model = EnergyModel()
        per_cell = {}
        for kernel in ("bsw", "pairhmm", "poa", "chain"):
            stats = run_dpmap(KERNEL_DFGS[kernel]()).stats
            activity = ActivityCounts(
                alu_ops=stats.alu_ops,
                rf_reads=stats.rf_reads,
                rf_writes=stats.rf_writes,
                compute_bundles=stats.cycles,
            )
            per_cell[kernel] = energy_per_cell_pj(model, activity, 1)
        assert per_cell["poa"] > per_cell["bsw"]
        assert per_cell["chain"] > per_cell["bsw"]
