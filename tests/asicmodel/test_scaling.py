"""Tests for process scaling (Stillmaker-Baas factors)."""

import pytest

from repro.asicmodel.area import dpax_area_breakdown
from repro.asicmodel.scaling import TECH_NODES, scale_area, scale_power


class TestScaling:
    def test_identity(self):
        assert scale_area(5.0, 28, 28) == 5.0

    def test_tile_lands_at_paper_7nm_area(self):
        # 5.391 mm^2 at 28nm -> ~0.69 mm^2 at 7nm; x64 tiles = 44.3 mm^2
        # (Table 12).
        tile = scale_area(dpax_area_breakdown()["total"], 28, 7)
        assert tile == pytest.approx(0.69, abs=0.01)
        assert 64 * tile == pytest.approx(44.3, abs=0.3)

    def test_downscaling_shrinks(self):
        assert scale_area(1.0, 28, 7) < 1.0
        assert scale_power(1.0, 28, 7) < 1.0

    def test_upscaling_inverts(self):
        down = scale_area(1.0, 28, 7)
        assert scale_area(down, 7, 28) == pytest.approx(1.0)

    def test_cpu_10nm_to_7nm(self):
        # The paper normalizes the Xeon's 600 mm^2 (10nm) to 7nm.
        assert scale_area(600.0, 10, 7) < 600.0

    def test_unknown_node_rejected(self):
        with pytest.raises(ValueError):
            scale_area(1.0, 28, 5)

    def test_nodes_monotone(self):
        areas = [TECH_NODES[n]["area"] for n in sorted(TECH_NODES)]
        assert areas == sorted(areas)
