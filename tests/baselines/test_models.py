"""Tests for the baseline throughput models."""

import pytest

from repro.baselines.data import KERNELS, PAPER_CPU_BASELINES, PAPER_GPU_BASELINES, PAPER_TABLE15
from repro.baselines.models import asic_models, cpu_model, gpu_model
from repro.baselines.platforms import CPU_XEON_8380, GPU_A100


class TestRuntimePredictions:
    """Runtime = cells / rate, with the published sustained rates.

    Table 15's GCUPS and its raw runtimes do not reconcile exactly for
    every kernel (Chain's cell count is the reordered total, PairHMM's
    covers the full forward pass while the baseline runs a scan), so
    the model treats the GCUPS column as authoritative and these tests
    check internal consistency plus the BSW row, where both agree.
    """

    def test_bsw_runtime_near_table13(self):
        model = cpu_model()
        cells = PAPER_TABLE15["bsw"]["total_cells"]
        predicted = model.runtime_seconds("bsw", cells)
        published = PAPER_CPU_BASELINES["Xeon Platinum 8380"]["bsw"]
        assert predicted == pytest.approx(published, rel=0.1)

    def test_runtime_consistent_with_rate(self):
        for model in (cpu_model(), gpu_model()):
            for kernel in KERNELS:
                cells = 10 ** 9
                assert model.runtime_seconds(kernel, cells) == pytest.approx(
                    1.0 / model.gcups[kernel]
                )

    def test_runtime_scales_linearly_with_cells(self):
        model = cpu_model()
        assert model.runtime_seconds("bsw", 2_000_000) == pytest.approx(
            2 * model.runtime_seconds("bsw", 1_000_000)
        )

    def test_xeon_8380_is_the_fastest_published_cpu(self):
        reference = PAPER_CPU_BASELINES["Xeon Platinum 8380"]
        for platform, runtimes in PAPER_CPU_BASELINES.items():
            for kernel in KERNELS:
                assert reference[kernel] <= runtimes[kernel]

    def test_a100_fastest_gpu_on_long_reads(self):
        reference = PAPER_GPU_BASELINES["NVIDIA A100"]
        for platform, runtimes in PAPER_GPU_BASELINES.items():
            assert reference["poa"] <= runtimes["poa"]
            assert reference["chain"] <= runtimes["chain"]


class TestNormalizedThroughput:
    def test_cpu_normalized_matches_table15(self):
        model = cpu_model()
        for kernel in KERNELS:
            assert model.mcups_per_mm2(kernel) == pytest.approx(
                PAPER_TABLE15[kernel]["cpu_norm_mcups_mm2"], rel=0.1
            )

    def test_gpu_unnormalized_matches_table15(self):
        model = gpu_model()
        for kernel in KERNELS:
            assert model.mcups_per_mm2(kernel, normalize_process=False) == pytest.approx(
                PAPER_TABLE15[kernel]["gpu_mcups_mm2"], rel=0.05
            )

    def test_gpu_7nm_needs_no_normalization(self):
        model = gpu_model()
        assert model.mcups_per_mm2("bsw") == model.mcups_per_mm2(
            "bsw", normalize_process=False
        )

    def test_unknown_kernel_rejected(self):
        with pytest.raises(KeyError):
            cpu_model().runtime_seconds("dtw3d", 100)


class TestASICs:
    def test_only_bsw_and_pairhmm_have_asics(self):
        models = asic_models()
        assert set(models) == {"bsw", "pairhmm"}

    def test_asic_faster_than_everything(self):
        models = asic_models()
        assert models["bsw"].norm_mcups_per_mm2 > PAPER_TABLE15["bsw"]["gendp_norm_mcups_mm2"]


class TestPlatforms:
    def test_table5_values(self):
        assert CPU_XEON_8380.die_area_mm2 == 600.0
        assert CPU_XEON_8380.tdp_w == 270.0
        assert GPU_A100.die_area_mm2 == 826.0
        assert GPU_A100.process_nm == 7

    def test_mcups_per_mm2_helper(self):
        assert GPU_A100.mcups_per_mm2(82.6) == pytest.approx(100.0)
