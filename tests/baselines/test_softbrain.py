"""Tests for the SoftBrain comparison model (Table 9)."""

import pytest

from repro.baselines.data import PAPER_SOFTBRAIN
from repro.baselines.softbrain import (
    geomean_speedup,
    padding_overhead,
    simd_utilization,
    softbrain_comparison,
)


class TestPaddingModel:
    def test_single_stage_needs_no_padding(self):
        assert padding_overhead(1, 100) == 0.0

    def test_reproduces_bsw_padding(self):
        # BSW: 3 stages on ~18-cell effective rows -> ~9.9% (Table 9).
        assert padding_overhead(3, 18) == pytest.approx(0.099, abs=0.01)

    def test_reproduces_pairhmm_padding(self):
        # PairHMM: 4 stages, ~16-cell rows -> ~15.7%.
        assert padding_overhead(4, 16) == pytest.approx(0.157, abs=0.01)

    def test_deeper_pipelines_pad_more(self):
        assert padding_overhead(6, 50) > padding_overhead(2, 50)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            padding_overhead(0, 10)
        with pytest.raises(ValueError):
            padding_overhead(2, 0)


class TestSIMDModel:
    def test_full_batch(self):
        assert simd_utilization(8, 16) == 1.0

    def test_partial_final_group(self):
        # 9 tasks on 8 lanes: 2 groups, 9/16 occupancy.
        assert simd_utilization(8, 9) == pytest.approx(9 / 16)

    def test_single_lane_always_full(self):
        assert simd_utilization(1, 7) == 1.0


class TestComparison:
    def test_table9_rows_present(self):
        fits = softbrain_comparison({})
        assert set(fits) == set(PAPER_SOFTBRAIN)

    def test_chain_is_the_one_softbrain_win(self):
        fits = softbrain_comparison({})
        losses = [k for k, fit in fits.items() if fit.gendp_speedup < 1.0]
        assert losses == ["chain"]

    def test_poa_is_the_biggest_gendp_win(self):
        fits = softbrain_comparison({})
        best = max(fits.values(), key=lambda fit: fit.gendp_speedup)
        assert best.kernel == "poa"

    def test_geomean_matches_section_7_3(self):
        assert geomean_speedup(softbrain_comparison({})) == pytest.approx(
            2.12, abs=0.05
        )

    def test_effective_throughput_factor(self):
        fits = softbrain_comparison({})
        bsw = fits["bsw"]
        assert bsw.effective_throughput_factor == pytest.approx(
            (1 - 0.099) * 0.422, abs=1e-6
        )
