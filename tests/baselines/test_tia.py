"""Tests for the TIA comparison model (Table 10)."""

import pytest

from repro.baselines.data import PAPER_TIA
from repro.baselines.tia import (
    TIS_PER_PE,
    estimate_triggered_instructions,
    tia_requirements,
)
from repro.dfg.kernels import KERNEL_DFGS


def four_kernels():
    return {k: KERNEL_DFGS[k]() for k in ("bsw", "pairhmm", "poa", "chain")}


class TestEstimates:
    def test_pe_count_is_ti_count_over_scheduler_capacity(self):
        requirements = tia_requirements(four_kernels())
        for req in requirements.values():
            expected = -(-req.triggered_instructions // TIS_PER_PE)
            assert req.pes_required == expected

    def test_multiple_pes_always_needed(self):
        # The paper's point: one DP cell never fits one TIA PE.
        for req in tia_requirements(four_kernels()).values():
            assert req.pes_required >= 2

    def test_graph_and_convex_kernels_need_the_most_resources(self):
        # In the paper POA tops Table 10; our leaner POA DFG puts the
        # complex kernels (POA, Chain) at the top together.
        requirements = tia_requirements(four_kernels())
        top = max(r.pes_required for r in requirements.values())
        assert requirements["poa"].pes_required >= top - 1
        assert requirements["chain"].pes_required >= top - 1

    def test_bsw_needs_the_fewest(self):
        requirements = tia_requirements(four_kernels())
        assert requirements["bsw"].pes_required == min(
            r.pes_required for r in requirements.values()
        )

    def test_estimates_within_factor_two_of_paper(self):
        requirements = tia_requirements(four_kernels())
        for kernel, req in requirements.items():
            published = PAPER_TIA[kernel]["triggered_instructions"]
            assert published / 2.5 <= req.triggered_instructions <= published * 2.5

    def test_estimate_exceeds_operator_count(self):
        for kernel, dfg in four_kernels().items():
            assert estimate_triggered_instructions(dfg) > dfg.operator_count()
