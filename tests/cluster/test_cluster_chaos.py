"""Cluster chaos campaigns: exactly-once under faults, byte-identity."""

import pytest

from repro.cluster import ClusterChaosConfig, run_cluster_campaign


def _config(**kwargs):
    defaults = dict(jobs=80, seed=9, shards=4, chunk_jobs=20)
    defaults.update(kwargs)
    return ClusterChaosConfig(**defaults)


class TestSurvival:
    def test_quiet_campaign_settles_everything(self):
        report = run_cluster_campaign(_config())
        assert report.survived
        assert report.envelopes == report.submitted == 80
        assert report.lost == 0
        assert report.ok == 80
        assert report.shards_killed == 0

    def test_scheduled_kill_loses_nothing(self):
        report = run_cluster_campaign(_config(kills=((2, 1),)))
        assert report.survived
        assert report.shards_killed == 1
        assert report.resubmitted > 0
        assert report.lost == 0
        assert report.duplicate_envelopes == 0
        assert report.final_shard_states["shard-1"] == "dead"

    def test_every_shard_is_a_survivable_victim(self):
        """Exactly-once holds no matter which shard dies."""
        for ordinal in range(4):
            report = run_cluster_campaign(_config(kills=((2, ordinal),)))
            assert report.survived, f"lost jobs killing shard {ordinal}"
            assert report.envelopes == report.submitted

    def test_partitions_heal_and_settle(self):
        report = run_cluster_campaign(
            _config(jobs=120, partition_rate=0.15, partition_rounds=2)
        )
        assert report.survived
        assert report.envelopes == report.submitted

    def test_hangs_slow_but_never_lose(self):
        report = run_cluster_campaign(_config(hang_rate=0.3))
        assert report.survived
        assert report.hangs_injected > 0


class TestDeterminism:
    def test_same_seed_is_byte_identical(self):
        config = _config(kills=((2, 1),), partition_rate=0.1, hang_rate=0.1)
        first = run_cluster_campaign(config)
        second = run_cluster_campaign(config)
        assert first.to_json() == second.to_json()

    def test_different_seeds_differ(self):
        base = run_cluster_campaign(_config(partition_rate=0.2))
        other = run_cluster_campaign(_config(partition_rate=0.2, seed=10))
        # The fault schedule is seed-driven; reports should diverge
        # somewhere (counts, states or virtual time).
        assert base.to_json() != other.to_json()

    def test_virtual_time_is_deterministic(self):
        config = _config(hang_rate=0.2)
        first = run_cluster_campaign(config)
        second = run_cluster_campaign(config)
        assert first.virtual_seconds == second.virtual_seconds
        assert first.virtual_seconds > 0


class TestConfigValidation:
    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError):
            ClusterChaosConfig(jobs=0)

    def test_bad_rates_rejected_eagerly(self):
        with pytest.raises(ValueError):
            ClusterChaosConfig(kill_rate=1.5)

    def test_report_dict_round_trips_config(self):
        config = _config(kills=((2, 1),))
        report = run_cluster_campaign(config)
        assert report.to_dict()["config"]["kills"] == [[2, 1]]
        assert report.to_dict()["config"]["seed"] == 9
