"""Hash-ring properties: determinism, balance, bounded remapping.

The cluster's failover story leans on three ring properties, each
pinned here:

- routing is a pure function of the key and the membership -- stable
  across calls, orderings *and processes* (Python's salted ``hash``
  must never leak in);
- virtual nodes spread keys acceptably evenly;
- join/leave remaps only ~K/N of K keys, so membership churn cannot
  stampede every shard's program cache.
"""

import subprocess
import sys
from pathlib import Path

from repro.cluster.hashring import HashRing, ring_hash

KEYS = [f"kernel:{index}" for index in range(600)]


def _ring(shards):
    ring = HashRing()
    for shard in shards:
        ring.add(shard)
    return ring


class TestRingBasics:
    def test_empty_ring_routes_nowhere(self):
        assert HashRing().route("anything") is None
        assert HashRing().route_n("anything", 3) == []

    def test_single_shard_owns_everything(self):
        ring = _ring(["only"])
        assert all(ring.route(key) == "only" for key in KEYS)

    def test_membership_is_idempotent(self):
        ring = _ring(["a", "b"])
        ring.add("a")
        ring.remove("missing")
        assert ring.shards == ["a", "b"]
        assert len(ring) == 2
        assert "a" in ring and "missing" not in ring

    def test_route_n_starts_with_owner_and_is_distinct(self):
        ring = _ring(["a", "b", "c", "d"])
        for key in KEYS[:50]:
            preference = ring.route_n(key, 4)
            assert preference[0] == ring.route(key)
            assert len(preference) == len(set(preference)) == 4

    def test_route_n_caps_at_membership(self):
        ring = _ring(["a", "b"])
        assert len(ring.route_n("key", 10)) == 2


class TestDeterminism:
    def test_routing_ignores_insertion_order(self):
        forward = _ring(["a", "b", "c", "d"])
        backward = _ring(["d", "c", "b", "a"])
        assert forward.assignments(KEYS) == backward.assignments(KEYS)

    def test_routing_survives_remove_and_readd(self):
        ring = _ring(["a", "b", "c"])
        before = ring.assignments(KEYS)
        ring.remove("b")
        ring.add("b")
        assert ring.assignments(KEYS) == before

    def test_ring_hash_is_not_python_hash(self):
        # blake2b positions, never the per-process salted hash().
        assert ring_hash("shard-0#0") == ring_hash("shard-0#0")
        assert ring_hash("a") != ring_hash("b")

    def test_routing_is_identical_across_processes(self):
        """A subprocess (fresh hash salt) routes every key the same."""
        src_root = Path(__file__).resolve().parents[2] / "src"
        script = (
            "from repro.cluster.hashring import HashRing\n"
            "ring = HashRing()\n"
            "for shard in ('a', 'b', 'c', 'd'):\n"
            "    ring.add(shard)\n"
            "print(';'.join(ring.route(f'kernel:{i}') for i in range(200)))\n"
        )
        completed = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": str(src_root), "PYTHONHASHSEED": "random"},
        )
        ring = _ring(["a", "b", "c", "d"])
        local = ";".join(ring.route(f"kernel:{i}") for i in range(200))
        assert completed.stdout.strip() == local


class TestBalanceAndRemapping:
    def test_virtual_nodes_spread_load(self):
        ring = _ring([f"shard-{index}" for index in range(4)])
        counts = {shard: 0 for shard in ring.shards}
        for key in KEYS:
            counts[ring.route(key)] += 1
        mean = len(KEYS) / len(counts)
        # 64 virtual nodes keep the worst shard within ~2x the mean.
        assert max(counts.values()) <= 2.0 * mean
        assert min(counts.values()) >= 0.3 * mean

    def test_join_remaps_about_k_over_n(self):
        ring = _ring([f"shard-{index}" for index in range(4)])
        before = ring.assignments(KEYS)
        ring.add("shard-4")
        after = ring.assignments(KEYS)
        moved = sum(1 for key in KEYS if before[key] != after[key])
        # Ideal is K/N = 1/5 of keys; allow 2x for virtual-node noise.
        assert moved <= 2 * len(KEYS) / 5
        # Every moved key moved TO the new shard, never between old ones.
        assert all(
            after[key] == "shard-4"
            for key in KEYS
            if before[key] != after[key]
        )

    def test_leave_remaps_only_the_leavers_keys(self):
        ring = _ring([f"shard-{index}" for index in range(5)])
        before = ring.assignments(KEYS)
        ring.remove("shard-2")
        after = ring.assignments(KEYS)
        for key in KEYS:
            if before[key] == "shard-2":
                assert after[key] != "shard-2"
            else:
                assert after[key] == before[key]
