"""Shard health: windows, degradation, ejection, rejoin probes."""

import pytest

from repro.cluster.health import HEALTH_CODES, ShardHealth
from repro.engine.breaker import BREAKER_CODES


class TestClassification:
    def test_fresh_shard_is_healthy(self):
        health = ShardHealth()
        assert health.classification == "healthy"
        assert not health.ejected

    def test_error_rate_degrades(self):
        health = ShardHealth(window=4, degrade_error_rate=0.5)
        health.record_drain(True, 0.01)
        health.record_drain(False, 0.01)
        health.record_drain(True, 0.01)
        health.record_drain(False, 0.01)
        assert health.error_rate == 0.5
        assert health.classification == "degraded"

    def test_slow_rounds_degrade(self):
        health = ShardHealth(window=4, slow_round_s=0.1, degrade_slow_rate=0.5)
        for _ in range(4):
            health.record_drain(True, 0.5)
        assert health.slow_rate == 1.0
        assert health.classification == "degraded"
        # Successes kept the breaker closed: degraded, not ejected.
        assert not health.ejected

    def test_window_is_bounded(self):
        health = ShardHealth(window=3)
        for _ in range(10):
            health.record_drain(False, 0.0)
            health.record_drain(True, 0.0)
        assert 0.0 < health.error_rate < 1.0
        assert health.mean_latency_s == 0.0

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            ShardHealth(window=0)


class TestEjection:
    def test_consecutive_failures_eject(self):
        health = ShardHealth(eject_threshold=2)
        assert not health.record_drain(False, 0.0)
        assert health.record_drain(False, 0.0)  # this one opens
        assert health.ejected
        assert health.classification == "ejected"

    def test_missed_heartbeats_eject(self):
        health = ShardHealth(eject_threshold=2)
        health.beat(1)
        assert health.missed_beats == 0
        health.miss(2)
        assert health.miss(3)
        assert health.ejected
        assert health.missed_beats == 2

    def test_success_resets_the_streak(self):
        health = ShardHealth(eject_threshold=2)
        health.record_drain(False, 0.0)
        health.record_drain(True, 0.0)
        assert not health.record_drain(False, 0.0)
        assert not health.ejected

    def test_rejoin_after_cooldown(self):
        health = ShardHealth(eject_threshold=1, rejoin_cooldown=2)
        health.record_drain(False, 0.0)
        assert health.ejected
        # Cooldown counts down in allow() calls (one per drain round);
        # the call that exhausts it is the half-open rejoin probe.
        assert not health.allow()
        assert health.allow()  # the rejoin probe
        assert health.probing
        health.record_drain(True, 0.0)
        assert not health.ejected
        assert health.classification != "ejected"


class TestSnapshot:
    def test_snapshot_is_numeric_and_schema_stable(self):
        health = ShardHealth()
        health.beat(1)
        health.record_drain(True, 0.02)
        snap = health.snapshot()
        assert set(snap) == {
            "health",
            "breaker_state",
            "error_rate",
            "slow_rate",
            "mean_latency_s",
            "missed_beats",
        }
        assert all(isinstance(value, float) for value in snap.values())
        assert snap["health"] == float(HEALTH_CODES["healthy"])
        assert snap["breaker_state"] == float(BREAKER_CODES["closed"])

    def test_snapshot_reflects_ejection(self):
        health = ShardHealth(eject_threshold=1)
        health.record_drain(False, 0.0)
        snap = health.snapshot()
        assert snap["health"] == float(HEALTH_CODES["ejected"])
        assert snap["breaker_state"] == float(BREAKER_CODES["open"])
