"""ClusterRouter: routing, failover exactly-once, stealing, lifecycle."""

import re
from pathlib import Path

import pytest

from repro.cluster import (
    CLUSTER_COUNTERS,
    ClusterConfig,
    ClusterRouter,
    SimClock,
)
from repro.engine import BackpressureError, EngineConfig, make_job
from repro.obs.trace import TraceRecorder

SRC_ROOT = Path(__file__).resolve().parents[2] / "src" / "repro"


def _router(shards=4, max_queue=64, tracer=None, **kwargs):
    return ClusterRouter(
        ClusterConfig(
            shards=shards,
            engine=EngineConfig(workers=0, max_queue=max_queue),
            **kwargs,
        ),
        tracer=tracer,
        clock=SimClock(),
    )


def _job(salt=None):
    payload = {"x": "ACGT", "y": "ACG"}
    if salt is not None:
        payload["_affinity"] = salt
    return make_job("lcs", payload)


class TestRouting:
    def test_same_kernel_routes_to_same_shard(self):
        with _router() as router:
            owners = set()
            for _ in range(10):
                accepted = router.submit(_job())
                owners.add(router._owner[accepted.job_id])
            assert len(owners) == 1

    def test_affinity_token_subdivides_a_program(self):
        with _router(shards=8) as router:
            owners = set()
            for salt in range(64):
                accepted = router.submit(_job(salt=salt))
                owners.add(router._owner[accepted.job_id])
            assert len(owners) > 2

    def test_full_shard_falls_through_the_ring(self):
        with _router(shards=2, max_queue=2) as router:
            for _ in range(4):  # 2 per shard once the owner fills
                router.submit(_job())
            assert router.metrics.counter("cluster_route_fallbacks") > 0
            with pytest.raises(BackpressureError):
                router.submit(_job())

    def test_drain_returns_submission_order(self):
        with _router() as router:
            submitted = [router.submit(_job(salt=i)) for i in range(12)]
            results = router.drain()
            assert [r.job_id for r in results] == [
                j.job_id for j in submitted
            ]
            assert all(r.ok for r in results)
            assert all(r.shard for r in results)

    def test_route_span_carries_shard_and_trace(self):
        tracer = TraceRecorder()
        with _router(tracer=tracer) as router:
            router.submit(_job())
            router.drain()
        spans = tracer.spans()
        names = {span.name for span in spans}
        assert {"cluster:route", "shard:drain", "cluster:drain"} <= names
        route = next(s for s in spans if s.name == "cluster:route")
        assert route.args["shard"].startswith("shard-")
        shard_drain = next(s for s in spans if s.name == "shard:drain")
        assert shard_drain.args["shard"] == route.args["shard"]


class TestFailover:
    def test_kill_fails_over_exactly_once(self):
        with _router() as router:
            submitted = [router.submit(_job(salt=i)) for i in range(20)]
            victim = router._owner[submitted[0].job_id]
            assert router.kill_shard(victim) > 0
            results = router.drain()
            # Every job settles with exactly one envelope, all ok.
            assert sorted(r.job_id for r in results) == sorted(
                j.job_id for j in submitted
            )
            assert all(r.ok for r in results)
            assert router.metrics.counter("cluster_jobs_resubmitted") > 0
            assert router.metrics.counter("cluster_duplicate_envelopes") == 0
            assert not router._inflight

    def test_killing_the_last_shard_is_refused(self):
        with _router(shards=1) as router:
            router.submit(_job())
            assert router.kill_shard("shard-0") == -1
            assert router.shards["shard-0"].state == "active"

    def test_unroutable_jobs_get_cluster_fault_envelopes(self):
        # Two shards; kill the victim, then jam the survivor's queue so
        # failover has nowhere to go: the orphan must still settle.
        with _router(shards=2, max_queue=4) as router:
            submitted = [router.submit(_job(salt=i)) for i in range(8)]
            owners = {router._owner[j.job_id] for j in submitted}
            assert len(owners) == 2  # both shards hold work
            victim = sorted(owners)[0]
            router.kill_shard(victim)
            survivor = next(s for s in owners if s != victim)
            # Fill the survivor so adoption hits backpressure.
            while router.shards[survivor].queued < 4:
                router.shards[survivor].submit(_job(salt=99))
            results = router.drain()
            by_id = {r.job_id: r for r in results}
            faulted = [
                r for r in by_id.values() if r.error and "cluster-fault" in r.error
            ]
            # Jobs beyond the survivor's capacity got the synthesized
            # envelope and parked in the router DLQ -- never dropped.
            assert router.metrics.counter("cluster_jobs_unroutable") == len(
                faulted
            )
            if faulted:
                assert len(router.dead_letters) == len(faulted)

    def test_dead_letter_replay_reledgers(self):
        with _router(shards=2, max_queue=4) as router:
            for i in range(4):
                router.submit(_job(salt=i))
            router.drain()
            if router.dead_letters:
                replayed = router.replay_dead_letters()
                assert all(j.job_id in router._inflight for j in replayed)


class TestRebalancing:
    def test_hot_shard_sheds_onto_idle_ones(self):
        with _router(shards=4, steal_ratio=1.5, max_steal_per_round=32) as router:
            # All jobs share one program and no affinity token: one
            # shard owns the whole stream until the stealer spreads it.
            submitted = [router.submit(_job()) for _ in range(32)]
            results = router.drain()
            assert len(results) == len(submitted)
            assert router.metrics.counter("cluster_jobs_stolen") > 0
            shards_used = {r.shard for r in results}
            assert len(shards_used) > 1

    def test_stealing_respects_the_bound(self):
        with _router(
            shards=4, steal_ratio=1.5, max_steal_per_round=4
        ) as router:
            for _ in range(32):
                router.submit(_job())
            router.drain()
            # One donor round may shed at most max_steal_per_round.
            assert router.metrics.counter("cluster_jobs_stolen") <= 4


class TestLifecycle:
    def test_join_adds_capacity(self):
        with _router(shards=2) as router:
            router.join()
            assert len(router.ring) == 3
            assert router.metrics.counter("cluster_shards_joined") == 3

    def test_graceful_leave_finishes_backlog(self):
        with _router(shards=2) as router:
            submitted = [router.submit(_job(salt=i)) for i in range(8)]
            leaver = router._owner[submitted[0].job_id]
            router.leave(leaver)
            assert leaver not in router.ring
            results = router.drain()
            assert len(results) == len(submitted)
            assert router.shards[leaver].state == "left"
            assert router.metrics.counter("cluster_shards_left") == 1

    def test_snapshot_shape(self):
        with _router(shards=2) as router:
            router.submit(_job())
            router.drain()
            snap = router.snapshot()
            assert snap["cluster"]["shards_total"] == 2
            assert snap["cluster"]["shards_in_ring"] == 2
            assert set(snap["shards"]) == {"shard-0", "shard-1"}
            for gauges in snap["shards"].values():
                assert "health" in gauges and "state" in gauges
            for counter in CLUSTER_COUNTERS:
                assert counter in snap["counters"]


class TestCounterSchema:
    def test_cluster_counters_have_incr_sites(self):
        """Drift guard: every schema counter has a real incr site."""
        blob = "\n".join(
            path.read_text()
            for path in sorted((SRC_ROOT / "cluster").rglob("*.py"))
        )
        missing = [
            name
            for name in CLUSTER_COUNTERS
            if not re.search(rf"incr\(\s*[\"']{name}[\"']", blob)
        ]
        assert not missing, f"cluster counters without incr sites: {missing}"
