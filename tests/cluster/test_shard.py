"""EngineShard: lifecycle, pending ledger, fault flags, kill orphans."""

import pytest

from repro.cluster.shard import SHARD_STATE_CODES, EngineShard, ShardUnavailableError
from repro.engine import BackpressureError, Engine, EngineConfig, make_job


def _shard(shard_id="s0", max_queue=8):
    engine = Engine(
        EngineConfig(workers=0, max_queue=max_queue), shard=shard_id
    )
    return EngineShard(shard_id, engine)


def _job():
    return make_job("lcs", {"x": "ACGT", "y": "ACG"})


class TestWorkAndLedger:
    def test_submit_ledgers_and_drain_settles(self):
        shard = _shard()
        try:
            accepted = shard.submit(_job())
            assert shard.pending == 1
            assert shard.queued == 1
            results = shard.drain()
            assert [r.job_id for r in results] == [accepted.job_id]
            assert results[0].shard == "s0"
            assert shard.pending == 0
        finally:
            shard.close()

    def test_backpressure_propagates(self):
        shard = _shard(max_queue=1)
        try:
            shard.submit(_job())
            with pytest.raises(BackpressureError):
                shard.submit(_job())
        finally:
            shard.close()

    def test_withdraw_takes_from_the_tail(self):
        shard = _shard()
        try:
            jobs = [shard.submit(_job()) for _ in range(4)]
            taken = shard.withdraw(2)
            assert [job.job_id for job in taken] == [
                jobs[2].job_id,
                jobs[3].job_id,
            ]
            # Withdrawn jobs leave the ledger: they are someone else's.
            assert shard.pending == 2
            assert shard.queued == 2
        finally:
            shard.close()

    def test_withdraw_all_and_bounds(self):
        shard = _shard()
        try:
            for _ in range(3):
                shard.submit(_job())
            assert shard.withdraw(0) == []
            assert len(shard.withdraw(None)) == 3
            assert shard.queued == 0
        finally:
            shard.close()


class TestKillAndLifecycle:
    def test_kill_orphans_pending_jobs(self):
        shard = _shard()
        submitted = [shard.submit(_job()) for _ in range(3)]
        orphans = shard.kill()
        assert {job.job_id for job in orphans} == {
            job.job_id for job in submitted
        }
        assert shard.state == "dead"
        assert shard.queued == 0  # a dead shard reports no load
        with pytest.raises(ShardUnavailableError):
            shard.submit(_job())

    def test_drained_jobs_are_not_orphaned(self):
        shard = _shard()
        shard.submit(_job())
        shard.drain()
        survivor = shard.submit(_job())
        orphans = shard.kill()
        assert [job.job_id for job in orphans] == [survivor.job_id]

    def test_graceful_leave_drains_backlog_first(self):
        shard = _shard()
        shard.submit(_job())
        shard.begin_leave()
        assert shard.state == "draining"
        assert not shard.accepting(1)
        assert shard.drainable(1)
        assert not shard.finish_leave()  # backlog not empty yet
        shard.drain()
        assert shard.finish_leave()
        assert shard.state == "left"

    def test_state_codes_cover_all_states(self):
        assert set(SHARD_STATE_CODES) == {"active", "draining", "left", "dead"}


class TestFaultFlags:
    def test_partition_blocks_then_heals(self):
        shard = _shard()
        try:
            shard.mark_partitioned(until_round=3)
            assert shard.partitioned(1) and shard.partitioned(2)
            assert not shard.accepting(2)
            assert not shard.drainable(2)
            assert not shard.partitioned(3)
            assert shard.accepting(3)
        finally:
            shard.close()

    def test_hang_delay_is_consumed_once(self):
        shard = _shard()
        try:
            shard.mark_hung(0.5)
            shard.mark_hung(0.2)  # max wins, no stacking
            assert shard.take_hang_delay() == 0.5
            assert shard.take_hang_delay() == 0.0
        finally:
            shard.close()

    def test_snapshot_gauges(self):
        shard = _shard()
        try:
            shard.submit(_job())
            shard.mark_partitioned(until_round=5)
            snap = shard.snapshot(round_number=2)
            assert snap["state"] == float(SHARD_STATE_CODES["active"])
            assert snap["queued"] == 1.0
            assert snap["pending"] == 1.0
            assert snap["partitioned"] == 1.0
            assert snap["dlq_depth"] == 0.0
            # Healed partitions read 0 again (round-dependent gauge).
            assert shard.snapshot(round_number=5)["partitioned"] == 0.0
        finally:
            shard.close()
