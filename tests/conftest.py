"""Shared fixtures for the test suite."""

import random

import pytest

from repro.seq.alphabet import random_sequence


@pytest.fixture
def rng():
    """A deterministically seeded RNG per test."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def dna_pair(rng):
    """A (query, target) pair of related DNA sequences."""
    from repro.seq.mutate import MutationProfile, Mutator

    template = random_sequence(40, rng)
    mutator = Mutator(MutationProfile.illumina(), rng)
    return mutator.mutate(template), template
