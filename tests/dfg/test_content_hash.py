"""Structural content hashing: stable across build order, names, dead code."""

from repro.dfg.graph import DataFlowGraph, Opcode
from repro.dfg.kernels import bsw_dfg, chain_dfg, lcs_dfg


def _diamond(swap_arms=False, names=("l", "r"), extra_dead=False):
    """max(a + b, a - b), built with the two arms in either order."""
    dfg = DataFlowGraph("diamond")
    a = dfg.input("a")
    b = dfg.input("b")
    if swap_arms:
        right = dfg.op(Opcode.SUB, a, b, name=names[1])
        left = dfg.op(Opcode.ADD, a, b, name=names[0])
    else:
        left = dfg.op(Opcode.ADD, a, b, name=names[0])
        right = dfg.op(Opcode.SUB, a, b, name=names[1])
    if extra_dead:
        dfg.op(Opcode.MUL, a, dfg.const(7), name="unused")
    out = dfg.op(Opcode.MAX, left, right, name="best")
    dfg.mark_output("out", out)
    return dfg


class TestStability:
    def test_identical_builds_hash_identically(self):
        assert _diamond().content_hash() == _diamond().content_hash()

    def test_insertion_order_of_independent_nodes_is_irrelevant(self):
        # The two arms of the diamond are independent, so building them
        # in either order encodes the same computation.
        assert (
            _diamond(swap_arms=False).content_hash()
            == _diamond(swap_arms=True).content_hash()
        )

    def test_node_names_are_irrelevant(self):
        assert (
            _diamond(names=("l", "r")).content_hash()
            == _diamond(names=("foo", "bar")).content_hash()
        )

    def test_dead_nodes_are_irrelevant(self):
        # Nodes unreachable from any output do not change the program.
        assert (
            _diamond(extra_dead=False).content_hash()
            == _diamond(extra_dead=True).content_hash()
        )

    def test_hash_survives_copy(self):
        dfg = _diamond()
        assert dfg.copy().content_hash() == dfg.content_hash()


class TestSensitivity:
    def test_opcode_changes_the_hash(self):
        base = _diamond()
        variant = DataFlowGraph("diamond")
        a = variant.input("a")
        b = variant.input("b")
        left = variant.op(Opcode.ADD, a, b)
        right = variant.op(Opcode.SUB, a, b)
        out = variant.op(Opcode.MIN, left, right)  # MAX -> MIN
        variant.mark_output("out", out)
        assert base.content_hash() != variant.content_hash()

    def test_constant_value_changes_the_hash(self):
        def build(k):
            dfg = DataFlowGraph()
            out = dfg.op(Opcode.ADD, dfg.input("a"), dfg.const(k))
            dfg.mark_output("out", out)
            return dfg

        assert build(1).content_hash() != build(2).content_hash()

    def test_input_name_changes_the_hash(self):
        def build(name):
            dfg = DataFlowGraph()
            out = dfg.op(Opcode.COPY, dfg.input(name))
            dfg.mark_output("out", out)
            return dfg

        assert build("h_up").content_hash() != build("h_left").content_hash()

    def test_output_name_changes_the_hash(self):
        first, second = _diamond(), _diamond()
        node_id = second.outputs.pop("out")
        second.outputs["score"] = node_id
        assert first.content_hash() != second.content_hash()

    def test_operand_order_changes_the_hash(self):
        def build(flipped):
            dfg = DataFlowGraph()
            a, b = dfg.input("a"), dfg.input("b")
            out = dfg.op(Opcode.SUB, b, a) if flipped else dfg.op(Opcode.SUB, a, b)
            dfg.mark_output("out", out)
            return dfg

        assert build(False).content_hash() != build(True).content_hash()


class TestKernels:
    def test_kernel_builders_are_deterministic(self):
        assert bsw_dfg().content_hash() == bsw_dfg().content_hash()
        assert lcs_dfg().content_hash() == lcs_dfg().content_hash()
        assert chain_dfg().content_hash() == chain_dfg().content_hash()

    def test_distinct_kernels_hash_differently(self):
        hashes = {
            bsw_dfg().content_hash(),
            lcs_dfg().content_hash(),
            chain_dfg().content_hash(),
        }
        assert len(hashes) == 3
