"""Tests for the data-flow graph IR."""

import pytest

from repro.dfg.graph import (
    ALU_OPCODES,
    FOUR_INPUT_OPCODES,
    OPCODE_ARITY,
    DataFlowGraph,
    DFGValidationError,
    Opcode,
)


def small_graph():
    dfg = DataFlowGraph("test")
    a = dfg.input("a")
    b = dfg.input("b")
    s = dfg.op(Opcode.ADD, a, b, name="sum")
    m = dfg.op(Opcode.MAX, s, dfg.const(0), name="clamp")
    dfg.mark_output("out", m)
    return dfg


class TestConstruction:
    def test_arity_enforced(self):
        dfg = DataFlowGraph()
        with pytest.raises(DFGValidationError):
            dfg.op(Opcode.ADD, dfg.input("a"))

    def test_forward_reference_rejected(self):
        from repro.dfg.graph import NodeRef

        dfg = DataFlowGraph()
        with pytest.raises(DFGValidationError):
            dfg.op(Opcode.COPY, NodeRef(5))

    def test_outputs_required_for_validate(self):
        dfg = DataFlowGraph()
        dfg.op(Opcode.ADD, dfg.input("a"), dfg.input("b"))
        with pytest.raises(DFGValidationError):
            dfg.validate()

    def test_valid_graph_passes(self):
        small_graph().validate()

    def test_inputs_deduplicated(self):
        dfg = DataFlowGraph()
        dfg.input("x")
        dfg.input("x")
        assert dfg.inputs == ["x"]


class TestStructure:
    def test_parents_children(self):
        dfg = small_graph()
        assert dfg.parents(1) == [0]
        assert dfg.children(0) == [1]

    def test_edges(self):
        assert small_graph().edges() == [(0, 1)]

    def test_operator_count_skips_nop(self):
        dfg = small_graph()
        dfg.op(Opcode.NOP)
        assert dfg.operator_count() == 2

    def test_copy_is_independent(self):
        dfg = small_graph()
        clone = dfg.copy()
        clone.op(Opcode.COPY, clone.const(1))
        assert len(dfg.nodes) == 2
        assert len(clone.nodes) == 3


class TestEvaluation:
    def test_basic_arithmetic(self):
        dfg = small_graph()
        assert dfg.evaluate({"a": 3, "b": -10}) == {"out": 0}
        assert dfg.evaluate({"a": 3, "b": 10}) == {"out": 13}

    def test_missing_input_raises(self):
        with pytest.raises(KeyError):
            small_graph().evaluate({"a": 1})

    def test_cmp_gt_semantics(self):
        dfg = DataFlowGraph()
        sel = dfg.op(
            Opcode.CMP_GT,
            dfg.input("a"), dfg.input("b"), dfg.const(1), dfg.const(2),
        )
        dfg.mark_output("o", sel)
        assert dfg.evaluate({"a": 5, "b": 3}) == {"o": 1}
        assert dfg.evaluate({"a": 3, "b": 3}) == {"o": 2}

    def test_match_score_table(self):
        dfg = DataFlowGraph()
        ms = dfg.op(Opcode.MATCH_SCORE, dfg.input("x"), dfg.input("y"))
        dfg.mark_output("s", ms)
        table = lambda a, b: 10 if a == b else -7
        assert dfg.evaluate({"x": 1, "y": 1}, match_table=table) == {"s": 10}
        assert dfg.evaluate({"x": 1, "y": 2}, match_table=table) == {"s": -7}

    def test_shifts(self):
        dfg = DataFlowGraph()
        left = dfg.op(Opcode.SHL16, dfg.input("v"))
        right = dfg.op(Opcode.SHR16, left)
        dfg.mark_output("o", right)
        assert dfg.evaluate({"v": 42}) == {"o": 42}

    def test_borrow(self):
        dfg = DataFlowGraph()
        borrow = dfg.op(Opcode.BORROW, dfg.input("a"), dfg.input("b"))
        dfg.mark_output("o", borrow)
        assert dfg.evaluate({"a": 1, "b": 2}) == {"o": 1}
        assert dfg.evaluate({"a": 2, "b": 1}) == {"o": 0}


class TestOpcodeClasses:
    def test_four_input_arity(self):
        for opcode in (Opcode.CMP_GT, Opcode.CMP_EQ):
            assert OPCODE_ARITY[opcode] == 4
            assert opcode in FOUR_INPUT_OPCODES

    def test_alu_ops_are_at_most_binary(self):
        assert all(OPCODE_ARITY[op] <= 2 for op in ALU_OPCODES)

    def test_mul_is_not_alu(self):
        assert Opcode.MUL not in ALU_OPCODES
