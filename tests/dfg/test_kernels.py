"""Tests that each kernel DFG reproduces its reference recurrence."""

import random

import pytest

from repro.dfg.kernels import (
    KERNEL_DFGS,
    bellman_ford_dfg,
    bsw_dfg,
    chain_dfg,
    dtw_dfg,
    lcs_dfg,
    pairhmm_dfg,
    poa_dfg,
    poa_edge_dfg,
    poa_final_dfg,
)


@pytest.fixture(params=sorted(KERNEL_DFGS))
def kernel_dfg(request):
    return KERNEL_DFGS[request.param]()


class TestAllKernels:
    def test_validates(self, kernel_dfg):
        kernel_dfg.validate()

    def test_has_outputs(self, kernel_dfg):
        assert kernel_dfg.outputs

    def test_evaluable_on_arbitrary_inputs(self, kernel_dfg, rng):
        inputs = {name: rng.randint(-50, 50) for name in kernel_dfg.inputs}
        outputs = kernel_dfg.evaluate(inputs)
        assert set(outputs) == set(kernel_dfg.outputs)


class TestBSWCell:
    def test_matches_affine_recurrence(self, rng):
        dfg = bsw_dfg(gap_open=4, gap_extend=1)
        oe, ext = 5, 1
        for _ in range(100):
            env = {
                "h_diag": rng.randint(-20, 50),
                "h_up": rng.randint(-20, 50),
                "h_left": rng.randint(-20, 50),
                "e_up": rng.randint(-40, 40),
                "f_left": rng.randint(-40, 40),
                "q": rng.randint(0, 3),
                "t": rng.randint(0, 3),
            }
            out = dfg.evaluate(env)
            score = 1 if env["q"] == env["t"] else -1
            e = max(env["h_up"] - oe, env["e_up"] - ext)
            f = max(env["h_left"] - oe, env["f_left"] - ext)
            h = max(env["h_diag"] + score, e, f, 0)
            assert out["e"] == e and out["f"] == f and out["h"] == h

    def test_direction_diagonal_on_match_win(self):
        dfg = bsw_dfg()
        out = dfg.evaluate(
            {
                "h_diag": 10, "h_up": 0, "h_left": 0,
                "e_up": -100, "f_left": -100, "q": 1, "t": 1,
            }
        )
        assert out["dir"] == 1


class TestLCSCell:
    def test_matches_equation_one(self, rng):
        dfg = lcs_dfg()
        for _ in range(50):
            env = {
                "c_diag": rng.randint(0, 30),
                "c_up": rng.randint(0, 30),
                "c_left": rng.randint(0, 30),
                "x": rng.randint(0, 3),
                "y": rng.randint(0, 3),
            }
            expected = (
                env["c_diag"] + 1
                if env["x"] == env["y"]
                else max(env["c_up"], env["c_left"])
            )
            assert dfg.evaluate(env)["c"] == expected


class TestDTWCell:
    def test_matches_recurrence(self, rng):
        dfg = dtw_dfg()
        for _ in range(50):
            env = {
                "a": rng.randint(-30, 30),
                "b": rng.randint(-30, 30),
                "d_diag": rng.randint(0, 100),
                "d_up": rng.randint(0, 100),
                "d_left": rng.randint(0, 100),
            }
            expected = abs(env["a"] - env["b"]) + min(
                env["d_diag"], env["d_up"], env["d_left"]
            )
            assert dfg.evaluate(env)["d"] == expected


class TestBellmanFordCell:
    def test_relaxation(self):
        dfg = bellman_ford_dfg()
        out = dfg.evaluate(
            {"dist_u": 5, "weight": 2, "dist_v": 10, "u_idx": 3, "pred": -1}
        )
        assert out["dist"] == 7
        assert out["pred"] == 3

    def test_no_improvement_keeps_pred(self):
        dfg = bellman_ford_dfg()
        out = dfg.evaluate(
            {"dist_u": 5, "weight": 10, "dist_v": 7, "u_idx": 3, "pred": 1}
        )
        assert out["dist"] == 7
        assert out["pred"] == 1


class TestPairHMMCell:
    def test_log_domain_products_are_adds(self):
        from repro.kernels.pairhmm import log_sum_lookup

        dfg = pairhmm_dfg()
        env = {
            "a_mm": -10, "a_im": -20, "a_gap": -5000, "a_ext": -2000,
            "m_diag": -100, "i_diag": -90000, "d_diag": -90000,
            "m_up": -200, "i_up": -300, "m_left": -150, "d_left": -250,
            "rho": -6,
        }
        out = dfg.evaluate(env)
        expected_i = log_sum_lookup(
            env["a_gap"] + env["m_up"], env["a_ext"] + env["i_up"]
        )
        assert out["i"] == expected_i

    def test_inline_emission_variant_uses_bases(self):
        dfg = pairhmm_dfg(inline_emission=True)
        assert "q" in dfg.inputs and "t" in dfg.inputs
        assert "rho" not in dfg.inputs


class TestChainCell:
    def test_gating_rejects_backward(self):
        dfg = chain_dfg()
        out = dfg.evaluate(
            {
                "x_i": 10, "y_i": 10, "x_j": 50, "y_j": 50,
                "w": 19, "f_j": 1000, "f_i": 42, "j_idx": 7, "parent": -1,
            }
        )
        assert out["f"] == 42
        assert out["parent"] == -1

    def test_matches_fixed_reference(self, rng):
        from repro.kernels.chain import Anchor
        from repro.kernels.chain_fixed import REJECTED, pair_score_fixed

        dfg = chain_dfg()
        for _ in range(100):
            prev = Anchor(rng.randint(0, 800), rng.randint(0, 800))
            cur = Anchor(prev.x + rng.randint(-20, 550), prev.y + rng.randint(-20, 550))
            f_j, f_i = rng.randint(0, 30000), rng.randint(0, 30000)
            out = dfg.evaluate(
                {
                    "x_i": cur.x, "y_i": cur.y, "x_j": prev.x, "y_j": prev.y,
                    "w": cur.w, "f_j": f_j, "f_i": f_i, "j_idx": 5, "parent": 2,
                }
            )
            gain = pair_score_fixed(prev, cur)
            candidate = f_j + gain if gain != REJECTED else REJECTED
            assert out["f"] == max(f_i, candidate)
            assert out["parent"] == (5 if candidate > f_i else 2)


class TestPOACells:
    def test_edge_block_folds_maxima(self):
        dfg = poa_edge_dfg(gap_open=4, gap_extend=1)
        out = dfg.evaluate(
            {
                "diag_best": 3, "up_best": -7,
                "h_pred_diag": 9, "h_pred_up": 6, "f_pred_up": 2,
            }
        )
        assert out["diag_best"] == 9
        assert out["up_best"] == max(-7, max(6 - 5, 2 - 1))

    def test_final_block_combines(self):
        dfg = poa_final_dfg(gap_open=4, gap_extend=1)
        out = dfg.evaluate(
            {
                "diag_best": 5, "up_best": 2, "q": 1, "t": 1,
                "h_left": 4, "e_left": -100,
            }
        )
        assert out["h"] == 6  # diag 5 + match 1 wins
        assert out["e"] == max(4 - 5, -101)

    def test_unrolled_poa_requires_one_edge(self):
        with pytest.raises(ValueError):
            poa_dfg(unrolled_edges=0)
