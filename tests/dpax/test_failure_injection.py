"""Failure-injection tests: malformed programs must fail loudly.

A simulator that silently absorbs broken programs hides codegen bugs;
these tests pin down the error behavior of every guard rail.
"""

import pytest

from repro.dpax.pe import PE, PEConfig
from repro.dpax.pe_array import PEArray
from repro.dpax.storage import StorageError
from repro.isa.compute import CUInstruction, Imm, Reg, SlotOp, VLIWInstruction
from repro.dfg.graph import Opcode
from repro.isa.control import (
    ControlOp,
    IN_PORT,
    OUT_PORT,
    branch,
    halt,
    li,
    mv,
    reg,
    set_unit,
    spm,
)


def start(pe):
    pe.started = True
    return pe


class TestControlFailures:
    def test_branch_out_of_program_raises(self):
        pe = start(PE(0))
        pe.load([branch(ControlOp.BEQ, 0, 0, -5), halt()], [])
        with pytest.raises(StorageError):
            pe.step()

    def test_rf_index_out_of_range(self):
        pe = start(PE(0, PEConfig(rf_size=4)))
        pe.load([li(reg(9), 1), halt()], [])
        with pytest.raises(StorageError):
            pe.step()

    def test_spm_indirect_out_of_range(self):
        pe = start(PE(0, PEConfig(spm_size=8)))
        pe.aregs[1] = 99
        pe.load([mv(reg(0), spm(1, indirect=True)), halt()], [])
        with pytest.raises(StorageError):
            pe.step()

    def test_unwired_out_port_raises(self):
        pe = start(PE(0))  # no out_target wired
        pe.load([li(reg(0), 1), mv(OUT_PORT, reg(0)), halt()], [])
        pe.step()
        with pytest.raises(StorageError):
            pe.step()

    def test_unwired_fifo_raises(self):
        from repro.isa.control import FIFO_PORT

        pe = start(PE(0))
        pe.load([mv(reg(0), FIFO_PORT), halt()], [])
        with pytest.raises(StorageError):
            pe.step()

    def test_invalid_program_rejected_at_load(self):
        from repro.isa.control import ControlInstruction

        pe = PE(0)
        with pytest.raises(ValueError):
            pe.load([ControlInstruction(ControlOp.MV, dest=reg(0))], [])


class TestComputeFailures:
    def test_set_past_program_end(self):
        pe = start(PE(0))
        bundle = VLIWInstruction(
            cu0=CUInstruction(
                kind="tree", dest=Reg(0), right=SlotOp(Opcode.ADD, (Reg(0), Imm(1)))
            )
        )
        pe.load([set_unit(0, 2), halt()], [bundle])
        with pytest.raises(StorageError):
            pe.step()

    def test_invalid_bundle_rejected_at_load(self):
        pe = PE(0)
        with pytest.raises(ValueError):
            pe.load([halt()], [VLIWInstruction()])


class TestDeadlockDetection:
    def test_starved_pe_reports_unfinished(self):
        # A PE waiting forever on an empty port: the run loop's cycle
        # cap turns the deadlock into a diagnosable outcome.
        array = PEArray()
        array.load_pe(0, [mv(reg(0), IN_PORT), halt()], [])
        array.load_array_control([set_unit(0, 1), halt()])
        for _ in range(200):
            array.step()
        assert not array.done
        assert array.pes[0].stats.control_stalls > 100

    def test_full_queue_backpressure_does_not_lose_data(self):
        # Producer pushes more than the queue holds while nobody pops:
        # it stalls rather than dropping words.
        array = PEArray()
        producer_program = [li(reg(0), 7)] + [
            mv(OUT_PORT, reg(0)) for _ in range(40)
        ] + [halt()]
        array.load_pe(0, producer_program, [])
        array.load_array_control([set_unit(0, 1), halt()])
        for _ in range(300):
            array.step()
        # PE1 never started; PE0 is stalled with a full queue.
        assert len(array.pes[1].in_queue) == array.pes[1].in_queue.capacity
        assert not array.pes[0].done
        assert array.pes[0].stats.control_stalls > 0
