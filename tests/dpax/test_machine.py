"""Tests for the DPAx tile: composition and interconnect."""

import pytest

from repro.dpax.machine import DPAxMachine, single_array_machine
from repro.isa.control import halt, li, reg, set_unit


class TestComposition:
    def test_default_tile_shape(self):
        machine = DPAxMachine()
        assert len(machine.int_arrays) == 16
        assert len(machine.fp_arrays) == 1
        assert sum(len(a.pes) for a in machine.int_arrays) == 64

    def test_fp_array_uses_fp_datapath(self):
        machine = DPAxMachine()
        assert machine.fp_arrays[0].pes[0].config.datapath == "fp"
        assert machine.int_arrays[0].pes[0].config.datapath == "int"


class TestConcatenation:
    def test_chain_rewires_out_targets(self):
        machine = DPAxMachine(integer_arrays=4, fp_arrays=0)
        machine.concatenate([0, 1, 2, 3])
        for upstream, downstream in zip(machine.int_arrays, machine.int_arrays[1:]):
            assert upstream.pes[-1].out_target is downstream.pes[0].in_queue

    def test_chain_fifo_wraps_to_head(self):
        machine = DPAxMachine(integer_arrays=2, fp_arrays=0)
        machine.concatenate([0, 1])
        head, tail = machine.int_arrays
        assert tail.pes[-1].fifo_write is head.fifo
        assert tail.pes[0].fifo_read is None

    def test_singleton_chain_rejected(self):
        machine = DPAxMachine(integer_arrays=2, fp_arrays=0)
        with pytest.raises(ValueError):
            machine.concatenate([0])

    def test_duplicate_chain_rejected(self):
        machine = DPAxMachine(integer_arrays=2, fp_arrays=0)
        with pytest.raises(ValueError):
            machine.concatenate([0, 0])


class TestRun:
    def test_requires_a_program(self):
        with pytest.raises(ValueError):
            DPAxMachine(integer_arrays=1, fp_arrays=0).run()

    def test_runs_to_completion(self):
        machine = DPAxMachine(integer_arrays=1, fp_arrays=0)
        array = machine.int_arrays[0]
        array.load_pe(0, [li(reg(0), 1), halt()], [])
        array.load_array_control([set_unit(0, 1), halt()])
        result = machine.run()
        assert result.finished
        assert result.cycles > 0

    def test_cycle_cap_reports_unfinished(self):
        from repro.isa.control import IN_PORT, mv

        machine = DPAxMachine(integer_arrays=1, fp_arrays=0)
        array = machine.int_arrays[0]
        # PE waits forever on an empty in-port.
        array.load_pe(0, [mv(reg(0), IN_PORT), halt()], [])
        array.load_array_control([set_unit(0, 1), halt()])
        result = machine.run(max_cycles=50)
        assert not result.finished

    def test_single_array_helper(self):
        array = single_array_machine()
        assert len(array.pes) == 4
