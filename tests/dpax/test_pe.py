"""Tests for the processing element: control + compute threads."""

import pytest

from repro.dfg.graph import Opcode
from repro.dpax.pe import PE, PEConfig, wrap32
from repro.dpax.storage import Fifo, PortQueue
from repro.isa.compute import CUInstruction, Imm, Reg, SlotOp, VLIWInstruction
from repro.isa.control import (
    ControlOp,
    IN_PORT,
    OUT_PORT,
    FIFO_PORT,
    addi,
    branch,
    halt,
    li,
    mv,
    reg,
    set_unit,
    spm,
)


def run_pe(pe, cycles=1000):
    pe.started = True
    for _ in range(cycles):
        pe.step()
        if pe.done:
            break
    return pe


def add_bundle(dest, a, b):
    return VLIWInstruction(
        cu0=CUInstruction(
            kind="tree", dest=Reg(dest), right=SlotOp(Opcode.ADD, (Reg(a), Reg(b)))
        )
    )


class TestWrap32:
    def test_positive_wrap(self):
        assert wrap32((1 << 31)) == -(1 << 31)

    def test_identity_in_range(self):
        assert wrap32(12345) == 12345
        assert wrap32(-12345) == -12345


class TestControlThread:
    def test_li_and_mv(self):
        pe = PE(0)
        pe.load([li(reg(1), 42), mv(reg(2), reg(1)), halt()], [])
        run_pe(pe)
        assert pe.rf.read(2) == 42

    def test_address_arithmetic_and_branch_loop(self):
        # Sum 0..4 into a2 via a backward branch.
        from repro.mapping.builder import ControlBuilder

        b = ControlBuilder()
        b.label("top")
        b.add(2, 2, 1)  # a2 += a1
        b.addi(1, 1, 1)  # a1 += 1
        b.branch(ControlOp.BLT, 1, 3, "top")  # while a1 < a3
        b.halt()
        pe = PE(0)
        pe.aregs[3] = 5
        pe.load(b.finish(), [])
        run_pe(pe)
        assert pe.aregs[1] == 5
        assert pe.aregs[2] == 0 + 1 + 2 + 3 + 4

    def test_spm_indirect_addressing(self):
        pe = PE(0)
        pe.load(
            [
                li(spm(7), 99),
                li(reg(0), 0),
                addi(1, 1, 7),  # a1 = 7
                mv(reg(2), spm(1, indirect=True)),
                halt(),
            ],
            [],
        )
        run_pe(pe)
        assert pe.rf.read(2) == 99

    def test_in_port_stall_until_data(self):
        pe = PE(0)
        pe.load([mv(reg(1), IN_PORT), halt()], [])
        pe.started = True
        pe.step()
        assert pe.stats.control_stalls == 1
        pe.in_queue.push(5)
        pe.step()
        pe.step()
        assert pe.rf.read(1) == 5

    def test_out_port_writes_downstream(self):
        pe = PE(0)
        downstream = PortQueue(4)
        pe.out_target = downstream
        pe.load([li(reg(1), 7), mv(OUT_PORT, reg(1)), halt()], [])
        run_pe(pe)
        assert downstream.pop() == 7

    def test_fifo_roundtrip(self):
        fifo = Fifo()
        pe = PE(0)
        pe.fifo_read = fifo
        pe.fifo_write = fifo
        pe.load([li(FIFO_PORT, 11), mv(reg(1), FIFO_PORT), halt()], [])
        run_pe(pe)
        assert pe.rf.read(1) == 11


class TestComputeThread:
    def test_set_runs_bundles(self):
        pe = PE(0)
        pe.load(
            [li(reg(0), 3), li(reg(1), 4), set_unit(0, 1), halt()],
            [add_bundle(2, 0, 1)],
        )
        run_pe(pe)
        assert pe.rf.read(2) == 7

    def test_two_way_vliw_executes_both(self):
        bundle = VLIWInstruction(
            cu0=CUInstruction(
                kind="tree", dest=Reg(2), right=SlotOp(Opcode.ADD, (Reg(0), Imm(1)))
            ),
            cu1=CUInstruction(
                kind="tree", dest=Reg(3), right=SlotOp(Opcode.SUB, (Reg(0), Imm(1)))
            ),
        )
        pe = PE(0)
        pe.load([li(reg(0), 10), set_unit(0, 1), halt()], [bundle])
        run_pe(pe)
        assert pe.rf.read(2) == 11 and pe.rf.read(3) == 9

    def test_control_fences_on_rf_while_compute_busy(self):
        pe = PE(0)
        pe.load(
            [
                li(reg(0), 1),
                li(reg(1), 2),
                set_unit(0, 1),
                mv(reg(4), reg(2)),  # must wait for the ADD result
                halt(),
            ],
            [add_bundle(2, 0, 1)],
        )
        run_pe(pe)
        assert pe.rf.read(4) == 3
        assert pe.stats.control_stalls >= 0  # fence may or may not hit

    def test_set_target_window(self):
        pe = PE(0)
        bundles = [add_bundle(2, 0, 1), add_bundle(3, 2, 2)]
        pe.load(
            [li(reg(0), 5), li(reg(1), 5), set_unit(1, 1), halt()], bundles
        )
        # Only the second bundle runs: r3 = r2 + r2 = 0.
        run_pe(pe)
        assert pe.rf.read(2) == 0
        assert pe.rf.read(3) == 0

    def test_set_out_of_range_raises(self):
        pe = PE(0)
        pe.load([set_unit(0, 5)], [add_bundle(2, 0, 1)])
        pe.started = True
        with pytest.raises(Exception):
            pe.step()

    def test_match_table_plumbed(self):
        bundle = VLIWInstruction(
            cu0=CUInstruction(
                kind="tree",
                dest=Reg(2),
                left=SlotOp(Opcode.MATCH_SCORE, (Reg(0), Reg(1))),
            )
        )
        pe = PE(0, PEConfig(match_table=lambda a, b: 42 if a == b else -1))
        pe.load([li(reg(0), 2), li(reg(1), 2), set_unit(0, 1), halt()], [bundle])
        run_pe(pe)
        assert pe.rf.read(2) == 42

    def test_int_datapath_wraps(self):
        bundle = VLIWInstruction(
            cu0=CUInstruction(
                kind="tree",
                dest=Reg(1),
                right=SlotOp(Opcode.ADD, (Reg(0), Reg(0))),
            )
        )
        pe = PE(0)
        pe.load([li(reg(0), (1 << 30)), set_unit(0, 1), halt()], [bundle])
        run_pe(pe)
        assert pe.rf.read(1) == -(1 << 31)

    def test_fp_datapath_keeps_floats(self):
        pe = PE(0, PEConfig(datapath="fp"))
        pe.load([li(reg(0), 3), halt()], [])
        run_pe(pe)
        assert pe.rf.read(0) == 3
