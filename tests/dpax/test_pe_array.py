"""Tests for the PE array: systolic wiring and array control."""

import pytest

from repro.dfg.graph import Opcode
from repro.dpax.pe_array import PEArray
from repro.isa.compute import CUInstruction, Imm, Reg, SlotOp, VLIWInstruction
from repro.isa.control import (
    ControlOp,
    FIFO_PORT,
    IN_PORT,
    OUT_PORT,
    areg,
    halt,
    ibuf,
    li,
    mv,
    obuf,
    reg,
    set_unit,
)
from repro.mapping.builder import ControlBuilder


def run_array(array, cycles=5000):
    for _ in range(cycles):
        array.step()
        if array.done:
            break
    return array


class TestWiring:
    def test_default_chain(self):
        array = PEArray()
        assert array.pes[0].out_target is array.pes[1].in_queue
        assert array.pes[-1].out_target is array.tail_queue
        assert array.pes[0].fifo_read is array.fifo
        assert array.pes[-1].fifo_write is array.fifo

    def test_single_pe_array(self):
        array = PEArray(pe_count=1)
        assert array.pes[0].out_target is array.tail_queue


class TestArrayControl:
    def test_set_starts_pe(self):
        array = PEArray()
        array.load_pe(0, [halt()], [])
        array.load_array_control([set_unit(0, 1), halt()])
        run_array(array)
        assert array.pes[0].started

    def test_ibuf_to_pe_to_obuf_pipeline(self):
        # Array feeds 4 words through all 4 PEs (each increments via its
        # compute unit), then collects into the output buffer.
        array = PEArray()
        array.ibuf.preload([10, 20, 30, 40])

        increment = VLIWInstruction(
            cu0=CUInstruction(
                kind="tree",
                dest=Reg(0),
                right=SlotOp(Opcode.ADD, (Reg(0), Imm(1))),
            )
        )
        for position in range(4):
            b = ControlBuilder()
            b.li(areg(1), 4)
            b.label("top")
            b.mv(reg(0), IN_PORT)
            b.set_unit(0, 1)
            b.mv(OUT_PORT, reg(0))
            b.addi(0, 0, 1)
            b.branch(ControlOp.BLT, 0, 1, "top")
            b.halt()
            array.load_pe(position, b.finish(), [increment])

        b = ControlBuilder()
        for pe_index in range(4):
            b.set_unit(pe_index, 1)
        b.li(areg(1), 4)
        b.label("push")
        b.mv(OUT_PORT, ibuf(0, indirect=True))
        b.addi(0, 0, 1)
        b.branch(ControlOp.BLT, 0, 1, "push")
        b.li(areg(2), 0)
        b.label("pop")
        b.mv(obuf(2, indirect=True), IN_PORT)
        b.addi(2, 2, 1)
        b.addi(3, 3, 1)
        b.branch(ControlOp.BLT, 3, 1, "pop")
        b.halt()
        array.load_array_control(b.finish())

        run_array(array)
        assert array.done
        # Each word passed 4 incrementing PEs.
        assert array.obuf.dump(0, 4) == [14, 24, 34, 44]

    def test_fifo_preload_by_array(self):
        array = PEArray()
        array.load_pe(0, [mv(reg(1), FIFO_PORT), halt()], [])
        array.load_array_control([li(FIFO_PORT, 77), set_unit(0, 1), halt()])
        run_array(array)
        assert array.pes[0].rf.read(1) == 77

    def test_stats_merge(self):
        array = PEArray()
        array.load_pe(0, [li(reg(0), 1), halt()], [])
        array.load_array_control([set_unit(0, 1), halt()])
        run_array(array)
        stats = array.merged_pe_stats()
        assert stats.control_executed >= 2
