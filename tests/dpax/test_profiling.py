"""Opt-in simulator profiling: per-PE accounting and invariants."""

import random

import pytest

from repro.dpax.machine import DPAxMachine
from repro.dpax.pe_array import PEArray
from repro.kernels.chain import Anchor
from repro.mapping import kernels2d
from repro.mapping.sliding1d import run_chain
from repro.mapping.wavefront2d import run_wavefront
from repro.obs.profile import (
    ALU_SLOTS_PER_BUNDLE,
    PEProfile,
    ProfileReport,
    STALL_REASONS,
)
from repro.obs.trace import validate_chrome_trace
from repro.seq.alphabet import encode, random_sequence


@pytest.fixture(scope="module")
def profiled_bsw():
    rng = random.Random(7)
    run = run_wavefront(
        kernels2d.bsw_wavefront_spec(),
        target=encode(random_sequence(12, rng)),
        stream=encode(random_sequence(16, rng)),
        profile=True,
    )
    assert run.finished
    return run


def test_profiled_run_matches_unprofiled(profiled_bsw):
    rng = random.Random(7)
    plain = run_wavefront(
        kernels2d.bsw_wavefront_spec(),
        target=encode(random_sequence(12, rng)),
        stream=encode(random_sequence(16, rng)),
    )
    assert plain.profile is None
    assert plain.cycles == profiled_bsw.cycles
    assert plain.cells == profiled_bsw.cells


def test_stall_reasons_are_known(profiled_bsw):
    breakdown = profiled_bsw.profile.stall_breakdown()
    assert set(breakdown) <= set(STALL_REASONS)
    assert all(count > 0 for count in breakdown.values())


def test_way_histogram_sums_to_bundles(profiled_bsw):
    report = profiled_bsw.profile
    histogram = report.way_histogram()
    assert sum(histogram.values()) == report.bundles
    assert report.bundles > 0
    # Ways per bundle are bounded by the 2-way issue width.
    assert set(histogram) <= {0, 1, 2}
    assert report.ways_issued == sum(
        ways * count for ways, count in histogram.items()
    )


def test_fifo_histogram_counts_sampled_cycles(profiled_bsw):
    report = profiled_bsw.profile
    (array,) = report.arrays
    assert sum(report.fifo_depth_histogram().values()) == array.sampled_cycles
    assert array.sampled_cycles == profiled_bsw.cycles


def test_slot_utilization_bounds(profiled_bsw):
    report = profiled_bsw.profile
    utilization = report.vliw_slot_utilization()
    assert 0.0 < utilization <= 1.0
    assert utilization == pytest.approx(
        report.alu_ops / (report.bundles * ALU_SLOTS_PER_BUNDLE)
    )
    assert 0.0 < report.way_occupancy() <= 1.0


def test_chrome_trace_export(profiled_bsw):
    document = profiled_bsw.profile.to_chrome_trace()
    assert validate_chrome_trace(document) == []
    events = document["traceEvents"]
    compute = [event for event in events if event["name"] == "compute"]
    assert compute
    # Cycle-denominated durations; segments are coalesced, not per cycle.
    assert all(event["dur"] >= 1 for event in compute)
    assert len(compute) < profiled_bsw.cycles


def test_report_to_dict_and_render(profiled_bsw):
    document = profiled_bsw.profile.to_dict()
    assert document["bundles"] == profiled_bsw.profile.bundles
    assert document["per_pe"]
    text = profiled_bsw.profile.render()
    assert "VLIW slot util" in text
    assert "bundles executed" in text


def test_enable_profiling_is_idempotent():
    array = PEArray()
    profile = array.enable_profiling()
    assert array.enable_profiling() is profile
    machine = DPAxMachine(integer_arrays=2, fp_arrays=0)
    tile = machine.enable_profiling()
    assert machine.enable_profiling() is tile
    assert len(tile.arrays) == 2


def test_machine_profiling_via_chain():
    rng = random.Random(3)
    anchors = []
    x = y = 0
    for _ in range(12):
        x += rng.randint(1, 60)
        y += rng.randint(1, 60)
        anchors.append(Anchor(x, y))
    run = run_chain(anchors, total_pes=8, pes_per_array=4, profile=True)
    assert run.finished
    assert isinstance(run.profile, ProfileReport)
    assert run.profile.bundles > 0
    assert len(run.profile.arrays) >= 1
    plain = run_chain(anchors, total_pes=8, pes_per_array=4)
    assert plain.profile is None
    assert plain.result.scores == run.result.scores


def test_empty_profile_is_all_zero():
    profile = PEProfile(array_index=0, pe_index=0)
    assert profile.way_occupancy == 0.0
    assert profile.slot_utilization == 0.0
    report = ProfileReport(arrays=[])
    assert report.vliw_slot_utilization() == 0.0
    assert report.way_histogram() == {}


def test_timeline_truncation_cap():
    profile = PEProfile(array_index=0, pe_index=0, max_timeline=4)
    # Alternate states so no coalescing happens.
    for cycle in range(12):
        if cycle % 2:
            profile.idle(cycle)
        else:
            profile.bundle(cycle, ways=1, alu_ops=1)
    assert len(profile.segments()) == 4
    assert profile.timeline_truncated
    # Accounting keeps going after the timeline stops.
    assert profile.bundles == 6
    assert profile.idle_cycles == 6
