"""Tests for DPAx storage components."""

import pytest

from repro.dpax.storage import (
    DataBuffer,
    Fifo,
    PortQueue,
    RegisterFile,
    Scratchpad,
    StorageError,
)


class TestRegisterFile:
    def test_read_write(self):
        rf = RegisterFile(8)
        rf.write(3, -42)
        assert rf.read(3) == -42

    def test_uninitialized_reads_zero(self):
        assert RegisterFile(8).read(0) == 0

    def test_bounds_checked(self):
        rf = RegisterFile(8)
        with pytest.raises(StorageError):
            rf.write(8, 1)
        with pytest.raises(StorageError):
            rf.read(-1)

    def test_access_counters(self):
        rf = RegisterFile(8)
        rf.write(0, 1)
        rf.read(0)
        rf.read(0)
        assert rf.reads == 2 and rf.writes == 1 and rf.accesses == 3


class TestScratchpad:
    def test_independent_of_rf(self):
        spm = Scratchpad(16)
        spm.write(5, 99)
        assert spm.read(5) == 99
        assert spm.accesses == 2

    def test_bounds(self):
        with pytest.raises(StorageError):
            Scratchpad(4).read(4)


class TestPortQueue:
    def test_fifo_order(self):
        queue = PortQueue(4)
        for value in (1, 2, 3):
            assert queue.push(value)
        assert [queue.pop() for _ in range(3)] == [1, 2, 3]

    def test_full_push_fails_without_losing_data(self):
        queue = PortQueue(2)
        queue.push(1)
        queue.push(2)
        assert not queue.push(3)
        assert len(queue) == 2

    def test_empty_pop_returns_none(self):
        assert PortQueue(2).pop() is None

    def test_counters(self):
        queue = PortQueue(4)
        queue.push(1)
        queue.pop()
        assert queue.pushes == 1 and queue.pops == 1

    def test_fifo_is_deeper(self):
        assert Fifo().capacity > PortQueue().capacity


class TestDataBuffer:
    def test_preload_and_read(self):
        buffer = DataBuffer(16)
        buffer.preload([10, 20, 30], base=2)
        assert buffer.read(3) == 20

    def test_preload_not_counted(self):
        buffer = DataBuffer(16)
        buffer.preload([1, 2, 3])
        assert buffer.reads == 0 and buffer.writes == 0

    def test_dump(self):
        buffer = DataBuffer(16)
        buffer.preload([7, 8, 9])
        assert buffer.dump(0, 3) == [7, 8, 9]

    def test_preload_bounds(self):
        with pytest.raises(StorageError):
            DataBuffer(2).preload([1, 2, 3])
