"""Tests for VLIW compute-instruction emission.

The central invariant: executing the emitted program on a register
file preloaded with the cell inputs reproduces the DFG interpreter's
outputs exactly, for every kernel and arbitrary inputs.
"""

import random

import pytest

from repro.dfg.graph import DataFlowGraph, Opcode
from repro.dfg.kernels import KERNEL_DFGS
from repro.dpmap.codegen import (
    compile_cell,
    offset_cell_program,
    run_program,
    verify_program,
)


@pytest.fixture(params=sorted(KERNEL_DFGS))
def kernel_name(request):
    return request.param


class TestEquivalence:
    def test_program_matches_dfg_on_random_inputs(self, kernel_name, rng):
        dfg = KERNEL_DFGS[kernel_name]()
        program = compile_cell(dfg)
        for _ in range(100):
            inputs = {name: rng.randint(-100, 100) for name in dfg.inputs}
            assert verify_program(program, inputs)

    def test_program_matches_with_custom_match_table(self, rng):
        dfg = KERNEL_DFGS["bsw"]()
        program = compile_cell(dfg)
        table = lambda a, b: 3 if a == b else -4
        for _ in range(50):
            inputs = {name: rng.randint(-50, 50) for name in dfg.inputs}
            assert verify_program(program, inputs, match_table=table)


class TestProgramShape:
    def test_bundle_count_matches_schedule(self, kernel_name):
        program = compile_cell(KERNEL_DFGS[kernel_name]())
        assert len(program.instructions) == len(program.mapping.schedule)

    def test_all_bundles_validate(self, kernel_name):
        program = compile_cell(KERNEL_DFGS[kernel_name]())
        for bundle in program.instructions:
            bundle.validate()

    def test_inputs_allocated_first(self, kernel_name):
        program = compile_cell(KERNEL_DFGS[kernel_name]())
        input_regs = sorted(program.input_regs.values())
        assert input_regs == list(range(len(input_regs)))

    def test_output_regs_disjoint_from_inputs(self, kernel_name):
        program = compile_cell(KERNEL_DFGS[kernel_name]())
        assert not (
            set(program.output_regs.values()) & set(program.input_regs.values())
        )

    def test_register_count_bounds_rf(self, kernel_name):
        program = compile_cell(KERNEL_DFGS[kernel_name]())
        assert program.register_count <= 64  # fits the PE register file


class TestOffsetProgram:
    def test_rebased_program_still_verifies(self, rng):
        dfg = KERNEL_DFGS["dtw"]()
        program = offset_cell_program(compile_cell(dfg), 17)
        for _ in range(30):
            inputs = {name: rng.randint(-40, 40) for name in dfg.inputs}
            assert verify_program(program, inputs)

    def test_registers_shifted(self):
        base = compile_cell(KERNEL_DFGS["lcs"]())
        shifted = offset_cell_program(base, 10)
        for name in base.input_regs:
            assert shifted.input_regs[name] == base.input_regs[name] + 10

    def test_negative_base_rejected(self):
        with pytest.raises(ValueError):
            offset_cell_program(compile_cell(KERNEL_DFGS["lcs"]()), -1)


class TestRunProgram:
    def test_missing_input_raises(self):
        program = compile_cell(KERNEL_DFGS["lcs"]())
        with pytest.raises(KeyError):
            run_program(program, {"c_diag": 1})

    def test_outputs_named(self):
        dfg = KERNEL_DFGS["lcs"]()
        program = compile_cell(dfg)
        outputs = run_program(
            program, {"c_diag": 1, "c_up": 0, "c_left": 0, "x": 2, "y": 2}
        )
        assert outputs == {"c": 2}


class TestVerifyProgramDetails:
    """verify_program returns structured mismatch details (PR 3)."""

    def test_clean_check_reports_no_mismatches(self):
        dfg = KERNEL_DFGS["lcs"]()
        program = compile_cell(dfg)
        inputs = {name: 3 for name in dfg.inputs}
        check = verify_program(program, inputs)
        assert check and check.ok
        assert check.mismatches == ()
        assert check.expected and check.actual == check.expected

    def test_mismatching_cells_are_itemized(self):
        import dataclasses

        dfg = KERNEL_DFGS["lcs"]()
        program = compile_cell(dfg)
        # Point an output at a different (wrong) register.
        wrong_regs = dict(program.output_regs)
        name = next(iter(wrong_regs))
        other = next(iter(program.input_regs.values()))
        wrong_regs[name] = other
        corrupt = dataclasses.replace(program, output_regs=wrong_regs)
        inputs = {input_name: 7 for input_name in dfg.inputs}
        check = verify_program(corrupt, inputs)
        if check.ok:  # the wrong register may coincide by value
            return
        assert not check
        detail = check.mismatches[0]
        assert detail.output == name
        assert detail.expected != detail.actual
        record = detail.to_dict()
        assert set(record) == {"output", "expected", "actual"}


class TestRegisterOverflow:
    def test_offset_past_rf_size_raises_typed_error(self):
        from repro.dpmap.codegen import RegisterOverflowError

        program = compile_cell(KERNEL_DFGS["lcs"]())
        with pytest.raises(RegisterOverflowError):
            offset_cell_program(program, 60)  # spills past the 64-entry RF

    def test_custom_rf_size_extends_the_range(self):
        program = compile_cell(KERNEL_DFGS["lcs"]())
        shifted = offset_cell_program(program, 60, rf_size=128)
        assert max(shifted.input_regs.values()) >= 60

    def test_error_is_still_a_value_error(self):
        from repro.dpmap.codegen import RegisterOverflowError

        assert issubclass(RegisterOverflowError, ValueError)
