"""Tests for VLIW compute-instruction emission.

The central invariant: executing the emitted program on a register
file preloaded with the cell inputs reproduces the DFG interpreter's
outputs exactly, for every kernel and arbitrary inputs.
"""

import random

import pytest

from repro.dfg.graph import DataFlowGraph, Opcode
from repro.dfg.kernels import KERNEL_DFGS
from repro.dpmap.codegen import (
    compile_cell,
    offset_cell_program,
    run_program,
    verify_program,
)


@pytest.fixture(params=sorted(KERNEL_DFGS))
def kernel_name(request):
    return request.param


class TestEquivalence:
    def test_program_matches_dfg_on_random_inputs(self, kernel_name, rng):
        dfg = KERNEL_DFGS[kernel_name]()
        program = compile_cell(dfg)
        for _ in range(100):
            inputs = {name: rng.randint(-100, 100) for name in dfg.inputs}
            assert verify_program(program, inputs)

    def test_program_matches_with_custom_match_table(self, rng):
        dfg = KERNEL_DFGS["bsw"]()
        program = compile_cell(dfg)
        table = lambda a, b: 3 if a == b else -4
        for _ in range(50):
            inputs = {name: rng.randint(-50, 50) for name in dfg.inputs}
            assert verify_program(program, inputs, match_table=table)


class TestProgramShape:
    def test_bundle_count_matches_schedule(self, kernel_name):
        program = compile_cell(KERNEL_DFGS[kernel_name]())
        assert len(program.instructions) == len(program.mapping.schedule)

    def test_all_bundles_validate(self, kernel_name):
        program = compile_cell(KERNEL_DFGS[kernel_name]())
        for bundle in program.instructions:
            bundle.validate()

    def test_inputs_allocated_first(self, kernel_name):
        program = compile_cell(KERNEL_DFGS[kernel_name]())
        input_regs = sorted(program.input_regs.values())
        assert input_regs == list(range(len(input_regs)))

    def test_output_regs_disjoint_from_inputs(self, kernel_name):
        program = compile_cell(KERNEL_DFGS[kernel_name]())
        assert not (
            set(program.output_regs.values()) & set(program.input_regs.values())
        )

    def test_register_count_bounds_rf(self, kernel_name):
        program = compile_cell(KERNEL_DFGS[kernel_name]())
        assert program.register_count <= 64  # fits the PE register file


class TestOffsetProgram:
    def test_rebased_program_still_verifies(self, rng):
        dfg = KERNEL_DFGS["dtw"]()
        program = offset_cell_program(compile_cell(dfg), 17)
        for _ in range(30):
            inputs = {name: rng.randint(-40, 40) for name in dfg.inputs}
            assert verify_program(program, inputs)

    def test_registers_shifted(self):
        base = compile_cell(KERNEL_DFGS["lcs"]())
        shifted = offset_cell_program(base, 10)
        for name in base.input_regs:
            assert shifted.input_regs[name] == base.input_regs[name] + 10

    def test_negative_base_rejected(self):
        with pytest.raises(ValueError):
            offset_cell_program(compile_cell(KERNEL_DFGS["lcs"]()), -1)


class TestRunProgram:
    def test_missing_input_raises(self):
        program = compile_cell(KERNEL_DFGS["lcs"]())
        with pytest.raises(KeyError):
            run_program(program, {"c_diag": 1})

    def test_outputs_named(self):
        dfg = KERNEL_DFGS["lcs"]()
        program = compile_cell(dfg)
        outputs = run_program(
            program, {"c_diag": 1, "c_up": 0, "c_left": 0, "x": 2, "y": 2}
        )
        assert outputs == {"c": 2}
