"""Tests for the DPMap driver and its statistics."""

import pytest

from repro.dfg.graph import DataFlowGraph, Opcode
from repro.dfg.kernels import KERNEL_DFGS
from repro.dpmap.mapper import run_dpmap
from repro.dpmap.slots import try_assign


@pytest.fixture(params=sorted(KERNEL_DFGS))
def kernel_name(request):
    return request.param


class TestLegality:
    def test_every_component_fits_a_cu(self, kernel_name):
        for levels in (1, 2, 3):
            result = run_dpmap(KERNEL_DFGS[kernel_name](), levels=levels)
            for component in result.components:
                assert try_assign(result.graph, component, levels) is not None

    def test_outputs_all_written(self, kernel_name):
        result = run_dpmap(KERNEL_DFGS[kernel_name]())
        roots = {c.node_ids[-1] for c in result.components}
        for name, node_id in result.graph.outputs.items():
            assert node_id in roots, f"output {name} not a component root"


class TestSchedule:
    def test_schedule_covers_all_components(self, kernel_name):
        result = run_dpmap(KERNEL_DFGS[kernel_name]())
        issued = [i for cycle in result.schedule for i in cycle]
        assert sorted(issued) == list(range(len(result.components)))

    def test_at_most_two_issues_per_cycle(self, kernel_name):
        result = run_dpmap(KERNEL_DFGS[kernel_name]())
        assert all(len(cycle) <= 2 for cycle in result.schedule)

    def test_dependencies_respected(self, kernel_name):
        result = run_dpmap(KERNEL_DFGS[kernel_name]())
        from repro.dpmap.mapper import _component_dependencies

        deps = _component_dependencies(result.graph, result.components)
        finish_cycle = {}
        for cycle_index, issue in enumerate(result.schedule):
            for component_index in issue:
                finish_cycle[component_index] = cycle_index
        for component_index, dep_set in enumerate(deps):
            for dep in dep_set:
                assert finish_cycle[dep] < finish_cycle[component_index]


class TestStatsTrends:
    """The Table 2 trends the paper's design choice rests on."""

    def test_rf_accesses_decrease_with_tree_depth(self, kernel_name):
        dfg = KERNEL_DFGS[kernel_name]
        accesses = [
            run_dpmap(dfg(), levels=levels).stats.rf_accesses for levels in (1, 2, 3)
        ]
        assert accesses[0] >= accesses[1] >= accesses[2]

    def test_utilization_decreases_with_tree_depth(self, kernel_name):
        dfg = KERNEL_DFGS[kernel_name]
        utils = [
            run_dpmap(dfg(), levels=levels).stats.cu_utilization
            for levels in (1, 2, 3)
        ]
        assert utils[0] >= utils[1] >= utils[2]

    def test_cycles_shrink_or_hold_with_depth(self, kernel_name):
        dfg = KERNEL_DFGS[kernel_name]
        cycles = [
            run_dpmap(dfg(), levels=levels).stats.cycles for levels in (1, 2, 3)
        ]
        assert cycles[0] >= cycles[1] >= cycles[2]


class TestStatsValues:
    def test_level1_everything_spills(self):
        dfg = KERNEL_DFGS["lcs"]()
        result = run_dpmap(dfg, levels=1)
        assert result.stats.component_count == dfg.operator_count()

    def test_utilization_in_unit_interval(self, kernel_name):
        stats = run_dpmap(KERNEL_DFGS[kernel_name]()).stats
        assert 0.0 < stats.cu_utilization <= 1.0

    def test_instructions_per_cell_equals_cycles(self, kernel_name):
        stats = run_dpmap(KERNEL_DFGS[kernel_name]()).stats
        assert stats.instructions_per_cell == stats.cycles


class TestMixedConsumerSpill:
    def test_value_read_by_tree_and_rf_is_written(self):
        # Bellman-Ford's `cand` regression: kept edge into MIN plus an
        # RF read from the partitioned 4-input select.
        dfg = DataFlowGraph("bf_like")
        cand = dfg.op(Opcode.ADD, dfg.input("du"), dfg.input("w"))
        dist = dfg.op(Opcode.MIN, dfg.input("dv"), cand)
        pred = dfg.op(
            Opcode.CMP_GT, dfg.input("dv"), cand, dfg.input("u"), dfg.input("p")
        )
        dfg.mark_output("dist", dist)
        dfg.mark_output("pred", pred)
        result = run_dpmap(dfg)
        roots = {c.node_ids[-1] for c in result.components}
        assert 0 in roots  # cand spilled to its own CU
