"""Direct tests for the DPMap working graph (edge surgery primitives)."""

import pytest

from repro.dfg.graph import DataFlowGraph, Opcode
from repro.dpmap.mgraph import MappingGraph


def chain_graph():
    dfg = DataFlowGraph("chain3")
    n0 = dfg.op(Opcode.ADD, dfg.input("a"), dfg.const(1))
    n1 = dfg.op(Opcode.ADD, n0, dfg.const(2))
    n2 = dfg.op(Opcode.MAX, n1, dfg.input("b"))
    dfg.mark_output("o", n2)
    return MappingGraph(dfg)


class TestEdgeSurgery:
    def test_initial_edges_all_kept(self):
        graph = chain_graph()
        assert graph.via_parents(1) == [0]
        assert graph.via_children(0) == [1]

    def test_remove_input_edges_reroutes_via_rf(self):
        graph = chain_graph()
        graph.remove_input_edges(1)
        assert graph.via_parents(1) == []
        # The dependency still exists, just through the RF.
        source = graph.nodes[1].sources[0]
        assert source.producer == 0 and source.is_rf_read

    def test_remove_output_edges(self):
        graph = chain_graph()
        graph.remove_output_edges(0)
        assert graph.via_children(0) == []
        assert graph.all_children(0) == [1]

    def test_remove_specific_edge(self):
        dfg = DataFlowGraph("fan")
        shared = dfg.op(Opcode.ADD, dfg.input("a"), dfg.input("b"))
        c1 = dfg.op(Opcode.MAX, shared, dfg.const(0))
        c2 = dfg.op(Opcode.MIN, shared, dfg.const(9))
        dfg.mark_output("x", c1)
        dfg.mark_output("y", c2)
        graph = MappingGraph(dfg)
        graph.remove_edge(0, 1)
        assert graph.via_children(0) == [2]


class TestReplication:
    def test_clone_feeds_only_the_child(self):
        dfg = DataFlowGraph("rep")
        sel = dfg.op(
            Opcode.CMP_GT, dfg.input("a"), dfg.input("b"), dfg.input("c"), dfg.input("d")
        )
        c1 = dfg.op(Opcode.ADD, sel, dfg.const(1))
        c2 = dfg.op(Opcode.MAX, sel, dfg.const(2))
        dfg.mark_output("x", c1)
        dfg.mark_output("y", c2)
        graph = MappingGraph(dfg)
        graph.remove_input_edges(0)
        clone = graph.replicate_for_child(0, 1)
        assert graph.nodes[clone].replica_of == 0
        assert graph.via_parents(1) == [clone]
        assert graph.via_children(0) == [2]  # original keeps the other child

    def test_clone_reads_operands_from_rf(self):
        dfg = DataFlowGraph("rep2")
        base = dfg.op(Opcode.ADD, dfg.input("a"), dfg.const(1))
        sel = dfg.op(Opcode.CMP_GT, base, dfg.input("b"), dfg.const(1), dfg.const(0))
        child = dfg.op(Opcode.ADD, sel, dfg.const(3))
        dfg.mark_output("o", child)
        graph = MappingGraph(dfg)
        graph.remove_input_edges(1)
        clone = graph.replicate_for_child(1, 2)
        for source in graph.nodes[clone].sources:
            if source.producer is not None:
                assert not source.via_edge


class TestComponents:
    def test_topological_member_order_with_replicas(self):
        dfg = DataFlowGraph("topo")
        sel = dfg.op(
            Opcode.CMP_GT, dfg.input("a"), dfg.input("b"), dfg.input("c"), dfg.input("d")
        )
        child = dfg.op(Opcode.ADD, sel, dfg.const(1))
        dfg.mark_output("o", child)
        graph = MappingGraph(dfg)
        graph.remove_input_edges(0)
        clone = graph.replicate_for_child(0, 1)
        component = next(
            c for c in graph.components() if clone in c.node_ids
        )
        # The clone's id is larger than its child's, but topological
        # order puts the producer first.
        assert component.node_ids.index(clone) < component.node_ids.index(1)

    def test_dead_node_elimination(self):
        dfg = DataFlowGraph("dead")
        used = dfg.op(Opcode.ADD, dfg.input("a"), dfg.const(1))
        dfg.op(Opcode.SUB, dfg.input("a"), dfg.const(1))  # never consumed
        dfg.mark_output("o", used)
        graph = MappingGraph(dfg)
        dropped = graph.drop_dead_nodes()
        assert dropped == [1]
        assert 1 not in graph.nodes

    def test_component_depth(self):
        graph = chain_graph()
        component = graph.components()[0]
        assert graph.component_depth(component) == 3
