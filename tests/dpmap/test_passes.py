"""Tests for the three DPMap passes (Algorithms 1-3)."""

import pytest

from repro.dfg.graph import DataFlowGraph, Opcode
from repro.dpmap.mgraph import MappingGraph
from repro.dpmap.passes import (
    legalize_pass,
    partitioning_pass,
    refinement_pass,
    seeding_pass,
)


def build(fn):
    dfg = DataFlowGraph("t")
    fn(dfg)
    return MappingGraph(dfg)


class TestPartitioning:
    def test_mul_isolated(self):
        def body(dfg):
            a = dfg.op(Opcode.ADD, dfg.input("x"), dfg.input("y"))
            m = dfg.op(Opcode.MUL, a, dfg.const(4))
            out = dfg.op(Opcode.ADD, m, dfg.const(1))
            dfg.mark_output("o", out)

        graph = build(body)
        partitioning_pass(graph)
        components = graph.components()
        mul_component = next(
            c for c in components if graph.nodes[c.node_ids[0]].opcode is Opcode.MUL
        )
        assert len(mul_component) == 1

    def test_four_input_keeps_single_child_edge(self):
        def body(dfg):
            sel = dfg.op(
                Opcode.CMP_GT,
                dfg.input("a"), dfg.input("b"), dfg.input("c"), dfg.input("d"),
            )
            out = dfg.op(Opcode.ADD, sel, dfg.const(1))
            dfg.mark_output("o", out)

        graph = build(body)
        partitioning_pass(graph)
        # The CMP -> ADD edge survives: they share a CU.
        assert graph.via_children(0) == [1]

    def test_four_input_multi_child_replicates_commutative(self):
        def body(dfg):
            sel = dfg.op(
                Opcode.CMP_GT,
                dfg.input("a"), dfg.input("b"), dfg.input("c"), dfg.input("d"),
            )
            left = dfg.op(Opcode.ADD, sel, dfg.const(1))
            right = dfg.op(Opcode.MAX, sel, dfg.const(2))
            dfg.mark_output("l", left)
            dfg.mark_output("r", right)

        graph = build(body)
        before = len(graph.nodes)
        partitioning_pass(graph)
        # Both children are commutative: two replicas, dead original removed.
        assert len(graph.nodes) == before + 1
        replicas = [n for n in graph.nodes.values() if n.replica_of is not None]
        assert len(replicas) >= 1

    def test_four_input_subtraction_child_spills(self):
        def body(dfg):
            sel = dfg.op(
                Opcode.CMP_EQ,
                dfg.input("a"), dfg.input("b"), dfg.input("c"), dfg.input("d"),
            )
            sub = dfg.op(Opcode.SUB, sel, dfg.const(1))
            add = dfg.op(Opcode.ADD, sel, dfg.const(1))
            dfg.mark_output("s", sub)
            dfg.mark_output("a_out", add)

        graph = build(body)
        partitioning_pass(graph)
        # The SUB reads the CMP through the register file (no replica
        # feeding a subtraction).
        sub_node = next(
            n for n in graph.nodes.values() if n.opcode is Opcode.SUB
        )
        cmp_sources = [s for s in sub_node.sources if s.producer is not None]
        assert all(not s.via_edge for s in cmp_sources)


class TestSeeding:
    def test_two_parent_seed_groups_three_nodes(self):
        def body(dfg):
            p1 = dfg.op(Opcode.SUB, dfg.input("a"), dfg.const(5))
            p2 = dfg.op(Opcode.SUB, dfg.input("b"), dfg.const(1))
            seed = dfg.op(Opcode.MAX, p1, p2)
            dfg.mark_output("o", seed)

        graph = build(body)
        partitioning_pass(graph)
        seeding_pass(graph)
        components = graph.components()
        assert any(len(c) == 3 for c in components)

    def test_multi_child_node_spills(self):
        def body(dfg):
            shared = dfg.op(Opcode.ADD, dfg.input("a"), dfg.input("b"))
            c1 = dfg.op(Opcode.MAX, shared, dfg.const(0))
            c2 = dfg.op(Opcode.MIN, shared, dfg.const(9))
            dfg.mark_output("x", c1)
            dfg.mark_output("y", c2)

        graph = build(body)
        partitioning_pass(graph)
        seeding_pass(graph)
        assert graph.via_children(0) == []


class TestRefinement:
    def test_chain_paired_two_at_a_time(self):
        def body(dfg):
            n0 = dfg.op(Opcode.ADD, dfg.input("a"), dfg.const(1))
            n1 = dfg.op(Opcode.ADD, n0, dfg.const(2))
            n2 = dfg.op(Opcode.ADD, n1, dfg.const(3))
            n3 = dfg.op(Opcode.ADD, n2, dfg.const(4))
            dfg.mark_output("o", n3)

        graph = build(body)
        partitioning_pass(graph)
        seeding_pass(graph)
        refinement_pass(graph)
        sizes = sorted(len(c) for c in graph.components())
        assert sizes == [2, 2]

    def test_odd_chain_leaves_singleton(self):
        def body(dfg):
            n0 = dfg.op(Opcode.ADD, dfg.input("a"), dfg.const(1))
            n1 = dfg.op(Opcode.ADD, n0, dfg.const(2))
            n2 = dfg.op(Opcode.ADD, n1, dfg.const(3))
            dfg.mark_output("o", n2)

        graph = build(body)
        partitioning_pass(graph)
        seeding_pass(graph)
        refinement_pass(graph)
        sizes = sorted(len(c) for c in graph.components())
        assert sizes == [1, 2]


class TestLegalize:
    def test_two_four_input_parents_get_split(self):
        def body(dfg):
            s1 = dfg.op(
                Opcode.CMP_GT,
                dfg.input("a"), dfg.input("b"), dfg.input("c"), dfg.input("d"),
            )
            s2 = dfg.op(
                Opcode.CMP_GT,
                dfg.input("e"), dfg.input("f"), dfg.input("g"), dfg.input("h"),
            )
            seed = dfg.op(Opcode.ADD, s1, s2)
            dfg.mark_output("o", seed)

        graph = build(body)
        partitioning_pass(graph)
        seeding_pass(graph)
        refinement_pass(graph)
        legalize_pass(graph, levels=2)
        from repro.dpmap.slots import try_assign

        for component in graph.components():
            assert try_assign(graph, component, 2) is not None
