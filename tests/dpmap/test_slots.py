"""Tests for compute-unit slot assignment."""

import pytest

from repro.dfg.graph import DataFlowGraph, Opcode
from repro.dpmap.mgraph import Component, MappingGraph
from repro.dpmap.slots import try_assign


def graph_of(fn):
    dfg = DataFlowGraph("t")
    fn(dfg)
    return MappingGraph(dfg)


def whole_component(graph):
    return Component(node_ids=graph._topo_sort(list(graph.nodes)))


class TestTreeShapes:
    def test_single_alu_op_fits(self):
        graph = graph_of(
            lambda d: d.mark_output("o", d.op(Opcode.ADD, d.input("a"), d.input("b")))
        )
        assignment = try_assign(graph, whole_component(graph), 2)
        assert assignment is not None and assignment.kind == "tree"

    def test_three_node_tree_fits(self):
        def body(d):
            p1 = d.op(Opcode.SUB, d.input("a"), d.const(1))
            p2 = d.op(Opcode.SUB, d.input("b"), d.const(2))
            d.mark_output("o", d.op(Opcode.MAX, p1, p2))

        graph = graph_of(body)
        assignment = try_assign(graph, whole_component(graph), 2)
        assert assignment is not None
        assert assignment.alu_ops_used == 3

    def test_depth_three_chain_rejected_at_two_levels(self):
        def body(d):
            n0 = d.op(Opcode.ADD, d.input("a"), d.const(1))
            n1 = d.op(Opcode.ADD, n0, d.const(2))
            d.mark_output("o", d.op(Opcode.ADD, n1, d.const(3)))

        graph = graph_of(body)
        assert try_assign(graph, whole_component(graph), 2) is None
        assert try_assign(graph, whole_component(graph), 3) is not None

    def test_pair_with_rf_root_operand_costs_a_copy(self):
        def body(d):
            leaf = d.op(Opcode.ADD, d.input("a"), d.input("b"))
            d.mark_output("o", d.op(Opcode.MAX, leaf, d.input("c")))

        graph = graph_of(body)
        assignment = try_assign(graph, whole_component(graph), 2)
        assert assignment is not None
        assert assignment.copy_count == 1


class TestSpecialUnits:
    def test_lone_mul(self):
        graph = graph_of(
            lambda d: d.mark_output("o", d.op(Opcode.MUL, d.input("a"), d.const(4)))
        )
        assignment = try_assign(graph, whole_component(graph), 2)
        assert assignment.kind == "mul"

    def test_mul_with_companion_rejected(self):
        def body(d):
            m = d.op(Opcode.MUL, d.input("a"), d.const(4))
            d.mark_output("o", d.op(Opcode.ADD, m, d.const(1)))

        graph = graph_of(body)
        assert try_assign(graph, whole_component(graph), 2) is None

    def test_four_input_takes_left_alu(self):
        def body(d):
            sel = d.op(
                Opcode.CMP_GT, d.input("a"), d.input("b"), d.input("c"), d.input("d")
            )
            d.mark_output("o", d.op(Opcode.ADD, sel, d.input("e")))

        graph = graph_of(body)
        assignment = try_assign(graph, whole_component(graph), 2)
        assert assignment is not None
        # 4-input leaf + root + a copy ferrying the RF operand.
        assert assignment.copy_count == 1

    def test_two_four_input_nodes_rejected(self):
        def body(d):
            s1 = d.op(
                Opcode.CMP_GT, d.input("a"), d.input("b"), d.input("c"), d.input("d")
            )
            s2 = d.op(
                Opcode.CMP_EQ, d.input("e"), d.input("f"), d.input("g"), d.input("h")
            )
            d.mark_output("o", d.op(Opcode.ADD, s1, s2))

        graph = graph_of(body)
        assert try_assign(graph, whole_component(graph), 2) is None


class TestOperandBudget:
    def test_six_operand_tree_accepted(self):
        def body(d):
            sel = d.op(
                Opcode.CMP_GT, d.input("a"), d.input("b"), d.input("c"), d.input("d")
            )
            other = d.op(Opcode.SUB, d.input("e"), d.input("f"))
            d.mark_output("o", d.op(Opcode.ADD, sel, other))

        graph = graph_of(body)
        assignment = try_assign(graph, whole_component(graph), 2)
        assert assignment is not None
        assert assignment.alu_ops_used == 3
