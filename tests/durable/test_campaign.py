"""Recovery chaos campaigns: the crash-restart property, seeded.

The acceptance bar for the durability layer: under seeded crashes
*and* seeded disk faults (torn writes, bit flips), every accepted job
is delivered or dead-lettered exactly once, and two campaigns with
the same config produce byte-identical reports.
"""

import json

import pytest

from repro.durable import RecoveryChaosConfig, run_recovery_campaign


def small(**overrides):
    defaults = dict(jobs=48, chunk_jobs=12, seed=0)
    defaults.update(overrides)
    return RecoveryChaosConfig(**defaults)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RecoveryChaosConfig(jobs=0)
        with pytest.raises(ValueError):
            RecoveryChaosConfig(chunk_jobs=0)
        with pytest.raises(ValueError):
            RecoveryChaosConfig(crash_rate=1.5)
        with pytest.raises(ValueError):
            RecoveryChaosConfig(torn_rate=-0.1)
        with pytest.raises(ValueError):
            RecoveryChaosConfig(kernels=())

    def test_disk_plan_reflects_the_rates(self):
        config = small(torn_rate=0.1, bitflip_rate=0.2)
        plan = config.disk_plan()
        assert plan.enabled
        assert plan.torn_rate == 0.1
        config = small(torn_rate=0.0, bitflip_rate=0.0)
        assert not config.disk_plan().enabled


class TestSurvival:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_crashes_with_disk_faults_survive(self, seed):
        report = run_recovery_campaign(
            small(seed=seed, crash_rate=0.4, torn_rate=0.06, bitflip_rate=0.06)
        )
        assert report.crashes > 0, "campaign never crashed; rate too low"
        assert report.survived, report.render()
        assert report.lost == 0
        assert report.duplicate_envelopes == 0
        assert report.duplicate_completions == 0
        assert report.final_orphans == 0
        # Accounting closes: every accepted job has exactly one envelope.
        assert report.envelopes == report.accepted

    def test_fail_rate_exercises_dead_letter_journaling(self):
        report = run_recovery_campaign(
            small(seed=5, crash_rate=0.4, fail_rate=0.2, max_retries=0)
        )
        assert report.survived, report.render()
        assert report.dead_lettered > 0
        # Failed envelopes and dead letters line up with the fold.
        assert report.failed >= report.dead_lettered

    def test_compaction_mid_campaign_preserves_the_property(self):
        report = run_recovery_campaign(
            small(seed=2, crash_rate=0.3, compact_every=1)
        )
        assert report.survived, report.render()
        assert report.compactions > 0

    def test_calm_campaign_has_no_recovery_activity(self):
        report = run_recovery_campaign(
            small(crash_rate=0.0, torn_rate=0.0, bitflip_rate=0.0)
        )
        assert report.survived
        assert report.crashes == 0
        assert report.writes_healed == 0
        assert report.ok == report.accepted


class TestDeterminism:
    def test_same_seed_is_byte_identical(self):
        config = small(seed=3, crash_rate=0.4, torn_rate=0.05, bitflip_rate=0.05)
        first = run_recovery_campaign(config)
        second = run_recovery_campaign(config)
        a = json.dumps(first.to_dict(), indent=2, sort_keys=True)
        b = json.dumps(second.to_dict(), indent=2, sort_keys=True)
        assert a == b

    def test_different_seeds_differ(self):
        base = dict(crash_rate=0.4, torn_rate=0.05, bitflip_rate=0.05)
        first = run_recovery_campaign(small(seed=0, **base))
        second = run_recovery_campaign(small(seed=1, **base))
        assert first.to_dict() != second.to_dict()

    def test_report_contains_no_paths_or_timings(self, tmp_path):
        config = small(
            seed=1, crash_rate=0.3, workdir=str(tmp_path / "wal")
        )
        report = run_recovery_campaign(config)
        blob = json.dumps(report.to_dict())
        assert str(tmp_path) not in blob
        assert "durable_syncs" not in blob  # time-dependent: excluded

    def test_render_names_the_verdict(self):
        report = run_recovery_campaign(small(crash_rate=0.0))
        assert "SURVIVED" in report.render()
