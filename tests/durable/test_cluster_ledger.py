"""Cluster ledger: one router-level WAL covering every shard.

The router journals accepts at routing time, completions at delivery,
and dead letters at the synthesized-envelope floor.  A router crash
(ledger handle dropped, shard engines gone) recovers by replaying the
ledger into a *fresh* router -- orphans re-route onto today's shard
topology under their original ids.
"""

from repro.cluster import ClusterConfig, ClusterRouter
from repro.durable import DurabilityConfig, load_journal_state
from repro.engine import EngineConfig, make_job

LCS = {"x": "ACGTACGT", "y": "ACGGTA"}


def router_over(tmp_path, shards=2, **overrides):
    defaults = dict(
        shards=shards,
        engine=EngineConfig(max_queue=64, workers=0, validate_fraction=0.0),
        durability=DurabilityConfig(
            dir_path=str(tmp_path / "ledger"), fsync="never"
        ),
    )
    defaults.update(overrides)
    return ClusterRouter(ClusterConfig(**defaults))


class TestLedger:
    def test_delivered_jobs_reach_terminal_records(self, tmp_path):
        with router_over(tmp_path) as router:
            for _ in range(8):
                router.submit(make_job("lcs", dict(LCS)))
            results = router.drain()
            assert len(results) == 8
        state, _issues = load_journal_state(str(tmp_path / "ledger"))
        assert len(state.accepted) == 8
        assert len(state.completed) == 8
        assert len(state.orphans()) == 0
        assert state.duplicate_completions == 0

    def test_router_crash_recovers_inflight_jobs(self, tmp_path):
        router = router_over(tmp_path)
        submitted = [
            router.submit(make_job("lcs", dict(LCS))) for _ in range(6)
        ]
        original_ids = {job.job_id for job in submitted}
        # Router dies before any drain: every job is in a shard queue
        # (volatile) and an orphan in the ledger.
        router.journal.crash()
        router.close()

        fresh = router_over(tmp_path, shards=3)  # topology even changed
        report = fresh.recover()
        assert report.orphans == 6
        assert report.orphans_resubmitted == 6
        results = fresh.drain()
        fresh.close()
        assert {result.job_id for result in results} == original_ids
        state, _issues = load_journal_state(str(tmp_path / "ledger"))
        assert len(state.orphans()) == 0
        assert state.duplicate_completions == 0

    def test_completed_jobs_are_not_reexecuted_after_crash(self, tmp_path):
        router = router_over(tmp_path)
        for _ in range(5):
            router.submit(make_job("lcs", dict(LCS)))
        router.drain()
        router.journal.crash()
        router.close()

        fresh = router_over(tmp_path)
        report = fresh.recover()
        assert report.completed == 5
        assert report.completions_deduped == 5
        assert fresh.drain() == []
        fresh.close()

    def test_recover_without_ledger_raises(self):
        import pytest

        with ClusterRouter(
            ClusterConfig(shards=2, engine=EngineConfig(workers=0))
        ) as router:
            with pytest.raises(ValueError):
                router.recover()

    def test_ledger_counters_appear_in_the_snapshot(self, tmp_path):
        with router_over(tmp_path) as router:
            router.submit(make_job("lcs", dict(LCS)))
            router.drain()
            counters = router.metrics.snapshot()["counters"]
        assert counters["durable_records_appended"] >= 2  # accept+complete
