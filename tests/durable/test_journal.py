"""The write-ahead journal: framing, crash consistency, compaction.

These tests exercise the journal in isolation -- no engine on top.
Crash models used throughout:

- ``Journal.crash()``: ``kill -9``.  The handle drops without a sync,
  but everything ``append`` returned for is in the page cache and the
  next reader sees it (``buffering=0`` writes go straight to the OS).
- ``Journal.simulate_power_loss()``: crash *plus* truncation to the
  last honestly synced byte -- what a real power cut does to bytes a
  lying disk claimed were durable.
"""

import json
import os
import struct
import zlib

import pytest

from repro.durable.journal import (
    MAGIC,
    DurabilityConfig,
    Journal,
    JournalState,
    encode_frame,
    load_journal_state,
    scan_segment,
)
from repro.engine.metrics import MetricsRegistry
from repro.faults.disk import DiskFaultPlan, TornWriteError


def make_journal(tmp_path, metrics=None, **overrides):
    defaults = dict(dir_path=str(tmp_path / "wal"), fsync="never")
    defaults.update(overrides)
    return Journal(DurabilityConfig(**defaults), metrics=metrics)


class TestConfig:
    def test_rejects_bad_policy_interval_and_segment_size(self):
        with pytest.raises(ValueError):
            DurabilityConfig(dir_path="x", fsync="sometimes")
        with pytest.raises(ValueError):
            DurabilityConfig(dir_path="x", fsync_interval_s=-1.0)
        with pytest.raises(ValueError):
            DurabilityConfig(dir_path="x", segment_bytes=16)
        with pytest.raises(ValueError):
            DurabilityConfig(dir_path="")


class TestFraming:
    def test_frame_round_trips_through_a_segment_scan(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append("accept", job_id=1, kernel="bsw", payload={"a": 1})
        journal.append("complete", job_id=1, ok=True)
        journal.close()
        scan = scan_segment(journal.segment_paths()[0], final=True)
        assert [r["t"] for r in scan.records] == ["accept", "complete"]
        assert scan.records[0]["payload"] == {"a": 1}
        assert scan.corrupt_frames == 0

    def test_seq_is_monotonic_and_returned(self, tmp_path):
        journal = make_journal(tmp_path)
        seqs = [
            journal.append("accept", job_id=i, kernel="bsw")
            for i in range(5)
        ]
        journal.close()
        assert seqs == [0, 1, 2, 3, 4]

    def test_frame_encoding_is_canonical(self):
        frame = encode_frame({"b": 2, "a": 1})
        header = struct.Struct("<2sII")
        magic, length, crc = header.unpack_from(frame, 0)
        payload = frame[header.size :]
        assert magic == MAGIC
        assert length == len(payload)
        assert crc == zlib.crc32(payload)
        # sort_keys + tight separators: byte-stable frames.
        assert payload == b'{"a":1,"b":2}'

    def test_unknown_record_type_is_rejected(self, tmp_path):
        journal = make_journal(tmp_path)
        with pytest.raises(ValueError):
            journal.append("gossip", job_id=1)
        journal.close()

    def test_closed_journal_refuses_appends(self, tmp_path):
        from repro.durable.journal import JournalError

        journal = make_journal(tmp_path)
        journal.close()
        with pytest.raises(JournalError):
            journal.append("accept", job_id=1)


class TestCrashConsistency:
    def test_kill_9_loses_nothing_append_returned_for(self, tmp_path):
        journal = make_journal(tmp_path)
        for index in range(10):
            journal.append("accept", job_id=index, kernel="bsw")
        journal.crash()  # no sync on the way out
        state, issues = load_journal_state(str(tmp_path / "wal"))
        assert len(state.accepted) == 10
        assert issues["corrupt_frames"] == 0

    def test_torn_tail_is_truncated_at_first_corrupt_frame(self, tmp_path):
        journal = make_journal(tmp_path)
        for index in range(5):
            journal.append("accept", job_id=index, kernel="bsw")
        journal.crash()
        path = sorted((tmp_path / "wal").glob("journal-*.seg"))[0]
        blob = path.read_bytes()
        # Tear the last frame mid-payload.
        path.write_bytes(blob[:-7])
        state, issues = load_journal_state(str(tmp_path / "wal"))
        assert len(state.accepted) == 4
        assert issues["corrupt_frames"] == 1
        assert issues["skipped_bytes"] > 0

    def test_reopen_repairs_the_torn_tail_and_continues(self, tmp_path):
        journal = make_journal(tmp_path)
        for index in range(5):
            journal.append("accept", job_id=index, kernel="bsw")
        journal.crash()
        path = sorted((tmp_path / "wal").glob("journal-*.seg"))[0]
        path.write_bytes(path.read_bytes()[:-7])
        # A fresh journal adopts the tail, truncates the torn frame,
        # and appends land cleanly after the valid prefix.
        journal = make_journal(tmp_path)
        journal.append("accept", job_id=99, kernel="bsw")
        journal.close()
        state, issues = load_journal_state(str(tmp_path / "wal"))
        # Job 4's frame was the torn one: truncated out, so the crash
        # lost it (its caller never got an acceptance either -- torn
        # means the write never completed).  Everything else survives
        # and new appends continue from the repaired tail.
        assert set(state.accepted) == {"0", "1", "2", "3", "99"}
        assert state.max_seq == 4
        assert issues["corrupt_frames"] == 0  # the repair removed it

    def test_non_final_segments_resync_past_a_flipped_bit(self, tmp_path):
        journal = make_journal(tmp_path, segment_bytes=256)
        for index in range(20):
            journal.append("accept", job_id=index, kernel="bsw")
        journal.close()
        segments = sorted((tmp_path / "wal").glob("journal-*.seg"))
        assert len(segments) > 2
        # Corrupt one byte inside the *first* segment's first payload.
        blob = bytearray(segments[0].read_bytes())
        blob[12] ^= 0xFF
        segments[0].write_bytes(bytes(blob))
        state, issues = load_journal_state(str(tmp_path / "wal"))
        # One record lost to the flip; the rest of the segment resyncs.
        assert len(state.accepted) == 19
        assert issues["corrupt_frames"] == 1

    def test_power_loss_respects_fsync_policy(self, tmp_path):
        # fsync=always: nothing is lost even to power loss.
        journal = make_journal(tmp_path, fsync="always")
        for index in range(5):
            journal.append("accept", job_id=index, kernel="bsw")
        journal.simulate_power_loss()
        state, _issues = load_journal_state(str(tmp_path / "wal"))
        assert len(state.accepted) == 5

    def test_power_loss_with_fsync_never_loses_the_unsynced_tail(
        self, tmp_path
    ):
        journal = make_journal(tmp_path, fsync="never")
        for index in range(5):
            journal.append("accept", job_id=index, kernel="bsw")
        journal.simulate_power_loss()
        state, _issues = load_journal_state(str(tmp_path / "wal"))
        # Nothing was ever synced: the whole tail evaporates.
        assert len(state.accepted) == 0

    def test_explicit_sync_bounds_power_loss(self, tmp_path):
        journal = make_journal(tmp_path, fsync="never")
        for index in range(3):
            journal.append("accept", job_id=index, kernel="bsw")
        journal.sync()
        for index in range(3, 6):
            journal.append("accept", job_id=index, kernel="bsw")
        journal.simulate_power_loss()
        state, _issues = load_journal_state(str(tmp_path / "wal"))
        assert set(state.accepted) == {"0", "1", "2"}


class TestSegments:
    def test_appends_roll_to_new_segments_at_the_size_bound(self, tmp_path):
        journal = make_journal(tmp_path, segment_bytes=256)
        for index in range(30):
            journal.append("accept", job_id=index, kernel="bsw")
        journal.close()
        segments = journal.segment_paths()
        assert len(segments) > 1
        assert all(
            os.path.getsize(path) <= 256 + 128 for path in segments
        )
        state, _issues = load_journal_state(str(tmp_path / "wal"))
        assert len(state.accepted) == 30


class TestVerifyHealing:
    def test_bitflips_are_healed_by_readback(self, tmp_path):
        metrics = MetricsRegistry()
        plan = DiskFaultPlan(seed=0, bitflip_rate=0.4)
        journal = make_journal(
            tmp_path, metrics=metrics, disk_faults=plan, verify_writes=True
        )
        for index in range(40):
            journal.append("accept", job_id=index, kernel="bsw")
        journal.close()
        state, issues = load_journal_state(str(tmp_path / "wal"))
        assert len(state.accepted) == 40  # nothing lost
        assert issues["corrupt_frames"] == 0  # nothing bad on disk
        assert metrics.counter("durable_writes_healed") > 0

    def test_torn_writes_are_healed_by_readback(self, tmp_path):
        metrics = MetricsRegistry()
        plan = DiskFaultPlan(seed=1, torn_rate=0.4)
        journal = make_journal(
            tmp_path, metrics=metrics, disk_faults=plan, verify_writes=True
        )
        for index in range(40):
            journal.append("accept", job_id=index, kernel="bsw")
        journal.close()
        state, issues = load_journal_state(str(tmp_path / "wal"))
        assert len(state.accepted) == 40
        assert issues["corrupt_frames"] == 0
        assert metrics.counter("durable_writes_healed") > 0

    def test_verify_off_surfaces_torn_writes_with_a_clean_tail(
        self, tmp_path
    ):
        plan = DiskFaultPlan(seed=1, torn_rate=0.3)
        journal = make_journal(
            tmp_path, disk_faults=plan, verify_writes=False
        )
        written, torn = 0, 0
        for index in range(40):
            try:
                journal.append("accept", job_id=index, kernel="bsw")
                written += 1
            except TornWriteError:
                torn += 1
        journal.close()
        assert torn > 0
        state, issues = load_journal_state(str(tmp_path / "wal"))
        # Every record that got in is intact: the partial frame was
        # truncated back out before the error surfaced.
        assert len(state.accepted) == written
        assert issues["corrupt_frames"] == 0

    def test_enospc_propagates_and_leaves_the_journal_intact(self, tmp_path):
        plan = DiskFaultPlan(enospc_after_bytes=300)
        journal = make_journal(tmp_path, disk_faults=plan)
        written = 0
        with pytest.raises(OSError):
            for index in range(100):
                journal.append("accept", job_id=index, kernel="bsw")
                written += 1
        journal.close()
        state, issues = load_journal_state(str(tmp_path / "wal"))
        assert len(state.accepted) == written
        assert issues["corrupt_frames"] == 0


class TestCompaction:
    def test_compaction_folds_segments_into_a_snapshot(self, tmp_path):
        journal = make_journal(tmp_path, segment_bytes=512)
        for index in range(20):
            journal.append(
                "accept", job_id=index, kernel="bsw", payload={"n": index}
            )
            journal.append("complete", job_id=index, ok=True)
        stats = journal.compact()
        assert stats["segments_removed"] >= 1
        assert os.path.exists(journal.snapshot_path)
        # The fold sees everything exactly once.
        state, issues = load_journal_state(str(tmp_path / "wal"))
        assert len(state.accepted) == 20
        assert len(state.completed) == 20
        assert state.duplicate_completions == 0
        assert issues["snapshot_loaded"] == 1
        journal.close()

    def test_appends_after_compaction_fold_on_top(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append("accept", job_id=0, kernel="bsw", payload={})
        journal.compact()
        journal.append("complete", job_id=0, ok=True)
        journal.append("accept", job_id=1, kernel="bsw", payload={})
        journal.close()
        state, _issues = load_journal_state(str(tmp_path / "wal"))
        assert state.terminal("0")
        assert [r["job_id"] for r in state.orphans()] == [1]

    def test_compaction_shed_payloads_for_completed_jobs(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append(
            "accept", job_id=0, kernel="bsw", payload={"big": "x" * 100}
        )
        journal.append("complete", job_id=0, ok=True)
        journal.append(
            "accept", job_id=1, kernel="bsw", payload={"keep": "me"}
        )
        journal.compact()
        journal.close()
        document = json.loads(
            (tmp_path / "wal" / "snapshot.json").read_text()
        )
        accepted = document["state"]["accepted"]
        assert "payload" not in accepted["0"]  # done: spec not needed
        assert accepted["1"]["payload"] == {"keep": "me"}  # orphan: kept

    def test_corrupt_snapshot_is_skipped_not_fatal(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append("accept", job_id=0, kernel="bsw")
        journal.compact()
        journal.append("accept", job_id=1, kernel="bsw")
        journal.close()
        (tmp_path / "wal" / "snapshot.json").write_text("{not json")
        state, issues = load_journal_state(str(tmp_path / "wal"))
        assert issues["snapshot_corrupt"] == 1
        # Post-snapshot records still fold.
        assert "1" in state.accepted


class TestStateFold:
    def test_duplicate_completions_are_audited_not_merged(self):
        state = JournalState()
        state.apply({"seq": 0, "t": "accept", "job_id": 1})
        state.apply({"seq": 1, "t": "complete", "job_id": 1, "ok": True})
        state.apply({"seq": 2, "t": "complete", "job_id": 1, "ok": True})
        assert state.duplicate_completions == 1
        assert len(state.completed) == 1

    def test_orphans_come_back_in_accept_order(self):
        state = JournalState()
        for seq, job_id in ((0, 7), (1, 3), (2, 9)):
            state.apply(
                {"seq": seq, "t": "accept", "job_id": job_id, "kernel": "bsw"}
            )
        state.apply({"seq": 3, "t": "complete", "job_id": 3, "ok": True})
        assert [r["job_id"] for r in state.orphans()] == [7, 9]

    def test_round_trips_through_dict(self):
        state = JournalState()
        state.apply({"seq": 0, "t": "accept", "job_id": 1, "kernel": "bsw"})
        state.apply({"seq": 1, "t": "dead_letter", "job_id": 1, "error": "x"})
        clone = JournalState.from_dict(state.to_dict())
        assert clone.terminal("1")
        assert clone.max_seq == state.max_seq
