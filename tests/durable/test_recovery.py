"""Engine-level recovery: dedupe, orphan resubmission, DLQ rehydration.

The scenario shape everywhere: run a journaled engine, ``crash()`` the
journal (kill -9 -- the in-memory queue evaporates, the page cache
survives), build a *fresh* engine over the same directory, and
``recover()``.  The recovered run must be indistinguishable from a
crash-free one: every accepted job yields exactly one envelope, no
completed job re-executes, dead letters come back parked.
"""

import pytest

from repro.durable import DurabilityConfig, load_journal_state
from repro.engine import Engine, EngineConfig, make_job

LCS = {"x": "ACGTACGT", "y": "ACGGTA"}


def engine_over(tmp_path, **overrides):
    defaults = dict(
        max_queue=64,
        workers=0,
        validate_fraction=0.0,
        durability=DurabilityConfig(
            dir_path=str(tmp_path / "wal"), fsync="never"
        ),
    )
    defaults.update(overrides)
    return Engine(EngineConfig(**defaults))


class TestRoundTrip:
    def test_orphans_resubmit_and_complete_after_a_crash(self, tmp_path):
        engine = engine_over(tmp_path)
        for _ in range(4):
            engine.submit(make_job("lcs", dict(LCS)))
        # Crash before draining: all four are orphans.
        engine.journal.crash()
        engine.close()

        engine = engine_over(tmp_path)
        report = engine.recover()
        assert report.accepted == 4
        assert report.orphans == 4
        assert report.orphans_resubmitted == 4
        results = engine.drain()
        engine.close()
        assert len(results) == 4
        assert all(result.ok for result in results)
        # The journal agrees: all terminal, none duplicated.
        state, _issues = load_journal_state(str(tmp_path / "wal"))
        assert len(state.orphans()) == 0
        assert state.duplicate_completions == 0

    def test_completed_jobs_are_never_reexecuted(self, tmp_path):
        engine = engine_over(tmp_path)
        for _ in range(6):
            engine.submit(make_job("lcs", dict(LCS)))
        first = engine.drain()
        assert len(first) == 6
        engine.journal.crash()
        engine.close()

        engine = engine_over(tmp_path)
        report = engine.recover()
        assert report.completed == 6
        assert report.completions_deduped == 6
        assert report.orphans_resubmitted == 0
        # Nothing to run again.
        assert engine.drain() == []
        engine.close()

    def test_recovered_orphans_keep_their_original_ids(self, tmp_path):
        engine = engine_over(tmp_path)
        submitted = [
            engine.submit(make_job("lcs", dict(LCS))) for _ in range(3)
        ]
        original_ids = {job.job_id for job in submitted}
        engine.journal.crash()
        engine.close()

        engine = engine_over(tmp_path)
        engine.recover()
        results = engine.drain()
        engine.close()
        assert {result.job_id for result in results} == original_ids

    def test_new_submissions_never_collide_with_recovered_ids(
        self, tmp_path
    ):
        engine = engine_over(tmp_path)
        submitted = [
            engine.submit(make_job("lcs", dict(LCS))) for _ in range(3)
        ]
        old_ids = {job.job_id for job in submitted}
        engine.journal.crash()
        engine.close()

        engine = engine_over(tmp_path)
        engine.recover()
        fresh = engine.submit(make_job("lcs", dict(LCS)))
        assert fresh.job_id not in old_ids
        results = engine.drain()
        engine.close()
        assert len(results) == 4
        assert len({result.job_id for result in results}) == 4

    def test_repeated_crash_cycles_stay_exactly_once(self, tmp_path):
        envelopes = {}
        engine = engine_over(tmp_path)
        accepted = 0
        for cycle in range(4):
            for _ in range(3):
                engine.submit(make_job("lcs", dict(LCS)))
                accepted += 1
            engine.journal.crash()
            engine.close()
            engine = engine_over(tmp_path)
            engine.recover()
            for result in engine.drain():
                assert result.job_id not in envelopes, "duplicate envelope"
                envelopes[result.job_id] = result
        engine.close()
        assert len(envelopes) == accepted
        state, _issues = load_journal_state(str(tmp_path / "wal"))
        assert state.duplicate_completions == 0
        assert len(state.orphans()) == 0


class TestDlqRehydration:
    def test_dead_letters_survive_the_crash(self, tmp_path):
        engine = engine_over(tmp_path, max_retries=0)
        engine.submit(
            make_job("lcs", dict(LCS, _inject_fail=True))
        )
        engine.submit(make_job("lcs", dict(LCS)))
        results = engine.drain()
        assert sum(1 for r in results if not r.ok) == 1
        assert len(engine.dead_letters) == 1
        engine.journal.crash()
        engine.close()

        engine = engine_over(tmp_path, max_retries=0)
        report = engine.recover()
        assert report.dead_lettered == 1
        assert report.dlq_rehydrated == 1
        letters = engine.dead_letters
        assert len(letters) == 1
        # The rehydrated letter still replays.
        replayed = engine.replay_dead_letters()
        assert len(replayed) == 1
        engine.drain()
        engine.close()

    def test_persist_dlq_off_skips_rehydration(self, tmp_path):
        config = DurabilityConfig(
            dir_path=str(tmp_path / "wal"), fsync="never", persist_dlq=False
        )
        engine = engine_over(
            tmp_path, max_retries=0, durability=config
        )
        engine.submit(make_job("lcs", dict(LCS, _inject_fail=True)))
        engine.drain()
        engine.journal.crash()
        engine.close()

        engine = engine_over(tmp_path, max_retries=0, durability=config)
        report = engine.recover()
        assert report.dead_lettered == 1
        assert report.dlq_rehydrated == 0
        assert engine.dead_letters == []
        engine.close()


class TestEdges:
    def test_recover_without_journal_raises(self):
        engine = Engine(EngineConfig(max_queue=8, workers=0))
        with pytest.raises(ValueError):
            engine.recover()
        engine.close()

    def test_backlog_larger_than_queue_drains_mid_replay(self, tmp_path):
        engine = engine_over(tmp_path, max_queue=32)
        for _ in range(10):
            engine.submit(make_job("lcs", dict(LCS)))
        engine.journal.crash()
        engine.close()

        # Recover into a queue smaller than the orphan backlog: the
        # replay must drain to make room instead of dropping work.
        small = engine_over(tmp_path, max_queue=4)
        report = small.recover()
        results = list(report.drained)
        results.extend(small.drain())
        small.close()
        assert report.orphans == 10
        assert report.orphans_resubmitted == 10
        assert len(results) == 10

    def test_unjournaled_submission_is_not_accepted(self, tmp_path):
        # Write-ahead means write-ahead: if the accept record cannot
        # be journaled, the job must not enter the queue.
        from repro.faults.disk import DiskFaultPlan, TornWriteError

        config = DurabilityConfig(
            dir_path=str(tmp_path / "wal"),
            fsync="never",
            verify_writes=False,
            disk_faults=DiskFaultPlan(seed=0, torn_rate=1.0),
        )
        engine = engine_over(tmp_path, durability=config)
        with pytest.raises((TornWriteError, OSError)):
            engine.submit(make_job("lcs", dict(LCS)))
        assert engine.drain() == []
        engine.close()
        state, _issues = load_journal_state(str(tmp_path / "wal"))
        assert len(state.accepted) == 0

    def test_recovery_counters_are_folded(self, tmp_path):
        engine = engine_over(tmp_path)
        for _ in range(3):
            engine.submit(make_job("lcs", dict(LCS)))
        engine.drain()
        engine.journal.crash()
        engine.close()

        engine = engine_over(tmp_path)
        engine.recover()
        durability = engine.snapshot()["durability"]
        engine.close()
        assert durability["durable_recoveries"] == 1
        assert durability["durable_completions_deduped"] == 3
        assert durability["durable_duplicate_completions"] == 0
