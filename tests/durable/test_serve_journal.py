"""Serve-tier durability: dedupe ids, restart recovery, journaled answers.

The serving contract under ``ServeConfig.journal_dir``: a submit
carrying a ``dedupe_id`` is journaled *before* execution, its answer
is journaled after, and a resend of the same id -- on this connection,
after a reconnect, or against a freshly restarted server over the same
journal directory -- is answered from the journal without re-running
the job.
"""

import asyncio

from repro.durable import load_journal_state
from repro.engine import Engine, EngineConfig
from repro.serve import ServeClient
from repro.serve.server import GendpServer, ServeConfig

BSW = {"query": "ACGTACGTAC", "target": "ACGTTGCA"}


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=60))


async def _start(sock, journal_dir, recover=True):
    engine = Engine(EngineConfig(max_queue=128))
    server = GendpServer(
        engine,
        ServeConfig(
            unix_socket=sock,
            journal_dir=journal_dir,
            journal_fsync="never",
            recover_on_start=recover,
        ),
    )
    await server.start()
    return server


async def _stop(server):
    await server.stop()
    server.engine.close()


class TestDedupe:
    def test_resend_is_answered_from_the_journal(self, tmp_path):
        sock = str(tmp_path / "gendp.sock")
        wal = str(tmp_path / "wal")

        async def scenario():
            server = await _start(sock, wal)
            try:
                async with await ServeClient.connect(unix_socket=sock) as client:
                    first = await client.submit("bsw", BSW, dedupe_id="req-1")
                    assert first["ok"], first
                    assert "deduped" not in first
                    again = await client.submit("bsw", BSW, dedupe_id="req-1")
                    assert again["ok"]
                    assert again["deduped"] is True
                    assert again["value"] == first["value"]
                    stats = await client.stats()
                    assert stats["counters"]["serve_deduped"] == 1
                    assert stats["counters"]["serve_journaled"] == 1
            finally:
                await _stop(server)

        run(scenario())

    def test_requests_without_dedupe_id_skip_the_journal(self, tmp_path):
        sock = str(tmp_path / "gendp.sock")
        wal = str(tmp_path / "wal")

        async def scenario():
            server = await _start(sock, wal)
            try:
                async with await ServeClient.connect(unix_socket=sock) as client:
                    response = await client.submit("bsw", BSW)
                    assert response["ok"]
                    stats = await client.stats()
                    assert stats["counters"]["serve_journaled"] == 0
            finally:
                await _stop(server)

        run(scenario())

    def test_journal_records_are_keyed_by_dedupe_id(self, tmp_path):
        sock = str(tmp_path / "gendp.sock")
        wal = str(tmp_path / "wal")

        async def scenario():
            server = await _start(sock, wal)
            try:
                async with await ServeClient.connect(unix_socket=sock) as client:
                    await client.submit("bsw", BSW, dedupe_id="alpha")
            finally:
                await _stop(server)

        run(scenario())
        state, _issues = load_journal_state(wal)
        assert set(state.accepted) == {"alpha"}
        assert state.terminal("alpha")


class TestRestart:
    def test_completed_requests_survive_a_restart(self, tmp_path):
        """The headline: restart the server, resend, no re-execution."""
        sock = str(tmp_path / "gendp.sock")
        wal = str(tmp_path / "wal")

        async def scenario():
            first = await _start(sock, wal)
            try:
                async with await ServeClient.connect(unix_socket=sock) as client:
                    original = await client.submit(
                        "bsw", BSW, dedupe_id="req-7"
                    )
                    assert original["ok"], original
            finally:
                await _stop(first)

            second = await _start(sock, wal)
            try:
                async with await ServeClient.connect(unix_socket=sock) as client:
                    resend = await client.submit("bsw", BSW, dedupe_id="req-7")
                    assert resend["ok"]
                    assert resend["deduped"] is True
                    assert resend["value"] == original["value"]
                    stats = await client.stats()
                    # Answered from the recovered cache: the fresh
                    # engine executed nothing.
                    assert stats["counters"]["serve_deduped"] == 1
                    assert stats["counters"]["serve_dispatches"] == 0
            finally:
                await _stop(second)

        run(scenario())

    def test_orphaned_requests_reexecute_at_startup(self, tmp_path):
        """Accepted-but-unanswered requests finish during recovery."""
        sock = str(tmp_path / "gendp.sock")
        wal = str(tmp_path / "wal")

        async def scenario():
            first = await _start(sock, wal)
            try:
                # Journal an accept by hand, as if the server died
                # between the accept write and the completion write.
                first.journal.append(
                    "accept",
                    job_id="lost-1",
                    kernel="bsw",
                    payload=dict(BSW),
                    priority=0,
                    tenant="anon",
                )
            finally:
                await _stop(first)

            second = await _start(sock, wal)
            try:
                async with await ServeClient.connect(unix_socket=sock) as client:
                    stats = await client.stats()
                    assert stats["counters"]["serve_recovered"] == 1
                    # The resend is served from the recovered answer.
                    resend = await client.submit(
                        "bsw", BSW, dedupe_id="lost-1"
                    )
                    assert resend["ok"]
                    assert resend["deduped"] is True
            finally:
                await _stop(second)

        run(scenario())
        state, _issues = load_journal_state(wal)
        assert state.terminal("lost-1")
        assert state.duplicate_completions == 0

    def test_recover_on_start_off_skips_the_replay(self, tmp_path):
        sock = str(tmp_path / "gendp.sock")
        wal = str(tmp_path / "wal")

        async def scenario():
            first = await _start(sock, wal)
            try:
                first.journal.append(
                    "accept",
                    job_id="lost-2",
                    kernel="bsw",
                    payload=dict(BSW),
                    priority=0,
                    tenant="anon",
                )
            finally:
                await _stop(first)

            second = await _start(sock, wal, recover=False)
            try:
                async with await ServeClient.connect(unix_socket=sock) as client:
                    stats = await client.stats()
                    assert stats["counters"]["serve_recovered"] == 0
            finally:
                await _stop(second)

        run(scenario())
        state, _issues = load_journal_state(wal)
        assert not state.terminal("lost-2")  # still an orphan
