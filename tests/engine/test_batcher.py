"""Batch packing: interconnect modes, size bins, capacity, priority."""

from repro.dpax.machine import INTEGER_ARRAYS
from repro.engine.batcher import (
    MODE_ARRAYS,
    MODE_CHAIN,
    Batcher,
    mode_for,
    size_bin,
)
from repro.engine.jobs import make_job


def _bsw_job(length=8, priority=0):
    return make_job(
        "bsw",
        {"query": "ACGT" * (length // 4), "target": "ACGT" * (length // 4)},
        priority=priority,
    )


def _chain_job(count=8):
    anchors = [[10 * (i + 1), 10 * (i + 1), 19] for i in range(count)]
    return make_job("chain", {"anchors": anchors})


class TestModes:
    def test_2d_kernels_use_independent_arrays(self):
        for kernel in ("bsw", "pairhmm", "lcs", "dtw"):
            assert mode_for(kernel) == MODE_ARRAYS

    def test_1d_kernels_use_concatenated_chain(self):
        assert mode_for("chain") == MODE_CHAIN

    def test_modes_assigned_on_batches(self):
        batches = Batcher().pack([_bsw_job(), _chain_job()])
        modes = {batch.kernel: batch.mode for batch in batches}
        assert modes == {"bsw": MODE_ARRAYS, "chain": MODE_CHAIN}


class TestPacking:
    def test_default_capacity_is_the_tile(self):
        assert Batcher().capacity == INTEGER_ARRAYS

    def test_same_kernel_same_bin_share_a_batch(self):
        batches = Batcher().pack([_bsw_job(), _bsw_job()])
        assert len(batches) == 1
        assert len(batches[0].jobs) == 2
        assert batches[0].occupancy == 2 / INTEGER_ARRAYS

    def test_capacity_splits_batches(self):
        jobs = [_bsw_job() for _ in range(5)]
        batches = Batcher(capacity=2).pack(jobs)
        assert [len(batch.jobs) for batch in batches] == [2, 2, 1]
        assert all(batch.kernel == "bsw" for batch in batches)

    def test_size_bins_separate_small_from_large(self):
        small = _bsw_job(length=4)  # 16 cells
        large = _bsw_job(length=32)  # 1024 cells
        batches = Batcher().pack([small, large])
        assert len(batches) == 2
        assert {batch.size_bin for batch in batches} == {
            size_bin(16),
            size_bin(1024),
        }

    def test_kernels_never_mix(self):
        batches = Batcher().pack([_bsw_job(), _chain_job(), _bsw_job()])
        for batch in batches:
            assert len({job.kernel for job in batch.jobs}) == 1


class TestPriority:
    def test_high_priority_jobs_fill_the_first_batch(self):
        low = [_bsw_job(priority=0) for _ in range(2)]
        high = [_bsw_job(priority=5) for _ in range(2)]
        batches = Batcher(capacity=2).pack(low + high)
        assert [job.job_id for job in batches[0].jobs] == [
            job.job_id for job in high
        ]
        assert [job.job_id for job in batches[1].jobs] == [
            job.job_id for job in low
        ]

    def test_ties_preserve_submission_order(self):
        jobs = [_bsw_job() for _ in range(3)]
        packed = Batcher().pack(jobs)[0].jobs
        assert [job.job_id for job in packed] == [job.job_id for job in jobs]


class TestSizeBin:
    def test_power_of_two_buckets(self):
        assert size_bin(0) == 0
        assert size_bin(1) == 0
        assert size_bin(2) == 1
        assert size_bin(16) == 4
        assert size_bin(17) == 5
