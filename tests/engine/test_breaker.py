"""Circuit breaker: closed/open/half-open transitions, batch-counted."""

import pytest

from repro.engine import CircuitBreaker
from repro.engine.breaker import STATE_CLOSED, STATE_HALF_OPEN, STATE_OPEN


class TestOpening:
    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_batches=4)
        assert not breaker.record_failure()
        assert not breaker.record_failure()
        assert breaker.record_failure()  # the opening call reports True
        assert breaker.state == STATE_OPEN

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_batches=4)
        breaker.record_failure()
        breaker.record_success()
        assert not breaker.record_failure()  # streak restarted
        assert breaker.state == STATE_CLOSED

    def test_closed_breaker_always_allows(self):
        breaker = CircuitBreaker()
        assert all(breaker.allow() for _ in range(5))


class TestCooldownAndProbe:
    def test_cooldown_blocks_then_allows_one_probe(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_batches=3)
        assert breaker.record_failure()
        # Two batches short-circuit, the third becomes the probe.
        assert not breaker.allow()
        assert not breaker.allow()
        assert breaker.allow()
        assert breaker.state == STATE_HALF_OPEN

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_batches=1)
        breaker.record_failure()
        assert breaker.allow()  # probe
        breaker.record_success()
        assert breaker.state == STATE_CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_full_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_batches=2)
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        assert breaker.allow()  # probe
        # One failure suffices in half-open, regardless of threshold.
        assert breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert not breaker.allow()
        assert breaker.allow()  # full cooldown counted down again


class TestValidation:
    def test_rejects_non_positive_knobs(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_batches=0)
