"""Compiled-program cache: LRU behavior and hit/miss accounting."""

import pytest

from repro.engine.cache import CompiledProgram, ProgramCache, compile_program
from repro.engine.runners import build_dfg


def _compile(kernel):
    return compile_program(kernel, 2, build_dfg(kernel))


class TestLookups:
    def test_miss_compiles_then_hits(self):
        cache = ProgramCache(capacity=4)
        dfg = build_dfg("lcs")
        key = cache.key_for("lcs", 2, dfg)

        program, hit = cache.get_or_compile(key, lambda: _compile("lcs"))
        assert not hit
        assert isinstance(program, CompiledProgram)
        assert cache.stats.compiles == 1

        again, hit = cache.get_or_compile(key, lambda: _compile("lcs"))
        assert hit
        assert again is program
        assert cache.stats.compiles == 1  # DPMap ran exactly once
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_key_follows_dfg_content(self):
        cache = ProgramCache()
        lcs_key = cache.key_for("lcs", 2, build_dfg("lcs"))
        # A rebuilt (structurally identical) DFG yields the same key...
        assert lcs_key == cache.key_for("lcs", 2, build_dfg("lcs"))
        # ...a different depth or kernel does not.
        assert lcs_key != cache.key_for("lcs", 1, build_dfg("lcs"))
        assert lcs_key != cache.key_for("dtw", 2, build_dfg("dtw"))

    def test_compile_seconds_accumulate(self):
        cache = ProgramCache()
        key = cache.key_for("bsw", 2, build_dfg("bsw"))
        cache.get_or_compile(key, lambda: _compile("bsw"))
        assert cache.stats.compile_seconds > 0.0


class TestCompileFailure:
    def test_raise_leaves_no_poisoned_entry(self):
        cache = ProgramCache(capacity=4)
        key = cache.key_for("lcs", 2, build_dfg("lcs"))

        def exploding():
            raise RuntimeError("DPMap fell over")

        with pytest.raises(RuntimeError):
            cache.get_or_compile(key, exploding)
        assert key not in cache
        assert cache.stats.compile_failures == 1
        assert cache.stats.misses == 1
        assert cache.stats.compiles == 0  # nothing was produced

        # The failure is not sticky: the next lookup retries and the
        # good program is cached normally.
        program, hit = cache.get_or_compile(key, lambda: _compile("lcs"))
        assert not hit
        assert key in cache
        assert cache.stats.compiles == 1
        assert cache.stats.misses == 2

        again, hit = cache.get_or_compile(key, lambda: _compile("lcs"))
        assert hit and again is program

    def test_failures_surface_in_snapshot(self):
        cache = ProgramCache()
        key = cache.key_for("dtw", 2, build_dfg("dtw"))
        with pytest.raises(ValueError):
            cache.get_or_compile(key, lambda: (_ for _ in ()).throw(ValueError()))
        assert cache.stats.snapshot()["compile_failures"] == 1


class TestEviction:
    def test_lru_evicts_least_recent(self):
        cache = ProgramCache(capacity=2)
        keys = {
            kernel: cache.key_for(kernel, 2, build_dfg(kernel))
            for kernel in ("lcs", "dtw", "bsw")
        }
        cache.get_or_compile(keys["lcs"], lambda: _compile("lcs"))
        cache.get_or_compile(keys["dtw"], lambda: _compile("dtw"))
        # Touch lcs so dtw becomes the LRU entry.
        cache.get_or_compile(keys["lcs"], lambda: _compile("lcs"))
        cache.get_or_compile(keys["bsw"], lambda: _compile("bsw"))

        assert cache.stats.evictions == 1
        assert keys["dtw"] not in cache
        assert keys["lcs"] in cache and keys["bsw"] in cache

        # The evicted program recompiles on next use.
        _, hit = cache.get_or_compile(keys["dtw"], lambda: _compile("dtw"))
        assert not hit
        assert cache.stats.compiles == 4

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ProgramCache(capacity=0)


class TestCompileProgram:
    def test_rejects_non_hardware_depths(self):
        with pytest.raises(ValueError):
            compile_program("lcs", 3, build_dfg("lcs"))

    def test_payload_is_picklable(self):
        import pickle

        program = _compile("bsw")
        clone = pickle.loads(pickle.dumps(program))
        assert clone.input_regs == program.input_regs
        assert clone.output_regs == program.output_regs
        assert len(clone.instructions) == len(program.instructions)


class TestVerifierIntegration:
    def test_verification_failure_leaves_no_poisoned_entry(self):
        from repro.guard.verifier import ProgramVerificationError, check_program

        cache = ProgramCache(capacity=4)
        dfg = build_dfg("lcs")
        key = cache.key_for("lcs", 2, dfg)

        def verified_compile():
            compiled = _compile("lcs")
            compiled.input_regs[next(iter(compiled.input_regs))] = 4096
            check_program(compiled).raise_if_violations()
            return compiled

        with pytest.raises(ProgramVerificationError):
            cache.get_or_compile(key, verified_compile)
        assert key not in cache
        assert len(cache) == 0
        assert cache.stats.compile_failures == 1
        # The next lookup with a healthy compile succeeds normally.
        program, hit = cache.get_or_compile(key, lambda: _compile("lcs"))
        assert not hit and key in cache
