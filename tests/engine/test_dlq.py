"""Dead-letter queue: bounded parking and replay hand-off."""

import pytest

from repro.engine import DeadLetter, DeadLetterQueue, make_job


def _job():
    return make_job("lcs", {"x": "ACGT", "y": "AC"})


class TestParking:
    def test_fifo_and_copies(self):
        dlq = DeadLetterQueue(capacity=4)
        first, second = _job(), _job()
        assert dlq.push(first, "boom")
        assert dlq.push(second, "bust", attempts=3)
        letters = dlq.letters()
        assert [l.job.job_id for l in letters] == [first.job_id, second.job_id]
        assert letters[1].attempts == 3
        letters.clear()  # mutating the copy must not touch the queue
        assert len(dlq) == 2

    def test_overflow_drops_newest(self):
        dlq = DeadLetterQueue(capacity=1)
        assert dlq.push(_job(), "first")
        assert not dlq.push(_job(), "second")
        assert len(dlq) == 1
        assert dlq.letters()[0].error == "first"

    def test_zero_capacity_parks_nothing(self):
        dlq = DeadLetterQueue(capacity=0)
        assert not dlq.push(_job(), "boom")
        assert len(dlq) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            DeadLetterQueue(capacity=-1)


class TestReplayHandoff:
    def test_drain_empties_the_queue(self):
        dlq = DeadLetterQueue()
        dlq.push(_job(), "boom")
        letters = dlq.drain()
        assert len(letters) == 1
        assert len(dlq) == 0
        assert dlq.drain() == []

    def test_extend_puts_letters_back(self):
        dlq = DeadLetterQueue()
        dlq.push(_job(), "boom")
        leftovers = dlq.drain()[0:]
        dlq.extend(leftovers)
        assert len(dlq) == 1
        assert isinstance(dlq.letters()[0], DeadLetter)

    def test_clear(self):
        dlq = DeadLetterQueue()
        dlq.push(_job(), "boom")
        dlq.clear()
        assert len(dlq) == 0
