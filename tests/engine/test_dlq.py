"""Dead-letter queue: bounded parking, overflow policies, replay hand-off."""

import pytest

from repro.engine import DeadLetter, DeadLetterQueue, make_job
from repro.engine.metrics import MetricsRegistry


def _job():
    return make_job("lcs", {"x": "ACGT", "y": "AC"})


class TestParking:
    def test_fifo_and_copies(self):
        dlq = DeadLetterQueue(capacity=4)
        first, second = _job(), _job()
        assert dlq.push(first, "boom")
        assert dlq.push(second, "bust", attempts=3)
        letters = dlq.letters()
        assert [l.job.job_id for l in letters] == [first.job_id, second.job_id]
        assert letters[1].attempts == 3
        letters.clear()  # mutating the copy must not touch the queue
        assert len(dlq) == 2

    def test_overflow_drops_newest(self):
        dlq = DeadLetterQueue(capacity=1)
        assert dlq.push(_job(), "first")
        assert not dlq.push(_job(), "second")
        assert len(dlq) == 1
        assert dlq.letters()[0].error == "first"

    def test_zero_capacity_parks_nothing(self):
        dlq = DeadLetterQueue(capacity=0)
        assert not dlq.push(_job(), "boom")
        assert len(dlq) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            DeadLetterQueue(capacity=-1)


class TestOverflowPolicies:
    def test_drop_oldest_evicts_the_front(self):
        dlq = DeadLetterQueue(capacity=2, overflow="drop_oldest")
        a, b, c = _job(), _job(), _job()
        assert dlq.push(a, "first")
        assert dlq.push(b, "second")
        # The incoming letter is admitted; the oldest falls off.
        assert dlq.push(c, "third")
        assert len(dlq) == 2
        assert [l.job.job_id for l in dlq.letters()] == [b.job_id, c.job_id]

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            DeadLetterQueue(overflow="drop_random")

    def test_drop_newest_counts_each_refusal(self):
        metrics = MetricsRegistry()
        dlq = DeadLetterQueue(capacity=1, metrics=metrics)
        dlq.push(_job(), "kept")
        dlq.push(_job(), "refused")
        dlq.push(_job(), "refused")
        counters = metrics.snapshot()["counters"]
        assert counters["dead_letters_dropped"] == 2

    def test_drop_oldest_counts_each_eviction(self):
        metrics = MetricsRegistry()
        dlq = DeadLetterQueue(
            capacity=1, overflow="drop_oldest", metrics=metrics
        )
        dlq.push(_job(), "first")
        dlq.push(_job(), "second")
        counters = metrics.snapshot()["counters"]
        assert counters["dead_letters_dropped"] == 1
        assert dlq.letters()[0].error == "second"

    def test_zero_capacity_counts_every_letter(self):
        metrics = MetricsRegistry()
        dlq = DeadLetterQueue(capacity=0, metrics=metrics)
        dlq.push(_job(), "boom")
        dlq.push(_job(), "boom")
        assert metrics.snapshot()["counters"]["dead_letters_dropped"] == 2

    def test_no_metrics_registry_is_fine(self):
        dlq = DeadLetterQueue(capacity=0)
        assert not dlq.push(_job(), "boom")  # no AttributeError


class TestReplayHandoff:
    def test_drain_empties_the_queue(self):
        dlq = DeadLetterQueue()
        dlq.push(_job(), "boom")
        letters = dlq.drain()
        assert len(letters) == 1
        assert len(dlq) == 0
        assert dlq.drain() == []

    def test_extend_puts_letters_back(self):
        dlq = DeadLetterQueue()
        dlq.push(_job(), "boom")
        leftovers = dlq.drain()[0:]
        dlq.extend(leftovers)
        assert len(dlq) == 1
        assert isinstance(dlq.letters()[0], DeadLetter)

    def test_clear(self):
        dlq = DeadLetterQueue()
        dlq.push(_job(), "boom")
        dlq.clear()
        assert len(dlq) == 0
