"""Executor backends: pool parallelism, retries, timeout, degradation."""

import pytest

from repro.engine.batcher import Batcher
from repro.engine.cache import ProgramCache, compile_program
from repro.engine.executor import InlineExecutor, PoolExecutor, make_executor
from repro.engine.jobs import make_job
from repro.engine.runners import build_dfg


@pytest.fixture(scope="module")
def lcs_compiled():
    return compile_program("lcs", 2, build_dfg("lcs"))


def _lcs_batch(payloads):
    jobs = [make_job("lcs", payload) for payload in payloads]
    return Batcher().pack(jobs)[0]


GOOD = {"x": "ACGTACGT", "y": "ACGGT"}


class TestInline:
    def test_runs_all_jobs(self, lcs_compiled):
        batch = _lcs_batch([GOOD, GOOD])
        outcomes = InlineExecutor().run_batches([(batch, lcs_compiled)])
        assert len(outcomes) == 1
        outcome = outcomes[0]
        assert outcome.backend == "inline"
        assert not outcome.degraded
        assert [r["ok"] for r in outcome.results] == [True, True]
        assert all(r["value"]["length"] == 5 for r in outcome.results)

    def test_job_failure_stays_inside_the_batch(self, lcs_compiled):
        batch = _lcs_batch([GOOD, {**GOOD, "_inject_fail": True}])
        outcome = InlineExecutor().run_batches([(batch, lcs_compiled)])[0]
        assert outcome.results[0]["ok"]
        assert not outcome.results[1]["ok"]
        assert "injected" in outcome.results[1]["error"]


class TestPool:
    def test_parallel_execution_matches_inline(self, lcs_compiled):
        batches = [
            (_lcs_batch([GOOD]), lcs_compiled),
            (_lcs_batch([{"x": "AAAA", "y": "AAAA"}]), lcs_compiled),
        ]
        executor = PoolExecutor(workers=2, job_timeout_s=30.0)
        try:
            outcomes = executor.run_batches(batches)
        finally:
            executor.close()
        assert [o.backend for o in outcomes] == ["pool", "pool"]
        assert outcomes[0].results[0]["value"]["length"] == 5
        assert outcomes[1].results[0]["value"]["length"] == 4

    def test_worker_crash_retries_then_degrades_inline(self, lcs_compiled):
        # _inject_exit kills the worker process (pool workers only), so
        # every pool attempt fails; the batch must land inline intact.
        batch = _lcs_batch([{**GOOD, "_inject_exit": True}])
        executor = PoolExecutor(workers=1, job_timeout_s=30.0, max_retries=1)
        try:
            outcome = executor.run_batches([(batch, lcs_compiled)])[0]
        finally:
            executor.close()
        assert outcome.degraded
        assert outcome.backend == "inline"
        assert outcome.attempts == 3  # 1 try + 1 retry + inline fallback
        assert outcome.results[0]["ok"]
        assert outcome.results[0]["value"]["length"] == 5

    def test_timeout_falls_back_inline(self, lcs_compiled):
        batch = _lcs_batch([{**GOOD, "_inject_delay_s": 1.0}])
        executor = PoolExecutor(workers=1, job_timeout_s=0.05, max_retries=0)
        try:
            outcome = executor.run_batches([(batch, lcs_compiled)])[0]
        finally:
            executor.close()
        assert outcome.degraded
        assert outcome.backend == "inline"
        assert outcome.results[0]["ok"]  # delay only applies in workers

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            PoolExecutor(workers=0)
        with pytest.raises(ValueError):
            PoolExecutor(workers=1, job_timeout_s=0)
        with pytest.raises(ValueError):
            PoolExecutor(workers=1, max_retries=-1)
        with pytest.raises(ValueError):
            PoolExecutor(workers=1, retry_backoff_s=-0.1)

    def test_crash_does_not_strand_pending_batches(self, lcs_compiled):
        # A dead worker poisons the whole pool.  The batch behind the
        # crashing one must be resubmitted on the fresh pool -- served
        # from the pool, charged no extra attempts -- instead of
        # failing serially behind the crash.
        batches = [
            (_lcs_batch([{**GOOD, "_inject_exit": True}]), lcs_compiled),
            (_lcs_batch([GOOD]), lcs_compiled),
            (_lcs_batch([{"x": "AAAA", "y": "AAAA"}]), lcs_compiled),
        ]
        executor = PoolExecutor(workers=1, job_timeout_s=30.0, max_retries=0)
        try:
            outcomes = executor.run_batches(batches)
        finally:
            executor.close()
        crashed, innocent, innocent2 = outcomes
        assert crashed.degraded and crashed.backend == "inline"
        assert crashed.attempts == 2  # 1 pool try + the inline run
        for outcome in (innocent, innocent2):
            assert outcome.backend == "pool"
            assert not outcome.degraded
            assert outcome.attempts == 1  # rode along for free
        assert innocent.results[0]["value"]["length"] == 5
        assert innocent2.results[0]["value"]["length"] == 4


class TestBackoff:
    def test_disabled_by_default(self):
        executor = PoolExecutor(workers=1)
        try:
            assert executor._backoff_delay(1) == 0.0
        finally:
            executor.close()

    def test_exponential_with_bounded_jitter(self):
        executor = PoolExecutor(workers=1, retry_backoff_s=0.1, jitter_seed=42)
        try:
            for failed in (1, 2, 3):
                step = 0.1 * 2 ** (failed - 1)
                delay = executor._backoff_delay(failed)
                assert 0.5 * step <= delay < step
        finally:
            executor.close()

    def test_jitter_is_seed_deterministic(self):
        a = PoolExecutor(workers=1, retry_backoff_s=0.1, jitter_seed=7)
        b = PoolExecutor(workers=1, retry_backoff_s=0.1, jitter_seed=7)
        try:
            assert [a._backoff_delay(n) for n in (1, 2)] == [
                b._backoff_delay(n) for n in (1, 2)
            ]
        finally:
            a.close()
            b.close()


class TestFactory:
    def test_zero_workers_selects_inline(self):
        assert isinstance(make_executor(0), InlineExecutor)

    def test_positive_workers_selects_pool(self):
        executor = make_executor(2)
        assert isinstance(executor, PoolExecutor)
        executor.close()
