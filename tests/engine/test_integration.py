"""End-to-end: a mixed kernel stream validated against reference kernels.

This is the acceptance scenario for the engine as a test: a 50-job
BSW + Chain + PairHMM stream run through the parallel backend, with
DPMap compiling once per distinct kernel, a warm cache for everything
else, and every result checked against the golden software kernels.
"""

from repro.engine import Engine, EngineConfig, make_job
from repro.engine.runners import matches_reference, reference_result
from repro.workloads.anchors import generate_chain_workload
from repro.workloads.haplotypes import generate_pairhmm_workload
from repro.workloads.reads import generate_bsw_workload

JOB_COUNT = 50
KERNELS = ("bsw", "chain", "pairhmm")


def _mixed_jobs(seed=7, count=JOB_COUNT):
    bsw = generate_bsw_workload(
        count=count, query_length=24, target_length=20, seed=seed
    )
    pairhmm = generate_pairhmm_workload(
        regions=count // 4 + 1,
        reads_per_region=2,
        haplotypes_per_region=2,
        read_length=16,
        haplotype_length=12,
        seed=seed,
    )
    chain = generate_chain_workload(
        tasks=count, anchors_per_task=32, seed=seed
    )
    payload_pools = {
        "bsw": [
            {"query": pair.query, "target": pair.target}
            for pair in bsw.pairs
        ],
        "pairhmm": [
            {"read": pair.read, "haplotype": pair.haplotype}
            for pair in pairhmm.pairs
        ],
        "chain": [
            {"anchors": [[a.x, a.y, a.w] for a in task.anchors]}
            for task in chain.tasks
        ],
    }
    jobs = []
    for index in range(count):
        kernel = KERNELS[index % len(KERNELS)]
        payload = payload_pools[kernel][index // len(KERNELS)]
        jobs.append(make_job(kernel, payload))
    return jobs


def test_mixed_stream_parallel_end_to_end():
    jobs = _mixed_jobs()
    config = EngineConfig(workers=2, max_queue=JOB_COUNT)
    with Engine(config) as engine:
        engine.submit_many(jobs)
        results = engine.drain()
        snapshot = engine.snapshot()

    assert len(results) == JOB_COUNT
    assert all(result.ok for result in results), [
        result.error for result in results if not result.ok
    ]

    # DPMap ran exactly once per distinct (kernel, depth).
    assert snapshot["cache"]["compiles"] == len(KERNELS)
    assert snapshot["derived"]["cache_hit_rate"] >= 0.9

    # The stream actually exercised the parallel backend.
    assert snapshot["counters"]["parallel_batches"] > 0
    assert snapshot["counters"].get("degraded_batches", 0) == 0

    # Every result matches the reference software kernel.
    by_id = {job.job_id: job for job in jobs}
    for result in results:
        job = by_id[result.job_id]
        assert matches_reference(job.kernel, result.value, job.payload), (
            job.kernel,
            result.value,
            reference_result(job.kernel, job.payload),
        )


def test_mixed_stream_inline_matches_references():
    jobs = _mixed_jobs(seed=11, count=12)
    with Engine() as engine:
        engine.submit_many(jobs)
        results = engine.drain()
    by_id = {job.job_id: job for job in jobs}
    for result in results:
        assert result.ok, result.error
        job = by_id[result.job_id]
        assert matches_reference(job.kernel, result.value, job.payload)
