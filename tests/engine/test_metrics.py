"""Histogram internals and the counter-name drift guard.

The drift test is deliberately grep-shaped: every counter name the
fixed schemas (:data:`RELIABILITY_COUNTERS`, :data:`SENTINEL_COUNTERS`,
:data:`OPT_COUNTERS`) promise must have a real ``incr`` call site in
the source tree, so a renamed counter cannot silently decouple the
dashboards from the engine.
"""

import re
from pathlib import Path

import pytest

from repro.engine.metrics import (
    DURABLE_COUNTERS,
    Histogram,
    OPT_COUNTERS,
    RELIABILITY_COUNTERS,
    SENTINEL_COUNTERS,
    STATIC_COUNTERS,
)
from repro.guard.sentinels import SENTINEL_FIELDS
from repro.slo.accounting import TENANT_COUNTERS
from repro.slo.burnrate import SLO_COUNTERS
from repro.slo.flight import FLIGHT_COUNTERS

SRC_ROOT = Path(__file__).resolve().parents[2] / "src" / "repro"


def _linear_bucket(bounds, value):
    for index, bound in enumerate(bounds):
        if value <= bound:
            return index
    return len(bounds)


class TestHistogramObserve:
    def test_bisect_matches_linear_scan(self):
        bounds = (0.001, 0.01, 0.1, 1.0, 10.0)
        values = [0.0005, 0.005, 0.05, 0.5, 5.0, 50.0, -1.0]
        # Values exactly on a bound must land in that bound's bucket
        # (value <= bound semantics).
        values += list(bounds)
        reference = [0] * (len(bounds) + 1)
        histogram = Histogram(bounds=bounds)
        for value in values:
            reference[_linear_bucket(bounds, value)] += 1
            histogram.observe(value)
        assert histogram.counts == reference
        assert histogram.count == len(values)

    def test_tracks_sum_min_max(self):
        histogram = Histogram(bounds=(1.0,))
        for value in (0.5, 2.0, 3.5):
            histogram.observe(value)
        assert histogram.total == pytest.approx(6.0)
        assert histogram.minimum == 0.5
        assert histogram.maximum == 3.5


class TestHistogramQuantile:
    def test_quantiles_are_monotone_and_clamped(self):
        histogram = Histogram(bounds=(0.01, 0.1, 1.0))
        for value in (0.004, 0.05, 0.06, 0.5, 0.7, 3.0):
            histogram.observe(value)
        p50 = histogram.quantile(0.5)
        p95 = histogram.quantile(0.95)
        p99 = histogram.quantile(0.99)
        assert histogram.minimum <= p50 <= p95 <= p99 <= histogram.maximum

    def test_quantile_of_empty_histogram_is_zero(self):
        assert Histogram(bounds=(1.0,)).quantile(0.5) == 0.0

    def test_single_bucket_median_interpolates(self):
        histogram = Histogram(bounds=(10.0,))
        for _ in range(10):
            histogram.observe(8.0)
        # All mass in (0, 10]; interpolation puts the median mid-bucket,
        # clamped into the observed [8, 8] range.
        assert histogram.quantile(0.5) == 8.0


def _source_blob():
    return "\n".join(
        path.read_text() for path in sorted(SRC_ROOT.rglob("*.py"))
    )


class TestCounterSchemaDrift:
    """Satellite guard: schema names must match real incr call sites."""

    def test_reliability_counters_have_incr_sites(self):
        blob = _source_blob()
        missing = [
            name
            for name in RELIABILITY_COUNTERS
            if not re.search(rf"incr\(\s*[\"']{name}[\"']", blob)
        ]
        assert missing == []

    def test_opt_counters_have_incr_sites(self):
        blob = _source_blob()
        missing = [
            name
            for name in OPT_COUNTERS
            if not re.search(rf"incr\(\s*[\"']{name}[\"']", blob)
        ]
        assert missing == []

    def test_sentinel_counters_mirror_guard_fields(self):
        # Sentinel counters are folded dynamically via one f-string
        # site; the schema must track SENTINEL_FIELDS exactly.
        service = (SRC_ROOT / "engine" / "service.py").read_text()
        assert re.search(r"incr\(\s*f[\"']sentinel_\{name\}[\"']", service)
        assert tuple(f"sentinel_{field}" for field in SENTINEL_FIELDS) == (
            SENTINEL_COUNTERS
        )

    def test_durable_counters_have_incr_sites(self):
        blob = _source_blob()
        missing = [
            name
            for name in DURABLE_COUNTERS
            if not re.search(rf"incr\(\s*[\"']{name}[\"']", blob)
        ]
        assert missing == []

    def test_durable_counters_all_prefixed(self):
        # The ``durable_`` prefix is the dashboard's namespace contract.
        assert all(name.startswith("durable_") for name in DURABLE_COUNTERS)

    def test_static_counters_have_incr_sites(self):
        blob = _source_blob()
        missing = [
            name
            for name in STATIC_COUNTERS
            if not re.search(rf"incr\(\s*[\"']{name}[\"']", blob)
        ]
        assert missing == []

    def test_static_counters_all_prefixed(self):
        assert all(name.startswith("static_") for name in STATIC_COUNTERS)

    def test_slo_counters_have_incr_sites(self):
        blob = _source_blob()
        missing = [
            name
            for name in SLO_COUNTERS
            if not re.search(rf"incr\(\s*[\"']{name}[\"']", blob)
        ]
        assert missing == []

    def test_slo_counters_all_prefixed(self):
        assert all(name.startswith("slo_") for name in SLO_COUNTERS)

    def test_tenant_counters_have_incr_sites(self):
        blob = _source_blob()
        missing = [
            name
            for name in TENANT_COUNTERS
            if not re.search(rf"incr\(\s*[\"']{name}[\"']", blob)
        ]
        assert missing == []

    def test_tenant_counters_all_prefixed(self):
        assert all(name.startswith("tenant_") for name in TENANT_COUNTERS)

    def test_flight_counters_have_incr_sites(self):
        blob = _source_blob()
        missing = [
            name
            for name in FLIGHT_COUNTERS
            if not re.search(rf"incr\(\s*[\"']{name}[\"']", blob)
        ]
        assert missing == []

    def test_flight_counters_all_prefixed(self):
        assert all(name.startswith("flight_") for name in FLIGHT_COUNTERS)

    def test_schemas_are_disjoint_and_unique(self):
        names = (
            RELIABILITY_COUNTERS
            + SENTINEL_COUNTERS
            + OPT_COUNTERS
            + DURABLE_COUNTERS
            + STATIC_COUNTERS
            + SLO_COUNTERS
            + TENANT_COUNTERS
            + FLIGHT_COUNTERS
        )
        assert len(names) == len(set(names))
