"""EngineConfig.optimize_programs: optimized compiles, same answers."""

import pytest

from repro.engine import Engine, EngineConfig, Job
from repro.guard.diff import generate_payload

KERNELS = ("bsw", "pairhmm", "chain", "dtw")


def make_jobs():
    jobs = []
    jid = 0
    for kernel in KERNELS:
        for index in range(3):
            jobs.append(
                Job(
                    job_id=jid,
                    kernel=kernel,
                    payload=generate_payload(kernel, seed=11, index=index),
                )
            )
            jid += 1
    return jobs


def drain(config):
    with Engine(config) as engine:
        engine.submit_many(make_jobs())
        results = engine.drain()
        return results, engine.snapshot(), engine.cache.keys()


class TestOptimizedEngine:
    def test_results_match_the_unoptimized_engine(self):
        optimized, _, _ = drain(EngineConfig(optimize_programs=True))
        baseline, _, _ = drain(EngineConfig())
        assert [r.ok for r in optimized] == [r.ok for r in baseline]
        for opt, base in zip(optimized, baseline):
            assert opt.ok, opt.error
            assert opt.value == base.value

    def test_cache_keys_carry_the_pipeline_signature(self):
        _, _, opt_keys = drain(EngineConfig(optimize_programs=True))
        _, _, base_keys = drain(EngineConfig())
        assert all(key[3].startswith("opt-v1:") for key in opt_keys)
        assert all(key[3] == "" for key in base_keys)
        # Contracts differ per kernel, so signatures do too.
        assert len({key[3] for key in opt_keys}) == len(KERNELS)

    def test_opt_counters_and_snapshot_block(self):
        _, snapshot, _ = drain(EngineConfig(optimize_programs=True))
        block = snapshot["optimization"]
        assert block["opt_programs_optimized"] == len(KERNELS)
        # BSW loses a bundle to dead-output elimination and Chain one
        # to re-packing; both land in the eliminated counter.
        assert block["opt_instructions_eliminated"] >= 2
        assert block["opt_ways_repacked"] >= 1

    def test_counters_stay_zero_when_off(self):
        _, snapshot, _ = drain(EngineConfig())
        assert all(v == 0 for v in snapshot["optimization"].values())

    def test_compiles_once_per_kernel(self):
        with Engine(EngineConfig(optimize_programs=True)) as engine:
            engine.submit_many(make_jobs())
            engine.drain()
            engine.submit_many(make_jobs())
            engine.drain()
            assert engine.cache.stats.compiles == len(KERNELS)
            assert engine.snapshot()["optimization"][
                "opt_programs_optimized"
            ] == len(KERNELS)

    def test_optimized_programs_are_verified(self):
        # verify_programs defaults on; an optimize_programs run must
        # not trip it (the pipeline only emits verifier-legal code).
        _, snapshot, _ = drain(
            EngineConfig(optimize_programs=True, verify_programs=True)
        )
        assert snapshot["reliability"]["verifier_rejections"] == 0
