"""Engine front door: queueing, backpressure, deadlines, metrics."""

import time

import pytest

from repro.engine import BackpressureError, Engine, EngineConfig, make_job
from repro.engine.jobs import JobValidationError


def _lcs_job(priority=0, deadline_s=None):
    return make_job(
        "lcs", {"x": "ACGTACGT", "y": "ACGGT"},
        priority=priority, deadline_s=deadline_s,
    )


class TestSubmission:
    def test_backpressure_when_queue_full(self):
        with Engine(EngineConfig(max_queue=2)) as engine:
            engine.submit(_lcs_job())
            engine.submit(_lcs_job())
            with pytest.raises(BackpressureError):
                engine.submit(_lcs_job())
            assert engine.metrics.counter("jobs_rejected") == 1
            # Draining frees the queue.
            assert len(engine.drain()) == 2
            engine.submit(_lcs_job())
            assert engine.queued == 1

    def test_submit_stamps_time(self):
        with Engine() as engine:
            stamped = engine.submit(_lcs_job())
            assert stamped.submitted_at > 0

    def test_invalid_jobs_rejected_at_creation(self):
        with pytest.raises(JobValidationError):
            make_job("nope", {})
        with pytest.raises(JobValidationError):
            make_job("lcs", {"x": "ACGT"})  # missing y
        with pytest.raises(JobValidationError):
            make_job("chain", {"anchors": [[1, 2]]})  # not [x, y, w]


class TestDrain:
    def test_empty_drain_is_a_noop(self):
        with Engine() as engine:
            assert engine.drain() == []

    def test_results_in_submission_order(self):
        with Engine() as engine:
            jobs = [
                _lcs_job(priority=0),
                _lcs_job(priority=9),
                _lcs_job(priority=3),
            ]
            engine.submit_many(jobs)
            results = engine.drain()
            assert [r.job_id for r in results] == [j.job_id for j in jobs]
            assert all(r.ok for r in results)
            assert all(r.value["length"] == 5 for r in results)

    def test_deadline_zero_expires_immediately(self):
        with Engine() as engine:
            probe = engine.submit(_lcs_job(deadline_s=0))
            result = engine.drain()[0]
            assert not result.ok
            assert result.error == "deadline-expired"
            assert engine.metrics.counter("jobs_expired") == 1
            # Expiries are the caller's deadline, never dead-lettered.
            assert engine.dead_letters == []
            assert probe.deadline_s == 0.0

    def test_negative_or_nan_deadline_rejected_at_creation(self):
        with pytest.raises(JobValidationError):
            make_job("lcs", {"x": "ACGT", "y": "AC"}, deadline_s=-0.5)
        with pytest.raises(JobValidationError):
            make_job("lcs", {"x": "ACGT", "y": "AC"}, deadline_s=float("nan"))
        with pytest.raises(JobValidationError):
            make_job("lcs", {"x": "ACGT", "y": "AC"}, deadline_s="soon")

    def test_deadline_expired_jobs_fail_without_executing(self):
        with Engine() as engine:
            expired = engine.submit(_lcs_job(deadline_s=0.01))
            live = engine.submit(_lcs_job())
            time.sleep(0.05)
            results = {r.job_id: r for r in engine.drain()}
            assert not results[expired.job_id].ok
            assert results[expired.job_id].error == "deadline-expired"
            assert results[expired.job_id].batch_id is None
            assert results[live.job_id].ok
            assert engine.metrics.counter("jobs_expired") == 1

    def test_failed_job_does_not_poison_its_batch(self):
        with Engine() as engine:
            good = engine.submit(_lcs_job())
            bad = engine.submit(
                make_job("lcs", {"x": "ACGT", "y": "AC", "_inject_fail": True})
            )
            results = {r.job_id: r for r in engine.drain()}
            assert results[good.job_id].ok
            assert not results[bad.job_id].ok
            assert engine.metrics.counter("jobs_failed") == 1
            assert engine.metrics.counter("jobs_completed") == 1


class _RaisingExecutor:
    """An executor whose internals blow up mid-drain."""

    backend = "inline"

    def run_batches(self, items):
        raise RuntimeError("executor internals exploded")

    def close(self):
        pass


class _FlakyCompilePlan:
    """Duck-typed fault plan: the first compile attempt per kernel fails."""

    def __init__(self, failures=1):
        self.failures = failures

    def maybe_fail_compile(self, kernel, attempt):
        if attempt <= self.failures:
            raise RuntimeError(f"injected compile failure ({kernel} #{attempt})")


class TestCrashSafeDrain:
    def test_every_job_gets_an_envelope_when_internals_raise(self):
        with Engine() as engine:
            engine.executor = _RaisingExecutor()
            jobs = engine.submit_many([_lcs_job(), _lcs_job()])
            results = engine.drain()
            assert len(results) == len(jobs)
            assert [r.job_id for r in results] == [j.job_id for j in jobs]
            for result in results:
                assert not result.ok
                assert result.error.startswith("engine-fault: RuntimeError")
            assert engine.metrics.counter("drain_faults") == 1
            assert engine.metrics.counter("jobs_failed") == 2
            # Stranded jobs are parked for replay, and the queue is
            # empty again -- the engine stays usable.
            assert len(engine.dead_letters) == 2
            assert engine.queued == 0

    def test_compile_failure_fails_its_batch_not_the_drain(self):
        config = EngineConfig(fault_plan=_FlakyCompilePlan(failures=1))
        with Engine(config) as engine:
            engine.submit(_lcs_job())
            result = engine.drain()[0]
            assert not result.ok
            assert result.error.startswith("compile-failed: RuntimeError")
            assert engine.metrics.counter("compile_failed_batches") == 1
            # The cache holds no poisoned entry: the next drain
            # recompiles (attempt 2, which the plan lets through).
            engine.submit(_lcs_job())
            retried = engine.drain()[0]
            assert retried.ok
            assert retried.value["length"] == 5
            assert engine.cache.stats.compiles == 1


class TestValidationGuard:
    def test_corruption_caught_and_kernel_quarantined(self):
        with Engine(EngineConfig(validate_fraction=1.0)) as engine:
            bad = engine.submit(
                make_job("lcs", {"x": "ACGT", "y": "AC", "_inject_corrupt": True})
            )
            result = engine.drain()[0]
            assert not result.ok
            assert result.error == "validation-mismatch"
            assert engine.quarantined == {"lcs": "validation-mismatch"}
            assert engine.metrics.counter("validation_mismatches") == 1
            assert bad.job_id == result.job_id

            # Quarantined kernels are served by the software baseline.
            follow_up = engine.submit(_lcs_job())
            served = engine.drain()[0]
            assert served.ok
            assert served.backend == "reference"
            assert served.value["length"] == 5
            assert served.job_id == follow_up.job_id
            assert engine.metrics.counter("reference_jobs") == 1

            # Lifting the quarantine restores the compiled path.
            assert engine.lift_quarantine("lcs")
            assert not engine.lift_quarantine("lcs")
            engine.submit(_lcs_job())
            assert engine.drain()[0].backend == "inline"

    def test_clean_results_pass_validation(self):
        with Engine(EngineConfig(validate_fraction=1.0)) as engine:
            engine.submit(_lcs_job())
            assert engine.drain()[0].ok
            assert engine.metrics.counter("validation_checked") == 1
            assert engine.quarantined == {}

    def test_validation_off_by_default(self):
        with Engine() as engine:
            engine.submit(
                make_job("lcs", {"x": "ACGT", "y": "AC", "_inject_corrupt": True})
            )
            result = engine.drain()[0]
            assert result.ok  # the corruption sails through, unchecked
            assert engine.metrics.counter("validation_checked") == 0


class TestDeadLetters:
    def test_failed_jobs_park_and_replay_with_same_id(self):
        with Engine() as engine:
            bad = engine.submit(
                make_job("lcs", {"x": "ACGT", "y": "AC", "_inject_fail": True})
            )
            engine.drain()
            letters = engine.dead_letters
            assert [l.job.job_id for l in letters] == [bad.job_id]
            assert "injected" in letters[0].error

            replayed = engine.replay_dead_letters()
            assert [j.job_id for j in replayed] == [bad.job_id]
            assert engine.dead_letters == []  # drained into the queue
            assert engine.metrics.counter("dead_letters_replayed") == 1
            # The envelope for the replayed drain supersedes the old one.
            results = engine.drain()
            assert [r.job_id for r in results] == [bad.job_id]

    def test_dlq_disabled_with_zero_capacity(self):
        with Engine(EngineConfig(dlq_capacity=0)) as engine:
            engine.submit(
                make_job("lcs", {"x": "ACGT", "y": "AC", "_inject_fail": True})
            )
            engine.drain()
            assert engine.dead_letters == []
            assert engine.metrics.counter("dead_letters") == 0

    def test_replay_stops_at_backpressure(self):
        with Engine(EngineConfig(max_queue=1)) as engine:
            for _ in range(2):
                engine.submit(
                    make_job("lcs", {"x": "ACGT", "y": "AC", "_inject_fail": True})
                )
                engine.drain()
            assert len(engine.dead_letters) == 2
            replayed = engine.replay_dead_letters()
            assert len(replayed) == 1  # the queue only took one
            assert len(engine.dead_letters) == 1  # the rest stayed parked


class TestCacheAccounting:
    def test_one_compile_per_distinct_kernel(self):
        with Engine() as engine:
            for _ in range(4):
                engine.submit(_lcs_job())
            engine.drain()
            # Second drain: fully warm.
            for _ in range(4):
                engine.submit(_lcs_job())
            engine.drain()
            stats = engine.cache.stats
            assert stats.compiles == 1
            assert stats.misses == 1
            assert stats.hits == 7

    def test_results_carry_cache_hit_flags(self):
        with Engine() as engine:
            first = engine.submit(_lcs_job())
            second = engine.submit(_lcs_job())
            results = {r.job_id: r for r in engine.drain()}
            assert not results[first.job_id].cache_hit
            assert results[second.job_id].cache_hit


class TestMetrics:
    def test_snapshot_is_plain_data(self):
        import json

        with Engine() as engine:
            engine.submit(_lcs_job())
            engine.drain()
            snapshot = engine.snapshot()
        json.dumps(snapshot)  # must serialize without custom encoders
        assert snapshot["counters"]["jobs_submitted"] == 1
        assert snapshot["counters"]["batches_total"] == 1
        assert snapshot["counters"]["inline_batches"] == 1
        assert snapshot["cache"]["compiles"] == 1
        assert snapshot["histograms"]["queue_wait_s"]["count"] == 1
        assert snapshot["histograms"]["execute_s"]["count"] == 1
        assert snapshot["histograms"]["batch_occupancy"]["count"] == 1
        assert 0 < snapshot["derived"]["mean_batch_occupancy"] <= 1

    def test_timings_populated_per_result(self):
        with Engine() as engine:
            engine.submit(_lcs_job())
            result = engine.drain()[0]
            assert set(result.timings) == {
                "queue_wait_s", "compile_s", "execute_s",
            }
            assert result.backend == "inline"
            assert result.attempts == 1


class TestStaticVerification:
    """The guard verifier gates the compile seam (PR 3)."""

    def _corrupting(self, monkeypatch):
        """Patch the compile seam to emit an out-of-range input reg."""
        import dataclasses

        import repro.engine.service as service

        real = service.compile_program

        def corrupt(kernel, levels, dfg):
            compiled = real(kernel, levels, dfg)
            regs = dict(compiled.input_regs)
            first = next(iter(regs))
            regs[first] = 4096
            return dataclasses.replace(compiled, input_regs=regs)

        monkeypatch.setattr(service, "compile_program", corrupt)

    def test_illegal_program_rejected_before_cache(self, monkeypatch):
        self._corrupting(monkeypatch)
        with Engine() as engine:
            engine.submit(_lcs_job())
            engine.submit(_lcs_job())
            results = engine.drain()
            assert all(not result.ok for result in results)
            assert all(
                result.error.startswith("compile-failed: ProgramVerificationError")
                for result in results
            )
            # The batch fails as a unit; nothing poisons the cache.
            assert len(engine.cache) == 0
            assert engine.cache.stats.compile_failures == 1
            assert engine.metrics.counter("verifier_rejections") == 1
            assert engine.metrics.counter("compile_failed_batches") == 1
            # A later drain re-attempts the compile (no stale entry).
            engine.submit(_lcs_job())
            retry = engine.drain()[0]
            assert not retry.ok
            assert engine.metrics.counter("verifier_rejections") == 2

    def test_verification_can_be_disabled(self, monkeypatch):
        self._corrupting(monkeypatch)
        with Engine(EngineConfig(verify_programs=False)) as engine:
            engine.submit(_lcs_job())
            engine.drain()
            # The corrupted program sails through into the cache and
            # computes garbage -- exactly what the default prevents.
            assert engine.metrics.counter("verifier_rejections") == 0
            assert len(engine.cache) == 1

    def test_clean_programs_unaffected(self):
        with Engine() as engine:
            engine.submit(_lcs_job())
            assert engine.drain()[0].ok
            assert engine.metrics.counter("verifier_rejections") == 0


class TestSentinels:
    def test_sentinel_counters_folded_into_metrics(self):
        # elide_sentinels=False forces observation even though LCS is
        # certified sentinel-free, exercising the fold path (and the
        # certificate soundness cross-check, which must stay silent).
        with Engine(
            EngineConfig(sentinels=True, elide_sentinels=False)
        ) as engine:
            engine.submit(_lcs_job())
            result = engine.drain()[0]
            assert result.ok
            # The marker never leaks into the user-visible value.
            assert "_sentinels" not in result.value
            counters = engine.metrics.sentinels()
            assert counters["sentinel_values_observed"] > 0
            assert counters["sentinel_int32_overflows"] == 0
            assert (
                engine.metrics.counter("static_certificate_violations") == 0
            )

    def test_certified_program_elides_observation_by_default(self):
        # LCS's certificate proves no armed hazard can fire, so the
        # default config skips the observe hook entirely.
        with Engine(EngineConfig(sentinels=True)) as engine:
            engine.submit(_lcs_job())
            assert engine.drain()[0].ok
            assert (
                engine.metrics.sentinels()["sentinel_values_observed"] == 0
            )
            assert engine.metrics.counter("static_sentinel_elisions") == 1
            assert engine.metrics.counter("static_programs_certified") == 1

    def test_sentinels_off_by_default(self):
        with Engine() as engine:
            engine.submit(_lcs_job())
            assert engine.drain()[0].ok
            assert engine.metrics.sentinels()["sentinel_values_observed"] == 0

    def test_results_identical_with_and_without_sentinels(self):
        with Engine() as engine:
            engine.submit(_lcs_job())
            plain = engine.drain()[0].value
        with Engine(EngineConfig(sentinels=True)) as engine:
            engine.submit(_lcs_job())
            watched = engine.drain()[0].value
        assert plain == watched
