"""Engine front door: queueing, backpressure, deadlines, metrics."""

import time

import pytest

from repro.engine import BackpressureError, Engine, EngineConfig, make_job
from repro.engine.jobs import JobValidationError


def _lcs_job(priority=0, deadline_s=None):
    return make_job(
        "lcs", {"x": "ACGTACGT", "y": "ACGGT"},
        priority=priority, deadline_s=deadline_s,
    )


class TestSubmission:
    def test_backpressure_when_queue_full(self):
        with Engine(EngineConfig(max_queue=2)) as engine:
            engine.submit(_lcs_job())
            engine.submit(_lcs_job())
            with pytest.raises(BackpressureError):
                engine.submit(_lcs_job())
            assert engine.metrics.counter("jobs_rejected") == 1
            # Draining frees the queue.
            assert len(engine.drain()) == 2
            engine.submit(_lcs_job())
            assert engine.queued == 1

    def test_submit_stamps_time(self):
        with Engine() as engine:
            stamped = engine.submit(_lcs_job())
            assert stamped.submitted_at > 0

    def test_invalid_jobs_rejected_at_creation(self):
        with pytest.raises(JobValidationError):
            make_job("nope", {})
        with pytest.raises(JobValidationError):
            make_job("lcs", {"x": "ACGT"})  # missing y
        with pytest.raises(JobValidationError):
            make_job("chain", {"anchors": [[1, 2]]})  # not [x, y, w]


class TestDrain:
    def test_empty_drain_is_a_noop(self):
        with Engine() as engine:
            assert engine.drain() == []

    def test_results_in_submission_order(self):
        with Engine() as engine:
            jobs = [
                _lcs_job(priority=0),
                _lcs_job(priority=9),
                _lcs_job(priority=3),
            ]
            engine.submit_many(jobs)
            results = engine.drain()
            assert [r.job_id for r in results] == [j.job_id for j in jobs]
            assert all(r.ok for r in results)
            assert all(r.value["length"] == 5 for r in results)

    def test_deadline_expired_jobs_fail_without_executing(self):
        with Engine() as engine:
            expired = engine.submit(_lcs_job(deadline_s=0.01))
            live = engine.submit(_lcs_job())
            time.sleep(0.05)
            results = {r.job_id: r for r in engine.drain()}
            assert not results[expired.job_id].ok
            assert results[expired.job_id].error == "deadline-expired"
            assert results[expired.job_id].batch_id is None
            assert results[live.job_id].ok
            assert engine.metrics.counter("jobs_expired") == 1

    def test_failed_job_does_not_poison_its_batch(self):
        with Engine() as engine:
            good = engine.submit(_lcs_job())
            bad = engine.submit(
                make_job("lcs", {"x": "ACGT", "y": "AC", "_inject_fail": True})
            )
            results = {r.job_id: r for r in engine.drain()}
            assert results[good.job_id].ok
            assert not results[bad.job_id].ok
            assert engine.metrics.counter("jobs_failed") == 1
            assert engine.metrics.counter("jobs_completed") == 1


class TestCacheAccounting:
    def test_one_compile_per_distinct_kernel(self):
        with Engine() as engine:
            for _ in range(4):
                engine.submit(_lcs_job())
            engine.drain()
            # Second drain: fully warm.
            for _ in range(4):
                engine.submit(_lcs_job())
            engine.drain()
            stats = engine.cache.stats
            assert stats.compiles == 1
            assert stats.misses == 1
            assert stats.hits == 7

    def test_results_carry_cache_hit_flags(self):
        with Engine() as engine:
            first = engine.submit(_lcs_job())
            second = engine.submit(_lcs_job())
            results = {r.job_id: r for r in engine.drain()}
            assert not results[first.job_id].cache_hit
            assert results[second.job_id].cache_hit


class TestMetrics:
    def test_snapshot_is_plain_data(self):
        import json

        with Engine() as engine:
            engine.submit(_lcs_job())
            engine.drain()
            snapshot = engine.snapshot()
        json.dumps(snapshot)  # must serialize without custom encoders
        assert snapshot["counters"]["jobs_submitted"] == 1
        assert snapshot["counters"]["batches_total"] == 1
        assert snapshot["counters"]["inline_batches"] == 1
        assert snapshot["cache"]["compiles"] == 1
        assert snapshot["histograms"]["queue_wait_s"]["count"] == 1
        assert snapshot["histograms"]["execute_s"]["count"] == 1
        assert snapshot["histograms"]["batch_occupancy"]["count"] == 1
        assert 0 < snapshot["derived"]["mean_batch_occupancy"] <= 1

    def test_timings_populated_per_result(self):
        with Engine() as engine:
            engine.submit(_lcs_job())
            result = engine.drain()[0]
            assert set(result.timings) == {
                "queue_wait_s", "compile_s", "execute_s",
            }
            assert result.backend == "inline"
            assert result.attempts == 1
