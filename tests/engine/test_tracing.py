"""End-to-end engine tracing: span lifecycle and correlation ids."""

from collections import Counter

from repro.engine import Engine, EngineConfig, make_job
from repro.obs.trace import TraceRecorder, validate_chrome_trace


def _lcs_job(**payload_extra):
    payload = {"x": "ACGT", "y": "AC"}
    payload.update(payload_extra)
    return make_job("lcs", payload)


def _span_names(tracer):
    return Counter(span.name for span in tracer.spans())


class TestLifecycleSpans:
    def test_inline_drain_covers_submit_to_drain(self):
        tracer = TraceRecorder()
        with Engine(EngineConfig(validate_fraction=1.0), tracer=tracer) as engine:
            jobs = engine.submit_many([_lcs_job() for _ in range(3)])
            results = engine.drain()
        assert all(result.ok for result in results)
        names = _span_names(tracer)
        assert names["job:submit"] == 3
        assert names["job:queue"] == 3
        assert names["batch:compile"] == 1
        assert names["batch:execute"] == 1
        assert names["job:run"] == 3
        assert names["job:validate"] == 3
        assert names["engine:drain"] == 1

        # Per-job ids line up across the lifecycle.
        submit_ids = {
            span.args["job_id"]
            for span in tracer.spans()
            if span.name == "job:submit"
        }
        run_ids = {
            span.args["job_id"]
            for span in tracer.spans()
            if span.name == "job:run"
        }
        assert submit_ids == run_ids == {job.job_id for job in jobs}

        # Worker spans carry the recorder's trace id.
        for span in tracer.spans():
            if span.name == "job:run":
                assert span.args["trace_id"] == tracer.trace_id
                assert span.args["in_pool"] is False

    def test_trace_exports_valid_chrome_json(self):
        tracer = TraceRecorder()
        with Engine(tracer=tracer) as engine:
            engine.submit(_lcs_job())
            engine.drain()
        document = tracer.to_chrome_trace()
        assert validate_chrome_trace(document) == []
        assert document["otherData"]["trace_id"] == tracer.trace_id

    def test_batch_ids_consistent_between_compile_and_execute(self):
        tracer = TraceRecorder()
        with Engine(tracer=tracer) as engine:
            engine.submit_many([_lcs_job() for _ in range(2)])
            engine.submit(make_job("bsw", {"query": "ACGT", "target": "ACG"}))
            engine.drain()
        compile_ids = [
            span.args["batch_id"]
            for span in tracer.spans()
            if span.name == "batch:compile"
        ]
        execute_ids = [
            span.args["batch_id"]
            for span in tracer.spans()
            if span.name == "batch:execute"
        ]
        assert len(compile_ids) == 2  # one per kernel batch
        assert sorted(compile_ids) == sorted(execute_ids)

    def test_compile_span_reports_cache_hits(self):
        tracer = TraceRecorder()
        with Engine(tracer=tracer) as engine:
            engine.submit(_lcs_job())
            engine.drain()
            engine.submit(_lcs_job())
            engine.drain()
        compiles = [
            span for span in tracer.spans() if span.name == "batch:compile"
        ]
        assert compiles[0].args["cache_misses"] == 1
        assert compiles[1].args["cache_hits"] == 1
        assert all(span.args["ok"] for span in compiles)


class TestEventMarkers:
    def test_expired_job_emits_event(self):
        tracer = TraceRecorder()
        with Engine(tracer=tracer) as engine:
            job = engine.submit(
                make_job("lcs", {"x": "ACGT", "y": "AC"}, deadline_s=0)
            )
            result = engine.drain()[0]
        assert not result.ok
        expired = [
            span for span in tracer.spans() if span.name == "job:expired"
        ]
        assert len(expired) == 1
        assert expired[0].args["job_id"] == job.job_id
        names = _span_names(tracer)
        assert names["job:run"] == 0  # never executed

    def test_quarantine_emits_event_and_reference_marker(self):
        tracer = TraceRecorder()
        with Engine(
            EngineConfig(validate_fraction=1.0), tracer=tracer
        ) as engine:
            engine.submit(_lcs_job(_inject_corrupt=True))
            engine.drain()
            engine.submit(_lcs_job())
            served = engine.drain()[0]
        assert served.backend == "reference"
        quarantined = [
            span
            for span in tracer.spans()
            if span.name == "kernel:quarantined"
        ]
        assert len(quarantined) == 1
        assert quarantined[0].args["kernel"] == "lcs"
        assert quarantined[0].args["reason"] == "validation-mismatch"
        assert _span_names(tracer)["job:reference"] == 1


class TestWorkerPropagation:
    def test_pool_workers_ship_spans_back(self):
        tracer = TraceRecorder()
        config = EngineConfig(workers=2)
        with Engine(config, tracer=tracer) as engine:
            engine.submit_many([_lcs_job() for _ in range(4)])
            results = engine.drain()
        assert all(result.ok for result in results)
        runs = [span for span in tracer.spans() if span.name == "job:run"]
        assert len(runs) == 4
        assert all(span.args["trace_id"] == tracer.trace_id for span in runs)
        # Result envelopes come back clean: the shipped spans are popped.
        for result in results:
            assert "_trace_spans" not in result.value

    def test_trace_payload_stamp_is_not_leaked(self):
        tracer = TraceRecorder()
        with Engine(tracer=tracer) as engine:
            job = engine.submit(_lcs_job())
            assert job.payload["_trace"]["trace_id"] == tracer.trace_id
            assert job.payload["_trace"]["job_id"] == job.job_id
            result = engine.drain()[0]
        assert result.ok
        assert "_trace" not in result.value


class TestNoTracer:
    def test_engine_without_tracer_adds_no_stamp(self):
        with Engine() as engine:
            job = engine.submit(_lcs_job())
            assert "_trace" not in job.payload
            result = engine.drain()[0]
        assert result.ok
        assert "_trace_spans" not in result.value
