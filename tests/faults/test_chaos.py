"""Chaos campaigns: the ISSUE's acceptance scenario plus config/report
plumbing.  The big campaign runs twice (determinism check), so this
module is the slowest engine test file by design."""

import json

import pytest

from repro.faults import CampaignReport, ChaosConfig, run_campaign
from repro.faults.chaos import DEFAULT_KERNELS, synthesize_stream


class TestChaosConfig:
    def test_defaults_are_valid(self):
        config = ChaosConfig()
        assert config.jobs == 200
        assert config.plan().enabled

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            ChaosConfig(jobs=0)
        with pytest.raises(ValueError):
            ChaosConfig(kernels=())
        with pytest.raises(ValueError):
            ChaosConfig(chunk_jobs=0)
        with pytest.raises(ValueError):
            ChaosConfig(replay_rounds=-1)

    def test_rejects_bad_rates_eagerly(self):
        # FaultPlan validation must fire at ChaosConfig construction,
        # not first use, so the CLI can turn it into a parser error.
        with pytest.raises(ValueError):
            ChaosConfig(crash_rate=1.5)
        with pytest.raises(ValueError):
            ChaosConfig(crash_rate=0.6, corrupt_rate=0.6)

    def test_hang_outlasts_the_batch_timeout_window(self):
        config = ChaosConfig(job_timeout_s=0.2, batch_capacity=4)
        assert config.plan().hang_delay_s > 0.2 * 4


class TestStream:
    def test_deterministic_and_round_robin(self):
        config = ChaosConfig(jobs=12, kernels=("lcs", "dtw"))
        stream = synthesize_stream(config)
        assert stream == synthesize_stream(config)
        assert [kernel for kernel, _ in stream[:4]] == ["lcs", "dtw"] * 2

    def test_covers_default_kernels(self):
        stream = synthesize_stream(ChaosConfig(jobs=8))
        assert {kernel for kernel, _ in stream} == set(DEFAULT_KERNELS)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            synthesize_stream(ChaosConfig(jobs=4, kernels=("nope",)))


class TestReport:
    def test_survival_criteria(self):
        report = CampaignReport(config={})
        assert report.survived
        assert not CampaignReport(config={}, lost=1).survived
        assert not CampaignReport(config={}, corruption_escapes=1).survived

    def test_degraded_fraction_guards_zero_batches(self):
        assert CampaignReport(config={}).degraded_fraction == 0.0

    def test_to_dict_is_json_able_and_render_reads(self):
        report = CampaignReport(
            config={"seed": 9}, submitted=10, envelopes=10, ok=9, failed=1,
            injected={"crash": 2}, failures_by_error={"injected": 1},
            quarantined=["bsw"], batches_total=4, degraded_batches=1,
        )
        json.dumps(report.to_dict())
        text = report.render()
        assert "SURVIVED" in text
        assert "crash=2" in text
        assert "bsw" in text


class TestCampaign:
    def test_inline_campaign_survives(self):
        # workers=0: crash/hang markers are inert (pool-only), so this
        # exercises corruption catching + compile faults + dead letters
        # on the always-available floor.
        config = ChaosConfig(jobs=24, seed=9, workers=0)
        report = run_campaign(config)
        assert report.survived
        assert report.lost == 0
        assert report.submitted == 24

    def test_acceptance_campaign_is_deterministic_and_survives(self):
        # The ISSUE's acceptance scenario: >= 200 jobs, crashes + hangs
        # + corruption + compile failures all drawn, 100% sampling,
        # zero lost jobs, zero escapes, byte-identical reports.
        config = ChaosConfig(jobs=200, seed=9)
        first = run_campaign(config)
        second = run_campaign(config)

        assert first.to_dict() == second.to_dict()
        assert first.survived
        assert first.lost == 0
        assert first.corruption_escapes == 0
        assert first.submitted == 200 and first.envelopes == 200
        # Seed 9 draws every fault class (chosen for exactly that).
        assert set(first.injected) == {"crash", "hang", "corrupt", "fail"}
        assert first.compile_failed_batches > 0
        # The guard caught corruptions before the audit did; once a
        # kernel is quarantined its later corrupt jobs run on the
        # reference path, where the marker is inert -- so mismatches
        # can undercount injections without any escape.
        assert first.validation_mismatches > 0
        assert first.validation_checked > 0
        assert len(first.quarantined) > 0
        # Dead letters were parked and replayed, none left behind.
        assert first.dead_letters > 0
        assert first.dead_letter_backlog == 0

    def test_burst_campaign_sheds_by_backpressure(self):
        config = ChaosConfig(jobs=96, seed=9, burst_every=2)
        first = run_campaign(config)
        second = run_campaign(config)
        assert first.to_dict() == second.to_dict()
        assert first.survived
        assert first.rejected > 0  # the burst overflow was shed, not lost
        assert first.submitted + first.rejected > 96
