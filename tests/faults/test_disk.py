"""DiskFaultPlan: seeded disk-fault schedules for the journal."""

import errno

import pytest

from repro.faults.disk import DISK_FAULT_KINDS, DiskFaultPlan, TornWriteError


class TestValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            DiskFaultPlan(torn_rate=1.5)
        with pytest.raises(ValueError):
            DiskFaultPlan(bitflip_rate=-0.1)
        with pytest.raises(ValueError):
            DiskFaultPlan(short_fsync_rate=2.0)

    def test_per_write_rates_cannot_exceed_one_combined(self):
        with pytest.raises(ValueError):
            DiskFaultPlan(torn_rate=0.6, bitflip_rate=0.6)

    def test_byte_budget_must_be_non_negative(self):
        with pytest.raises(ValueError):
            DiskFaultPlan(enospc_after_bytes=-1)

    def test_inert_plan_is_disabled(self):
        assert not DiskFaultPlan().enabled
        assert DiskFaultPlan(torn_rate=0.1).enabled
        assert DiskFaultPlan(enospc_after_bytes=100).enabled


class TestDeterminism:
    def test_schedule_is_a_pure_function_of_seed_and_index(self):
        a = DiskFaultPlan(seed=5, torn_rate=0.2, bitflip_rate=0.2)
        b = DiskFaultPlan(seed=5, torn_rate=0.2, bitflip_rate=0.2)
        assert [a.fault_for_write(i) for i in range(200)] == [
            b.fault_for_write(i) for i in range(200)
        ]

    def test_different_seeds_give_different_schedules(self):
        a = DiskFaultPlan(seed=1, torn_rate=0.3, bitflip_rate=0.3)
        b = DiskFaultPlan(seed=2, torn_rate=0.3, bitflip_rate=0.3)
        assert [a.fault_for_write(i) for i in range(200)] != [
            b.fault_for_write(i) for i in range(200)
        ]

    def test_rates_are_roughly_honoured(self):
        plan = DiskFaultPlan(seed=0, torn_rate=0.25, bitflip_rate=0.25)
        kinds = [plan.fault_for_write(i) for i in range(2000)]
        torn = kinds.count("torn") / len(kinds)
        flipped = kinds.count("bitflip") / len(kinds)
        assert 0.18 < torn < 0.32
        assert 0.18 < flipped < 0.32

    def test_kind_names_match_the_schema(self):
        plan = DiskFaultPlan(seed=0, torn_rate=0.5, bitflip_rate=0.5)
        kinds = {plan.fault_for_write(i) for i in range(100)}
        assert kinds <= set(DISK_FAULT_KINDS) | {None}


class TestTornWrites:
    def test_torn_length_is_strictly_shorter_than_the_frame(self):
        plan = DiskFaultPlan(seed=3, torn_rate=1.0)
        for index in range(100):
            for size in (2, 10, 64, 4096):
                assert 0 <= plan.torn_length(index, size) < size

    def test_single_byte_frames_tear_to_nothing(self):
        plan = DiskFaultPlan(seed=3, torn_rate=1.0)
        assert plan.torn_length(0, 1) == 0
        assert plan.torn_length(0, 0) == 0

    def test_torn_write_error_is_an_os_error(self):
        # Callers that tolerate write faults catch OSError once.
        assert issubclass(TornWriteError, OSError)


class TestBitFlips:
    def test_exactly_one_bit_differs(self):
        plan = DiskFaultPlan(seed=9, bitflip_rate=1.0)
        frame = bytes(range(64))
        for index in range(50):
            flipped = plan.flip(index, frame)
            assert len(flipped) == len(frame)
            diff = sum(
                bin(a ^ b).count("1") for a, b in zip(frame, flipped)
            )
            assert diff == 1

    def test_empty_frame_survives(self):
        plan = DiskFaultPlan(seed=9, bitflip_rate=1.0)
        assert plan.flip(0, b"") == b""


class TestSpaceAndSync:
    def test_enospc_fires_past_the_budget(self):
        plan = DiskFaultPlan(enospc_after_bytes=100)
        plan.check_space(0, 100)  # exactly at budget: fine
        with pytest.raises(OSError) as excinfo:
            plan.check_space(50, 51)
        assert excinfo.value.errno == errno.ENOSPC

    def test_zero_budget_never_fires(self):
        DiskFaultPlan().check_space(10**9, 10**9)

    def test_fsync_lies_deterministically(self):
        plan = DiskFaultPlan(seed=4, short_fsync_rate=0.5)
        lies = [plan.fsync_lies(i) for i in range(100)]
        assert lies == [plan.fsync_lies(i) for i in range(100)]
        assert any(lies) and not all(lies)

    def test_honest_plan_never_lies(self):
        plan = DiskFaultPlan(seed=4)
        assert not any(plan.fsync_lies(i) for i in range(100))
