"""FaultPlan: deterministic draws, payload decoration, validation."""

import pytest

from repro.faults import FAULT_KINDS, FaultPlan, InjectedCompileError
from repro.faults.plan import _unit


class TestUnitDraw:
    def test_pure_function_of_arguments(self):
        assert _unit(9, "job", 3) == _unit(9, "job", 3)
        assert _unit(9, "job", 3) != _unit(9, "job", 4)
        assert _unit(8, "job", 3) != _unit(9, "job", 3)

    def test_in_unit_interval(self):
        draws = [_unit(0, "job", i) for i in range(500)]
        assert all(0.0 <= d < 1.0 for d in draws)
        # Sanity: the draws actually spread out.
        assert min(draws) < 0.05 and max(draws) > 0.95


class TestValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            FaultPlan(crash_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(hang_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(compile_fail_rate=2.0)

    def test_per_job_rates_must_sum_below_one(self):
        with pytest.raises(ValueError):
            FaultPlan(crash_rate=0.5, hang_rate=0.3, corrupt_rate=0.3)
        # compile_fail_rate is per-attempt, not per-job: excluded from the sum.
        FaultPlan(crash_rate=0.5, fail_rate=0.5, compile_fail_rate=1.0)

    def test_shape_knobs_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(hang_delay_s=0)
        with pytest.raises(ValueError):
            FaultPlan(burst_every=-1)
        with pytest.raises(ValueError):
            FaultPlan(burst_factor=0)

    def test_enabled_flag(self):
        assert not FaultPlan().enabled
        assert FaultPlan(crash_rate=0.1).enabled
        assert FaultPlan(compile_fail_rate=0.1).enabled
        assert FaultPlan(burst_every=2).enabled


class TestPerJobFaults:
    def test_fault_for_is_deterministic(self):
        plan = FaultPlan(seed=9, crash_rate=0.2, hang_rate=0.2, fail_rate=0.2)
        clone = FaultPlan(seed=9, crash_rate=0.2, hang_rate=0.2, fail_rate=0.2)
        kinds = [plan.fault_for(i) for i in range(200)]
        assert kinds == [clone.fault_for(i) for i in range(200)]
        assert any(kinds)  # something fired at these rates

    def test_all_kinds_reachable(self):
        plan = FaultPlan(
            seed=0, crash_rate=0.25, hang_rate=0.25,
            corrupt_rate=0.25, fail_rate=0.25,
        )
        kinds = {plan.fault_for(i) for i in range(400)}
        assert kinds == set(FAULT_KINDS)

    def test_zero_rates_never_fault(self):
        plan = FaultPlan(seed=123)
        assert all(plan.fault_for(i) is None for i in range(100))

    def test_decorate_copies_and_marks(self):
        plan = FaultPlan(seed=0, crash_rate=1.0)
        original = {"x": "ACGT", "y": "AC"}
        decorated, kind = plan.decorate(0, original)
        assert kind == "crash"
        assert decorated is not original
        assert decorated["_inject_exit"] is True
        assert "_inject_exit" not in original

    def test_decorate_passthrough_when_clean(self):
        plan = FaultPlan(seed=0)
        payload = {"x": "ACGT", "y": "AC"}
        decorated, kind = plan.decorate(0, payload)
        assert kind is None
        assert decorated is payload  # no copy when nothing injected

    def test_decorate_markers_per_kind(self):
        markers = {
            "crash": "_inject_exit",
            "hang": "_inject_delay_s",
            "corrupt": "_inject_corrupt",
            "fail": "_inject_fail",
        }
        for kind, marker in markers.items():
            plan = FaultPlan(seed=0, hang_delay_s=3.5, **{f"{kind}_rate": 1.0})
            decorated, drawn = plan.decorate(7, {})
            assert drawn == kind
            assert marker in decorated
        assert FaultPlan(
            seed=0, hang_rate=1.0, hang_delay_s=3.5
        ).decorate(7, {})[0]["_inject_delay_s"] == 3.5


class TestCompileFaults:
    def test_rate_one_always_raises(self):
        plan = FaultPlan(compile_fail_rate=1.0)
        with pytest.raises(InjectedCompileError):
            plan.maybe_fail_compile("lcs", 1)

    def test_rate_zero_never_raises(self):
        FaultPlan().maybe_fail_compile("lcs", 1)

    def test_attempts_reroll_independently(self):
        plan = FaultPlan(seed=0, compile_fail_rate=0.5)
        verdicts = []
        for attempt in range(1, 30):
            try:
                plan.maybe_fail_compile("bsw", attempt)
                verdicts.append(True)
            except InjectedCompileError:
                verdicts.append(False)
        assert True in verdicts and False in verdicts


class TestBursts:
    def test_every_nth_chunk_bursts(self):
        plan = FaultPlan(burst_every=2, burst_factor=3)
        factors = [plan.burst_factor_for(i) for i in range(6)]
        assert factors == [1, 3, 1, 3, 1, 3]

    def test_disabled_by_default(self):
        plan = FaultPlan()
        assert all(plan.burst_factor_for(i) == 1 for i in range(4))
