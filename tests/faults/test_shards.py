"""ShardFaultPlan: seed-determinism, scheduling, rate validation."""

import pytest

from repro.faults import SHARD_FAULT_KINDS, ShardFaultPlan


class TestValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            ShardFaultPlan(kill_rate=1.5)
        with pytest.raises(ValueError):
            ShardFaultPlan(hang_rate=-0.1)

    def test_rates_must_sum_under_one(self):
        with pytest.raises(ValueError):
            ShardFaultPlan(kill_rate=0.5, hang_rate=0.4, partition_rate=0.3)

    def test_kill_pairs_validated(self):
        with pytest.raises(ValueError):
            ShardFaultPlan(kills=((0, 1),))  # rounds are 1-based
        with pytest.raises(ValueError):
            ShardFaultPlan(kills=((1, -1),))

    def test_enabled_reflects_any_fault_source(self):
        assert not ShardFaultPlan().enabled
        assert ShardFaultPlan(kills=((1, 0),)).enabled
        assert ShardFaultPlan(hang_rate=0.1).enabled


class TestScheduledKills:
    def test_scheduled_kill_fires_at_its_round(self):
        plan = ShardFaultPlan(kills=((3, 1),))
        assert plan.fault_for(1, 3) == "kill"
        assert plan.fault_for(1, 2) is None
        assert plan.fault_for(0, 3) is None

    def test_scheduled_kills_ignore_the_cap(self):
        plan = ShardFaultPlan(kills=((2, 0), (3, 1)), max_kills=0)
        assert plan.fault_for(0, 2, kills_so_far=99) == "kill"
        assert plan.fault_for(1, 3, kills_so_far=99) == "kill"


class TestDraws:
    def test_draws_are_deterministic(self):
        plan = ShardFaultPlan(
            seed=5, kill_rate=0.1, hang_rate=0.2, partition_rate=0.2
        )
        schedule = [
            plan.fault_for(shard, rnd)
            for shard in range(8)
            for rnd in range(1, 20)
        ]
        again = [
            plan.fault_for(shard, rnd)
            for shard in range(8)
            for rnd in range(1, 20)
        ]
        assert schedule == again
        assert any(kind is not None for kind in schedule)

    def test_seed_changes_the_schedule(self):
        kwargs = dict(kill_rate=0.1, hang_rate=0.2, partition_rate=0.2)
        a = ShardFaultPlan(seed=1, **kwargs)
        b = ShardFaultPlan(seed=2, **kwargs)
        schedule_a = [a.fault_for(s, r) for s in range(8) for r in range(1, 20)]
        schedule_b = [b.fault_for(s, r) for s in range(8) for r in range(1, 20)]
        assert schedule_a != schedule_b

    def test_kill_cap_suppresses_only_kills(self):
        plan = ShardFaultPlan(seed=3, kill_rate=1.0, max_kills=1)
        assert plan.fault_for(0, 1, kills_so_far=0) == "kill"
        assert plan.fault_for(0, 1, kills_so_far=1) is None

    def test_rates_approximate_frequencies(self):
        plan = ShardFaultPlan(seed=7, hang_rate=0.5)
        draws = [plan.fault_for(s, r) for s in range(20) for r in range(1, 51)]
        hangs = sum(1 for kind in draws if kind == "hang")
        assert 0.4 <= hangs / len(draws) <= 0.6

    def test_kinds_are_the_documented_set(self):
        assert SHARD_FAULT_KINDS == ("kill", "hang", "partition")
