"""Campaign determinism, checkpointing, and exact resume."""

import json
import os

from repro.guard.campaign import (
    GuardConfig,
    KernelOutcome,
    load_checkpoint,
    run_guard_campaign,
    save_checkpoint,
)

#: A fast two-kernel config for checkpoint mechanics.
SMALL = GuardConfig(seed=3, jobs_per_kernel=4, kernels=("dtw", "bellman_ford"))


class TestDeterminism:
    def test_same_config_serializes_byte_identical(self):
        first = run_guard_campaign(SMALL)
        second = run_guard_campaign(SMALL)
        assert first.to_json() == second.to_json()
        assert first.clean and first.total_cases == 8

    def test_render_mentions_verdict(self):
        report = run_guard_campaign(SMALL)
        assert "CLEAN" in report.render()

    def test_different_seed_differs(self):
        other = GuardConfig(seed=4, jobs_per_kernel=4, kernels=SMALL.kernels)
        assert run_guard_campaign(SMALL).to_json() != run_guard_campaign(other).to_json()


class TestCheckpointResume:
    def test_interrupted_campaign_resumes_to_identical_report(self, tmp_path):
        path = str(tmp_path / "ck.json")
        baseline = run_guard_campaign(SMALL)
        # Simulate an interruption: stop after 3 of 8 cases.
        partial = run_guard_campaign(SMALL, checkpoint_path=path, max_cases=3)
        assert partial.total_cases == 3
        resumed = run_guard_campaign(SMALL, checkpoint_path=path)
        assert resumed.resumed
        assert resumed.to_json() == baseline.to_json()

    def test_resume_at_kernel_boundary(self, tmp_path):
        path = str(tmp_path / "ck.json")
        baseline = run_guard_campaign(SMALL)
        # Exactly the first kernel's cases: the second kernel must stay
        # untouched in the checkpoint (verify/probes not yet run).
        run_guard_campaign(SMALL, checkpoint_path=path, max_cases=4)
        state = json.load(open(path))
        by_kernel = {entry["kernel"]: entry for entry in state["kernels"]}
        assert by_kernel["dtw"]["cases_run"] == 4
        assert by_kernel["bellman_ford"]["cases_run"] == 0
        resumed = run_guard_campaign(SMALL, checkpoint_path=path)
        assert resumed.to_json() == baseline.to_json()

    def test_mismatched_config_starts_fresh(self, tmp_path):
        path = str(tmp_path / "ck.json")
        run_guard_campaign(SMALL, checkpoint_path=path, max_cases=3)
        other = GuardConfig(seed=99, jobs_per_kernel=4, kernels=SMALL.kernels)
        assert load_checkpoint(path, other) is None
        report = run_guard_campaign(other, checkpoint_path=path)
        assert not report.resumed
        assert report.total_cases == 8

    def test_corrupted_checkpoint_ignored(self, tmp_path):
        path = str(tmp_path / "ck.json")
        with open(path, "w") as handle:
            handle.write("{not json")
        assert load_checkpoint(path, SMALL) is None
        report = run_guard_campaign(SMALL, checkpoint_path=path)
        assert not report.resumed and report.clean

    def test_checkpoint_write_is_atomic(self, tmp_path):
        path = str(tmp_path / "ck.json")
        outcomes = [KernelOutcome(kernel="dtw")]
        save_checkpoint(path, SMALL, outcomes)
        assert not os.path.exists(path + ".tmp")
        loaded = load_checkpoint(path, SMALL)
        assert loaded is not None and loaded[0].kernel == "dtw"
