"""Differential harness: clean kernels agree; corrupted codegen is
caught, shrunk, and serialized as a minimal reproducer."""

import dataclasses
import json

import pytest

from repro.dfg.graph import Opcode
from repro.dpmap.codegen import compile_cell, verify_program
from repro.guard import diff
from repro.guard.diff import (
    DIFF_KERNELS,
    KernelPrograms,
    compile_kernel_programs,
    dfg_from_dict,
    dfg_to_dict,
    generate_payload,
    payload_size,
    probe_cell,
    restrict_outputs,
    run_case,
    shrink_mismatch,
    shrink_payload,
)
from repro.guard.sentinels import make_sentinel
from repro.isa.compute import SlotOp

#: Semantics-changing, structure-preserving opcode flips (the model of
#: a codegen bug: a legal program computing the wrong function).
_FLIP = {
    Opcode.ADD: Opcode.SUB,
    Opcode.SUB: Opcode.ADD,
    Opcode.MIN: Opcode.MAX,
    Opcode.MAX: Opcode.MIN,
}


def _flip_first_op(instructions):
    """Instructions with the first flippable ALU opcode swapped."""
    out = list(instructions)
    for i, bundle in enumerate(out):
        for way_attr in ("cu0", "cu1"):
            way = getattr(bundle, way_attr)
            if way is None:
                continue
            if way.root in _FLIP:
                new_way = dataclasses.replace(way, root=_FLIP[way.root])
                out[i] = dataclasses.replace(bundle, **{way_attr: new_way})
                return out
            for slot_attr in ("left", "right", "mul"):
                slot = getattr(way, slot_attr)
                if slot is not None and slot.opcode in _FLIP:
                    new_way = dataclasses.replace(
                        way, **{slot_attr: SlotOp(_FLIP[slot.opcode], slot.operands)}
                    )
                    out[i] = dataclasses.replace(bundle, **{way_attr: new_way})
                    return out
    raise AssertionError("no flippable opcode found")


def _corrupt_cell(program):
    return dataclasses.replace(
        program, instructions=_flip_first_op(program.instructions)
    )


class TestPayloadGeneration:
    def test_pure_in_seed_and_index(self):
        for kernel in DIFF_KERNELS:
            assert generate_payload(kernel, 7, 3) == generate_payload(kernel, 7, 3)
            assert generate_payload(kernel, 7, 3) != generate_payload(kernel, 8, 3)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            generate_payload("nope", 0, 0)


class TestCleanDifferential:
    @pytest.mark.parametrize("kernel", DIFF_KERNELS)
    def test_compiled_matches_reference(self, kernel):
        programs = compile_kernel_programs(kernel)
        sentinel = make_sentinel(kernel)
        for index in range(3):
            payload = generate_payload(kernel, 11, index)
            outcome = run_case(kernel, payload, programs, sentinel)
            assert outcome.ok, (kernel, index, outcome.expected, outcome.actual)

    @pytest.mark.parametrize("kernel", DIFF_KERNELS)
    def test_clean_cell_probes(self, kernel):
        programs = compile_kernel_programs(kernel)
        for _, program in programs.probe_targets():
            assert probe_cell(kernel, program, 11, 0) is None


class TestCorruptedCodegen:
    def test_mismatch_detected_and_payload_shrunk(self):
        clean = compile_kernel_programs("dtw")
        corrupted = KernelPrograms(
            kernel="dtw",
            compiled=dataclasses.replace(
                clean.compiled,
                instructions=tuple(_flip_first_op(clean.compiled.instructions)),
            ),
            cells=clean.cells,
        )
        payload = generate_payload("dtw", 7, 0)
        assert not run_case("dtw", payload, corrupted).ok

        reproducer = shrink_mismatch("dtw", 7, 0, payload, corrupted)
        assert reproducer.kind == "payload"
        # Minimal and still failing: the reproducer replays standalone.
        assert payload_size("dtw", reproducer.payload) <= payload_size("dtw", payload)
        assert not run_case("dtw", reproducer.payload, corrupted).ok
        assert run_case("dtw", reproducer.payload, clean).ok
        # Serializes to self-contained JSON with both answers.
        record = json.loads(reproducer.to_json())
        assert record["kernel"] == "dtw"
        assert record["expected"] != record["actual"]

    def test_cell_probe_shrinks_to_minimal_dfg(self, monkeypatch):
        clean_cell = compile_kernel_programs("dtw").cells["cell"]

        # Model a deterministic compiler bug: every compile_cell the
        # harness performs emits the flipped program.
        def buggy_compile(dfg):
            return _corrupt_cell(compile_cell(dfg))

        monkeypatch.setattr(diff, "compile_cell", buggy_compile)
        reproducer = probe_cell("dtw", _corrupt_cell(clean_cell), 7, 0)
        assert reproducer is not None and reproducer.kind == "cell"
        assert reproducer.expected != reproducer.actual
        # The shrunk DFG is no bigger than the kernel's, and the case
        # replays from JSON alone: the buggy compiler still fails it...
        dfg = dfg_from_dict(reproducer.dfg)
        assert len(dfg.nodes) <= len(clean_cell.mapping.dfg.nodes)
        assert not verify_program(buggy_compile(dfg), reproducer.inputs)
        # ...and the real compiler passes it.
        assert verify_program(compile_cell(dfg), reproducer.inputs)


class TestShrinkers:
    def test_payload_shrink_is_greedy_and_monotone(self):
        payload = generate_payload("bsw", 7, 5)
        payload["query"] += "GG"

        def still_fails(candidate):
            return "GG" in candidate["query"]

        shrunk = shrink_payload("bsw", payload, still_fails)
        assert still_fails(shrunk)
        assert payload_size("bsw", shrunk) <= payload_size("bsw", payload)
        assert shrunk["query"] == "GG"  # fully minimized for this predicate

    def test_shrink_ignores_raising_candidates(self):
        payload = {"query": "ACGT", "target": "ACGT"}

        def touchy(candidate):
            if len(candidate["query"]) < 2:
                raise RuntimeError("boom")
            return True

        shrunk = shrink_payload("bsw", payload, touchy)
        assert len(shrunk["query"]) >= 2


class TestDFGSerialization:
    @pytest.mark.parametrize("kernel", DIFF_KERNELS)
    def test_roundtrip_preserves_structure(self, kernel):
        for _, program in compile_kernel_programs(kernel).probe_targets():
            dfg = program.mapping.dfg
            clone = dfg_from_dict(dfg_to_dict(dfg))
            assert clone.content_hash() == dfg.content_hash()

    def test_restrict_outputs_preserves_cone_semantics(self):
        from repro.dfg.kernels import bellman_ford_dfg

        dfg = bellman_ford_dfg()
        cone = restrict_outputs(dfg, ["dist"])
        assert len(cone.nodes) < len(dfg.nodes)
        inputs = {name: 3 for name in dfg.inputs}
        cone_inputs = {name: 3 for name in cone.inputs}
        assert cone.evaluate(cone_inputs)["dist"] == dfg.evaluate(inputs)["dist"]
