"""Numerical sentinels: hazard counting and kernel arming."""

from repro.guard.sentinels import (
    PAIRHMM_UNDERFLOW_FLOOR,
    SENTINEL_FIELDS,
    Sentinel,
    make_sentinel,
)


class TestObservation:
    def test_int32_overflow_counted(self):
        sentinel = Sentinel()
        sentinel.observe((1 << 31) - 1)  # exactly on the rail: fine
        sentinel.observe(1 << 31)  # one past: overflow
        sentinel.observe(-(1 << 31))  # exactly the min rail: fine
        sentinel.observe(-(1 << 31) - 1)
        assert sentinel.values_observed == 4
        assert sentinel.int32_overflows == 2
        assert sentinel.triggered

    def test_lane_saturation_counted(self):
        sentinel = Sentinel(lane_bits=8)
        sentinel.observe(127)
        sentinel.observe(128)
        sentinel.observe(-128)
        sentinel.observe(-129)
        assert sentinel.lane_saturations == 2
        assert sentinel.int32_overflows == 0

    def test_underflow_counted_at_floor(self):
        sentinel = Sentinel(underflow_floor=PAIRHMM_UNDERFLOW_FLOOR)
        sentinel.observe(PAIRHMM_UNDERFLOW_FLOOR + 1)
        sentinel.observe(PAIRHMM_UNDERFLOW_FLOOR)  # at the floor counts
        sentinel.observe(PAIRHMM_UNDERFLOW_FLOOR - 5)
        assert sentinel.underflows == 2

    def test_untriggered_by_default(self):
        sentinel = Sentinel()
        sentinel.observe(42)
        assert not sentinel.triggered


class TestSnapshotMerge:
    def test_snapshot_schema_is_stable(self):
        assert tuple(Sentinel().snapshot()) == SENTINEL_FIELDS

    def test_merge_adds_counts(self):
        a, b = Sentinel(), Sentinel()
        a.observe(1 << 40)
        b.observe(1 << 40)
        b.observe(0)
        a.merge(b.snapshot())
        assert a.values_observed == 3
        assert a.int32_overflows == 2


class TestKernelArming:
    def test_bsw_watches_lanes(self):
        assert make_sentinel("bsw").lane_bits == 8

    def test_pairhmm_watches_underflow(self):
        assert make_sentinel("pairhmm").underflow_floor == PAIRHMM_UNDERFLOW_FLOOR

    def test_others_scalar_only(self):
        sentinel = make_sentinel("dtw")
        assert sentinel.lane_bits is None and sentinel.underflow_floor is None
