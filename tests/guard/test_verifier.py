"""Static verifier: clean programs pass, corrupted programs are caught."""

import dataclasses

import pytest

from repro.dfg.graph import Opcode
from repro.dpmap.codegen import compile_cell
from repro.engine.cache import compile_program
from repro.engine.runners import build_dfg
from repro.guard.diff import DIFF_KERNELS, compile_kernel_programs
from repro.guard.verifier import (
    MachineLimits,
    ProgramVerificationError,
    check_control_program,
    check_instructions,
    check_program,
)
from repro.isa.compute import Imm, Reg, SlotOp
from repro.isa.control import ControlOp, Loc, Space, branch, li, mv, set_unit


def _rules(result):
    return {violation.rule for violation in result.violations}


class TestCleanPrograms:
    def test_every_kernel_program_verifies(self):
        for kernel in DIFF_KERNELS:
            for name, program in compile_kernel_programs(kernel).verifiable():
                result = check_program(program, name=name)
                assert result.ok, [str(v) for v in result.violations]

    def test_compiled_engine_payload_verifies(self):
        compiled = compile_program("bsw", 2, build_dfg("bsw"))
        assert check_program(compiled).ok

    def test_result_is_truthy_when_clean(self):
        result = check_program(compile_cell(build_dfg("dtw")))
        assert result and result.ok
        result.raise_if_violations()  # no-op when clean


class TestCorruptedPrograms:
    def test_out_of_range_input_register(self):
        program = compile_cell(build_dfg("bsw"))
        program.input_regs[next(iter(program.input_regs))] = 4096
        result = check_program(program)
        assert not result.ok
        assert "rf-input-out-of-range" in _rules(result)

    def test_mutated_opcode_breaks_arity(self):
        program = compile_cell(build_dfg("dtw"))
        bundle = program.instructions[0]
        way = bundle.ways[0]
        slot = way.left if way.left is not None else way.right
        # Swap the slot's opcode for one of a different arity, keeping
        # the operands -- the classic bit-flipped-opcode corruption.
        wrong = Opcode.COPY if len(slot.operands) != 1 else Opcode.ADD
        corrupt_way = dataclasses.replace(
            way, left=SlotOp(wrong, slot.operands), right=None, root=None
        )
        program.instructions[0] = dataclasses.replace(bundle, cu0=corrupt_way, cu1=None)
        result = check_program(program)
        assert not result.ok
        assert "arity-mismatch" in _rules(result)

    def test_mul_smuggled_into_tree_slot(self):
        program = compile_cell(build_dfg("dtw"))
        bundle = program.instructions[0]
        way = bundle.ways[0]
        corrupt_way = dataclasses.replace(
            way,
            left=SlotOp(Opcode.MUL, (Reg(0), Reg(1))),
            right=None,
            root=None,
        )
        program.instructions[0] = dataclasses.replace(bundle, cu0=corrupt_way, cu1=None)
        result = check_program(program)
        assert "mul-in-tree-slot" in _rules(result)

    def test_read_before_write(self):
        program = compile_cell(build_dfg("dtw"))
        bundle = program.instructions[0]
        way = bundle.ways[0]
        # Reference a register no input and no earlier bundle defines.
        corrupt_way = dataclasses.replace(
            way, left=SlotOp(Opcode.ADD, (Reg(60), Reg(61))), right=None, root=None
        )
        program.instructions[0] = dataclasses.replace(bundle, cu0=corrupt_way, cu1=None)
        result = check_program(program)
        assert "read-before-write" in _rules(result)

    def test_immediate_outside_rails(self):
        program = compile_cell(build_dfg("dtw"))
        bundle = program.instructions[0]
        way = bundle.ways[0]
        input_reg = next(iter(program.input_regs.values()))
        corrupt_way = dataclasses.replace(
            way,
            left=SlotOp(Opcode.ADD, (Reg(input_reg), Imm(1 << 40))),
            right=None,
            root=None,
        )
        program.instructions[0] = dataclasses.replace(bundle, cu0=corrupt_way, cu1=None)
        result = check_program(program)
        assert "immediate-out-of-range" in _rules(result)

    def test_raise_if_violations_is_structured(self):
        program = compile_cell(build_dfg("bsw"))
        program.input_regs[next(iter(program.input_regs))] = 4096
        result = check_program(program, name="bsw")
        with pytest.raises(ProgramVerificationError) as excinfo:
            result.raise_if_violations()
        error = excinfo.value
        assert error.violations  # structured records, not a bare string
        record = error.violations[0].to_dict()
        assert record["rule"] == "rf-input-out-of-range"
        assert "bsw" in str(error)

    def test_simd_lane_tightens_immediate_rails(self):
        from repro.isa.compute import CUInstruction, VLIWInstruction

        bundle = VLIWInstruction(
            cu0=CUInstruction(
                kind="tree",
                dest=Reg(1),
                left=SlotOp(Opcode.ADD, (Reg(0), Imm(1 << 20))),
            )
        )
        # Fine at full scalar width, out of rails per 8-bit lane.
        assert not check_instructions([bundle], {"x": 0}, {"y": 1})
        lanes = MachineLimits(simd_lanes=4)
        violations = check_instructions([bundle], {"x": 0}, {"y": 1}, limits=lanes)
        assert any(v.rule == "immediate-out-of-range" for v in violations)


class TestCheckInstructions:
    def test_output_never_written(self):
        program = compile_cell(build_dfg("dtw"))
        violations = check_instructions(
            program.instructions,
            program.input_regs,
            dict(program.output_regs, phantom=63),
        )
        assert any(v.rule == "output-never-written" for v in violations)


class TestControlPrograms:
    def test_clean_control_program(self):
        instructions = [
            li(Loc(Space.ADDR, 0), 0),
            mv(Loc(Space.REG, 3), Loc(Space.SPM, 10)),
            mv(Loc(Space.OUT), Loc(Space.REG, 3)),
            branch(ControlOp.BNE, 0, 1, -2),
            set_unit(0, 4),
        ]
        assert not check_control_program(instructions, compute_length=8)

    def test_spm_and_rf_bounds(self):
        instructions = [mv(Loc(Space.REG, 999), Loc(Space.SPM, 99999))]
        rules = {v.rule for v in check_control_program(instructions)}
        assert "rf-bound" in rules and "spm-bound" in rules

    def test_port_direction(self):
        instructions = [
            mv(Loc(Space.IN), Loc(Space.REG, 0)),  # IN is read-only
            mv(Loc(Space.REG, 0), Loc(Space.OUT)),  # OUT is write-only
        ]
        rules = {v.rule for v in check_control_program(instructions)}
        assert rules == {"port-direction"}

    def test_branch_and_set_ranges(self):
        instructions = [
            branch(ControlOp.BEQ, 0, 1, 99),  # jumps past the end
            set_unit(6, 4),  # 6..9 exceeds an 8-bundle program
        ]
        rules = {v.rule for v in check_control_program(instructions, compute_length=8)}
        assert "branch-out-of-range" in rules
        assert "set-range-out-of-range" in rules

    def test_address_register_bounds(self):
        instructions = [li(Loc(Space.ADDR, 99), 0)]
        rules = {v.rule for v in check_control_program(instructions)}
        assert "address-register-out-of-range" in rules
