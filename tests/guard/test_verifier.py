"""Static verifier: clean programs pass, corrupted programs are caught."""

import dataclasses

import pytest

from repro.dfg.graph import Opcode
from repro.diagnostics import Severity
from repro.dpmap.codegen import compile_cell
from repro.engine.cache import compile_program
from repro.engine.runners import build_dfg
from repro.guard.diff import DIFF_KERNELS, compile_kernel_programs
from repro.guard.verifier import (
    MachineLimits,
    ProgramVerificationError,
    check_control_program,
    check_instructions,
    check_program,
)
from repro.isa.compute import CUInstruction, Imm, Reg, SlotOp, VLIWInstruction
from repro.isa.control import (
    ControlOp,
    Loc,
    Space,
    addi,
    areg,
    branch,
    li,
    mv,
    set_unit,
    spm,
)


def _rules(result):
    return {violation.rule for violation in result.violations}


class TestCleanPrograms:
    def test_every_kernel_program_verifies(self):
        for kernel in DIFF_KERNELS:
            for name, program in compile_kernel_programs(kernel).verifiable():
                result = check_program(program, name=name)
                assert result.ok, [str(v) for v in result.violations]

    def test_compiled_engine_payload_verifies(self):
        compiled = compile_program("bsw", 2, build_dfg("bsw"))
        assert check_program(compiled).ok

    def test_result_is_truthy_when_clean(self):
        result = check_program(compile_cell(build_dfg("dtw")))
        assert result and result.ok
        result.raise_if_violations()  # no-op when clean


class TestCorruptedPrograms:
    def test_out_of_range_input_register(self):
        program = compile_cell(build_dfg("bsw"))
        program.input_regs[next(iter(program.input_regs))] = 4096
        result = check_program(program)
        assert not result.ok
        assert "rf-input-out-of-range" in _rules(result)

    def test_mutated_opcode_breaks_arity(self):
        program = compile_cell(build_dfg("dtw"))
        bundle = program.instructions[0]
        way = bundle.ways[0]
        slot = way.left if way.left is not None else way.right
        # Swap the slot's opcode for one of a different arity, keeping
        # the operands -- the classic bit-flipped-opcode corruption.
        wrong = Opcode.COPY if len(slot.operands) != 1 else Opcode.ADD
        corrupt_way = dataclasses.replace(
            way, left=SlotOp(wrong, slot.operands), right=None, root=None
        )
        program.instructions[0] = dataclasses.replace(bundle, cu0=corrupt_way, cu1=None)
        result = check_program(program)
        assert not result.ok
        assert "arity-mismatch" in _rules(result)

    def test_mul_smuggled_into_tree_slot(self):
        program = compile_cell(build_dfg("dtw"))
        bundle = program.instructions[0]
        way = bundle.ways[0]
        corrupt_way = dataclasses.replace(
            way,
            left=SlotOp(Opcode.MUL, (Reg(0), Reg(1))),
            right=None,
            root=None,
        )
        program.instructions[0] = dataclasses.replace(bundle, cu0=corrupt_way, cu1=None)
        result = check_program(program)
        assert "mul-in-tree-slot" in _rules(result)

    def test_read_before_write(self):
        program = compile_cell(build_dfg("dtw"))
        bundle = program.instructions[0]
        way = bundle.ways[0]
        # Reference a register no input and no earlier bundle defines.
        corrupt_way = dataclasses.replace(
            way, left=SlotOp(Opcode.ADD, (Reg(60), Reg(61))), right=None, root=None
        )
        program.instructions[0] = dataclasses.replace(bundle, cu0=corrupt_way, cu1=None)
        result = check_program(program)
        assert "read-before-write" in _rules(result)

    def test_immediate_outside_rails(self):
        program = compile_cell(build_dfg("dtw"))
        bundle = program.instructions[0]
        way = bundle.ways[0]
        input_reg = next(iter(program.input_regs.values()))
        corrupt_way = dataclasses.replace(
            way,
            left=SlotOp(Opcode.ADD, (Reg(input_reg), Imm(1 << 40))),
            right=None,
            root=None,
        )
        program.instructions[0] = dataclasses.replace(bundle, cu0=corrupt_way, cu1=None)
        result = check_program(program)
        assert "immediate-out-of-range" in _rules(result)

    def test_raise_if_violations_is_structured(self):
        program = compile_cell(build_dfg("bsw"))
        program.input_regs[next(iter(program.input_regs))] = 4096
        result = check_program(program, name="bsw")
        with pytest.raises(ProgramVerificationError) as excinfo:
            result.raise_if_violations()
        error = excinfo.value
        assert error.violations  # structured records, not a bare string
        record = error.violations[0].to_dict()
        assert record["rule"] == "rf-input-out-of-range"
        assert "bsw" in str(error)

    def test_simd_lane_tightens_immediate_rails(self):
        from repro.isa.compute import CUInstruction, VLIWInstruction

        bundle = VLIWInstruction(
            cu0=CUInstruction(
                kind="tree",
                dest=Reg(1),
                left=SlotOp(Opcode.ADD, (Reg(0), Imm(1 << 20))),
            )
        )
        # Fine at full scalar width, out of rails per 8-bit lane.
        assert not check_instructions([bundle], {"x": 0}, {"y": 1})
        lanes = MachineLimits(simd_lanes=4)
        violations = check_instructions([bundle], {"x": 0}, {"y": 1}, limits=lanes)
        assert any(v.rule == "immediate-out-of-range" for v in violations)


class TestCheckInstructions:
    def test_output_never_written(self):
        program = compile_cell(build_dfg("dtw"))
        violations = check_instructions(
            program.instructions,
            program.input_regs,
            dict(program.output_regs, phantom=63),
        )
        assert any(v.rule == "output-never-written" for v in violations)


class TestControlPrograms:
    def test_clean_control_program(self):
        instructions = [
            li(Loc(Space.ADDR, 0), 0),
            mv(Loc(Space.REG, 3), Loc(Space.SPM, 10)),
            mv(Loc(Space.OUT), Loc(Space.REG, 3)),
            branch(ControlOp.BNE, 0, 1, -2),
            set_unit(0, 4),
        ]
        assert not check_control_program(instructions, compute_length=8)

    def test_spm_and_rf_bounds(self):
        instructions = [mv(Loc(Space.REG, 999), Loc(Space.SPM, 99999))]
        rules = {v.rule for v in check_control_program(instructions)}
        assert "rf-bound" in rules and "spm-bound" in rules

    def test_port_direction(self):
        instructions = [
            mv(Loc(Space.IN), Loc(Space.REG, 0)),  # IN is read-only
            mv(Loc(Space.REG, 0), Loc(Space.OUT)),  # OUT is write-only
        ]
        rules = {v.rule for v in check_control_program(instructions)}
        assert rules == {"port-direction"}

    def test_branch_and_set_ranges(self):
        instructions = [
            branch(ControlOp.BEQ, 0, 1, 99),  # jumps past the end
            set_unit(6, 4),  # 6..9 exceeds an 8-bundle program
        ]
        rules = {v.rule for v in check_control_program(instructions, compute_length=8)}
        assert "branch-out-of-range" in rules
        assert "set-range-out-of-range" in rules

    def test_address_register_bounds(self):
        instructions = [li(Loc(Space.ADDR, 99), 0)]
        rules = {v.rule for v in check_control_program(instructions)}
        assert "address-register-out-of-range" in rules


class TestComputedSpmOffsets:
    """The interval extension: indirect accesses the direct checks miss."""

    def test_indirect_write_past_scratchpad_is_error(self):
        # a0 = spm_size (one past the end), then write s[a0]: every
        # reachable address is out of bounds, but the direct `spm-bound`
        # check sees only the areg *name* and stays silent.
        instructions = [
            li(areg(0), 4096),
            mv(spm(0, indirect=True), Loc(Space.REG, 0)),
        ]
        violations = check_control_program(instructions)
        rules = {v.rule for v in violations}
        assert "spm-indirect-out-of-bounds" in rules
        assert all(v.severity == Severity.ERROR for v in violations)

    def test_indirect_read_of_unwritten_window_warns(self):
        # Reads s[a0] with a0 = 100 while the only write lands at s0.
        instructions = [
            li(areg(0), 100),
            li(spm(0), 7),
            mv(Loc(Space.REG, 1), spm(0, indirect=True)),
        ]
        violations = check_control_program(instructions)
        assert any(
            v.rule == "spm-read-before-write"
            and v.severity == Severity.WARNING
            for v in violations
        )

    def test_indirect_loop_within_bounds_is_clean(self):
        # A scripted loop walking s[a0] over a window it also writes.
        instructions = [
            li(areg(0), 0),
            li(areg(1), 8),
            li(spm(0, indirect=True), 0),
            mv(Loc(Space.REG, 2), spm(0, indirect=True)),
            addi(0, 0, 1),
            branch(ControlOp.BNE, 0, 1, -3),
        ]
        assert not check_control_program(instructions)


class TestSimdLaneDefinedness:
    """Sub-lane read-before-write: SHR16 sign smear is not lane data."""

    @staticmethod
    def _bundle(way):
        return VLIWInstruction(cu0=way)

    def test_lane_wise_read_of_shr16_smear_is_flagged(self):
        unpack = CUInstruction(
            kind="tree",
            dest=Reg(2),
            left=SlotOp(Opcode.SHR16, (Reg(0),)),
        )
        consume = CUInstruction(
            kind="tree",
            dest=Reg(3),
            left=SlotOp(Opcode.ADD, (Reg(2), Imm(1))),
        )
        bundles = [self._bundle(unpack), self._bundle(consume)]
        # Scalar mode: whole-register tracking sees r2 written -- clean.
        assert not check_instructions(bundles, {"x": 0}, {"y": 3})
        lanes = MachineLimits(simd_lanes=4)
        violations = check_instructions(bundles, {"x": 0}, {"y": 3}, limits=lanes)
        flagged = [v for v in violations if v.rule == "simd-lane-undefined"]
        assert flagged and flagged[0].bundle == 1

    def test_pack_after_unpack_restores_all_lanes(self):
        # SHL16(SHR16(x)) repacks the surviving half over defined zeros:
        # every lane of r3 is defined again, so the consumer is clean.
        unpack = CUInstruction(
            kind="tree",
            dest=Reg(2),
            left=SlotOp(Opcode.SHR16, (Reg(0),)),
        )
        repack = CUInstruction(
            kind="tree",
            dest=Reg(3),
            left=SlotOp(Opcode.SHL16, (Reg(2),)),
        )
        consume = CUInstruction(
            kind="tree",
            dest=Reg(4),
            left=SlotOp(Opcode.ADD, (Reg(3), Imm(1))),
        )
        bundles = [self._bundle(w) for w in (unpack, repack, consume)]
        lanes = MachineLimits(simd_lanes=4)
        assert not check_instructions(bundles, {"x": 0}, {"y": 4}, limits=lanes)

    def test_scalar_mode_is_unchanged(self):
        for kernel in DIFF_KERNELS:
            for name, program in compile_kernel_programs(kernel).verifiable():
                assert check_program(program, name=name).ok
