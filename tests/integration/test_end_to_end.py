"""Integration tests crossing package boundaries."""

import math
import random

import pytest

from repro.kernels.base import AlignmentMode
from repro.kernels.sw import align
from repro.seq.alphabet import encode


class TestShortReadFlow:
    """Workload generator -> reference kernel -> DPAx simulator."""

    def test_bsw_workload_through_simulator(self):
        from repro.mapping.kernels2d import bsw_wavefront_spec
        from repro.mapping.wavefront2d import run_wavefront
        from repro.workloads.reads import generate_bsw_workload

        workload = generate_bsw_workload(
            count=2, query_length=12, target_length=8, seed=11
        )
        spec = bsw_wavefront_spec()
        for pair in workload.pairs:
            run = run_wavefront(
                spec, target=encode(pair.target), stream=encode(pair.query)
            )
            reference = align(pair.query, pair.target, mode=AlignmentMode.LOCAL)
            assert max(run.epilogue_series("hmax")) == reference.score

    def test_pairhmm_workload_scoring_consistency(self):
        from repro.kernels.pairhmm import pairhmm_forward, pairhmm_forward_pruned
        from repro.workloads.haplotypes import generate_pairhmm_workload

        workload = generate_pairhmm_workload(
            regions=2, reads_per_region=2, haplotypes_per_region=2,
            read_length=20, haplotype_length=16, seed=3,
        )
        recomputes = 0
        for pair in workload.pairs:
            exact = pairhmm_forward(pair.read, pair.haplotype, qualities=pair.qualities)
            pruned = pairhmm_forward_pruned(
                pair.read, pair.haplotype, qualities=pair.qualities
            )
            if pruned.needs_recompute:
                recomputes += 1
                continue
            assert pruned.log10_likelihood == pytest.approx(exact, abs=0.1)
        # The host-recompute tail stays small (the paper's 2.3%).
        assert recomputes <= len(workload.pairs) // 4


class TestLongReadFlow:
    """Chain overlaps feed POA consensus, reference vs simulator."""

    def test_chain_workload_through_simulator(self):
        from repro.kernels.chain_fixed import chain_reordered_fixed
        from repro.mapping.sliding1d import run_chain
        from repro.workloads.anchors import generate_chain_workload

        workload = generate_chain_workload(
            tasks=1, anchors_per_task=20, collinear_fraction=1.0, seed=5
        )
        anchors = workload.tasks[0].anchors
        run = run_chain(anchors, total_pes=4)
        reference = chain_reordered_fixed(anchors, n=4)
        assert run.result.scores == reference.scores

    def test_poa_workload_consensus_recovers_template(self):
        from repro.kernels.poa import poa_consensus
        from repro.kernels.sw import align as sw_align
        from repro.workloads.poa_groups import generate_poa_workload

        workload = generate_poa_workload(
            tasks=1, reads_per_task=7, template_length=50, seed=6
        )
        task = workload.tasks[0]
        consensus = poa_consensus(task.reads)
        identity = sw_align(consensus, task.template).score / len(task.template)
        assert identity > 0.7


class TestMultiArrayTile:
    def test_two_arrays_run_independent_tasks(self):
        """Two integer arrays of one tile run two LCS tasks in parallel
        -- the 2D kernels' task-parallel deployment (Section 3.1)."""
        from repro.dpax.machine import DPAxMachine
        from repro.kernels.lcs import lcs_table
        from repro.mapping.kernels2d import lcs_wavefront_spec
        from repro.mapping.wavefront2d import build_wavefront_programs
        from repro.seq.alphabet import random_sequence

        rng = random.Random(13)
        machine = DPAxMachine(integer_arrays=2, fp_arrays=0)
        tasks = []
        for array in machine.int_arrays:
            x = random_sequence(8, rng)
            y = random_sequence(4, rng)
            programs = build_wavefront_programs(lcs_wavefront_spec(), 4, 8)
            array.ibuf.preload(encode(y), base=0)
            array.ibuf.preload(encode(x), base=4)
            array.load_array_control(programs.array_control)
            for position in range(4):
                array.load_pe(
                    position,
                    programs.pe_control[position],
                    programs.pe_compute[position],
                )
            tasks.append((x, y))

        result = machine.run()
        assert result.finished
        for array, (x, y) in zip(machine.int_arrays, tasks):
            got = array.obuf.dump(0, 4)
            reference = lcs_table(x, y)
            # Tail-to-head order within the single pass.
            expected = [reference[len(x)][j] for j in (4, 3, 2, 1)]
            assert got == expected


class TestModelConsistency:
    def test_experiment_rollup_uses_simulator_rates(self):
        from repro.perfmodel.throughput import (
            DEFAULT_CYCLES_PER_CELL,
            GenDPPerfModel,
        )

        model = GenDPPerfModel()
        for kernel, kt in model.kernels.items():
            assert kt.cycles_per_cell == DEFAULT_CYCLES_PER_CELL[kernel]

    def test_speedup_rollup_complete(self):
        from repro.analysis.speedups import headline_speedups, speedup_rollup

        rows = speedup_rollup()
        headlines = headline_speedups(rows)
        assert set(headlines) == {
            "speedup_vs_cpu_per_mm2",
            "speedup_vs_gpu_per_mm2",
            "throughput_per_watt_vs_gpu",
            "asic_slowdown_geomean",
        }
