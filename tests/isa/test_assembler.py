"""Round-trip tests for the textual assembler."""

import pytest

from repro.dfg.graph import Opcode
from repro.isa.assembler import (
    AssemblyError,
    assemble_control,
    assemble_vliw,
    disassemble_control,
    disassemble_vliw,
)
from repro.isa.compute import CUInstruction, Imm, Reg, SlotOp, VLIWInstruction
from repro.isa.control import (
    ControlOp,
    FIFO_PORT,
    IN_PORT,
    OUT_PORT,
    add,
    addi,
    branch,
    halt,
    ibuf,
    li,
    mv,
    noop,
    reg,
    set_unit,
    spm,
)

CONTROL_SAMPLES = [
    add(1, 2, 3),
    addi(0, 0, -7),
    li(reg(3), 42),
    li(FIFO_PORT, -1),
    mv(reg(5), IN_PORT),
    mv(OUT_PORT, spm(2, indirect=True)),
    mv(ibuf(9), reg(1)),
    branch(ControlOp.BEQ, 1, 2, 4),
    branch(ControlOp.BLT, 0, 3, -12),
    set_unit(0, 13),
    noop(),
    halt(),
]


class TestControlRoundTrip:
    @pytest.mark.parametrize("instruction", CONTROL_SAMPLES, ids=lambda i: i.op.value)
    def test_roundtrip(self, instruction):
        text = disassemble_control(instruction)
        assert assemble_control(text) == instruction

    def test_known_syntax(self):
        assert disassemble_control(mv(reg(3), IN_PORT)) == "mv r3 in"
        assert disassemble_control(branch(ControlOp.BLT, 0, 1, -4)) == "blt a0 a1 -4"

    def test_bad_mnemonic(self):
        with pytest.raises(AssemblyError):
            assemble_control("jmp r1")

    def test_bad_location(self):
        with pytest.raises(AssemblyError):
            assemble_control("mv q3 in")


VLIW_SAMPLES = [
    VLIWInstruction(
        cu0=CUInstruction(
            kind="tree",
            dest=Reg(7),
            left=SlotOp(Opcode.SUB, (Reg(1), Imm(5))),
            right=SlotOp(Opcode.SUB, (Reg(2), Imm(1))),
            root=Opcode.MAX,
        ),
        cu1=None,
    ),
    VLIWInstruction(
        cu0=CUInstruction(
            kind="mul", dest=Reg(3), mul=SlotOp(Opcode.MUL, (Reg(1), Imm(400)))
        ),
        cu1=CUInstruction(
            kind="tree",
            dest=Reg(9),
            left=SlotOp(
                Opcode.CMP_GT, (Reg(1), Reg(2), Reg(3), Reg(4))
            ),
        ),
    ),
    VLIWInstruction(
        cu0=CUInstruction(
            kind="tree",
            dest=Reg(2),
            left=SlotOp(Opcode.CMP_EQ, (Reg(1), Reg(5), Imm(1), Reg(6))),
            right=SlotOp(Opcode.COPY, (Reg(0),)),
            root=Opcode.SUB,
            root_swapped=True,
        ),
        cu1=None,
    ),
]


class TestVLIWRoundTrip:
    @pytest.mark.parametrize("bundle", VLIW_SAMPLES)
    def test_roundtrip(self, bundle):
        text = disassemble_vliw(bundle)
        assert assemble_vliw(text) == bundle

    def test_unbraced_rejected(self):
        with pytest.raises(AssemblyError):
            assemble_vliw("tree R:add(r1,r2) -> r3 | nop")

    def test_missing_dest_rejected(self):
        with pytest.raises(AssemblyError):
            assemble_vliw("{ tree R:add(r1,r2) | nop }")


class TestKernelProgramsRoundTrip:
    def test_all_kernel_compute_programs(self):
        from repro.dfg.kernels import KERNEL_DFGS
        from repro.dpmap.codegen import compile_cell

        for name, builder in KERNEL_DFGS.items():
            program = compile_cell(builder())
            for bundle in program.instructions:
                assert assemble_vliw(disassemble_vliw(bundle)) == bundle

    def test_generated_control_programs(self):
        from repro.mapping.kernels2d import lcs_wavefront_spec
        from repro.mapping.wavefront2d import build_wavefront_programs

        programs = build_wavefront_programs(lcs_wavefront_spec(), 4, 6)
        for stream in programs.pe_control + [programs.array_control]:
            for instruction in stream:
                text = disassemble_control(instruction)
                assert assemble_control(text) == instruction
