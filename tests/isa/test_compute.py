"""Tests for the VLIW compute instruction format."""

import pytest

from repro.dfg.graph import Opcode
from repro.isa.compute import CUInstruction, Imm, Reg, SlotOp, VLIWInstruction


def tree_way(**kwargs):
    defaults = dict(
        kind="tree",
        dest=Reg(7),
        left=SlotOp(Opcode.SUB, (Reg(1), Imm(5))),
        right=SlotOp(Opcode.SUB, (Reg(2), Imm(1))),
        root=Opcode.MAX,
    )
    defaults.update(kwargs)
    return CUInstruction(**defaults)


class TestCUValidation:
    def test_full_tree_validates(self):
        tree_way().validate()

    def test_four_input_only_on_left(self):
        way = tree_way(
            right=SlotOp(Opcode.CMP_GT, (Reg(1), Reg(2), Reg(3), Reg(4))),
            root=None,
            left=None,
        )
        with pytest.raises(ValueError):
            way.validate()

    def test_root_needs_both_leaves_when_binary(self):
        with pytest.raises(ValueError):
            tree_way(right=None).validate()

    def test_unary_root_needs_left_only(self):
        way = tree_way(right=None, root=Opcode.LOG2_LUT)
        way.validate()

    def test_mul_way(self):
        way = CUInstruction(
            kind="mul", dest=Reg(3), mul=SlotOp(Opcode.MUL, (Reg(1), Imm(400)))
        )
        way.validate()
        assert way.alu_ops == 1

    def test_mul_way_requires_mul_op(self):
        way = CUInstruction(
            kind="mul", dest=Reg(3), mul=SlotOp(Opcode.ADD, (Reg(1), Imm(1)))
        )
        with pytest.raises(ValueError):
            way.validate()

    def test_empty_tree_rejected(self):
        with pytest.raises(ValueError):
            CUInstruction(kind="tree", dest=Reg(0)).validate()

    def test_operand_arity_checked(self):
        way = tree_way(left=SlotOp(Opcode.SUB, (Reg(1),)))
        with pytest.raises(ValueError):
            way.validate()


class TestVLIW:
    def test_bundle_validates(self):
        VLIWInstruction(cu0=tree_way(), cu1=None).validate()

    def test_empty_bundle_rejected(self):
        with pytest.raises(ValueError):
            VLIWInstruction().validate()

    def test_ways_list(self):
        bundle = VLIWInstruction(cu0=tree_way(), cu1=tree_way(dest=Reg(9)))
        assert len(bundle.ways) == 2

    def test_alu_ops_counts_slots(self):
        assert tree_way().alu_ops == 3
        assert tree_way(root=None, right=None).alu_ops == 1
