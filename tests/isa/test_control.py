"""Tests for the control ISA (Table 3)."""

import pytest

from repro.isa.control import (
    ControlInstruction,
    ControlOp,
    Loc,
    Space,
    add,
    addi,
    areg,
    branch,
    halt,
    ibuf,
    li,
    mv,
    noop,
    obuf,
    reg,
    set_unit,
    spm,
    FIFO_PORT,
    IN_PORT,
    OUT_PORT,
)


class TestLocations:
    def test_indexed_text(self):
        assert reg(5).text() == "r5"
        assert spm(3).text() == "s3"
        assert spm(2, indirect=True).text() == "s[a2]"
        assert ibuf(7).text() == "ibuf7"

    def test_port_text(self):
        assert IN_PORT.text() == "in"
        assert OUT_PORT.text() == "out"
        assert FIFO_PORT.text() == "fifo"

    def test_ports_reject_index(self):
        with pytest.raises(ValueError):
            Loc(Space.IN, 3)

    def test_address_registers_not_indirectable(self):
        with pytest.raises(ValueError):
            Loc(Space.ADDR, 1, indirect=True)


class TestValidation:
    def test_mv_needs_both_operands(self):
        with pytest.raises(ValueError):
            ControlInstruction(ControlOp.MV, dest=reg(1)).validate()

    def test_branch_needs_offset(self):
        with pytest.raises(ValueError):
            ControlInstruction(ControlOp.BEQ, rs1=0, rs2=1).validate()

    def test_set_needs_target_count(self):
        with pytest.raises(ValueError):
            ControlInstruction(ControlOp.SET, target=1).validate()

    def test_constructors_produce_valid_instructions(self):
        for instruction in (
            add(0, 1, 2),
            addi(0, 0, -3),
            li(reg(3), 42),
            mv(OUT_PORT, reg(1)),
            branch(ControlOp.BLT, 0, 1, -4),
            set_unit(0, 5),
            noop(),
            halt(),
        ):
            instruction.validate()

    def test_branch_constructor_rejects_non_branch(self):
        with pytest.raises(ValueError):
            branch(ControlOp.ADD, 0, 1, 2)
