"""Tests for program containers and size accounting."""

from repro.isa.control import halt, li, mv, reg, IN_PORT, set_unit
from repro.isa.program import (
    ArrayProgram,
    CONTROL_INSTRUCTION_BYTES,
    PEProgram,
    VLIW_INSTRUCTION_BYTES,
)


def small_pe_program():
    from repro.dfg.kernels import lcs_dfg
    from repro.dpmap.codegen import compile_cell

    compute = compile_cell(lcs_dfg()).instructions
    control = [mv(reg(0), IN_PORT), set_unit(0, len(compute)), halt()]
    return PEProgram(control=control, compute=list(compute))


class TestPEProgram:
    def test_validates(self):
        small_pe_program().validate()

    def test_byte_accounting(self):
        program = small_pe_program()
        assert program.control_bytes == 3 * CONTROL_INSTRUCTION_BYTES
        assert program.compute_bytes == len(program.compute) * VLIW_INSTRUCTION_BYTES
        assert program.total_bytes == program.control_bytes + program.compute_bytes


class TestArrayProgram:
    def test_counts(self):
        array = ArrayProgram(
            array_control=[set_unit(0, 1), halt()],
            pe_programs=[small_pe_program() for _ in range(4)],
        )
        array.validate()
        counts = array.instruction_counts()
        assert counts["array_control"] == 2
        assert counts["pe_control"] == 12
        assert counts["pe_compute"] == 4 * len(small_pe_program().compute)

    def test_total_bytes_positive(self):
        array = ArrayProgram(
            array_control=[halt()], pe_programs=[small_pe_program()]
        )
        assert array.total_bytes > 0
