"""Tests for adaptive banded Smith-Waterman and the static cover."""

import pytest

from repro.kernels.absw import (
    adaptive_banded_sw,
    static_cover_cells,
    static_cover_region,
)
from repro.kernels.bsw import banded_sw
from repro.seq.alphabet import random_sequence
from repro.seq.mutate import MutationProfile, Mutator


def drift_pair(rng, blocks=8, block_len=15, drop=2):
    """A pair whose alignment diagonal drifts steadily: every block
    the query drops a couple of target bases, so the total offset ends
    far beyond a static band's half-width while each step is small
    enough for an adaptive band to follow."""
    target = random_sequence(blocks * block_len, rng)
    query = "".join(
        target[start : start + block_len - drop]
        for start in range(0, len(target), block_len)
    )
    return query, target


class TestAdaptiveBand:
    def test_matches_static_on_diagonal_pairs(self, rng):
        template = random_sequence(40, rng)
        query = Mutator(MutationProfile.illumina(), rng).mutate(template)
        adaptive = adaptive_banded_sw(query, template, band=8)
        static = banded_sw(query, template, band=8)
        assert adaptive.score == static.score

    def test_follows_drifting_diagonal_where_static_fails(self, rng):
        query, target = drift_pair(rng)
        adaptive = adaptive_banded_sw(query, target, band=4)
        static = banded_sw(query, target, band=4)
        # The diagonal drifts 16 columns; the half-width-4 static band
        # loses it, the adaptive band follows.
        assert adaptive.score > static.score

    def test_band_trace_follows_the_drift(self, rng):
        query, target = drift_pair(rng)
        result = adaptive_banded_sw(query, target, band=4)
        centers = [(lo + hi) // 2 for lo, hi in result.band_trace]
        # The band center ends far beyond any static half-width.
        assert centers[-1] - centers[0] - len(query) > 4

    def test_cell_budget_linear(self, rng):
        query, target = drift_pair(rng)
        result = adaptive_banded_sw(query, target, band=6)
        assert result.cells <= len(query) * (2 * 6 + 1)

    def test_interface_validation(self):
        with pytest.raises(ValueError):
            adaptive_banded_sw("", "ACGT")
        with pytest.raises(ValueError):
            adaptive_banded_sw("ACGT", "ACGT", band=0)


class TestStaticCover:
    def test_cover_contains_every_row_band(self, rng):
        query, target = drift_pair(rng)
        result = adaptive_banded_sw(query, target, band=6)
        tiles = static_cover_region(result.band_trace, tile_rows=4)
        for row_index, (lo, hi) in enumerate(result.band_trace):
            tile_lo, tile_hi = tiles[row_index // 4]
            assert tile_lo <= lo and hi <= tile_hi

    def test_cover_costs_at_least_the_adaptive_cells(self, rng):
        query, target = drift_pair(rng)
        result = adaptive_banded_sw(query, target, band=6)
        assert static_cover_cells(result.band_trace) >= result.cells

    def test_bigger_tiles_cost_more(self, rng):
        query, target = drift_pair(rng)
        result = adaptive_banded_sw(query, target, band=6)
        assert static_cover_cells(result.band_trace, 16) >= static_cover_cells(
            result.band_trace, 4
        )

    def test_cover_cheaper_than_full_table(self, rng):
        query, target = drift_pair(rng)
        result = adaptive_banded_sw(query, target, band=6)
        assert static_cover_cells(result.band_trace) < len(query) * len(target)

    def test_bad_tile_rows(self):
        with pytest.raises(ValueError):
            static_cover_region([(1, 2)], 0)
