"""Tests for shared kernel types."""

import pytest

from repro.kernels.base import (
    AlignmentResult,
    CellCounter,
    TracebackOp,
    compress_ops,
    saturate,
)


class TestCigar:
    def test_compress_runs(self):
        ops = [TracebackOp.MATCH] * 3 + [TracebackOp.INSERTION] + [TracebackOp.MATCH]
        assert compress_ops(ops) == [
            (TracebackOp.MATCH, 3),
            (TracebackOp.INSERTION, 1),
            (TracebackOp.MATCH, 1),
        ]

    def test_cigar_string(self):
        result = AlignmentResult(
            score=5,
            end=(4, 4),
            cigar=[(TracebackOp.MATCH, 3), (TracebackOp.DELETION, 1)],
        )
        assert result.cigar_string == "3M1D"

    def test_aligned_lengths(self):
        result = AlignmentResult(
            score=0,
            end=(0, 0),
            cigar=[
                (TracebackOp.MATCH, 4),
                (TracebackOp.INSERTION, 2),
                (TracebackOp.DELETION, 3),
            ],
        )
        assert result.aligned_lengths() == (6, 7)


class TestCellCounter:
    def test_accumulates(self):
        counter = CellCounter()
        counter.add(10)
        counter.add()
        assert counter.count == 11

    def test_reset(self):
        counter = CellCounter()
        counter.add(5)
        counter.reset()
        assert counter.count == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CellCounter().add(-1)


class TestSaturate:
    def test_int8_bounds(self):
        assert saturate(200, 8) == 127
        assert saturate(-200, 8) == -128
        assert saturate(100, 8) == 100

    def test_unsigned(self):
        assert saturate(300, 8, signed=False) == 255
        assert saturate(-5, 8, signed=False) == 0

    def test_bad_width(self):
        with pytest.raises(ValueError):
            saturate(1, 0)
