"""Tests for Bellman-Ford shortest paths (Section 7.6.5)."""

import pytest

from repro.kernels.bellman_ford import (
    Edge,
    NegativeCycleError,
    bellman_ford,
    dependency_distances,
)


def diamond():
    return [
        Edge(0, 1, 1.0),
        Edge(0, 2, 4.0),
        Edge(1, 2, 2.0),
        Edge(1, 3, 6.0),
        Edge(2, 3, 1.0),
    ]


class TestShortestPaths:
    def test_diamond_distances(self):
        result = bellman_ford(4, diamond())
        assert result.distances == [0.0, 1.0, 3.0, 4.0]

    def test_path_reconstruction(self):
        result = bellman_ford(4, diamond())
        assert result.path_to(3) == [0, 1, 2, 3]

    def test_unreachable_vertex(self):
        result = bellman_ford(3, [Edge(0, 1, 1.0)])
        assert result.distances[2] == float("inf")
        assert result.path_to(2) == []

    def test_negative_edges_ok_without_cycle(self):
        edges = [Edge(0, 1, 5.0), Edge(1, 2, -3.0), Edge(0, 2, 4.0)]
        result = bellman_ford(3, edges)
        assert result.distances[2] == 2.0

    def test_negative_cycle_detected(self):
        edges = [Edge(0, 1, 1.0), Edge(1, 2, -5.0), Edge(2, 1, 1.0)]
        with pytest.raises(NegativeCycleError):
            bellman_ford(3, edges)

    def test_early_termination(self):
        # A simple chain settles in one round; relaxation count stays
        # far below the (V-1) * E worst case.
        edges = [Edge(i, i + 1, 1.0) for i in range(9)]
        result = bellman_ford(10, edges)
        assert result.rounds < 9 or result.relaxations < 9 * len(edges)

    def test_matches_dijkstra_shape_on_roadmap(self):
        from repro.workloads.graphs import generate_bf_workload

        workload = generate_bf_workload(vertices=40, neighbors=4, seed=3)
        result = bellman_ford(
            workload.vertex_count, workload.edges, source=workload.source
        )
        # Triangle inequality: every edge is relaxed.
        dist = result.distances
        for edge in workload.edges:
            if dist[edge.src] != float("inf"):
                assert dist[edge.dst] <= dist[edge.src] + edge.weight + 1e-9


class TestInterface:
    def test_bad_source(self):
        with pytest.raises(ValueError):
            bellman_ford(3, [], source=5)

    def test_bad_edge(self):
        with pytest.raises(ValueError):
            bellman_ford(2, [Edge(0, 5, 1.0)])

    def test_dependency_distances(self):
        assert dependency_distances(diamond()) == [1, 2, 1, 2, 1]
