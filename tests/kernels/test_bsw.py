"""Tests for banded Smith-Waterman (the paper's BSW kernel)."""

import pytest

from repro.kernels.base import AlignmentMode
from repro.kernels.bsw import band_cells, banded_sw
from repro.kernels.sw import align
from repro.seq.alphabet import random_sequence
from repro.seq.mutate import MutationProfile, Mutator
from repro.seq.scoring import LinearGap, ScoringScheme


class TestBandedVsFull:
    def test_wide_band_matches_unbanded_local_on_similar_pairs(self, rng):
        # With a band wider than any indel drift, the banded extension's
        # best score equals the unbanded local alignment's.
        template = random_sequence(30, rng)
        mutator = Mutator(MutationProfile.illumina(), rng)
        query = mutator.mutate(template)
        banded = banded_sw(query, template, band=40)
        full = align(query, template, mode=AlignmentMode.LOCAL)
        assert banded.score == full.score

    def test_narrow_band_cannot_exceed_wide_band(self, rng):
        template = random_sequence(40, rng)
        query = Mutator(MutationProfile.pacbio(), rng).mutate(template)
        narrow = banded_sw(query, template, band=2)
        wide = banded_sw(query, template, band=30)
        assert narrow.score <= wide.score

    def test_band_monotonicity(self, rng):
        template = random_sequence(30, rng)
        query = Mutator(MutationProfile.pacbio(), rng).mutate(template)
        scores = [banded_sw(query, template, band=w).score for w in (1, 2, 4, 8, 16)]
        assert scores == sorted(scores)


class TestPrecision:
    def test_8bit_saturates(self):
        # 200 matching bases would score 200, above int8 max.
        sequence = "ACGT" * 50
        result = banded_sw(sequence, sequence, band=4, precision_bits=8)
        assert result.score == 127

    def test_16bit_handles_long_matches(self):
        sequence = "ACGT" * 50
        result = banded_sw(sequence, sequence, band=4, precision_bits=16)
        assert result.score == 200

    def test_invalid_precision_rejected(self):
        with pytest.raises(ValueError):
            banded_sw("ACGT", "ACGT", precision_bits=12)


class TestInterface:
    def test_empty_sequences_rejected(self):
        with pytest.raises(ValueError):
            banded_sw("", "ACGT")

    def test_non_affine_scheme_rejected(self):
        with pytest.raises(TypeError):
            banded_sw("ACGT", "ACGT", scheme=ScoringScheme(gap=LinearGap()))

    def test_zero_band_rejected(self):
        with pytest.raises(ValueError):
            banded_sw("ACGT", "ACGT", band=0)

    def test_global_score_at_corner(self):
        result = banded_sw("ACGTACGT", "ACGTACGT", band=4)
        assert result.global_score == 8

    def test_zdrop_terminates_early(self, rng):
        # A long divergent tail after a strong prefix triggers Z-drop.
        prefix = random_sequence(20, rng)
        query = prefix + "A" * 40
        target = prefix + "T" * 40
        dropped = banded_sw(query, target, band=4, zdrop=5)
        full = banded_sw(query, target, band=4)
        assert dropped.cells < full.cells
        assert dropped.score == full.score  # best score is in the prefix


class TestBandCells:
    def test_counts_match_simulation(self, rng):
        query = random_sequence(23, rng)
        target = random_sequence(31, rng)
        result = banded_sw(query, target, band=5)
        assert result.cells == band_cells(len(query), len(target), 5)

    def test_full_band_equals_table(self):
        assert band_cells(10, 10, 100) == 100

    def test_band_one_is_tridiagonal(self):
        # |i - j| <= 1 inside a 4x4 table: 3 + 3x... count explicitly.
        assert band_cells(4, 4, 1) == 10
