"""Tests for minimap2-style chaining (original and reordered)."""

import random

import pytest

from repro.kernels.chain import (
    Anchor,
    chain_original,
    chain_query_coverage,
    chain_reordered,
    pair_score,
    reorder_work_factor,
)


def collinear_anchors(count, rng, jitter=5, step=40):
    anchors = []
    x = y = 0
    for _ in range(count):
        x += rng.randint(step // 2, step)
        y = x + rng.randint(-jitter, jitter)
        anchors.append(Anchor(x, y))
    anchors.sort(key=lambda a: (a.x, a.y))
    return anchors


class TestPairScore:
    def test_perfect_diagonal_continuation(self):
        gain = pair_score(Anchor(0, 0), Anchor(30, 30))
        assert gain == 19  # min(dx, dy, w) with zero gap cost

    def test_backward_rejected(self):
        assert pair_score(Anchor(100, 100), Anchor(50, 120)) == float("-inf")

    def test_distance_cap(self):
        assert pair_score(Anchor(0, 0), Anchor(10_000, 10_000)) == float("-inf")

    def test_diagonal_drift_cap(self):
        assert pair_score(Anchor(0, 0), Anchor(100, 700)) == float("-inf")

    def test_drift_penalized(self):
        straight = pair_score(Anchor(0, 0), Anchor(50, 50))
        drifted = pair_score(Anchor(0, 0), Anchor(50, 70))
        assert drifted < straight


class TestOriginalChaining:
    def test_collinear_run_chains_fully(self, rng):
        anchors = collinear_anchors(20, rng)
        result = chain_original(anchors)
        assert result.backtrack() == list(range(20))

    def test_scores_monotone_along_chain(self, rng):
        anchors = collinear_anchors(15, rng)
        result = chain_original(anchors)
        chain = result.backtrack()
        scores = [result.scores[i] for i in chain]
        assert scores == sorted(scores)

    def test_unsorted_anchors_rejected(self):
        with pytest.raises(ValueError):
            chain_original([Anchor(10, 10), Anchor(5, 5)])

    def test_cells_bounded_by_window(self, rng):
        anchors = collinear_anchors(30, rng)
        result = chain_original(anchors, n=5)
        assert result.cells <= 5 * 30


class TestReorderedEquivalence:
    def test_same_scores_as_original_same_window(self, rng):
        for trial in range(5):
            anchors = collinear_anchors(25, rng, jitter=15)
            original = chain_original(anchors, n=10)
            reordered = chain_reordered(anchors, n=10)
            assert original.scores == reordered.scores

    def test_same_parents_as_original(self, rng):
        anchors = collinear_anchors(25, rng)
        assert chain_original(anchors, n=8).parents == chain_reordered(anchors, n=8).parents

    def test_wider_window_finds_no_worse_chains(self, rng):
        anchors = collinear_anchors(40, rng, jitter=20)
        narrow = chain_reordered(anchors, n=4)
        wide = chain_reordered(anchors, n=30)
        assert wide.best_score >= narrow.best_score

    def test_reordered_computes_more_cells_at_n64(self, rng):
        anchors = collinear_anchors(200, rng)
        cpu = chain_original(anchors, n=25)
        accel = chain_reordered(anchors, n=64)
        assert accel.cells > cpu.cells
        # Section 6's normalization factor for large workloads.
        assert accel.cells / cpu.cells == pytest.approx(64 / 25, rel=0.15)


class TestHelpers:
    def test_reorder_work_factor(self):
        assert reorder_work_factor(25, 64) == pytest.approx(2.56)

    def test_coverage_spans(self, rng):
        anchors = collinear_anchors(10, rng)
        result = chain_original(anchors)
        q_span, t_span = chain_query_coverage(anchors, result.backtrack())
        assert q_span > 0 and t_span > 0

    def test_empty_chain_coverage(self):
        assert chain_query_coverage([], []) == (0, 0)
