"""Tests for the fixed-point Chain arithmetic (the DPAx form)."""

import math
import random

import pytest

from repro.kernels.chain import Anchor, chain_reordered, pair_score
from repro.kernels.chain_fixed import (
    REJECTED,
    SCALE,
    chain_reordered_fixed,
    fixed_to_float,
    int_log2_x2,
    pair_score_fixed,
)


class TestIntLog2:
    def test_powers_of_two(self):
        assert int_log2_x2(1) == 0
        assert int_log2_x2(2) == 2
        assert int_log2_x2(8) == 6

    def test_non_power(self):
        assert int_log2_x2(5) == int(math.log2(5) * 2)

    def test_out_of_domain(self):
        assert int_log2_x2(0) == 0
        assert int_log2_x2(-3) == 0


class TestPairScoreFixed:
    def test_matches_float_within_lut_error(self, rng):
        for _ in range(200):
            prev = Anchor(rng.randint(0, 1000), rng.randint(0, 1000))
            cur = Anchor(prev.x + rng.randint(1, 400), prev.y + rng.randint(1, 400))
            fixed = pair_score_fixed(prev, cur)
            reference = pair_score(prev, cur)
            if fixed == REJECTED:
                assert reference == float("-inf")
                continue
            # gap linear term is exact; log term truncation <= 0.25.
            assert fixed_to_float(fixed) == pytest.approx(reference, abs=0.26)

    def test_same_gating_as_float(self, rng):
        for _ in range(200):
            prev = Anchor(rng.randint(0, 2000), rng.randint(0, 2000))
            cur = Anchor(
                prev.x + rng.randint(-100, 6000), prev.y + rng.randint(-100, 6000)
            )
            fixed_rejected = pair_score_fixed(prev, cur) == REJECTED
            float_rejected = pair_score(prev, cur) == float("-inf")
            assert fixed_rejected == float_rejected


class TestFixedChaining:
    def test_same_best_chain_as_float(self, rng):
        anchors = []
        x = 0
        for _ in range(60):
            x += rng.randint(10, 60)
            anchors.append(Anchor(x, x + rng.randint(-10, 10)))
        anchors.sort(key=lambda a: (a.x, a.y))
        fixed = chain_reordered_fixed(anchors, n=20)
        floaty = chain_reordered(anchors, n=20)
        assert fixed.backtrack() == floaty.backtrack()

    def test_scores_scale(self, rng):
        anchors = [Anchor(10, 10), Anchor(40, 40)]
        result = chain_reordered_fixed(anchors, n=4)
        # Second anchor: w*SCALE + chained gain of min(30,30,19)*SCALE.
        assert result.scores[1] == (19 + 19) * SCALE
