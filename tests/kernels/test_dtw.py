"""Tests for dynamic time warping (Section 7.6.5)."""

import pytest

from repro.kernels.dtw import dtw_distance, dtw_matrix, dtw_path, znormalize


class TestDistance:
    def test_identical_signals(self):
        assert dtw_distance([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 0.0

    def test_time_shift_absorbed(self):
        # A repeated sample costs nothing under warping.
        assert dtw_distance([1, 2, 3, 4], [1, 2, 2, 3, 4]) == 0.0

    def test_symmetry(self):
        a, b = [1, 3, 2, 4], [2, 1, 4]
        assert dtw_distance(a, b) == dtw_distance(b, a)

    def test_amplitude_difference_counts(self):
        assert dtw_distance([0, 0, 0], [1, 1, 1]) == 3.0

    def test_band_restriction_monotone(self):
        a = [0, 5, 1, 6, 2, 7, 3, 8]
        b = [5, 0, 6, 1, 7, 2, 8, 3]
        assert dtw_distance(a, b, band=1) >= dtw_distance(a, b, band=4)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            dtw_distance([], [1.0])


class TestMatrix:
    def test_corner_is_distance(self):
        a, b = [1, 2, 4], [1, 3, 4]
        matrix = dtw_matrix(a, b)
        assert matrix[len(a)][len(b)] == dtw_distance(a, b)

    def test_banded_leaves_inf_outside(self):
        matrix = dtw_matrix([1] * 6, [1] * 6, band=1)
        assert matrix[1][5] == float("inf")


class TestPath:
    def test_path_endpoints(self):
        path = dtw_path([1, 2, 3], [1, 2, 3])
        assert path[0] == (0, 0)
        assert path[-1] == (2, 2)

    def test_path_moves_monotonically(self):
        path = dtw_path([1, 5, 2, 4], [1, 2, 4, 4])
        for (i0, j0), (i1, j1) in zip(path, path[1:]):
            assert 0 <= i1 - i0 <= 1 and 0 <= j1 - j0 <= 1
            assert (i1, j1) != (i0, j0)

    def test_path_cost_matches_distance(self):
        a, b = [1.0, 4.0, 2.0], [1.0, 2.0, 2.5]
        total = sum(abs(a[i] - b[j]) for i, j in dtw_path(a, b))
        assert total == dtw_distance(a, b)


class TestZNormalize:
    def test_zero_mean(self):
        out = znormalize([1.0, 2.0, 3.0, 4.0])
        assert sum(out) == pytest.approx(0.0)

    def test_unit_variance(self):
        out = znormalize([1.0, 2.0, 3.0, 4.0])
        variance = sum(v * v for v in out) / len(out)
        assert variance == pytest.approx(1.0)

    def test_constant_signal(self):
        assert znormalize([5.0, 5.0]) == [0.0, 0.0]

    def test_empty(self):
        assert znormalize([]) == []
