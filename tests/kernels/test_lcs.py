"""Tests for the LCS warm-up kernel (Section 2.2)."""

from repro.kernels.lcs import lcs_length, lcs_string, lcs_table, lcs_wavefronts


class TestLCSLength:
    def test_textbook_example(self):
        # CLRS's classic example pair.
        assert lcs_length("ABCBDAB", "BDCABA") == 4

    def test_identical_sequences(self):
        assert lcs_length("ACGTACGT", "ACGTACGT") == 8

    def test_disjoint_alphabets(self):
        assert lcs_length("AAAA", "TTTT") == 0

    def test_empty(self):
        assert lcs_length("", "ACGT") == 0
        assert lcs_length("ACGT", "") == 0

    def test_symmetry(self):
        assert lcs_length("AGCAT", "GAC") == lcs_length("GAC", "AGCAT")


class TestLCSString:
    def test_is_subsequence_of_both(self):
        x, y = "AGCATTGCA", "GACTTAC"
        result = lcs_string(x, y)
        assert len(result) == lcs_length(x, y)
        for sequence in (x, y):
            it = iter(sequence)
            assert all(ch in it for ch in result)

    def test_exact_match(self):
        assert lcs_string("ACGT", "AGT") == "AGT"


class TestTable:
    def test_boundary_rows_zero(self):
        table = lcs_table("ACG", "GCA")
        assert all(v == 0 for v in table[0])
        assert all(row[0] == 0 for row in table)

    def test_monotone_nondecreasing(self):
        table = lcs_table("ACGTAC", "TACGGT")
        for i in range(1, len(table)):
            for j in range(1, len(table[0])):
                assert table[i][j] >= table[i - 1][j]
                assert table[i][j] >= table[i][j - 1]


class TestWavefronts:
    def test_partition_covers_all_cells(self):
        fronts = lcs_wavefronts("ACGT", "ACG")
        cells = [cell for front in fronts for cell in front]
        assert len(cells) == 12
        assert len(set(cells)) == 12

    def test_cells_in_front_are_independent(self):
        # No two cells on one anti-diagonal share a row or column.
        for front in lcs_wavefronts("ACGTA", "CGTA"):
            rows = [i for i, _ in front]
            cols = [j for _, j in front]
            assert len(set(rows)) == len(front)
            assert len(set(cols)) == len(front)
