"""Tests for the PairHMM forward kernel and its pruned approximation."""

import math

import pytest

from repro.kernels.pairhmm import (
    DEFAULT_PRUNE_THRESHOLD,
    HMMParameters,
    log_sum_lookup,
    pairhmm_forward,
    pairhmm_forward_pruned,
    LOG_FRACTION_BITS,
)
from repro.seq.alphabet import random_sequence
from repro.seq.mutate import MutationProfile, Mutator

_SCALE = 1 << LOG_FRACTION_BITS


class TestParameters:
    def test_defaults_valid(self):
        params = HMMParameters()
        assert 0 < params.match_to_match < 1

    def test_invalid_gap_open(self):
        with pytest.raises(ValueError):
            HMMParameters(gap_open=0.0)

    def test_emission_prefers_match(self):
        params = HMMParameters()
        assert params.emission("A", "A", 30) > params.emission("A", "C", 30)

    def test_emission_quality_scaling(self):
        params = HMMParameters()
        # Lower quality -> higher mismatch probability.
        assert params.emission("A", "C", 10) > params.emission("A", "C", 40)


class TestExactForward:
    def test_likelihood_is_negative_log10(self):
        assert pairhmm_forward("ACGT", "ACGTACGT") < 0

    def test_matching_read_beats_mismatching(self, rng):
        haplotype = random_sequence(30, rng)
        read = haplotype[5:25]
        decoy = random_sequence(20, rng)
        assert pairhmm_forward(read, haplotype) > pairhmm_forward(decoy, haplotype)

    def test_discriminates_haplotypes(self, rng):
        haplotype = random_sequence(40, rng)
        variant = haplotype[:18] + ("A" if haplotype[18] != "A" else "C") + haplotype[19:]
        read = Mutator(MutationProfile.illumina(), rng).mutate(haplotype)[:30]
        assert pairhmm_forward(read, haplotype) >= pairhmm_forward(read, variant)

    def test_quality_vector_length_checked(self):
        with pytest.raises(ValueError):
            pairhmm_forward("ACGT", "ACGT", qualities=[30, 30])

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            pairhmm_forward("", "ACGT")


class TestPrunedForward:
    def test_matches_exact_within_fixed_point_error(self, rng):
        for _ in range(5):
            haplotype = random_sequence(25, rng)
            read = Mutator(MutationProfile.illumina(), rng).mutate(haplotype)[:20]
            if not read:
                continue
            exact = pairhmm_forward(read, haplotype)
            pruned = pairhmm_forward_pruned(read, haplotype)
            assert pruned.log10_likelihood == pytest.approx(exact, abs=0.05)

    def test_pruning_skips_cells_on_long_inputs(self, rng):
        haplotype = random_sequence(60, rng)
        read = haplotype[10:50]
        result = pairhmm_forward_pruned(read, haplotype, threshold=8.0)
        assert result.cells_pruned > 0

    def test_tighter_threshold_prunes_more(self, rng):
        haplotype = random_sequence(50, rng)
        read = Mutator(MutationProfile.illumina(), rng).mutate(haplotype)[:40]
        loose = pairhmm_forward_pruned(read, haplotype, threshold=40.0)
        tight = pairhmm_forward_pruned(read, haplotype, threshold=6.0)
        assert tight.cells_pruned >= loose.cells_pruned

    def test_pruned_fraction_bounds(self, rng):
        haplotype = random_sequence(30, rng)
        result = pairhmm_forward_pruned(haplotype[:20], haplotype)
        assert 0.0 <= result.pruned_fraction < 1.0


class TestLogSumLookup:
    def test_equal_inputs_add_one_bit(self):
        x = 5 * _SCALE
        # log2(2^x + 2^x) = x + 1.
        assert log_sum_lookup(x, x) == pytest.approx(x + _SCALE, abs=2)

    def test_dominance(self):
        big, small = 0, -100 * _SCALE
        assert log_sum_lookup(big, small) == big

    def test_commutative(self):
        a, b = 3 * _SCALE, -2 * _SCALE
        assert log_sum_lookup(a, b) == log_sum_lookup(b, a)

    def test_against_float_reference(self):
        for a_f, b_f in [(0.0, -1.5), (2.25, 2.0), (-3.0, -3.0)]:
            a, b = int(a_f * _SCALE), int(b_f * _SCALE)
            expected = math.log2(2.0 ** a_f + 2.0 ** b_f)
            assert log_sum_lookup(a, b) / _SCALE == pytest.approx(expected, abs=0.001)
