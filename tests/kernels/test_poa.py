"""Tests for partial order alignment (the POA polishing kernel)."""

import random

import pytest

from repro.kernels.poa import (
    PartialOrderGraph,
    align_to_graph,
    graph_dp_tables,
    poa_consensus,
)
from repro.seq.alphabet import random_sequence
from repro.seq.mutate import MutationProfile, Mutator
from repro.seq.scoring import LinearGap, ScoringScheme


class TestGraphConstruction:
    def test_single_sequence_is_a_chain(self):
        graph = PartialOrderGraph("ACGT")
        assert len(graph) == 4
        assert graph.nodes[0].predecessors == []
        assert graph.nodes[3].predecessors == [2]

    def test_edges_point_forward_topologically(self):
        graph = PartialOrderGraph("ACGTACGT")
        graph.add_sequence("ACGAACGT")
        position = {n: i for i, n in enumerate(graph.topological_order())}
        for (src, dst), weight in graph.edge_weights.items():
            assert position[src] < position[dst]
            assert weight >= 1

    def test_mismatch_creates_branch_node(self):
        graph = PartialOrderGraph("ACGTACGT")
        graph.add_sequence("ACGAACGT")
        assert len(graph) == 9  # one bubble node for the A variant

    def test_identical_sequence_reinforces_weights(self):
        graph = PartialOrderGraph("ACGTAC")
        graph.add_sequence("ACGTAC")
        assert len(graph) == 6  # no new nodes
        assert all(weight == 2 for weight in graph.edge_weights.values())

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PartialOrderGraph("")


class TestAlignment:
    def test_exact_match_scores_full_length(self):
        graph = PartialOrderGraph("ACGTACGT")
        result = align_to_graph(graph, "ACGTACGT")
        assert result.score == 8

    def test_alignment_to_branchy_graph_finds_best_path(self):
        graph = PartialOrderGraph("ACGTACGT")
        graph.add_sequence("ACGAACGT")  # introduces a branch at pos 3
        for variant in ("ACGTACGT", "ACGAACGT"):
            assert align_to_graph(graph, variant).score == 8

    def test_cells_counted(self):
        graph = PartialOrderGraph("ACGT")
        result = align_to_graph(graph, "ACG")
        assert result.cells == 4 * 3

    def test_linear_gap_rejected(self):
        graph = PartialOrderGraph("ACGT")
        with pytest.raises(TypeError):
            align_to_graph(graph, "ACG", ScoringScheme(gap=LinearGap()))


class TestLongRangeDependencies:
    def test_chain_has_distance_one(self):
        graph = PartialOrderGraph("ACGTACGT")
        assert graph.max_dependency_distance() == 1

    def test_divergent_reads_create_long_range(self, rng):
        template = random_sequence(60, rng)
        mutator = Mutator(MutationProfile.nanopore(), rng)
        graph = PartialOrderGraph(template)
        for _ in range(6):
            graph.add_sequence(mutator.mutate(template))
        assert graph.max_dependency_distance() > 1
        distances = graph.dependency_distances()
        assert len(distances) == len(graph.edge_weights)


class TestConsensus:
    def test_consensus_of_identical_reads(self):
        assert poa_consensus(["ACGTACGT"] * 3) == "ACGTACGT"

    def test_consensus_recovers_majority_base(self):
        reads = ["ACGTACGT", "ACGAACGT", "ACGTACGT", "ACGTACGT"]
        assert poa_consensus(reads) == "ACGTACGT"

    def test_consensus_denoises_template(self, rng):
        template = random_sequence(60, rng)
        mutator = Mutator(MutationProfile.illumina(), rng)
        reads = [mutator.mutate(template) for _ in range(7)]
        consensus = poa_consensus(reads)
        # The consensus should be closer to the template than a typical
        # read is (polishing actually polishes).
        from repro.kernels.sw import align

        consensus_score = align(consensus, template).score
        read_scores = [align(read, template).score for read in reads]
        assert consensus_score >= sorted(read_scores)[len(read_scores) // 2]

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            poa_consensus([])


class TestDPTables:
    def test_tables_match_alignment_score(self, rng):
        template = random_sequence(25, rng)
        graph = PartialOrderGraph(template)
        graph.add_sequence(Mutator(MutationProfile.nanopore(), rng).mutate(template))
        query = Mutator(MutationProfile.nanopore(), rng).mutate(template)
        h, _, _ = graph_dp_tables(graph, query)
        best = max(max(row) for row in h)
        assert best == align_to_graph(graph, query).score

    def test_h_nonnegative(self):
        graph = PartialOrderGraph("ACGT")
        h, _, _ = graph_dp_tables(graph, "TTTT")
        assert all(v >= 0 for row in h for v in row)
