"""Tests for the Smith-Waterman alignment family."""

import pytest

from repro.kernels.base import AlignmentMode
from repro.kernels.sw import align
from repro.seq.scoring import AffineGap, ConvexGap, LinearGap, ScoringScheme


def scheme(gap):
    return ScoringScheme(gap=gap)


class TestLocal:
    def test_perfect_match_scores_length(self):
        result = align("ACGTACGT", "ACGTACGT")
        assert result.score == 8
        assert result.cigar_string == "8M"

    def test_local_ignores_flanks(self):
        # The local alignment finds the embedded match despite junk ends.
        result = align("TTTTACGTACGTTTTT".replace("T", "T"), "ACGTACGT")
        assert result.score == 8

    def test_score_never_negative(self):
        result = align("AAAA", "TTTT")
        assert result.score == 0

    def test_single_mismatch_alignment(self):
        result = align("ACGTA", "ACCTA", mode=AlignmentMode.LOCAL)
        # Either 5M with one mismatch (5*1 - 2) or a shorter exact run.
        assert result.score == 3

    def test_gap_in_alignment(self):
        result = align("ACGTTTACG", "ACGACG")
        # 6 matches minus an affine 3-gap (4 + 3*1 = 7) ... or local trim.
        assert result.score >= 3


class TestGlobal:
    def test_global_charges_end_gaps(self):
        result = align("ACGT", "AC", mode=AlignmentMode.GLOBAL)
        expected = 2 - ScoringScheme().gap_penalty(2)
        assert result.score == expected

    def test_global_ends_at_corner(self):
        result = align("ACGT", "AGT", mode=AlignmentMode.GLOBAL)
        assert result.end == (4, 3)

    def test_global_cigar_consumes_everything(self):
        result = align("ACGTAC", "AGTC", mode=AlignmentMode.GLOBAL)
        q, t = result.aligned_lengths()
        assert (q, t) == (6, 4)


class TestSemiGlobal:
    def test_free_target_flanks(self):
        # Query aligns inside a longer target with no end-gap charge.
        result = align("ACGT", "TTTTACGTTTTT", mode=AlignmentMode.SEMI_GLOBAL)
        assert result.score == 4

    def test_better_than_global_on_contained_query(self):
        query, target = "ACGT", "GGACGTGG"
        semi = align(query, target, mode=AlignmentMode.SEMI_GLOBAL)
        full = align(query, target, mode=AlignmentMode.GLOBAL)
        assert semi.score >= full.score


class TestGapModels:
    def test_linear_vs_affine_on_split_gaps(self):
        # Two separate 1-gaps cost the same as one 2-gap under linear
        # but more under affine: affine prefers the contiguous gap.
        query, target = "AACCGGTT", "AACGTT"
        linear = align(query, target, scheme(LinearGap(extend=2)), AlignmentMode.GLOBAL)
        affine = align(query, target, scheme(AffineGap(open=4, extend=1)), AlignmentMode.GLOBAL)
        assert linear.score is not None and affine.score is not None

    def test_convex_equals_affine_short_gaps(self):
        # For 1-base gaps convex(open=4,extend=1,scale=0) == affine.
        convex = scheme(ConvexGap(open=4, extend=1, scale=0))
        affine = scheme(AffineGap(open=4, extend=1))
        a = align("ACGTT", "ACTT", convex, AlignmentMode.GLOBAL)
        b = align("ACGTT", "ACTT", affine, AlignmentMode.GLOBAL)
        assert a.score == b.score

    def test_convex_charges_less_for_long_gaps_than_linear_extension(self):
        long_gap_pair = ("ACG" + "T" * 12 + "ACG", "ACGACG")
        convex = align(*long_gap_pair, scheme(ConvexGap(open=2, extend=0, scale=1)), AlignmentMode.GLOBAL)
        linear = align(*long_gap_pair, scheme(LinearGap(extend=1)), AlignmentMode.GLOBAL)
        assert convex.score > linear.score

    def test_unsupported_gap_model_raises(self):
        class WeirdGap:
            pass

        with pytest.raises(TypeError):
            align("ACGT", "ACGT", ScoringScheme(gap=WeirdGap()))


class TestAccounting:
    def test_cell_count_is_full_table(self):
        result = align("ACGTA", "ACG")
        assert result.cells == 15

    def test_cigar_lengths_match_end(self):
        result = align("ACGTACGAAT", "ACGTTCGAAT", mode=AlignmentMode.GLOBAL)
        q, t = result.aligned_lengths()
        assert q == 10 and t == 10
