"""Tests for the label-aware control builder."""

import pytest

from repro.isa.control import ControlOp
from repro.mapping.builder import ControlBuilder


class TestLabels:
    def test_backward_branch_offset(self):
        b = ControlBuilder()
        b.label("top")
        b.addi(0, 0, 1)
        b.branch(ControlOp.BLT, 0, 1, "top")
        program = b.finish()
        assert program[1].offset == -1

    def test_forward_branch_offset(self):
        b = ControlBuilder()
        b.branch(ControlOp.BEQ, 0, 0, "end")
        b.noop()
        b.noop()
        b.label("end")
        b.halt()
        program = b.finish()
        assert program[0].offset == 3

    def test_duplicate_label_rejected(self):
        b = ControlBuilder()
        b.label("x")
        with pytest.raises(ValueError):
            b.label("x")

    def test_undefined_label_rejected(self):
        b = ControlBuilder()
        b.branch(ControlOp.BNE, 0, 1, "nowhere")
        with pytest.raises(ValueError):
            b.finish()

    def test_emitted_instructions_validate(self):
        from repro.isa.control import reg

        b = ControlBuilder()
        b.li(reg(0), 5)
        b.label("loop")
        b.addi(0, 0, -1)
        b.branch(ControlOp.BNE, 0, 1, "loop")
        b.halt()
        for instruction in b.finish():
            instruction.validate()

    def test_len_tracks_instructions(self):
        b = ControlBuilder()
        b.noop()
        b.noop()
        assert len(b) == 2
