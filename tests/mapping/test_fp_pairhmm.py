"""Tests for the floating-point PairHMM on the FP PE array."""

import math

import pytest

from repro.kernels.pairhmm import pairhmm_forward
from repro.mapping.kernels2d import pairhmm_fp_wavefront_spec
from repro.mapping.wavefront2d import run_wavefront
from repro.seq.alphabet import encode, random_sequence


def simulate_fp_likelihood(read, haplotype):
    spec = pairhmm_fp_wavefront_spec(len(haplotype))
    run = run_wavefront(
        spec, target=encode(haplotype), stream=encode(read), datapath="fp"
    )
    assert run.finished
    total = sum(
        values["m_up"] + values["i_up"]
        for per_pass in run.epilogue_values
        for values in per_pass
    )
    return math.log10(total) if total > 0 else float("-inf")


class TestFPPairHMM:
    def test_bit_exact_against_reference(self, rng):
        # Same double-precision arithmetic in the same order: the FP
        # array's result is not just close, it is identical.
        for _ in range(3):
            read = random_sequence(10, rng)
            haplotype = random_sequence(8, rng)
            simulated = simulate_fp_likelihood(read, haplotype)
            reference = pairhmm_forward(read, haplotype)
            assert math.isclose(simulated, reference, rel_tol=1e-12)

    def test_fp_and_log_domain_agree(self, rng):
        # The integer array's pruned log-domain form approximates the
        # FP array's exact form within the LUT precision.
        from repro.kernels.pairhmm import LOG_FRACTION_BITS, log_sum_lookup
        from repro.mapping.kernels2d import (
            pairhmm_boundary_for_length,
            pairhmm_wavefront_spec,
        )

        read = random_sequence(10, rng)
        haplotype = random_sequence(8, rng)
        fp = simulate_fp_likelihood(read, haplotype)

        spec = pairhmm_boundary_for_length(pairhmm_wavefront_spec(), len(haplotype))
        run = run_wavefront(spec, target=encode(haplotype), stream=encode(read))
        total = -(1 << 20)
        for values in (v for p in run.epilogue_values for v in p):
            total = log_sum_lookup(
                total, log_sum_lookup(values["m_up"], values["i_up"])
            )
        fixed = (total / (1 << LOG_FRACTION_BITS)) * math.log10(2)
        assert fixed == pytest.approx(fp, abs=0.01)

    def test_matching_read_scores_higher(self, rng):
        haplotype = random_sequence(12, rng)
        matching = simulate_fp_likelihood(haplotype[2:10], haplotype)
        foreign = simulate_fp_likelihood(random_sequence(8, rng), haplotype)
        assert matching > foreign

    def test_bad_haplotype_length_rejected(self):
        with pytest.raises(ValueError):
            pairhmm_fp_wavefront_spec(0)
