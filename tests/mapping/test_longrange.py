"""Cycle-simulator validation of the scratchpad (long-range) kernels."""

import random

import pytest

from repro.kernels.bellman_ford import Edge, bellman_ford
from repro.kernels.poa import PartialOrderGraph, graph_dp_tables
from repro.mapping.longrange import BF_INF, run_bellman_ford, run_poa_row_dp
from repro.seq.alphabet import random_sequence
from repro.seq.mutate import MutationProfile, Mutator
from repro.workloads.graphs import generate_bf_workload


def noisy_graph(rng, length=12, reads=2):
    template = random_sequence(length, rng)
    mutator = Mutator(MutationProfile.nanopore(), rng)
    graph = PartialOrderGraph(template)
    for _ in range(reads):
        graph.add_sequence(mutator.mutate(template))
    return graph, template, mutator


class TestPOAOnSimulator:
    def test_h_table_matches_reference(self, rng):
        graph, template, mutator = noisy_graph(rng)
        query = mutator.mutate(template)
        run = run_poa_row_dp(graph, query)
        assert run.finished
        reference_h, _, _ = graph_dp_tables(graph, query)
        for row in range(len(graph.nodes)):
            for j in range(1, len(query) + 1):
                assert run.h[row][j - 1] == reference_h[row][j]

    def test_long_range_rows_hit_scratchpad(self, rng):
        graph, template, mutator = noisy_graph(rng, length=16, reads=3)
        run = run_poa_row_dp(graph, mutator.mutate(template))
        assert run.spm_accesses > run.cells  # every cell reads pred rows

    def test_chain_graph_works(self, rng):
        # Degenerate case: a pure chain (every node one predecessor).
        graph = PartialOrderGraph(random_sequence(10, rng))
        query = random_sequence(8, rng)
        run = run_poa_row_dp(graph, query)
        reference_h, _, _ = graph_dp_tables(graph, query)
        assert run.h[-1][-1] == reference_h[-1][-1]

    def test_empty_query_rejected(self, rng):
        graph = PartialOrderGraph("ACGT")
        with pytest.raises(ValueError):
            run_poa_row_dp(graph, "")


class TestBellmanFordOnSimulator:
    def test_distances_match_reference(self, rng):
        workload = generate_bf_workload(vertices=15, neighbors=3, seed=7)
        edges = [Edge(e.src, e.dst, int(e.weight * 1000)) for e in workload.edges]
        run = run_bellman_ford(workload.vertex_count, edges, source=workload.source)
        reference = bellman_ford(
            workload.vertex_count, edges, source=workload.source
        )
        assert run.finished
        expected = [
            int(d) if d != float("inf") else BF_INF for d in reference.distances
        ]
        assert run.distances == expected
        assert run.predecessors == reference.predecessors

    def test_unreachable_vertices_stay_inf(self):
        edges = [Edge(0, 1, 5)]
        run = run_bellman_ford(3, edges, source=0)
        assert run.distances == [0, 5, BF_INF]

    def test_float_weights_rejected(self):
        with pytest.raises(ValueError):
            run_bellman_ford(2, [Edge(0, 1, 0.5)], source=0)

    def test_round_limit_controls_propagation(self):
        # A 5-vertex chain needs 4 rounds; with 1 round only the first
        # hop settles.
        edges = [Edge(i, i + 1, 1) for i in range(4)]
        partial = run_bellman_ford(5, edges, source=0, rounds=1)
        assert partial.distances[1] == 1
        full = run_bellman_ford(5, edges, source=0)
        assert full.distances == [0, 1, 2, 3, 4]
