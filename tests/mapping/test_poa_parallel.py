"""Tests for the column-tiled parallel POA mapping."""

import pytest

from repro.kernels.poa import PartialOrderGraph, graph_dp_tables
from repro.mapping.longrange import run_poa_row_dp
from repro.mapping.poa_parallel import run_poa_parallel
from repro.seq.alphabet import random_sequence
from repro.seq.mutate import MutationProfile, Mutator


def build_case(rng, length=24, reads=3):
    base = random_sequence(length, rng)
    mutator = Mutator(MutationProfile.nanopore(), rng)
    graph = PartialOrderGraph(base)
    for _ in range(reads):
        graph.add_sequence(mutator.mutate(base))
    query = mutator.mutate(base)
    while len(query) % 4 != 0:
        query += "A"
    return graph, query


class TestCorrectness:
    def test_h_table_matches_reference(self, rng):
        graph, query = build_case(rng)
        run = run_poa_parallel(graph, query)
        assert run.finished
        reference_h, _, _ = graph_dp_tables(graph, query)
        for row in range(len(graph.nodes)):
            for j in range(1, len(query) + 1):
                assert run.h[row][j - 1] == reference_h[row][j]

    def test_matches_single_pe_mapping(self, rng):
        graph, query = build_case(rng, length=16, reads=2)
        parallel = run_poa_parallel(graph, query)
        single = run_poa_row_dp(graph, query)
        assert parallel.h == single.h
        assert parallel.directions == single.directions

    def test_chain_graph(self, rng):
        graph = PartialOrderGraph(random_sequence(20, rng))
        query = random_sequence(16, rng)
        run = run_poa_parallel(graph, query)
        reference_h, _, _ = graph_dp_tables(graph, query)
        assert run.h[-1][-1] == reference_h[-1][-1]


class TestParallelism:
    def test_faster_than_single_pe_wall_clock(self, rng):
        graph, query = build_case(rng, length=32, reads=4)
        parallel = run_poa_parallel(graph, query)
        single = run_poa_row_dp(graph, query)
        # Column tiling wins wall-clock; the gain saturates well below
        # 4x because the trace outputs funnel through the tail -- the
        # paper's POA data-movement bottleneck (Section 7.2).
        assert parallel.cycles < single.cycles
        assert parallel.cycles > single.cycles / 4

    def test_all_pes_do_work(self, rng):
        # Cells split evenly: wall cycles per cell beats 1/2 of the
        # single-PE per-cell cost (i.e. at least 2 PEs' worth of work
        # happens concurrently).
        graph, query = build_case(rng, length=32, reads=4)
        parallel = run_poa_parallel(graph, query)
        single = run_poa_row_dp(graph, query)
        assert parallel.cycles_per_cell < single.cycles_per_cell / 1.4


class TestInterface:
    def test_non_multiple_of_four_rejected(self, rng):
        graph = PartialOrderGraph("ACGTACGT")
        with pytest.raises(ValueError):
            run_poa_parallel(graph, "ACGTA")

    def test_empty_query_rejected(self):
        graph = PartialOrderGraph("ACGT")
        with pytest.raises(ValueError):
            run_poa_parallel(graph, "")

    def test_linear_gap_rejected(self, rng):
        from repro.seq.scoring import LinearGap, ScoringScheme

        graph = PartialOrderGraph("ACGTACGT")
        with pytest.raises(TypeError):
            run_poa_parallel(graph, "ACGT", ScoringScheme(gap=LinearGap()))
