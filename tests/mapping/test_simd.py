"""Tests for the 4 x 8-bit SIMD datapath (BSW's DLP mode)."""

import pytest

from repro.dpax.pe import pack_lanes, sat8, unpack_lanes
from repro.mapping.simd import (
    LANES,
    bsw_simd_spec,
    pack_words,
    reference_lane_score,
    run_bsw_simd,
)
from repro.seq.alphabet import random_sequence
from repro.seq.mutate import MutationProfile, Mutator
from repro.seq.scoring import LinearGap, ScoringScheme


class TestPacking:
    def test_roundtrip(self):
        lanes = [-128, 0, 55, 127]
        assert unpack_lanes(pack_lanes(lanes)) == lanes

    def test_negative_lanes_survive_wrap32(self):
        from repro.dpax.pe import wrap32

        word = pack_lanes([-1, -1, -1, -1])
        assert unpack_lanes(wrap32(word) & 0xFFFFFFFF) == [-1, -1, -1, -1]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            pack_lanes([200, 0, 0, 0])

    def test_pack_words_transposes(self):
        words = pack_words([[1, 2], [3, 4], [5, 6], [7, 8]])
        assert unpack_lanes(words[0]) == [1, 3, 5, 7]
        assert unpack_lanes(words[1]) == [2, 4, 6, 8]

    def test_pack_words_length_mismatch(self):
        with pytest.raises(ValueError):
            pack_words([[1], [1, 2], [1], [1]])

    def test_sat8(self):
        assert sat8(300) == 127
        assert sat8(-300) == -128


class TestSIMDBSW:
    def test_four_lanes_match_scalar_references(self, rng):
        mutator = Mutator(MutationProfile.illumina(), rng)
        pairs = []
        for _ in range(LANES):
            target = random_sequence(8, rng)
            query = (mutator.mutate(target) + random_sequence(20, rng))[:14]
            pairs.append((query, target))
        result = run_bsw_simd(pairs)
        assert result.scores == [reference_lane_score(q, t) for q, t in pairs]

    def test_lanes_are_independent(self, rng):
        # One matching lane among three mismatching lanes.
        target = random_sequence(8, rng)
        pairs = [
            (target + random_sequence(4, rng), target),  # perfect lane
            ("T" * 12, "A" * 8),
            ("G" * 12, "C" * 8),
            ("C" * 12, "A" * 8),
        ]
        result = run_bsw_simd(pairs)
        assert result.scores[0] == 8
        assert result.scores[1:] == [0, 0, 0]

    def test_partial_batch_padded(self, rng):
        target = random_sequence(8, rng)
        result = run_bsw_simd([(target + "ACGT", target)])
        assert len(result.scores) == 1
        assert result.scores[0] == 8

    def test_saturation_at_127(self, rng):
        # 160 identical bases would score 160; lanes clamp at 127.
        sequence = random_sequence(160, rng)
        result = run_bsw_simd([(sequence, sequence)])
        assert result.scores[0] == 127

    def test_throughput_advantage(self, rng):
        # Aggregate cells/cycle beats the scalar run by construction:
        # four tables in the time of one.
        mutator = Mutator(MutationProfile.illumina(), rng)
        target = random_sequence(8, rng)
        pairs = [
            ((mutator.mutate(target) + random_sequence(20, rng))[:14], target)
            for _ in range(LANES)
        ]
        result = run_bsw_simd(pairs)
        assert result.total_cells == 4 * result.cells_per_lane
        assert result.cycles_per_cell < 10  # ~4x the scalar ~20

    def test_mismatched_lane_lengths_rejected(self, rng):
        with pytest.raises(ValueError):
            run_bsw_simd([("ACGTACGT", "ACGT"), ("ACGT", "ACGT")])

    def test_spec_rejects_non_int8_scores(self):
        from repro.seq.scoring import SubstitutionMatrix

        scheme = ScoringScheme(substitution=SubstitutionMatrix(match=200))
        with pytest.raises(ValueError):
            bsw_simd_spec(scheme)

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            run_bsw_simd([])
