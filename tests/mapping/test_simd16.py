"""Tests for the 2 x 16-bit SIMD mode (Section 7.6.4)."""

import pytest

from repro.dpax.pe import pack_lanes_n, unpack_lanes_n
from repro.mapping.simd import lane_floor, reference_lane_score, run_bsw_simd
from repro.seq.alphabet import random_sequence
from repro.seq.mutate import MutationProfile, Mutator


class TestLanePacking16:
    def test_roundtrip(self):
        lanes = [-32768, 32767]
        assert unpack_lanes_n(pack_lanes_n(lanes, 2), 2) == lanes

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            pack_lanes_n([40000, 0], 2)

    def test_bad_lane_count_rejected(self):
        with pytest.raises(ValueError):
            pack_lanes_n([1, 2, 3], 3)

    def test_lane_floor(self):
        assert lane_floor(4) == -128
        assert lane_floor(2) == -32768


class TestBSW16:
    def test_two_lanes_match_scalar_references(self, rng):
        mutator = Mutator(MutationProfile.illumina(), rng)
        pairs = []
        for _ in range(2):
            target = random_sequence(8, rng)
            query = (mutator.mutate(target) + random_sequence(20, rng))[:14]
            pairs.append((query, target))
        result = run_bsw_simd(pairs, lanes=2)
        assert result.lanes == 2
        assert result.scores == [
            reference_lane_score(q, t, lanes=2) for q, t in pairs
        ]

    def test_16bit_handles_scores_past_int8(self, rng):
        # A 200-base perfect match scores 200: saturates the 8-bit mode,
        # exact in the 16-bit mode (Table 1's BSW precision choice).
        sequence = random_sequence(200, rng)
        wide = run_bsw_simd([(sequence, sequence)], lanes=2)
        narrow = run_bsw_simd([(sequence, sequence)], lanes=4)
        assert wide.scores[0] == 200
        assert narrow.scores[0] == 127

    def test_two_lane_throughput_is_half_of_four(self, rng):
        mutator = Mutator(MutationProfile.illumina(), rng)
        target = random_sequence(8, rng)
        pair = ((mutator.mutate(target) + random_sequence(20, rng))[:14], target)
        two = run_bsw_simd([pair, pair], lanes=2)
        four = run_bsw_simd([pair] * 4, lanes=4)
        # Same program, same cycles; cells double with lanes.
        assert two.cycles == pytest.approx(four.cycles, rel=0.05)
        assert four.total_cells == 2 * two.total_cells

    def test_bad_lane_request(self):
        with pytest.raises(ValueError):
            run_bsw_simd([("ACGT", "ACGT")], lanes=3)
