"""Cycle-simulator validation of the 1D Chain mapping."""

import random

import pytest

from repro.kernels.chain import Anchor
from repro.kernels.chain_fixed import chain_reordered_fixed
from repro.mapping.sliding1d import build_chain_programs, run_chain


def make_anchors(count, rng, step=70):
    anchors = []
    x = y = 0
    for _ in range(count):
        x += rng.randint(1, step)
        y += rng.randint(1, step)
        anchors.append(Anchor(x, y))
    anchors.sort(key=lambda a: (a.x, a.y))
    return anchors


class TestChainOnSimulator:
    def test_single_array_matches_fixed_reference(self, rng):
        anchors = make_anchors(25, rng)
        run = run_chain(anchors, total_pes=4)
        reference = chain_reordered_fixed(anchors, n=4)
        assert run.finished
        assert run.result.scores == reference.scores
        assert run.result.parents == reference.parents

    def test_concatenated_arrays_match_wider_window(self, rng):
        anchors = make_anchors(25, rng)
        run = run_chain(anchors, total_pes=8)
        reference = chain_reordered_fixed(anchors, n=8)
        assert run.finished
        assert run.result.scores == reference.scores

    def test_wider_window_changes_results(self, rng):
        # Sparse anchors where only a wide window can link distant pairs.
        anchors = make_anchors(30, rng, step=120)
        narrow = run_chain(anchors, total_pes=4)
        wide = run_chain(anchors, total_pes=8)
        assert max(wide.result.scores) >= max(narrow.result.scores)

    def test_best_chain_backtracks(self, rng):
        anchors = make_anchors(20, rng)
        run = run_chain(anchors, total_pes=4)
        chain = run.result.backtrack()
        assert chain == sorted(chain)
        assert chain[-1] == run.result.best_index


class TestChainPrograms:
    def test_programs_validate(self):
        programs = build_chain_programs(10, 8)
        for stream in programs.pe_control:
            for instruction in stream:
                instruction.validate()

    def test_bad_pe_count_rejected(self):
        with pytest.raises(ValueError):
            build_chain_programs(10, 6, pes_per_array=4)

    def test_empty_anchors_rejected(self):
        with pytest.raises(ValueError):
            run_chain([], total_pes=4)
