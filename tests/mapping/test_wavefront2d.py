"""Cycle-simulator validation of the 2D wavefront kernels.

These are the "simulations show same results as CPU baselines" tests
(Section 6): every kernel's systolic execution is compared against its
reference implementation, cell-exact where the arithmetic domain
allows it.
"""

import math
import random

import pytest

from repro.kernels.base import AlignmentMode
from repro.kernels.dtw import dtw_matrix
from repro.kernels.lcs import lcs_table
from repro.kernels.pairhmm import LOG_FRACTION_BITS, log_sum_lookup, pairhmm_forward
from repro.kernels.sw import align
from repro.mapping.kernels2d import (
    bsw_wavefront_spec,
    dtw_wavefront_spec,
    lcs_wavefront_spec,
    pairhmm_boundary_for_length,
    pairhmm_wavefront_spec,
)
from repro.mapping.wavefront2d import build_wavefront_programs, run_wavefront
from repro.seq.alphabet import encode, random_sequence
from repro.seq.mutate import MutationProfile, Mutator


class TestLCSOnSimulator:
    def test_final_row_matches_reference(self, rng):
        x = random_sequence(12, rng)
        y = random_sequence(8, rng)
        run = run_wavefront(lcs_wavefront_spec(), target=encode(y), stream=encode(x))
        assert run.finished
        reference = lcs_table(x, y)
        assert run.epilogue_series("c_up") == [
            reference[len(x)][j + 1] for j in range(len(y))
        ]

    def test_multi_pass_uses_fifo(self, rng):
        # 8 target rows on 4 PEs = 2 passes through the FIFO.
        x = random_sequence(10, rng)
        y = random_sequence(8, rng)
        run = run_wavefront(lcs_wavefront_spec(), target=encode(y), stream=encode(x))
        assert len(run.epilogue_values) == 2


class TestBSWOnSimulator:
    def test_best_score_matches_local_alignment(self, rng):
        for _ in range(3):
            template = random_sequence(8, rng)
            query = Mutator(MutationProfile.illumina(), rng).mutate(
                random_sequence(14, rng) + template
            )
            run = run_wavefront(
                bsw_wavefront_spec(), target=encode(template), stream=encode(query)
            )
            assert run.finished
            best = max(run.epilogue_series("hmax"))
            assert best == align(query, template, mode=AlignmentMode.LOCAL).score

    def test_mismatched_sequences_score_low(self, rng):
        run = run_wavefront(
            bsw_wavefront_spec(),
            target=encode("A" * 8),
            stream=encode("T" * 12),
        )
        assert max(run.epilogue_series("hmax")) == 0


class TestDTWOnSimulator:
    def test_final_row_matches_reference(self, rng):
        a = [rng.randint(0, 30) for _ in range(10)]
        b = [rng.randint(0, 30) for _ in range(8)]
        run = run_wavefront(dtw_wavefront_spec(), target=b, stream=a)
        assert run.finished
        reference = dtw_matrix(a, b)
        got = run.epilogue_series("d_up")
        for j, value in enumerate(got):
            expected = reference[len(a)][j + 1]
            if expected == float("inf"):
                assert value >= (1 << 19)
            else:
                assert value == expected


class TestPairHMMOnSimulator:
    def test_likelihood_matches_float_forward(self, rng):
        read = random_sequence(10, rng)
        haplotype = random_sequence(8, rng)
        spec = pairhmm_boundary_for_length(pairhmm_wavefront_spec(), len(haplotype))
        run = run_wavefront(spec, target=encode(haplotype), stream=encode(read))
        assert run.finished
        total = -(1 << 20)
        for values in (v for p in run.epilogue_values for v in p):
            total = log_sum_lookup(
                total, log_sum_lookup(values["m_up"], values["i_up"])
            )
        sim_log10 = (total / (1 << LOG_FRACTION_BITS)) * math.log10(2)
        assert sim_log10 == pytest.approx(pairhmm_forward(read, haplotype), abs=0.01)


class TestProgramGeneration:
    def test_target_must_divide_pe_count(self):
        with pytest.raises(ValueError):
            build_wavefront_programs(lcs_wavefront_spec(), 6, 10, pe_count=4)

    def test_programs_validate(self):
        programs = build_wavefront_programs(bsw_wavefront_spec(), 8, 12)
        for stream in programs.pe_control + [programs.array_control]:
            for instruction in stream:
                instruction.validate()
        for compute in programs.pe_compute:
            for bundle in compute:
                bundle.validate()

    def test_accumulator_adds_a_bundle(self):
        bsw = build_wavefront_programs(bsw_wavefront_spec(), 4, 4)
        lcs = build_wavefront_programs(lcs_wavefront_spec(), 4, 4)
        assert bsw.bundles_per_cell == len(bsw.cell_program.instructions) + 1
        assert lcs.bundles_per_cell == len(lcs.cell_program.instructions)

    def test_spec_role_coverage_checked(self):
        from repro.mapping.wavefront2d import Wavefront2DSpec
        from repro.dfg.kernels import lcs_dfg

        spec = Wavefront2DSpec(
            name="broken",
            dfg=lcs_dfg(),
            stream_input="x",
            static_input="y",
            recv=[],  # c_left et al. unbound
            delayed={},
            own={},
        )
        with pytest.raises(ValueError):
            spec.validate()


class TestRunMetrics:
    def test_cells_counted(self, rng):
        run = run_wavefront(
            lcs_wavefront_spec(),
            target=encode(random_sequence(4, rng)),
            stream=encode(random_sequence(6, rng)),
        )
        assert run.cells == 24
        assert run.cycles_per_cell > 0
