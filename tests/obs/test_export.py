"""Exporters: quantile estimation, Prometheus text, JSON snapshots."""

import json

import pytest

from repro.engine.metrics import Histogram, MetricsRegistry
from repro.obs.export import (
    histogram_quantiles,
    prometheus_text,
    quantile_from_buckets,
    snapshot_json,
)


def test_quantile_empty_histogram_is_zero():
    assert quantile_from_buckets([], 0.5) == 0.0
    assert quantile_from_buckets([[1.0, 0], ["inf", 0]], 0.9) == 0.0


def test_quantile_interpolates_within_bucket():
    # 100 observations uniformly in the (0, 10] bucket.
    buckets = [[10.0, 100], ["inf", 0]]
    assert quantile_from_buckets(buckets, 0.5) == pytest.approx(5.0)
    assert quantile_from_buckets(buckets, 0.25) == pytest.approx(2.5)


def test_quantile_spans_buckets():
    buckets = [[1.0, 50], [2.0, 50], ["inf", 0]]
    assert quantile_from_buckets(buckets, 0.5) == pytest.approx(1.0)
    assert quantile_from_buckets(buckets, 0.75) == pytest.approx(1.5)


def test_quantile_overflow_bucket_returns_maximum():
    buckets = [[1.0, 10], ["inf", 10]]
    assert quantile_from_buckets(buckets, 0.99, maximum=42.0) == 42.0
    # No tracked maximum: fall back to the last finite bound.
    assert quantile_from_buckets(buckets, 0.99) == 1.0


def test_quantile_clamps_to_observed_range():
    buckets = [[10.0, 4], ["inf", 0]]
    assert quantile_from_buckets(buckets, 0.01, minimum=3.0) >= 3.0
    assert quantile_from_buckets(buckets, 0.99, maximum=7.5) <= 7.5


def test_quantile_rejects_out_of_range_q():
    with pytest.raises(ValueError):
        quantile_from_buckets([[1.0, 1]], 1.5)


def test_histogram_quantile_method_matches_exporter():
    histogram = Histogram(bounds=(1.0, 5.0, 10.0))
    for value in (0.5, 2.0, 3.0, 7.0, 9.0, 12.0):
        histogram.observe(value)
    snap = histogram.snapshot()
    for q in (0.5, 0.95, 0.99):
        assert histogram.quantile(q) == pytest.approx(
            quantile_from_buckets(
                snap["buckets"], q, minimum=snap["min"], maximum=snap["max"]
            )
        )


def test_histogram_quantiles_labels():
    histogram = Histogram(bounds=(1.0,))
    histogram.observe(0.5)
    labels = histogram_quantiles(histogram.snapshot())
    assert set(labels) == {"p50", "p95", "p99"}


def _sample_snapshot():
    registry = MetricsRegistry()
    registry.incr("jobs_completed", 5)
    registry.incr("batches_total", 2)
    for value in (0.001, 0.02, 0.3):
        registry.observe("execute_s", value)
    snapshot = registry.snapshot()
    snapshot["derived"] = {"cache_hit_rate": 0.5}
    snapshot["quarantined"] = ["bsw"]
    return snapshot


def test_prometheus_text_counters_and_histograms():
    text = prometheus_text(_sample_snapshot())
    assert "# TYPE gendp_jobs_completed_total counter" in text
    assert "gendp_jobs_completed_total 5" in text
    # No double _total suffix for counters already ending in _total.
    assert "gendp_batches_total 2" in text
    assert "_total_total" not in text
    # Cumulative buckets plus sum/count plus quantile gauges.
    assert 'gendp_execute_s_bucket{le="+Inf"} 3' in text
    assert "gendp_execute_s_count 3" in text
    assert 'gendp_execute_s{quantile="0.5"}' in text
    # Non-histogram sections flatten to gauges.
    assert "# TYPE gendp_derived_cache_hit_rate gauge" in text
    assert "gendp_quarantined_count 1" in text
    assert text.endswith("\n")


def test_prometheus_buckets_are_cumulative():
    registry = MetricsRegistry()
    for value in (0.1, 0.2, 0.9):
        registry.observe("lat", value, bounds=(0.5, 1.0))
    text = prometheus_text(registry.snapshot())
    assert 'gendp_lat_bucket{le="0.5"} 2' in text
    assert 'gendp_lat_bucket{le="1.0"} 3' in text
    assert 'gendp_lat_bucket{le="+Inf"} 3' in text


def test_snapshot_json_injects_quantiles():
    document = json.loads(snapshot_json(_sample_snapshot()))
    histogram = document["histograms"]["execute_s"]
    assert set(histogram["quantiles"]) == {"p50", "p95", "p99"}
    assert histogram["count"] == 3
    # Original sections survive untouched.
    assert document["counters"]["jobs_completed"] == 5


def test_snapshot_json_is_deterministic():
    snapshot = _sample_snapshot()
    assert snapshot_json(snapshot) == snapshot_json(snapshot)
