"""Exporters: quantile estimation, Prometheus text, JSON snapshots."""

import json

import pytest

from repro.engine.metrics import Histogram, MetricsRegistry
from repro.obs.export import (
    histogram_quantiles,
    prometheus_text,
    quantile_from_buckets,
    snapshot_json,
)


def test_quantile_empty_histogram_is_zero():
    assert quantile_from_buckets([], 0.5) == 0.0
    assert quantile_from_buckets([[1.0, 0], ["inf", 0]], 0.9) == 0.0


def test_quantile_interpolates_within_bucket():
    # 100 observations uniformly in the (0, 10] bucket.
    buckets = [[10.0, 100], ["inf", 0]]
    assert quantile_from_buckets(buckets, 0.5) == pytest.approx(5.0)
    assert quantile_from_buckets(buckets, 0.25) == pytest.approx(2.5)


def test_quantile_spans_buckets():
    buckets = [[1.0, 50], [2.0, 50], ["inf", 0]]
    assert quantile_from_buckets(buckets, 0.5) == pytest.approx(1.0)
    assert quantile_from_buckets(buckets, 0.75) == pytest.approx(1.5)


def test_quantile_overflow_bucket_returns_maximum():
    buckets = [[1.0, 10], ["inf", 10]]
    assert quantile_from_buckets(buckets, 0.99, maximum=42.0) == 42.0
    # No tracked maximum: fall back to the last finite bound.
    assert quantile_from_buckets(buckets, 0.99) == 1.0


def test_quantile_clamps_to_observed_range():
    buckets = [[10.0, 4], ["inf", 0]]
    assert quantile_from_buckets(buckets, 0.01, minimum=3.0) >= 3.0
    assert quantile_from_buckets(buckets, 0.99, maximum=7.5) <= 7.5


def test_quantile_rejects_out_of_range_q():
    with pytest.raises(ValueError):
        quantile_from_buckets([[1.0, 1]], 1.5)
    with pytest.raises(ValueError):
        quantile_from_buckets([[1.0, 1]], -0.01)


def test_quantile_extremes_return_observed_extremes():
    # q=0 / q=1 must report the tracked min/max, not a bucket edge.
    buckets = [[10.0, 100], ["inf", 0]]
    assert quantile_from_buckets(buckets, 0.0, minimum=0.3) == 0.3
    assert quantile_from_buckets(buckets, 1.0, maximum=9.7) == 9.7
    # Without tracked extremes they fall back to interpolation/edges.
    assert quantile_from_buckets(buckets, 0.0) == 0.0
    assert quantile_from_buckets(buckets, 1.0) == 10.0


def test_quantile_skips_empty_buckets():
    # Mass only in the third bucket: the median interpolates there,
    # never dividing by an empty bucket's zero count.
    buckets = [[1.0, 0], [2.0, 0], [4.0, 10], ["inf", 0]]
    assert quantile_from_buckets(buckets, 0.5) == pytest.approx(3.0)


def test_quantile_exactly_on_cumulative_boundary():
    # target == cumulative count of a bucket lands at its upper bound.
    buckets = [[1.0, 5], [2.0, 5], ["inf", 0]]
    assert quantile_from_buckets(buckets, 0.5) == pytest.approx(1.0)


def test_quantile_single_observation():
    buckets = [[1.0, 1], ["inf", 0]]
    assert (
        quantile_from_buckets(buckets, 0.5, minimum=0.7, maximum=0.7) == 0.7
    )


def test_quantile_all_mass_in_overflow_bucket():
    buckets = [[1.0, 0], ["inf", 5]]
    # With a tracked maximum the overflow bucket reports it ...
    assert quantile_from_buckets(buckets, 0.5, maximum=8.0) == 8.0
    # ... without one, the last finite bound is the only safe answer.
    assert quantile_from_buckets(buckets, 0.5) == 1.0


def test_quantile_clamp_beats_interpolation():
    # Interpolation would give 5.0; the tracked range [4.2, 4.4] is
    # tighter and wins on both sides.
    buckets = [[10.0, 100], ["inf", 0]]
    assert (
        quantile_from_buckets(buckets, 0.5, minimum=4.2, maximum=4.4) == 4.4
    )


def test_quantile_negative_bounds():
    # DP scores can be negative; interpolation must work below zero.
    buckets = [[-5.0, 4], [0.0, 4], ["inf", 0]]
    value = quantile_from_buckets(buckets, 0.25, minimum=-9.0)
    assert -9.0 <= value <= -5.0


def test_histogram_quantile_rejects_out_of_range_q():
    histogram = Histogram(bounds=(1.0,))
    histogram.observe(0.5)
    with pytest.raises(ValueError):
        histogram.quantile(2.0)


def test_histogram_quantile_method_matches_exporter():
    histogram = Histogram(bounds=(1.0, 5.0, 10.0))
    for value in (0.5, 2.0, 3.0, 7.0, 9.0, 12.0):
        histogram.observe(value)
    snap = histogram.snapshot()
    for q in (0.5, 0.95, 0.99):
        assert histogram.quantile(q) == pytest.approx(
            quantile_from_buckets(
                snap["buckets"], q, minimum=snap["min"], maximum=snap["max"]
            )
        )


def test_histogram_quantiles_labels():
    histogram = Histogram(bounds=(1.0,))
    histogram.observe(0.5)
    labels = histogram_quantiles(histogram.snapshot())
    assert set(labels) == {"p50", "p95", "p99"}


def _sample_snapshot():
    registry = MetricsRegistry()
    registry.incr("jobs_completed", 5)
    registry.incr("batches_total", 2)
    for value in (0.001, 0.02, 0.3):
        registry.observe("execute_s", value)
    snapshot = registry.snapshot()
    snapshot["derived"] = {"cache_hit_rate": 0.5}
    snapshot["quarantined"] = ["bsw"]
    return snapshot


def test_prometheus_text_counters_and_histograms():
    text = prometheus_text(_sample_snapshot())
    assert "# TYPE gendp_jobs_completed_total counter" in text
    assert "gendp_jobs_completed_total 5" in text
    # No double _total suffix for counters already ending in _total.
    assert "gendp_batches_total 2" in text
    assert "_total_total" not in text
    # Cumulative buckets plus sum/count; derived quantiles live in
    # their own gauge family (a quantile-labelled sample inside the
    # histogram family would violate the exposition grammar).
    assert 'gendp_execute_s_bucket{le="+Inf"} 3' in text
    assert "gendp_execute_s_count 3" in text
    assert 'gendp_execute_s_quantile{quantile="0.5"}' in text
    assert "# TYPE gendp_execute_s_quantile gauge" in text
    # Non-histogram sections flatten to gauges.
    assert "# TYPE gendp_derived_cache_hit_rate gauge" in text
    assert "gendp_quarantined_count 1" in text
    assert text.endswith("\n")


def test_prometheus_buckets_are_cumulative():
    registry = MetricsRegistry()
    for value in (0.1, 0.2, 0.9):
        registry.observe("lat", value, bounds=(0.5, 1.0))
    text = prometheus_text(registry.snapshot())
    assert 'gendp_lat_bucket{le="0.5"} 2' in text
    assert 'gendp_lat_bucket{le="1.0"} 3' in text
    assert 'gendp_lat_bucket{le="+Inf"} 3' in text


def test_snapshot_json_injects_quantiles():
    document = json.loads(snapshot_json(_sample_snapshot()))
    histogram = document["histograms"]["execute_s"]
    assert set(histogram["quantiles"]) == {"p50", "p95", "p99"}
    assert histogram["count"] == 3
    # Original sections survive untouched.
    assert document["counters"]["jobs_completed"] == 5


def test_snapshot_json_is_deterministic():
    snapshot = _sample_snapshot()
    assert snapshot_json(snapshot) == snapshot_json(snapshot)


def _labeled_snapshot():
    return {
        "counters": {"cluster_jobs_routed": 7},
        "gauges": {"dlq_depth": 2, "queue_depth": 5},
        "breakers": {"bsw": 0.0, "lcs": 2.0},
        "shards": {
            "shard-0": {"health": 0.0, "queued": 3.0},
            "shard-1": {"health": 2.0, "queued": 0.0, "note": "text"},
        },
    }


def test_prometheus_gauges_section_renders_bare_names():
    text = prometheus_text(_labeled_snapshot())
    assert "# TYPE gendp_dlq_depth gauge" in text
    assert "gendp_dlq_depth 2" in text
    assert "gendp_queue_depth 5" in text
    # Not flattened through the generic <section>_<key> scheme.
    assert "gendp_gauges_dlq_depth" not in text


def test_prometheus_breakers_render_with_kernel_labels():
    text = prometheus_text(_labeled_snapshot())
    assert "# TYPE gendp_breaker_state gauge" in text
    assert 'gendp_breaker_state{kernel="bsw"} 0' in text
    assert 'gendp_breaker_state{kernel="lcs"} 2' in text
    assert "gendp_breakers_" not in text


def test_prometheus_shards_render_with_shard_labels():
    text = prometheus_text(_labeled_snapshot())
    assert "# TYPE gendp_cluster_health gauge" in text
    assert 'gendp_cluster_health{shard="shard-0"} 0' in text
    assert 'gendp_cluster_health{shard="shard-1"} 2' in text
    assert 'gendp_cluster_queued{shard="shard-0"} 3' in text
    # Non-numeric shard fields are skipped, not rendered as garbage.
    assert "note" not in text
    assert "gendp_shards_" not in text


def test_labeled_sections_survive_snapshot_json():
    document = json.loads(snapshot_json(_labeled_snapshot()))
    assert document["gauges"]["dlq_depth"] == 2
    assert document["breakers"]["lcs"] == 2.0
    assert document["shards"]["shard-1"]["health"] == 2.0


def test_cluster_router_snapshot_exports_end_to_end():
    """The real ClusterRouter snapshot renders per-shard series."""
    from repro.cluster import ClusterConfig, ClusterRouter, SimClock
    from repro.engine import EngineConfig, make_job

    config = ClusterConfig(
        shards=2, engine=EngineConfig(workers=0, max_queue=16)
    )
    with ClusterRouter(config, clock=SimClock()) as router:
        router.submit(make_job("lcs", {"x": "ACGT", "y": "ACG"}))
        router.drain()
        text = prometheus_text(router.snapshot())
    assert "gendp_cluster_jobs_routed_total 1" in text
    assert 'gendp_cluster_health{shard="shard-0"}' in text
    assert 'gendp_cluster_health{shard="shard-1"}' in text
    assert "# TYPE gendp_cluster_shards_in_ring gauge" in text
