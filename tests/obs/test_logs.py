"""Structured JSON logging and correlation-id context."""

import io
import json
import logging

from repro.obs.logs import (
    JsonLogFormatter,
    configure_json_logging,
    current_context,
    get_logger,
    log_context,
)


def _capture_logger(name="repro"):
    stream = io.StringIO()
    handler = configure_json_logging(stream=stream, logger_name=name)
    return stream, handler


def teardown_function(function):
    # Remove any JSON handlers tests installed on the repro logger.
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        if getattr(handler, "_gendp_json", False):
            logger.removeHandler(handler)


def test_log_context_binds_and_restores():
    assert current_context() == {}
    with log_context(trace_id="t1", job_id=4):
        assert current_context() == {"trace_id": "t1", "job_id": 4}
        with log_context(job_id=9, batch_id=2):
            assert current_context() == {
                "trace_id": "t1",
                "job_id": 9,
                "batch_id": 2,
            }
        assert current_context() == {"trace_id": "t1", "job_id": 4}
    assert current_context() == {}


def test_log_context_drops_none_values():
    with log_context(trace_id=None, kernel="bsw"):
        assert current_context() == {"kernel": "bsw"}


def test_json_lines_carry_context_and_extras():
    stream, _ = _capture_logger()
    logger = get_logger("repro.engine.service")
    with log_context(trace_id="abc"):
        logger.info("drain started", extra={"jobs": 3})
    record = json.loads(stream.getvalue().strip())
    assert record["message"] == "drain started"
    assert record["level"] == "info"
    assert record["logger"] == "repro.engine.service"
    assert record["trace_id"] == "abc"
    assert record["jobs"] == 3
    assert isinstance(record["ts"], float)
    assert isinstance(record["pid"], int)


def test_configure_is_idempotent():
    logger = logging.getLogger("repro")
    before = len(logger.handlers)
    configure_json_logging(stream=io.StringIO())
    configure_json_logging(stream=io.StringIO())
    json_handlers = [
        handler
        for handler in logger.handlers
        if getattr(handler, "_gendp_json", False)
    ]
    assert len(json_handlers) == 1
    assert len(logger.handlers) <= before + 1


def test_exception_info_is_rendered():
    stream, _ = _capture_logger()
    logger = get_logger("repro.test")
    try:
        raise ValueError("boom")
    except ValueError:
        logger.exception("it failed")
    record = json.loads(stream.getvalue().strip())
    assert record["level"] == "error"
    assert "ValueError: boom" in record["exception"]


def test_formatter_output_is_valid_json_for_odd_extras():
    formatter = JsonLogFormatter()
    record = logging.LogRecord(
        "repro.x", logging.INFO, __file__, 1, "msg", None, None
    )
    record.payload = {1, 2}  # not JSON serializable -> default=str
    line = formatter.format(record)
    assert json.loads(line)["message"] == "msg"


def test_nothing_emitted_without_configuration(capsys):
    # Fresh logger namespace with no handler installed: records are
    # swallowed by the root logger's lastResort at WARNING, and INFO
    # logs cost only the disabled check.
    logger = get_logger("repro.unconfigured.module")
    logger.info("should go nowhere")
    captured = capsys.readouterr()
    assert "should go nowhere" not in captured.out
