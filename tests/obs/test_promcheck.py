"""The strict exposition-format checker, and the exporter under it.

Two halves: unit tests proving :func:`check_exposition` catches each
class of spec violation, and the satellite guard -- rich real
snapshots (engine counters/histograms, breaker labels, shard and
tenant sections, SLO gauges) rendered by ``prometheus_text`` must
scrape clean.
"""

import pytest

from repro.engine.metrics import MetricsRegistry
from repro.obs.export import prometheus_text
from repro.obs.promcheck import (
    check_exposition,
    escape_help_text,
    escape_label_value,
)


def _assert_clean(text: str) -> None:
    assert check_exposition(text) == []


def _assert_flagged(text: str, needle: str) -> None:
    problems = check_exposition(text)
    assert any(needle in problem for problem in problems), problems


class TestViolationDetection:
    def test_empty_body_is_clean(self):
        _assert_clean("")

    def test_missing_trailing_newline(self):
        _assert_flagged("a_total 1", "end with a newline")

    def test_illegal_metric_name(self):
        _assert_flagged("# TYPE 9bad counter\n", "illegal metric name")

    def test_invalid_type_keyword(self):
        _assert_flagged("# TYPE a_total notatype\n", "invalid type")

    def test_help_must_precede_type(self):
        text = "# TYPE a counter\n# HELP a text\na 1\n"
        _assert_flagged(text, "must precede its TYPE")

    def test_duplicate_type(self):
        text = "# TYPE a counter\n# TYPE a counter\na 1\n"
        _assert_flagged(text, "duplicate TYPE")

    def test_duplicate_help(self):
        text = "# HELP a x\n# HELP a y\na 1\n"
        _assert_flagged(text, "duplicate HELP")

    def test_interleaved_families(self):
        text = "a 1\nb 1\na{x=\"1\"} 2\n"
        _assert_flagged(text, "not consecutive")

    def test_duplicate_sample(self):
        text = 'a{x="1"} 1\na{x="1"} 2\n'
        _assert_flagged(text, "duplicate sample")

    def test_label_order_does_not_mask_duplicates(self):
        text = 'a{x="1",y="2"} 1\na{y="2",x="1"} 2\n'
        _assert_flagged(text, "duplicate sample")

    def test_unparseable_value(self):
        _assert_flagged("a one\n", "unparseable value")

    def test_special_values_are_legal(self):
        _assert_clean("a +Inf\nb -Inf\nc NaN\nd 1e-9\n")

    def test_unescaped_quote_in_label_value(self):
        _assert_flagged('a{x="b"c"} 1\n', "bad label syntax")

    def test_illegal_escape_sequence(self):
        _assert_flagged('a{x="b\\tc"} 1\n', "bad label syntax")

    def test_escaped_quote_and_comma_parse(self):
        # The naive comma-split failure mode: a value containing an
        # escaped quote and a comma is still ONE label.
        _assert_clean('a{x="b\\"y,z",w="2"} 1\n')

    def test_bad_label_name(self):
        _assert_flagged('a{9x="1"} 1\n', "bad label syntax")

    def test_duplicate_label_names(self):
        _assert_flagged('a{x="1",x="2"} 1\n', "duplicate label names")


HISTOGRAM_OK = (
    "# TYPE h histogram\n"
    'h_bucket{le="0.5"} 2\n'
    'h_bucket{le="+Inf"} 3\n'
    "h_sum 1.2\n"
    "h_count 3\n"
)


class TestHistogramRules:
    def test_well_formed_histogram_is_clean(self):
        _assert_clean(HISTOGRAM_OK)

    def test_stray_series_inside_histogram_family(self):
        # The exporter bug this checker was written to catch: a
        # quantile-labelled gauge sample published under the histogram
        # family name (pre-fix prometheus_text did exactly this).
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1.2\n"
            "h_count 3\n"
            'h{quantile="0.5"} 0.4\n'
        )
        _assert_flagged(text, "only _bucket/_sum/_count")

    def test_bucket_without_le(self):
        text = "# TYPE h histogram\nh_bucket 3\nh_count 3\n"
        _assert_flagged(text, "without le label")

    def test_non_ascending_bounds(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1.0"} 1\n'
            'h_bucket{le="0.5"} 2\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_count 3\n"
        )
        _assert_flagged(text, "not ascending")

    def test_decreasing_cumulative_counts(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.5"} 3\n'
            'h_bucket{le="+Inf"} 2\n'
            "h_count 2\n"
        )
        _assert_flagged(text, "counts decrease")

    def test_missing_inf_bucket(self):
        text = "# TYPE h histogram\n" 'h_bucket{le="0.5"} 2\n' "h_count 3\n"
        _assert_flagged(text, "missing +Inf")

    def test_inf_bucket_must_equal_count(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 2\n'
            "h_count 3\n"
        )
        _assert_flagged(text, "!= _count")


class TestEscaping:
    def test_escape_label_value(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'

    def test_escape_help_text_leaves_quotes(self):
        assert escape_help_text('a"b\nc') == 'a"b\\nc'

    def test_escaped_value_round_trips_through_checker(self):
        value = escape_label_value('x"y\\z')
        _assert_clean(f'a{{k="{value}"}} 1\n')


def _rich_snapshot():
    """An engine-shaped snapshot exercising every exporter section."""
    registry = MetricsRegistry()
    registry.incr("jobs_completed", 9)
    registry.incr("batches_total", 3)
    for value in (0.001, 0.05, 0.4, 2.0):
        registry.observe("execute_s", value)
    for value in (0.01, 0.02):
        registry.observe("queue_wait_s", value)
    snapshot = registry.snapshot()
    snapshot["derived"] = {"cache_hit_rate": 0.75}
    snapshot["gauges"] = {"queue_depth": 4, "dlq_depth": 0}
    # A breaker kernel name with every character the escaper handles.
    snapshot["breakers"] = {"bsw": 0.0, 'we"ird\\name': 2.0}
    snapshot["shards"] = {
        "shard-0": {"health": 0.0, "queued": 1.0},
        "shard-1": {"health": 2.0, "queued": 0.0},
    }
    snapshot["quarantined"] = ["lcs"]
    return snapshot


class TestExporterIsSpecClean:
    """The satellite guard: prometheus_text output scrapes clean."""

    def test_rich_snapshot_scrapes_clean(self):
        _assert_clean(prometheus_text(_rich_snapshot()))

    def test_tenant_and_slo_sections_scrape_clean(self):
        from repro.slo import SLOEngine, TenantLedger, synthesize_burn_replay

        ledger = TenantLedger()
        ledger.record_admission("acme", True)
        ledger.record_admission("evil\"corp", False, reason="quota")
        ledger.record_transport("acme", 512)
        slo = SLOEngine()
        for record in synthesize_burn_replay(mode="burn"):
            slo.observe(record["snapshot"], at=record["t"])
        snapshot = slo.annotate(ledger.annotate(_rich_snapshot()))
        text = prometheus_text(snapshot)
        _assert_clean(text)
        assert 'gendp_tenant_jobs_submitted{tenant="acme"} 1' in text
        assert 'gendp_slo_target{objective="job-latency"}' in text

    def test_live_engine_snapshot_scrapes_clean(self):
        from repro.engine import Engine, EngineConfig, make_job

        with Engine(EngineConfig(workers=0, max_queue=8)) as engine:
            engine.submit(make_job("lcs", {"x": "ACGT", "y": "ACG"}))
            engine.drain()
            snapshot = engine.snapshot()
        _assert_clean(prometheus_text(snapshot))

    def test_old_quantile_format_would_be_flagged(self):
        # Regression pin: the pre-fix exporter emitted
        # ``gendp_execute_s{quantile="0.5"}`` inside the histogram
        # family; assert the checker rejects that shape so the fix
        # cannot quietly revert.
        text = (
            "# TYPE gendp_execute_s histogram\n"
            'gendp_execute_s_bucket{le="+Inf"} 3\n'
            "gendp_execute_s_sum 1.0\n"
            "gendp_execute_s_count 3\n"
            'gendp_execute_s{quantile="0.5"} 0.2\n'
        )
        assert check_exposition(text) != []
