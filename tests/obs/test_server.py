"""The stdlib metrics scrape endpoint."""

import json
import urllib.error
import urllib.request

import pytest

from repro.engine.metrics import MetricsRegistry
from repro.obs.server import MetricsServer


def _snapshot():
    registry = MetricsRegistry()
    registry.incr("jobs_completed", 3)
    registry.observe("execute_s", 0.01)
    return registry.snapshot()


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5.0) as response:
        return response.status, response.read().decode("utf-8")


def test_serves_prometheus_and_json_and_health():
    with MetricsServer(_snapshot, port=0) as server:
        status, body = _get(f"{server.url}/metrics")
        assert status == 200
        assert "gendp_jobs_completed_total 3" in body

        status, body = _get(f"{server.url}/metrics.json")
        assert status == 200
        document = json.loads(body)
        assert document["counters"]["jobs_completed"] == 3
        assert "quantiles" in document["histograms"]["execute_s"]

        status, body = _get(f"{server.url}/healthz")
        assert status == 200
        assert body == "ok\n"


def test_unknown_path_is_404():
    with MetricsServer(_snapshot, port=0) as server:
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{server.url}/nope")
        assert excinfo.value.code == 404


def test_snapshot_failure_is_500():
    def broken():
        raise RuntimeError("registry gone")

    with MetricsServer(broken, port=0) as server:
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{server.url}/metrics")
        assert excinfo.value.code == 500


def test_live_snapshot_function_is_called_per_scrape():
    registry = MetricsRegistry()
    with MetricsServer(registry.snapshot, port=0) as server:
        _, body = _get(f"{server.url}/metrics")
        assert "jobs_completed" not in body
        registry.incr("jobs_completed")
        _, body = _get(f"{server.url}/metrics")
        assert "gendp_jobs_completed_total 1" in body


def test_stop_is_idempotent_and_port_is_ephemeral():
    server = MetricsServer(_snapshot, port=0)
    server.start()
    port = server.port
    assert port != 0
    server.stop()
    server.stop()
