"""TraceRecorder: deterministic clocks, export, schema validation."""

import json

import pytest

from repro.obs.trace import (
    Span,
    TraceRecorder,
    new_trace_id,
    validate_chrome_trace,
    worker_span,
)


class FakeClock:
    """A manually advanced clock for deterministic timelines."""

    def __init__(self, start: float = 100.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def tick(self, seconds: float) -> None:
        self.now += seconds


def test_span_duration_and_instant():
    span = Span(name="x", cat="c", start=1.0, end=3.5, pid=1, tid=1)
    assert span.duration == 2.5
    assert not span.instant
    instant = Span(name="x", cat="c", start=1.0, end=1.0, pid=1, tid=1)
    assert instant.instant


def test_recorder_records_spans_with_injected_clock():
    clock = FakeClock()
    recorder = TraceRecorder(clock=clock, trace_id="abc123")
    with recorder.span("work", phase="compile") as extra:
        clock.tick(2.0)
        extra["outcome"] = "ok"
    spans = recorder.spans()
    assert len(spans) == 1
    assert spans[0].name == "work"
    assert spans[0].duration == pytest.approx(2.0)
    assert spans[0].args == {"phase": "compile", "outcome": "ok"}


def test_event_is_instant():
    clock = FakeClock()
    recorder = TraceRecorder(clock=clock)
    recorder.event("submitted", job_id=7)
    (span,) = recorder.spans()
    assert span.instant
    assert span.args["job_id"] == 7


def test_none_args_are_dropped():
    recorder = TraceRecorder(clock=FakeClock())
    recorder.event("e", job_id=None, kernel="bsw")
    (span,) = recorder.spans()
    assert "job_id" not in span.args
    assert span.args["kernel"] == "bsw"


def test_end_clamped_to_start():
    recorder = TraceRecorder(clock=FakeClock())
    span = recorder.add_span("backwards", 10.0, 5.0)
    assert span.end == 10.0  # never negative durations


def test_max_events_drops_and_counts():
    recorder = TraceRecorder(clock=FakeClock(), max_events=2)
    for index in range(5):
        recorder.event(f"e{index}")
    assert len(recorder) == 2
    assert recorder.dropped == 3


def test_ingest_worker_spans():
    recorder = TraceRecorder(clock=FakeClock(), trace_id="t1")
    payloads = [
        worker_span("job:run", 1.0, 2.0, kernel="bsw", job_id=3),
        {"name": "bad"},  # malformed: missing start/end
        "not-a-dict",
    ]
    assert recorder.ingest(payloads) == 1
    (span,) = recorder.spans()
    assert span.name == "job:run"
    assert span.args["job_id"] == 3
    assert span.cat == "worker"


def test_chrome_trace_normalizes_to_origin():
    clock = FakeClock(start=1000.0)
    recorder = TraceRecorder(clock=clock, trace_id="deadbeef")
    recorder.event("first")
    clock.tick(0.5)
    with recorder.span("second"):
        clock.tick(1.0)
    document = recorder.to_chrome_trace()
    events = document["traceEvents"]
    assert len(events) == 2
    by_name = {event["name"]: event for event in events}
    assert by_name["first"]["ts"] == 0
    assert by_name["first"]["ph"] == "i"
    assert by_name["first"]["s"] == "t"
    assert by_name["second"]["ts"] == pytest.approx(0.5e6)
    assert by_name["second"]["dur"] == pytest.approx(1.0e6)
    for event in events:
        assert event["args"]["trace_id"] == "deadbeef"
    assert document["otherData"]["trace_id"] == "deadbeef"
    assert validate_chrome_trace(document) == []


def test_write_round_trips(tmp_path):
    recorder = TraceRecorder(clock=FakeClock())
    recorder.event("e")
    path = tmp_path / "trace.json"
    recorder.write(str(path))
    document = json.loads(path.read_text())
    assert validate_chrome_trace(document) == []


def test_new_trace_id_is_unique_hex():
    ids = {new_trace_id() for _ in range(32)}
    assert len(ids) == 32
    for trace_id in ids:
        int(trace_id, 16)
        assert len(trace_id) == 16


def test_validate_rejects_malformed_documents():
    assert validate_chrome_trace([]) == ["document is not an object"]
    assert validate_chrome_trace({"traceEvents": 3}) == [
        "traceEvents is not an array"
    ]
    problems = validate_chrome_trace(
        {
            "traceEvents": [
                {"ph": "X", "ts": 1, "pid": 1, "tid": 1},  # no name, no dur
                {"name": "n", "ph": "Z", "ts": -1, "pid": 1, "tid": 1},
                {"name": "ok", "ph": "i", "ts": 0, "pid": 1, "tid": 1, "args": 4},
            ]
        }
    )
    assert any("missing 'name'" in p for p in problems)
    assert any("without numeric dur" in p for p in problems)
    assert any("unsupported phase" in p for p in problems)
    assert any("non-negative" in p for p in problems)
    assert any("args is not an object" in p for p in problems)


def test_recorder_is_thread_safe():
    import threading

    recorder = TraceRecorder(clock=FakeClock())

    def record():
        for _ in range(200):
            recorder.event("e")

    threads = [threading.Thread(target=record) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(recorder) == 800


class TestDefaultClock:
    """The recorder default: wall-anchored, monotonic, injectable."""

    def test_default_clock_is_not_raw_wall_time(self):
        import time

        recorder = TraceRecorder()
        assert recorder.clock is not time.time

    def test_default_clock_reads_like_epoch_seconds(self):
        import time

        recorder = TraceRecorder()
        # Within a second of the wall clock: Chrome timestamps stay
        # wall-anchored so multi-process traces share one axis.
        assert abs(recorder.now() - time.time()) < 1.0

    def test_monotonic_epoch_clock_never_steps_backwards(self):
        from repro.obs.trace import monotonic_epoch_clock

        clock = monotonic_epoch_clock()
        readings = [clock() for _ in range(1000)]
        assert readings == sorted(readings)

    def test_clocks_share_a_process_timeline(self):
        # Two recorders created at different times still agree, so
        # spans folded across recorders stay ordered.
        first = TraceRecorder()
        second = TraceRecorder()
        a = first.now()
        b = second.now()
        assert b >= a

    def test_injected_clock_still_wins(self):
        clock = FakeClock(start=42.0)
        recorder = TraceRecorder(clock=clock)
        assert recorder.now() == 42.0
