"""Acceptance: optimizing the six kernels is safe and actually wins.

For every differential-fuzz kernel the optimized program must pass
the guard verifier, match the reference implementation on seeded
workloads and random cell probes, and never issue more bundles than
the unoptimized compile -- with strict wins where the issue mentions
them (BSW and POA's combine program lose their unread traceback
outputs; Chain re-packs below the mapper's greedy schedule).
"""

import pytest

from repro.guard.diff import (
    DIFF_KERNELS,
    compile_kernel_programs,
    generate_payload,
    probe_cell,
    run_case,
)
from repro.guard.verifier import check_program
from repro.opt import contract_for, default_pipeline, optimize_kernel_programs

#: (kernel, cell) -> (unoptimized, optimized) bundle counts for the
#: strict wins; every other program must simply not get worse.
STRICT_WINS = {
    ("bsw", "cell"): (4, 3),
    ("poa", "final"): (3, 2),
    ("chain", "cell"): (13, 12),
}


@pytest.fixture(scope="module")
def optimized():
    return {kernel: optimize_kernel_programs(kernel) for kernel in DIFF_KERNELS}


@pytest.fixture(scope="module")
def baseline():
    return {kernel: compile_kernel_programs(kernel) for kernel in DIFF_KERNELS}


class TestStaticAcceptance:
    @pytest.mark.parametrize("kernel", DIFF_KERNELS)
    def test_optimized_programs_pass_the_verifier(self, optimized, kernel):
        programs, _ = optimized[kernel]
        for cell_name, cell in programs.cells.items():
            report = check_program(cell, name=f"{kernel}:{cell_name}")
            assert report.ok, report.violations

    @pytest.mark.parametrize("kernel", DIFF_KERNELS)
    def test_never_more_instructions(self, optimized, baseline, kernel):
        programs, _ = optimized[kernel]
        for cell_name, cell in programs.cells.items():
            before = baseline[kernel].cells[cell_name]
            assert len(cell.instructions) <= len(before.instructions)

    def test_strict_wins(self, optimized, baseline):
        for (kernel, cell_name), (before, after) in STRICT_WINS.items():
            base = baseline[kernel].cells[cell_name]
            cell = optimized[kernel][0].cells[cell_name]
            assert len(base.instructions) == before
            assert len(cell.instructions) == after

    @pytest.mark.parametrize("kernel", DIFF_KERNELS)
    def test_idempotent(self, optimized, kernel):
        _, outcomes = optimized[kernel]
        for cell_name, outcome in outcomes.items():
            label = kernel if cell_name == "cell" else f"{kernel}:{cell_name}"
            again = default_pipeline(contract_for(label)).run(outcome.program)
            assert again.program is outcome.program


class TestDifferentialAcceptance:
    @pytest.mark.parametrize("kernel", DIFF_KERNELS)
    def test_seeded_sweep_matches_reference(self, optimized, kernel):
        programs, _ = optimized[kernel]
        for index in range(8):
            payload = generate_payload(kernel, seed=1234, index=index)
            outcome = run_case(kernel, payload, programs)
            assert outcome.ok, (index, outcome.expected, outcome.actual)

    @pytest.mark.parametrize("kernel", DIFF_KERNELS)
    def test_random_cell_probes_match_the_dfg(self, optimized, kernel):
        programs, _ = optimized[kernel]
        for index, (_, cell) in enumerate(programs.probe_targets()):
            reproducer = probe_cell(kernel, cell, seed=42, index=index, probes=5)
            assert reproducer is None, reproducer.to_json()


class TestContracts:
    def test_engine_kernels_use_runner_contracts(self):
        from repro.engine.runners import CONSUMED_OUTPUTS

        for kernel, contract in CONSUMED_OUTPUTS.items():
            assert contract_for(kernel) == contract

    def test_sweep_contracts_cover_the_scratchpad_kernels(self):
        assert contract_for("poa:final") == frozenset({"h", "e"})
        assert contract_for("bellman_ford") == frozenset({"dist", "pred"})
        assert contract_for("nonesuch") is None

    def test_contracts_only_drop_outputs_that_exist(self, baseline):
        # A stale contract naming a nonexistent output would silently
        # prune nothing; one naming every output would back off.  Check
        # each contract is a proper, nonempty subset of real outputs.
        for kernel in DIFF_KERNELS:
            for cell_name, cell in baseline[kernel].cells.items():
                label = kernel if cell_name == "cell" else f"{kernel}:{cell_name}"
                contract = contract_for(label)
                if contract is None:
                    continue
                assert contract <= set(cell.output_regs), label
                assert contract, label
