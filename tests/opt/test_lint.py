"""The lint analyses and the whole-kernel report."""

import json

from repro.diagnostics import Diagnostic, Severity
from repro.dfg.graph import Opcode
from repro.dpmap.codegen import CellProgram
from repro.guard.verifier import MachineLimits
from repro.isa.compute import CUInstruction, Imm, Reg, SlotOp, VLIWInstruction
from repro.opt.lint import PRESSURE_WARNING_FRACTION, lint_program, run_lint


def way(dest, opcode, *operands, root=None, right=None):
    return CUInstruction(
        kind="tree",
        dest=Reg(dest),
        left=SlotOp(opcode, tuple(operands)),
        right=right,
        root=root,
    )


def program(bundles, inputs, outputs):
    return CellProgram(
        mapping=None,
        instructions=[
            VLIWInstruction(cu0=b[0], cu1=b[1] if len(b) > 1 else None)
            for b in bundles
        ],
        input_regs=dict(inputs),
        output_regs=dict(outputs),
        node_regs={},
    )


def rules(findings):
    return {d.rule for d in findings}


class TestDiagnosticsType:
    def test_verifier_violation_is_the_shared_diagnostic(self):
        from repro.guard.verifier import Violation

        assert Violation is Diagnostic

    def test_severity_labels_round_trip(self):
        for severity in Severity:
            assert Severity.from_label(severity.label) is severity
        assert Severity.ERROR > Severity.WARNING > Severity.INFO

    def test_str_keeps_the_legacy_error_format(self):
        error = Diagnostic(rule="r", message="m", bundle=2)
        assert str(error) == "r [bundle 2]: m"
        note = Diagnostic(rule="r", message="m", severity=Severity.INFO)
        assert str(note) == "info r: m"


class TestLintProgram:
    def test_clean_program_has_no_findings(self):
        prog = program(
            [[way(1, Opcode.ADD, Reg(0), Imm(1))]],
            inputs={"a": 0},
            outputs={"o": 1},
        )
        assert lint_program("t", prog) == []

    def test_dead_instruction_flagged(self):
        prog = program(
            [[way(1, Opcode.ADD, Reg(0), Imm(1)), way(2, Opcode.SUB, Reg(0), Imm(1))]],
            inputs={"a": 0},
            outputs={"o": 1},
        )
        findings = lint_program("t", prog)
        assert rules(findings) == {"dead-instruction"}
        (finding,) = findings
        assert finding.severity is Severity.WARNING
        assert finding.bundle == 0 and finding.way == "cu1"

    def test_dead_slot_flagged(self):
        w = way(
            1, Opcode.ADD, Reg(0), Imm(1),
            right=SlotOp(Opcode.SUB, (Reg(0), Imm(1))),
        )
        prog = program([[w]], inputs={"a": 0}, outputs={"o": 1})
        assert "dead-slot" in rules(lint_program("t", prog))

    def test_redundant_copy_and_foldable_constant_are_notes(self):
        copy = CUInstruction(
            kind="tree", dest=Reg(1), right=SlotOp(Opcode.COPY, (Reg(0),))
        )
        prog = program(
            [[copy, way(2, Opcode.ADD, Imm(2), Imm(3))],
             [way(3, Opcode.MAX, Reg(1), Reg(2))]],
            inputs={"a": 0},
            outputs={"o": 3},
        )
        findings = lint_program("t", prog)
        assert {"redundant-copy", "foldable-constant"} <= rules(findings)
        assert all(d.severity is Severity.INFO for d in findings)

    def test_common_subexpression_flagged(self):
        prog = program(
            [[way(1, Opcode.ADD, Reg(0), Imm(2)), way(2, Opcode.ADD, Reg(0), Imm(2))],
             [way(3, Opcode.MAX, Reg(1), Reg(2))]],
            inputs={"a": 0},
            outputs={"o": 3},
        )
        assert "common-subexpression" in rules(lint_program("t", prog))

    def test_schedule_slack_flagged(self):
        prog = program(
            [[way(1, Opcode.ADD, Reg(0), Imm(1))],
             [way(2, Opcode.SUB, Reg(0), Imm(1))],
             [way(3, Opcode.MAX, Reg(1), Reg(2))]],
            inputs={"a": 0},
            outputs={"o": 3},
        )
        assert "schedule-slack" in rules(lint_program("t", prog))

    def test_unconsumed_output_needs_a_contract(self):
        prog = program(
            [[way(1, Opcode.ADD, Reg(0), Imm(1)), way(2, Opcode.SUB, Reg(0), Imm(1))]],
            inputs={"a": 0},
            outputs={"o": 1, "dir": 2},
        )
        assert "unconsumed-output" not in rules(lint_program("t", prog))
        findings = lint_program("t", prog, contract=frozenset({"o"}))
        assert "unconsumed-output" in rules(findings)

    def test_register_pressure_thresholds(self):
        limits = MachineLimits()
        hot = int(PRESSURE_WARNING_FRACTION * limits.rf_size)
        prog = program(
            [[way(hot, Opcode.ADD, Reg(0), Imm(1))]],
            inputs={"a": 0},
            outputs={"o": hot},
        )
        # register_count derives from the allocation map, so record it.
        prog.node_regs[0] = hot
        assert prog.register_count == hot + 1
        findings = [
            d for d in lint_program("t", prog) if d.rule == "register-pressure"
        ]
        assert [d.severity for d in findings] == [Severity.WARNING]


class TestRunLint:
    def test_all_kernels_are_clean(self):
        report = run_lint()
        assert report.ok
        assert report.exit_code() == 0
        assert report.count(Severity.ERROR) == 0
        assert {p.name for p in report.programs} == {
            "bsw", "pairhmm", "poa:edge", "poa:final",
            "chain", "dtw", "bellman_ford",
        }

    def test_fail_on_info_trips_on_known_notes(self):
        # BSW's unread traceback output is a permanent info finding.
        report = run_lint(["bsw"])
        assert report.exit_code(Severity.INFO) == 1
        assert report.exit_code(Severity.ERROR) == 0

    def test_report_serializes_and_renders(self):
        report = run_lint(["dtw"])
        data = json.loads(json.dumps(report.to_dict()))
        assert data["ok"] is True
        (prog,) = data["programs"]
        assert prog["cost"]["instructions"] >= prog["optimized_cost"]["instructions"]
        assert "gendp-lint:" in report.render()

    def test_optimized_costs_show_the_wins(self):
        report = run_lint(["bsw"])
        (prog,) = report.programs
        assert prog.cost.instructions == 4
        assert prog.optimized_cost.instructions == 3
        assert prog.opt_stats["instructions_eliminated"] == 1
