"""The def/use model: linearization, liveness, heights."""

import pytest

from repro.dfg.graph import Opcode
from repro.dpmap.codegen import CellProgram, compile_cell
from repro.engine.runners import build_dfg
from repro.isa.compute import CUInstruction, Imm, Reg, SlotOp, VLIWInstruction
from repro.opt.model import (
    NonSSAProgramError,
    critical_path,
    heights,
    is_pure_copy,
    linearize,
    live_sets,
    live_ways,
    peak_live,
    schedule_lower_bound,
    way_reads,
    way_slots,
)


def way(dest, opcode, *operands, root=None):
    return CUInstruction(
        kind="tree",
        dest=Reg(dest),
        left=SlotOp(opcode, tuple(operands)),
        root=root,
    )


def program(bundles, inputs, outputs):
    return CellProgram(
        mapping=None,
        instructions=[
            VLIWInstruction(cu0=b[0], cu1=b[1] if len(b) > 1 else None)
            for b in bundles
        ],
        input_regs=dict(inputs),
        output_regs=dict(outputs),
        node_regs={},
    )


class TestWayHelpers:
    def test_way_reads_in_operand_order_with_repeats(self):
        w = way(3, Opcode.ADD, Reg(1), Reg(1))
        assert way_reads(w) == [1, 1]
        assert len(way_slots(w)) == 1

    def test_mul_way_slots(self):
        w = CUInstruction(
            kind="mul", dest=Reg(2), mul=SlotOp(Opcode.MUL, (Reg(0), Imm(3)))
        )
        assert way_reads(w) == [0]
        assert len(way_slots(w)) == 1

    def test_pure_copy_detection(self):
        copy = CUInstruction(
            kind="tree", dest=Reg(4), right=SlotOp(Opcode.COPY, (Reg(1),))
        )
        assert is_pure_copy(copy) == Reg(1)
        assert is_pure_copy(way(4, Opcode.ADD, Reg(0), Reg(1))) is None
        # A copy under a root is a real computation, not a forward.
        rooted = CUInstruction(
            kind="tree",
            dest=Reg(4),
            left=SlotOp(Opcode.COPY, (Reg(1),)),
            root=Opcode.MAX,
        )
        assert is_pure_copy(rooted) is None


class TestLinearize:
    def test_flattens_in_issue_order_with_origins(self):
        prog = program(
            [
                [way(2, Opcode.ADD, Reg(0), Reg(1)), way(3, Opcode.SUB, Reg(0), Imm(1))],
                [way(4, Opcode.MAX, Reg(2), Reg(3))],
            ],
            inputs={"a": 0, "b": 1},
            outputs={"o": 4},
        )
        lp = linearize(prog)
        assert [w.dest.index for w in lp.ways] == [2, 3, 4]
        assert lp.origin_bundles == [0, 0, 1]
        assert lp.dependencies() == [set(), set(), {0, 1}]
        assert lp.readers()[0] == {2}

    def test_rejects_double_write(self):
        prog = program(
            [
                [way(2, Opcode.ADD, Reg(0), Imm(1))],
                [way(2, Opcode.SUB, Reg(0), Imm(1))],
            ],
            inputs={"a": 0},
            outputs={"o": 2},
        )
        with pytest.raises(NonSSAProgramError):
            linearize(prog)

    def test_rejects_input_overwrite(self):
        prog = program(
            [[way(0, Opcode.ADD, Reg(0), Imm(1))]],
            inputs={"a": 0},
            outputs={"o": 0},
        )
        with pytest.raises(NonSSAProgramError):
            linearize(prog)

    def test_rejects_read_before_write(self):
        prog = program(
            [[way(2, Opcode.ADD, Reg(9), Imm(1))]],
            inputs={"a": 0},
            outputs={"o": 2},
        )
        with pytest.raises(NonSSAProgramError):
            linearize(prog)

    def test_compiled_kernels_are_ssa(self):
        for kernel in ("bsw", "pairhmm", "chain", "dtw"):
            prog = compile_cell(build_dfg(kernel))
            lp = linearize(prog)
            assert len(lp.ways) == sum(
                len(b.ways) for b in prog.instructions
            )


class TestLiveness:
    def test_live_sets_track_last_use(self):
        prog = program(
            [
                [way(2, Opcode.ADD, Reg(0), Reg(1))],
                [way(3, Opcode.SUB, Reg(2), Reg(1))],
            ],
            inputs={"a": 0, "b": 1},
            outputs={"o": 3},
        )
        sets = live_sets(prog.instructions, prog.input_regs, prog.output_regs)
        assert sets[0] == {0, 1}  # both inputs still needed
        assert sets[1] == {1, 2}  # a is dead after bundle 0
        assert sets[2] == {3}  # only the output survives
        assert peak_live(
            prog.instructions, prog.input_regs, prog.output_regs
        ) == 2

    def test_live_ways_is_transitive(self):
        prog = program(
            [
                [way(2, Opcode.ADD, Reg(0), Imm(1)), way(3, Opcode.SUB, Reg(0), Imm(1))],
                [way(4, Opcode.MAX, Reg(2), Imm(0))],
            ],
            inputs={"a": 0},
            outputs={"o": 4},
        )
        # Way writing r3 feeds nothing.
        assert live_ways(linearize(prog)) == {0, 2}


class TestHeights:
    def test_chain_heights_and_bounds(self):
        prog = program(
            [
                [way(2, Opcode.ADD, Reg(0), Imm(1)), way(5, Opcode.SUB, Reg(0), Imm(2))],
                [way(3, Opcode.ADD, Reg(2), Imm(1))],
                [way(4, Opcode.ADD, Reg(3), Imm(1))],
            ],
            inputs={"a": 0},
            outputs={"o": 4, "p": 5},
        )
        lp = linearize(prog)
        assert heights(lp) == [3, 1, 2, 1]
        assert critical_path(lp) == 3
        assert schedule_lower_bound(lp) == 3

    def test_width_bound_dominates_flat_programs(self):
        ways = [way(10 + i, Opcode.ADD, Reg(0), Imm(i)) for i in range(5)]
        prog = program(
            [[w] for w in ways],
            inputs={"a": 0},
            outputs={f"o{i}": 10 + i for i in range(5)},
        )
        lp = linearize(prog)
        assert critical_path(lp) == 1
        assert schedule_lower_bound(lp) == 3  # ceil(5 / 2)
