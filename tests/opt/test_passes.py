"""The rewrite passes, the re-packer, and the pipeline's invariants."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.dfg.graph import DataFlowGraph, Opcode, OPCODE_ARITY
from repro.dpmap.codegen import CellProgram, compile_cell, run_program, verify_program
from repro.guard.verifier import check_program
from repro.isa.compute import CUInstruction, Imm, Reg, SlotOp, VLIWInstruction
from repro.opt.model import is_pure_copy, linearize
from repro.opt.passes import (
    CommonSubexpressionPass,
    ConstantFoldPass,
    CopyPropagationPass,
    DeadCodePass,
    PassPipeline,
    SimplifySlotsPass,
    default_pipeline,
    encode_instructions,
    pack_ways,
)


def way(dest, opcode, *operands, root=None, right=None):
    return CUInstruction(
        kind="tree",
        dest=Reg(dest),
        left=SlotOp(opcode, tuple(operands)),
        right=right,
        root=root,
    )


def program(bundles, inputs, outputs):
    return CellProgram(
        mapping=None,
        instructions=[
            VLIWInstruction(cu0=b[0], cu1=b[1] if len(b) > 1 else None)
            for b in bundles
        ],
        input_regs=dict(inputs),
        output_regs=dict(outputs),
        node_regs={},
    )


def run_pass(one_pass, prog):
    stats = {}
    lp = one_pass.run(linearize(prog), stats)
    return lp, stats


class TestConstantFold:
    def test_imm_only_slot_becomes_copy(self):
        prog = program(
            [[way(1, Opcode.ADD, Imm(2), Imm(3))]],
            inputs={"a": 0},
            outputs={"o": 1},
        )
        lp, stats = run_pass(ConstantFoldPass(), prog)
        assert stats == {"constants_folded": 1}
        assert is_pure_copy(lp.ways[0]) == Imm(5)

    def test_imm_only_mul_frees_the_multiplier(self):
        prog = program(
            [[CUInstruction(kind="mul", dest=Reg(1), mul=SlotOp(Opcode.MUL, (Imm(4), Imm(6))))]],
            inputs={"a": 0},
            outputs={"o": 1},
        )
        lp, stats = run_pass(ConstantFoldPass(), prog)
        assert stats == {"constants_folded": 1}
        assert lp.ways[0].kind == "tree"
        assert is_pure_copy(lp.ways[0]) == Imm(24)

    def test_root_folds_through_copy_leaves(self):
        w = CUInstruction(
            kind="tree",
            dest=Reg(1),
            left=SlotOp(Opcode.COPY, (Imm(7),)),
            right=SlotOp(Opcode.COPY, (Imm(5),)),
            root=Opcode.SUB,
        )
        prog = program([[w]], inputs={"a": 0}, outputs={"o": 1})
        lp, stats = run_pass(ConstantFoldPass(), prog)
        assert is_pure_copy(lp.ways[0]) == Imm(2)

    def test_root_swapped_reverses_fold_order(self):
        w = CUInstruction(
            kind="tree",
            dest=Reg(1),
            left=SlotOp(Opcode.COPY, (Imm(7),)),
            right=SlotOp(Opcode.COPY, (Imm(5),)),
            root=Opcode.SUB,
            root_swapped=True,
        )
        prog = program([[w]], inputs={"a": 0}, outputs={"o": 1})
        lp, _ = run_pass(ConstantFoldPass(), prog)
        assert is_pure_copy(lp.ways[0]) == Imm(-2)

    def test_lut_opcodes_never_fold(self):
        w = way(1, Opcode.MATCH_SCORE, Imm(1), Imm(1))
        prog = program([[w]], inputs={"a": 0}, outputs={"o": 1})
        lp, stats = run_pass(ConstantFoldPass(), prog)
        assert stats == {}
        assert lp.ways[0] is w


class TestCopyPropagation:
    def test_forwarding_into_readers(self):
        copy = CUInstruction(
            kind="tree", dest=Reg(1), right=SlotOp(Opcode.COPY, (Reg(0),))
        )
        prog = program(
            [[copy], [way(2, Opcode.ADD, Reg(1), Imm(3))]],
            inputs={"a": 0},
            outputs={"o": 2},
        )
        lp, stats = run_pass(CopyPropagationPass(), prog)
        assert stats == {"copies_propagated": 1}
        assert lp.ways[1].left.operands == (Reg(0), Imm(3))

    def test_output_copy_retargets_the_map(self):
        copy = CUInstruction(
            kind="tree", dest=Reg(2), right=SlotOp(Opcode.COPY, (Reg(1),))
        )
        prog = program(
            [[way(1, Opcode.ADD, Reg(0), Imm(1))], [copy]],
            inputs={"a": 0},
            outputs={"o": 2},
        )
        lp, _ = run_pass(CopyPropagationPass(), prog)
        assert lp.output_regs == {"o": 1}

    def test_imm_copy_feeding_an_output_stays(self):
        copy = CUInstruction(
            kind="tree", dest=Reg(1), right=SlotOp(Opcode.COPY, (Imm(9),))
        )
        prog = program([[copy]], inputs={"a": 0}, outputs={"o": 1})
        lp, stats = run_pass(CopyPropagationPass(), prog)
        assert stats == {}
        assert lp.output_regs == {"o": 1}


class TestCommonSubexpression:
    def test_duplicate_way_becomes_copy(self):
        prog = program(
            [
                [way(1, Opcode.ADD, Reg(0), Imm(2)), way(2, Opcode.ADD, Reg(0), Imm(2))],
                [way(3, Opcode.MAX, Reg(1), Reg(2))],
            ],
            inputs={"a": 0},
            outputs={"o": 3},
        )
        lp, stats = run_pass(CommonSubexpressionPass(), prog)
        assert stats == {"subexpressions_shared": 1}
        assert is_pure_copy(lp.ways[1]) == Reg(1)

    def test_duplicate_slot_reuses_single_op_way(self):
        dup = SlotOp(Opcode.CMP_GT, (Reg(0), Imm(5), Imm(1), Imm(0)))
        single = CUInstruction(kind="tree", dest=Reg(1), left=dup)
        consumer = CUInstruction(
            kind="tree",
            dest=Reg(2),
            left=dup,
            right=SlotOp(Opcode.COPY, (Reg(0),)),
            root=Opcode.ADD,
        )
        prog = program(
            [[single], [consumer]], inputs={"a": 0}, outputs={"o": 2, "p": 1}
        )
        lp, stats = run_pass(CommonSubexpressionPass(), prog)
        assert stats == {"subexpressions_shared": 1}
        assert lp.ways[1].left == SlotOp(Opcode.COPY, (Reg(1),))


class TestSimplifySlots:
    def test_dead_right_slot_dropped(self):
        w = CUInstruction(
            kind="tree",
            dest=Reg(1),
            left=SlotOp(Opcode.ADD, (Reg(0), Imm(1))),
            right=SlotOp(Opcode.SUB, (Reg(0), Imm(1))),
        )
        prog = program([[w]], inputs={"a": 0}, outputs={"o": 1})
        lp, stats = run_pass(SimplifySlotsPass(), prog)
        assert stats == {"dead_slots_removed": 1}
        assert lp.ways[0].right is None

    def test_copy_fed_root_collapses_to_one_slot(self):
        w = CUInstruction(
            kind="tree",
            dest=Reg(1),
            left=SlotOp(Opcode.COPY, (Reg(0),)),
            right=SlotOp(Opcode.COPY, (Imm(3),)),
            root=Opcode.MAX,
        )
        prog = program([[w]], inputs={"a": 0}, outputs={"o": 1})
        lp, stats = run_pass(SimplifySlotsPass(), prog)
        assert stats == {"slots_simplified": 1}
        assert lp.ways[0].left is None
        assert lp.ways[0].right == SlotOp(Opcode.MAX, (Reg(0), Imm(3)))
        assert lp.ways[0].root is None


class TestDeadCode:
    def test_unreachable_cone_removed(self):
        prog = program(
            [
                [way(1, Opcode.ADD, Reg(0), Imm(1)), way(2, Opcode.SUB, Reg(0), Imm(1))],
                [way(3, Opcode.ADD, Reg(2), Imm(1))],
                [way(4, Opcode.MAX, Reg(1), Imm(0))],
            ],
            inputs={"a": 0},
            outputs={"o": 4},
        )
        lp, stats = run_pass(DeadCodePass(), prog)
        assert stats == {"ways_eliminated": 2}
        assert [w.dest.index for w in lp.ways] == [1, 4]


class TestPackWays:
    def test_respects_no_same_bundle_forwarding(self):
        prog = program(
            [
                [way(1, Opcode.ADD, Reg(0), Imm(1))],
                [way(2, Opcode.ADD, Reg(1), Imm(1))],
                [way(3, Opcode.SUB, Reg(0), Imm(5))],
            ],
            inputs={"a": 0},
            outputs={"o": 2, "p": 3},
        )
        lp = linearize(prog)
        bundles, moved = pack_ways(lp)
        assert len(bundles) == 2  # r3 rides along with r1 or r2
        assert moved >= 1
        writer_bundle = {}
        for index, bundle in enumerate(bundles):
            for w in bundle.ways:
                writer_bundle[w.dest.index] = index
        assert writer_bundle[1] < writer_bundle[2]

    def test_deterministic(self):
        prog = compile_cell_for("chain")
        lp = linearize(prog)
        first, _ = pack_ways(lp)
        second, _ = pack_ways(lp)
        assert encode_instructions(first) == encode_instructions(second)


def compile_cell_for(kernel):
    from repro.engine.runners import build_dfg

    return compile_cell(build_dfg(kernel))


class TestPipeline:
    def test_signature_is_stable_and_contract_sensitive(self):
        plain = default_pipeline()
        kept = default_pipeline(["h", "e"])
        assert plain.signature() == default_pipeline().signature()
        assert plain.signature() != kept.signature()
        assert kept.signature().endswith("|keep=e,h")

    def test_unchanged_program_returned_as_same_object(self):
        prog = compile_cell_for("dtw")
        outcome = default_pipeline().run(prog)
        assert outcome.program is prog
        assert not outcome.changed

    def test_idempotent_on_kernels(self):
        for kernel in ("bsw", "pairhmm", "chain", "dtw"):
            from repro.opt.kernels import contract_for

            pipeline = default_pipeline(contract_for(kernel))
            once = pipeline.run(compile_cell_for(kernel))
            twice = pipeline.run(once.program)
            assert twice.program.content_hash() == once.program.content_hash()

    def test_semantics_preserved_on_hand_program(self):
        # Exercises every pass at once: constants, copies, a duplicate
        # way, a dead right slot and a dead cone.
        copy = CUInstruction(
            kind="tree", dest=Reg(2), right=SlotOp(Opcode.COPY, (Reg(0),))
        )
        prog = program(
            [
                [way(1, Opcode.ADD, Imm(2), Imm(3)), copy],
                [way(3, Opcode.ADD, Reg(2), Imm(4)), way(4, Opcode.ADD, Reg(2), Imm(4))],
                [way(5, Opcode.MAX, Reg(3), Reg(4), root=Opcode.MIN,
                     right=SlotOp(Opcode.COPY, (Reg(1),)))],
                [way(6, Opcode.SUB, Reg(5), Imm(1))],
                [way(7, Opcode.SUB, Reg(5), Imm(2))],
            ],
            inputs={"a": 0},
            outputs={"o": 6},
        )
        outcome = default_pipeline().run(prog)
        assert outcome.changed
        assert len(outcome.program.instructions) < len(prog.instructions)
        for a in (-64, -1, 0, 7, 64):
            assert run_program(outcome.program, {"a": a}) == run_program(
                prog, {"a": a}
            )

    def test_scheduler_never_regresses_bundle_count(self):
        for kernel in ("bsw", "pairhmm", "poa", "chain", "dtw", "lcs"):
            from repro.dfg.kernels import KERNEL_DFGS

            prog = compile_cell(KERNEL_DFGS[kernel]())
            outcome = default_pipeline().run(prog)
            assert len(outcome.program.instructions) <= len(prog.instructions)
            assert "scheduler_regressed" not in outcome.stats

    def test_optimized_programs_stay_legal(self):
        prog = compile_cell_for("bsw")
        outcome = default_pipeline(["h", "e", "f"]).run(prog)
        assert check_program(outcome.program).ok


# ----------------------------------------------------------------------
# property tests: the pipeline preserves semantics on random DFGs

_OP_POOL = [
    Opcode.ADD,
    Opcode.SUB,
    Opcode.MAX,
    Opcode.MIN,
    Opcode.MUL,
    Opcode.COPY,
    Opcode.CMP_GT,
    Opcode.CMP_EQ,
    Opcode.LOG2_LUT,
]


@st.composite
def random_dfg(draw):
    """A random well-formed DFG with 3-12 operators (some constant-fed)."""
    node_count = draw(st.integers(min_value=3, max_value=12))
    input_count = draw(st.integers(min_value=2, max_value=4))
    dfg = DataFlowGraph("random")
    inputs = [dfg.input(f"i{k}") for k in range(input_count)]
    refs = list(inputs) + [
        dfg.const(draw(st.integers(min_value=-8, max_value=8)))
    ]
    made = []
    for _ in range(node_count):
        opcode = draw(st.sampled_from(_OP_POOL))
        arity = OPCODE_ARITY[opcode]
        operands = [
            refs[draw(st.integers(min_value=0, max_value=len(refs) - 1))]
            for _ in range(arity)
        ]
        node = dfg.op(opcode, *operands)
        refs.append(node)
        made.append(node)
    output_count = draw(st.integers(min_value=1, max_value=min(3, len(made))))
    for k in range(output_count):
        dfg.mark_output(f"o{k}", made[-(k + 1)])
    return dfg


class TestPipelineProperties:
    @given(random_dfg(), st.integers(min_value=-64, max_value=64))
    @settings(max_examples=60, deadline=None)
    def test_semantics_preserved_and_idempotent(self, dfg, base):
        pipeline = default_pipeline()
        prog = compile_cell(dfg)
        outcome = pipeline.run(prog)
        optimized = outcome.program
        assert len(optimized.instructions) <= len(prog.instructions)
        assert check_program(optimized).ok
        inputs = {
            name: base + k for k, name in enumerate(sorted(dfg.inputs))
        }
        assert verify_program(optimized, inputs)
        again = pipeline.run(optimized)
        assert again.program.content_hash() == optimized.content_hash()
