"""Tests for the Table 12 tile-scaling study."""

import pytest

from repro.baselines.data import PAPER_TABLE12
from repro.perfmodel.scaling import tile_scaling_study


class TestTileScaling:
    def test_64_tiles_beat_the_gpu(self):
        study = tile_scaling_study(tiles=64)
        assert study.speedup > 1.0

    def test_speedup_in_paper_ballpark(self):
        # Paper: 6.17x raw over the A100; shape tolerance is generous
        # because our cycles/cell are simulator-measured.
        study = tile_scaling_study(tiles=64)
        assert 2.0 < study.speedup < 15.0

    def test_area_matches_table12(self):
        study = tile_scaling_study(tiles=64)
        assert study.total_area_mm2 == pytest.approx(
            PAPER_TABLE12["gendp_area_mm2"], rel=0.02
        )
        assert study.total_area_mm2 < study.gpu_area_mm2 / 10

    def test_bandwidth_ceiling_near_64(self):
        study = tile_scaling_study(tiles=64)
        assert 55 <= study.bandwidth_limited_tiles <= 70

    def test_raw_scales_linearly(self):
        small = tile_scaling_study(tiles=8)
        large = tile_scaling_study(tiles=16)
        assert large.raw_gcups == pytest.approx(2 * small.raw_gcups)

    def test_zero_tiles_rejected(self):
        with pytest.raises(ValueError):
            tile_scaling_study(tiles=0)
