"""Tests for the multi-array task scheduler."""

import pytest

from repro.perfmodel.schedule import (
    ScheduleResult,
    schedule_fifo,
    schedule_lpt,
    tile_throughput_efficiency,
    weighted_task_cells,
)


class TestLPT:
    def test_uniform_tasks_balance_perfectly(self):
        result = schedule_lpt([100.0] * 32, arrays=16)
        assert result.balance_efficiency == pytest.approx(1.0)
        assert all(len(a) == 2 for a in result.assignments)

    def test_every_task_assigned_once(self):
        result = schedule_lpt([float(i) for i in range(50)], arrays=16)
        assigned = sorted(t for a in result.assignments for t in a)
        assert assigned == list(range(50))

    def test_makespan_at_least_mean(self):
        sizes = [float(x) for x in (500, 300, 200, 100, 50)]
        result = schedule_lpt(sizes, arrays=4)
        assert result.makespan >= sum(sizes) / 4

    def test_one_giant_task_dominates(self):
        result = schedule_lpt([1000.0] + [10.0] * 15, arrays=16)
        assert result.makespan == 1000.0
        assert result.balance_efficiency < 0.1

    def test_lpt_no_worse_than_fifo(self, rng):
        sizes = [float(rng.randint(10, 500)) for _ in range(64)]
        assert (
            schedule_lpt(sizes).makespan <= schedule_fifo(sizes).makespan
        )

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            schedule_lpt([-1.0])

    def test_zero_arrays_rejected(self):
        with pytest.raises(ValueError):
            schedule_lpt([1.0], arrays=0)


class TestEfficiency:
    def test_real_bsw_workload_balances_well(self):
        from repro.kernels.bsw import band_cells
        from repro.workloads.reads import generate_bsw_workload

        workload = generate_bsw_workload(count=200, seed=5)
        sizes = [
            float(band_cells(len(p.query), len(p.target), workload.band))
            for p in workload.pairs
        ]
        assert tile_throughput_efficiency(sizes) > 0.95

    def test_poa_workload_less_balanced_than_bsw(self):
        # POA tasks are few and heavy (read groups); balance suffers
        # relative to the sea of uniform seed extensions.
        from repro.workloads.poa_groups import generate_poa_workload
        from repro.workloads.reads import generate_bsw_workload
        from repro.kernels.bsw import band_cells

        poa = generate_poa_workload(tasks=20, reads_per_task=10, seed=5)
        poa_sizes = [float(t.cells) for t in poa.tasks]
        bsw = generate_bsw_workload(count=200, seed=5)
        bsw_sizes = [
            float(band_cells(len(p.query), len(p.target), bsw.band))
            for p in bsw.pairs
        ]
        assert tile_throughput_efficiency(poa_sizes) <= tile_throughput_efficiency(
            bsw_sizes
        ) + 1e-9

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            tile_throughput_efficiency([])


class TestWeightedTaskCells:
    def test_scales_by_the_cost_model(self):
        from repro.dpmap.codegen import compile_cell
        from repro.engine.runners import build_dfg
        from repro.opt import contract_for, cost_of, default_pipeline

        program = compile_cell(build_dfg("bsw"))
        outcome = default_pipeline(contract_for("bsw")).run(program)
        before = cost_of(program).cycles_per_cell
        after = cost_of(outcome.program).cycles_per_cell
        cells = [100.0, 250.0]
        assert weighted_task_cells(cells, before) == [400.0, 1000.0]
        assert weighted_task_cells(cells, after) == [300.0, 750.0]
        # Same packing, cheaper cycles: makespan shrinks proportionally.
        slow = schedule_lpt(weighted_task_cells(cells, before)).makespan
        fast = schedule_lpt(weighted_task_cells(cells, after)).makespan
        assert fast == pytest.approx(slow * after / before)

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            weighted_task_cells([1.0], 0)
