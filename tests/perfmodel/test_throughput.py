"""Tests for the GenDP throughput model."""

import pytest

from repro.perfmodel.throughput import (
    DEFAULT_CYCLES_PER_CELL,
    GenDPPerfModel,
    KernelThroughput,
    default_kernel_throughputs,
    measure_cycles_per_cell,
)


class TestKernelThroughput:
    def test_raw_rate_formula(self):
        kt = KernelThroughput(kernel="x", cycles_per_cell=20.0, pes_used=64)
        assert kt.raw_gcups(2e9) == pytest.approx(64 * 2 / 20)

    def test_simd_lanes_multiply(self):
        one = KernelThroughput(kernel="x", cycles_per_cell=20.0, simd_lanes=1)
        four = KernelThroughput(kernel="x", cycles_per_cell=20.0, simd_lanes=4)
        assert four.raw_gcups() == pytest.approx(4 * one.raw_gcups())

    def test_host_fraction_amdahl(self):
        blended = KernelThroughput(
            kernel="x",
            cycles_per_cell=10.0,
            accel_fraction=0.977,
            host_gcups=1.0,  # a much slower host drags the blend down
        )
        raw = blended.raw_gcups()
        expected = 1.0 / (0.977 / raw + 0.023 / 1.0)
        assert blended.effective_gcups() == pytest.approx(expected)
        assert blended.effective_gcups() < raw

    def test_work_inflation_divides(self):
        plain = KernelThroughput(kernel="x", cycles_per_cell=10.0)
        penalized = KernelThroughput(
            kernel="x", cycles_per_cell=10.0, work_inflation=3.72
        )
        assert penalized.effective_gcups() == pytest.approx(
            plain.effective_gcups() / 3.72
        )

    def test_host_fraction_without_rate_raises(self):
        kt = KernelThroughput(kernel="x", cycles_per_cell=10.0, accel_fraction=0.9)
        with pytest.raises(ValueError):
            kt.effective_gcups()


class TestDefaults:
    def test_four_paper_kernels(self):
        defaults = default_kernel_throughputs()
        assert set(defaults) == {"bsw", "pairhmm", "chain", "poa"}

    def test_bsw_uses_simd(self):
        assert default_kernel_throughputs()["bsw"].simd_lanes == 4

    def test_chain_penalized(self):
        assert default_kernel_throughputs()["chain"].work_inflation == pytest.approx(3.72)

    def test_host_fractions_match_section6(self):
        defaults = default_kernel_throughputs()
        assert defaults["pairhmm"].accel_fraction == pytest.approx(0.977)
        assert defaults["poa"].accel_fraction == pytest.approx(0.976)


class TestPerfModel:
    def test_tile_area_scaled_to_7nm(self):
        model = GenDPPerfModel()
        assert model.tile_area_mm2 == pytest.approx(0.69, abs=0.02)

    def test_bsw_fastest_normalized(self):
        model = GenDPPerfModel()
        rates = {k: model.mcups_per_mm2(k) for k in model.kernels}
        assert max(rates, key=rates.get) == "bsw"

    def test_poa_and_chain_slowest(self):
        # Section 7.2: POA is memory-bound, Chain pays the 3.72x penalty.
        model = GenDPPerfModel()
        rates = sorted(model.kernels, key=model.mcups_per_mm2)
        assert set(rates[:2]) == {"poa", "chain"}

    def test_runtime_inverse_of_rate(self):
        model = GenDPPerfModel()
        assert model.runtime_seconds("bsw", 10**9) == pytest.approx(
            1.0 / model.gcups("bsw")
        )

    def test_geomean_between_extremes(self):
        model = GenDPPerfModel()
        rates = [model.gcups(k) for k in model.kernels]
        assert min(rates) < model.geomean_gcups() < max(rates)


class TestCalibration:
    """Keep DEFAULT_CYCLES_PER_CELL honest against the simulator."""

    @pytest.mark.parametrize("kernel", ["bsw", "lcs", "dtw"])
    def test_wavefront_measurements_track_defaults(self, kernel):
        measured = measure_cycles_per_cell(kernel)
        assert measured == pytest.approx(DEFAULT_CYCLES_PER_CELL[kernel], rel=0.35)

    def test_poa_measurement_tracks_default(self):
        measured = measure_cycles_per_cell("poa")
        assert measured == pytest.approx(DEFAULT_CYCLES_PER_CELL["poa"], rel=0.5)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(KeyError):
            measure_cycles_per_cell("mystery")
