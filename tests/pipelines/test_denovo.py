"""Tests for the de-novo overlap-layout-consensus assembler."""

import pytest

from repro.kernels.sw import align
from repro.pipelines.denovo import DenovoAssembler
from repro.seq.alphabet import random_sequence
from repro.seq.mutate import MutationProfile, Mutator


def shred(template, rng, read_length=80, step=(25, 40), mutator=None):
    reads = []
    position = 0
    while position < len(template) - read_length // 2:
        read = template[position : position + read_length]
        if mutator is not None:
            read = mutator.mutate(read)
        reads.append(read)
        position += rng.randint(*step)
    return reads


class TestOverlaps:
    def test_adjacent_reads_overlap(self, rng):
        template = random_sequence(200, rng)
        reads = [template[0:100], template[50:150]]
        overlaps = DenovoAssembler().find_overlaps(reads)
        forward = [o for o in overlaps if o.a == 0 and o.b == 1]
        assert forward
        assert forward[0].offset == pytest.approx(50, abs=3)

    def test_disjoint_reads_do_not_overlap(self, rng):
        template = random_sequence(400, rng)
        reads = [template[0:80], template[300:380]]
        assert DenovoAssembler().find_overlaps(reads) == []

    def test_overlap_span_reported(self, rng):
        template = random_sequence(200, rng)
        reads = [template[0:120], template[60:180]]
        overlaps = DenovoAssembler().find_overlaps(reads)
        assert any(o.span >= 40 for o in overlaps)


class TestLayout:
    def test_orders_reads_left_to_right(self, rng):
        template = random_sequence(260, rng)
        reads = [template[120:200], template[0:80], template[60:140]]
        assembler = DenovoAssembler()
        order = assembler.layout(reads, assembler.find_overlaps(reads))
        assert order == [1, 2, 0]

    def test_empty(self):
        assert DenovoAssembler().layout([], []) == []


class TestAssembly:
    def test_perfect_reads_reconstruct_template(self, rng):
        template = random_sequence(250, rng)
        reads = shred(template, rng)
        contig = DenovoAssembler().assemble(reads)
        identity = align(contig, template).score / len(template)
        assert identity > 0.9

    def test_noisy_reads_still_assemble(self, rng):
        template = random_sequence(250, rng)
        mutator = Mutator(MutationProfile.pacbio(), rng)
        reads = shred(template, rng, mutator=mutator)
        contig = DenovoAssembler().assemble(reads)
        identity = align(contig, template).score / len(template)
        assert identity > 0.6

    def test_single_read_passthrough(self):
        assert DenovoAssembler().assemble(["ACGTACGT"]) == "ACGTACGT"

    def test_no_reads_rejected(self):
        with pytest.raises(ValueError):
            DenovoAssembler().assemble([])
