"""Tests for metagenomics classification and abundance estimation."""

import pytest

from repro.pipelines.metagenomics import MetagenomicsClassifier
from repro.seq.alphabet import random_sequence
from repro.seq.mutate import MutationProfile, Mutator


@pytest.fixture
def pan_genome(rng):
    return {f"species{i}": random_sequence(400, rng) for i in range(3)}


class TestClassification:
    def test_clean_reads_classified_correctly(self, pan_genome, rng):
        classifier = MetagenomicsClassifier(pan_genome)
        for species, genome in pan_genome.items():
            start = rng.randint(0, 300)
            result = classifier.classify(genome[start : start + 80])
            assert result.species == species

    def test_noisy_reads_mostly_correct(self, pan_genome, rng):
        classifier = MetagenomicsClassifier(pan_genome)
        mutator = Mutator(MutationProfile.illumina(), rng)
        correct = total = 0
        for species, genome in pan_genome.items():
            for _ in range(5):
                start = rng.randint(0, 300)
                read = mutator.mutate(genome[start : start + 80])
                result = classifier.classify(read)
                total += 1
                if result.species == species:
                    correct += 1
        assert correct >= total * 0.8

    def test_foreign_read_unclassified(self, pan_genome, rng):
        classifier = MetagenomicsClassifier(pan_genome)
        result = classifier.classify(random_sequence(80, rng))
        assert result.species is None

    def test_margin_reported(self, pan_genome, rng):
        classifier = MetagenomicsClassifier(pan_genome)
        genome = pan_genome["species0"]
        result = classifier.classify(genome[100:180])
        assert result.runner_up_margin > 0


class TestAbundance:
    def test_mixture_proportions_recovered(self, pan_genome, rng):
        classifier = MetagenomicsClassifier(pan_genome)
        mutator = Mutator(MutationProfile.illumina(), rng)
        mixture = [("species0", 30), ("species1", 15), ("species2", 5)]
        reads = []
        for species, count in mixture:
            genome = pan_genome[species]
            for index in range(count):
                start = rng.randint(0, 300)
                reads.append(
                    (f"{species}-{index}", mutator.mutate(genome[start : start + 80]))
                )
        abundances, classified = classifier.abundance(reads)
        assert classified > 0.8
        assert abundances["species0"] == pytest.approx(0.6, abs=0.1)
        assert abundances["species1"] == pytest.approx(0.3, abs=0.1)
        assert abundances["species2"] == pytest.approx(0.1, abs=0.1)

    def test_empty_sample_rejected(self, pan_genome):
        with pytest.raises(ValueError):
            MetagenomicsClassifier(pan_genome).abundance([])

    def test_all_foreign_sample(self, pan_genome, rng):
        classifier = MetagenomicsClassifier(pan_genome)
        reads = [(f"x{i}", random_sequence(80, rng)) for i in range(5)]
        abundances, classified = classifier.abundance(reads)
        assert classified <= 0.2
