"""Tests for the reference-guided mapping + variant-calling pipeline."""

import random

import pytest

from repro.pipelines.reference_guided import ReferenceGuidedPipeline
from repro.seq.alphabet import random_sequence
from repro.seq.mutate import MutationProfile, Mutator


@pytest.fixture
def pipeline_setup(rng):
    reference = random_sequence(500, rng)
    pipeline = ReferenceGuidedPipeline(reference)
    mutator = Mutator(MutationProfile.illumina(), rng)
    return reference, pipeline, mutator


class TestMapping:
    def test_exact_reads_map_to_origin(self, pipeline_setup, rng):
        reference, pipeline, _ = pipeline_setup
        for _ in range(10):
            start = rng.randint(0, 400)
            mapping = pipeline.map_read(reference[start : start + 80])
            assert mapping is not None
            assert abs(mapping.position - start) <= 2

    def test_noisy_reads_map_near_origin(self, pipeline_setup, rng):
        reference, pipeline, mutator = pipeline_setup
        hits = 0
        for _ in range(15):
            start = rng.randint(0, 400)
            read = mutator.mutate(reference[start : start + 80])
            mapping = pipeline.map_read(read)
            if mapping and abs(mapping.position - start) <= 3:
                hits += 1
        assert hits >= 12

    def test_foreign_read_unmapped_or_low(self, pipeline_setup, rng):
        _, pipeline, _ = pipeline_setup
        foreign = random_sequence(80, rng)
        mapping = pipeline.map_read(foreign)
        if mapping is not None:
            assert mapping.score < 40  # no long exact run by chance

    def test_map_all_drops_unplaceable(self, pipeline_setup, rng):
        reference, pipeline, _ = pipeline_setup
        reads = [
            ("good", reference[100:180]),
            ("bad", "A" * 60),  # masked homopolymer: no seeds
        ]
        mappings = pipeline.map_all(reads)
        assert [m.read_name for m in mappings] == ["good"]


class TestVariantCalling:
    def test_homozygous_snv_called(self, rng):
        reference = random_sequence(400, rng)
        position = 200
        alternate = "A" if reference[position] != "A" else "C"
        sample = reference[:position] + alternate + reference[position + 1 :]
        mutator = Mutator(MutationProfile.illumina(), rng)

        pipeline = ReferenceGuidedPipeline(reference)
        reads = []
        for index in range(30):
            start = rng.randint(80, 320 - 80)
            reads.append((f"r{index}", mutator.mutate(sample[start : start + 90])))
        mappings = pipeline.map_all(reads)
        variants = pipeline.call_variants(mappings)

        assert any(
            v.position == position and v.alternate_base == alternate
            for v in variants
        )
        called = next(v for v in variants if v.position == position)
        assert called.likelihood_ratio > 0  # PairHMM favors the alt hap
        assert called.allele_fraction > 0.7

    def test_clean_sample_calls_nothing(self, rng):
        reference = random_sequence(400, rng)
        pipeline = ReferenceGuidedPipeline(reference)
        reads = [
            (f"r{index}", reference[start : start + 90])
            for index, start in enumerate(
                rng.randint(0, 300) for _ in range(20)
            )
        ]
        mappings = pipeline.map_all(reads)
        assert pipeline.call_variants(mappings) == []

    def test_pileup_depth_reflects_coverage(self, rng):
        reference = random_sequence(300, rng)
        pipeline = ReferenceGuidedPipeline(reference)
        mappings = pipeline.map_all(
            [("a", reference[50:150]), ("b", reference[100:200])]
        )
        columns = pipeline.pileup(mappings)
        assert columns[120][reference[120]] == 2  # covered by both
        assert columns[60][reference[60]] == 1


class TestInterface:
    def test_empty_reference_rejected(self):
        with pytest.raises(ValueError):
            ReferenceGuidedPipeline("")
