"""Tests for the k-mer seeding substrate."""

import pytest

from repro.pipelines.seeding import KmerIndex, seed_anchors
from repro.seq.alphabet import random_sequence


class TestKmerIndex:
    def test_finds_exact_kmers(self, rng):
        reference = random_sequence(200, rng)
        index = KmerIndex(reference, k=11)
        kmer = reference[50:61]
        assert 50 in index.lookup(kmer)

    def test_absent_kmer_empty(self):
        index = KmerIndex("ACGT" * 20, k=11)
        assert index.lookup("A" * 11) == []

    def test_repeat_masking(self):
        # A homopolymer reference: every k-mer occurs > max_occurrences.
        index = KmerIndex("A" * 100, k=5, max_occurrences=16)
        assert index.lookup("AAAAA") == []

    def test_wrong_length_query_rejected(self):
        index = KmerIndex("ACGTACGTACGT", k=5)
        with pytest.raises(ValueError):
            index.lookup("ACGT")

    def test_short_reference_rejected(self):
        with pytest.raises(ValueError):
            KmerIndex("ACG", k=11)


class TestSeedAnchors:
    def test_identity_seeds_lie_on_diagonal(self, rng):
        reference = random_sequence(120, rng)
        index = KmerIndex(reference, k=11)
        anchors = seed_anchors(index, reference)
        diagonal = [a for a in anchors if a.x == a.y]
        assert len(diagonal) >= 100  # nearly every position self-matches

    def test_offset_read_seeds_share_offset(self, rng):
        reference = random_sequence(200, rng)
        index = KmerIndex(reference, k=11)
        read = reference[60:120]
        anchors = seed_anchors(index, read)
        offsets = {a.x - a.y for a in anchors}
        assert 60 in offsets

    def test_sorted_output(self, rng):
        reference = random_sequence(150, rng)
        anchors = seed_anchors(KmerIndex(reference, k=9), reference[20:90])
        keys = [(a.x, a.y) for a in anchors]
        assert keys == sorted(keys)

    def test_stride_thins_anchors(self, rng):
        reference = random_sequence(150, rng)
        index = KmerIndex(reference, k=9)
        dense = seed_anchors(index, reference[10:100], stride=1)
        sparse = seed_anchors(index, reference[10:100], stride=5)
        assert len(sparse) < len(dense)

    def test_anchor_weight_is_k(self, rng):
        reference = random_sequence(100, rng)
        index = KmerIndex(reference, k=13)
        for anchor in seed_anchors(index, reference[:50]):
            assert anchor.w == 13
