"""Property-based tests: DPMap preserves semantics on random DFGs.

The strongest invariant in the repository: for *any* well-formed DFG,
the partitioned, legalized, slot-assigned, VLIW-emitted program
computes exactly what the DFG interpreter computes.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.dfg.graph import DataFlowGraph, Opcode
from repro.dpmap.codegen import compile_cell, verify_program
from repro.dpmap.mapper import run_dpmap
from repro.dpmap.slots import try_assign

#: Ops the random-graph generator draws from (a representative mix of
#: 1-input, 2-input, 4-input and multiplier operations).
_OP_POOL = [
    Opcode.ADD,
    Opcode.SUB,
    Opcode.MAX,
    Opcode.MIN,
    Opcode.MUL,
    Opcode.COPY,
    Opcode.CMP_GT,
    Opcode.CMP_EQ,
    Opcode.LOG2_LUT,
]


@st.composite
def random_dfg(draw):
    """A random well-formed DFG with 3-14 operators."""
    from repro.dfg.graph import OPCODE_ARITY

    node_count = draw(st.integers(min_value=3, max_value=14))
    input_count = draw(st.integers(min_value=2, max_value=5))
    dfg = DataFlowGraph("random")
    inputs = [dfg.input(f"i{k}") for k in range(input_count)]
    refs = list(inputs)
    made = []
    for index in range(node_count):
        opcode = draw(st.sampled_from(_OP_POOL))
        arity = OPCODE_ARITY[opcode]
        operands = [
            refs[draw(st.integers(min_value=0, max_value=len(refs) - 1))]
            for _ in range(arity)
        ]
        node = dfg.op(opcode, *operands)
        refs.append(node)
        made.append(node)
    output_count = draw(st.integers(min_value=1, max_value=min(3, len(made))))
    for k in range(output_count):
        dfg.mark_output(f"o{k}", made[-(k + 1)])
    return dfg


class TestDPMapSemantics:
    @given(random_dfg(), st.integers(min_value=-64, max_value=64))
    @settings(max_examples=80, deadline=None)
    def test_emitted_program_matches_interpreter(self, dfg, seed_value):
        import random as _random

        program = compile_cell(dfg)
        rng = _random.Random(seed_value)
        inputs = {name: rng.randint(-100, 100) for name in dfg.inputs}
        assert verify_program(program, inputs)

    @given(random_dfg())
    @settings(max_examples=60, deadline=None)
    def test_every_component_is_cu_feasible(self, dfg):
        for levels in (1, 2, 3):
            result = run_dpmap(dfg, levels=levels)
            for component in result.components:
                assert try_assign(result.graph, component, levels) is not None

    @given(random_dfg())
    @settings(max_examples=60, deadline=None)
    def test_schedule_is_complete_and_bounded(self, dfg):
        result = run_dpmap(dfg)
        issued = sorted(i for cycle in result.schedule for i in cycle)
        assert issued == list(range(len(result.components)))
        assert all(len(cycle) <= 2 for cycle in result.schedule)

    @given(random_dfg())
    @settings(max_examples=40, deadline=None)
    def test_three_level_merge_never_increases_rf_traffic(self, dfg):
        # Levels 1 vs 2 is NOT universally monotone: partitioning's
        # replication re-reads operands (the paper's own POA row shows
        # 56 -> 56).  The 3-level merge, however, only re-keeps cut
        # edges, so it can only reduce traffic relative to 2 levels.
        mid = run_dpmap(dfg, levels=2).stats.rf_accesses
        deep = run_dpmap(dfg, levels=3).stats.rf_accesses
        assert mid >= deep
