"""Property tests for the guard layer.

Two invariants:

- every program DPMap emits for a random well-formed DFG passes the
  static verifier (the compiler never produces an illegal program);
- the shrinkers always return a smaller-or-equal case that still
  satisfies the failure predicate.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.dpmap.codegen import compile_cell
from repro.guard.diff import (
    case_size,
    generate_payload,
    payload_size,
    restrict_outputs,
    shrink_case,
    shrink_payload,
)
from repro.guard.verifier import check_program

from .test_dpmap_properties import random_dfg


class TestCompilerNeverEmitsIllegalPrograms:
    @given(random_dfg())
    @settings(max_examples=60, deadline=None)
    def test_compiled_random_dfg_passes_verifier(self, dfg):
        program = compile_cell(dfg)
        result = check_program(program)
        assert result.ok, [str(v) for v in result.violations]


class TestShrinkerContracts:
    @given(
        st.sampled_from(["bsw", "pairhmm", "dtw", "chain", "poa", "bellman_ford"]),
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=0, max_value=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_payload_shrink_smaller_or_equal_and_still_failing(
        self, kernel, seed, index
    ):
        payload = generate_payload(kernel, seed, index)
        # An arbitrary-but-stable predicate over payload shape: the
        # shrinker must respect it whatever it is.
        threshold = payload_size(kernel, payload) // 2

        def still_fails(candidate):
            return payload_size(kernel, candidate) > threshold

        if not still_fails(payload):
            return
        shrunk = shrink_payload(kernel, payload, still_fails)
        assert still_fails(shrunk)
        assert payload_size(kernel, shrunk) <= payload_size(kernel, payload)

    @given(random_dfg(), st.integers(min_value=-64, max_value=64))
    @settings(max_examples=40, deadline=None)
    def test_case_shrink_smaller_or_equal_and_still_failing(self, dfg, seed_value):
        import random as _random

        rng = _random.Random(seed_value)
        inputs = {name: rng.randint(-100, 100) for name in dfg.inputs}

        def still_fails(candidate_dfg, candidate_inputs):
            return len(candidate_dfg.outputs) >= 1

        shrunk_dfg, shrunk_inputs = shrink_case(dfg, inputs, still_fails)
        assert still_fails(shrunk_dfg, shrunk_inputs)
        assert case_size(shrunk_dfg, shrunk_inputs) <= case_size(dfg, inputs)
        # The shrunk DFG still compiles and is still verifier-clean.
        assert check_program(compile_cell(shrunk_dfg)).ok

    @given(random_dfg())
    @settings(max_examples=40, deadline=None)
    def test_restrict_outputs_preserves_semantics(self, dfg):
        name = sorted(dfg.outputs)[0]
        cone = restrict_outputs(dfg, [name])
        assert len(cone.nodes) <= len(dfg.nodes)
        inputs = {input_name: 5 for input_name in dfg.inputs}
        cone_inputs = {input_name: 5 for input_name in cone.inputs}
        assert cone.evaluate(cone_inputs)[name] == dfg.evaluate(inputs)[name]
