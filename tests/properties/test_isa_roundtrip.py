"""Property-based assembler round-trip tests."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.dfg.graph import Opcode
from repro.isa.assembler import (
    assemble_control,
    assemble_vliw,
    disassemble_control,
    disassemble_vliw,
)
from repro.isa.compute import CUInstruction, Imm, Reg, SlotOp, VLIWInstruction
from repro.isa.control import (
    ControlInstruction,
    ControlOp,
    Loc,
    PORT_SPACES,
    Space,
)

_indexed = st.sampled_from([Space.REG, Space.SPM, Space.IBUF, Space.OBUF])
_ports = st.sampled_from([Space.IN, Space.OUT, Space.FIFO])


@st.composite
def locations(draw):
    if draw(st.booleans()):
        return Loc(draw(_ports))
    space = draw(_indexed)
    if draw(st.booleans()):
        return Loc(space, draw(st.integers(min_value=0, max_value=15)), indirect=True)
    return Loc(space, draw(st.integers(min_value=0, max_value=255)))


@st.composite
def control_instructions(draw):
    op = draw(st.sampled_from(list(ControlOp)))
    a = st.integers(min_value=0, max_value=15)
    imm = st.integers(min_value=-(1 << 15), max_value=1 << 15)
    if op is ControlOp.ADD:
        return ControlInstruction(op, rd=draw(a), rs1=draw(a), rs2=draw(a))
    if op is ControlOp.ADDI:
        return ControlInstruction(op, rd=draw(a), rs1=draw(a), imm=draw(imm))
    if op is ControlOp.LI:
        return ControlInstruction(op, dest=draw(locations()), imm=draw(imm))
    if op is ControlOp.MV:
        return ControlInstruction(op, dest=draw(locations()), src=draw(locations()))
    if op in (ControlOp.BEQ, ControlOp.BNE, ControlOp.BGE, ControlOp.BLT):
        return ControlInstruction(
            op, rs1=draw(a), rs2=draw(a),
            offset=draw(st.integers(min_value=-64, max_value=64)),
        )
    if op is ControlOp.SET:
        return ControlInstruction(
            op,
            target=draw(st.integers(min_value=0, max_value=63)),
            count=draw(st.integers(min_value=0, max_value=63)),
        )
    return ControlInstruction(op)


_binary_ops = st.sampled_from(
    [Opcode.ADD, Opcode.SUB, Opcode.MAX, Opcode.MIN, Opcode.LOG_SUM_LUT]
)


@st.composite
def operands(draw):
    if draw(st.booleans()):
        return Reg(draw(st.integers(min_value=0, max_value=63)))
    return Imm(draw(st.integers(min_value=-(1 << 20), max_value=1 << 20)))


@st.composite
def cu_ways(draw):
    dest = Reg(draw(st.integers(min_value=0, max_value=63)))
    if draw(st.booleans()):
        return CUInstruction(
            kind="mul",
            dest=dest,
            mul=SlotOp(Opcode.MUL, (draw(operands()), draw(operands()))),
        )
    left = SlotOp(draw(_binary_ops), (draw(operands()), draw(operands())))
    if draw(st.booleans()):
        right = SlotOp(draw(_binary_ops), (draw(operands()), draw(operands())))
        root = draw(_binary_ops)
        return CUInstruction(
            kind="tree",
            dest=dest,
            left=left,
            right=right,
            root=root,
            root_swapped=draw(st.booleans()),
        )
    return CUInstruction(kind="tree", dest=dest, left=left)


class TestRoundTrips:
    @given(control_instructions())
    @settings(max_examples=200, deadline=None)
    def test_control_roundtrip(self, instruction):
        instruction.validate()
        assert assemble_control(disassemble_control(instruction)) == instruction

    @given(cu_ways(), st.one_of(st.none(), cu_ways()))
    @settings(max_examples=200, deadline=None)
    def test_vliw_roundtrip(self, cu0, cu1):
        bundle = VLIWInstruction(cu0=cu0, cu1=cu1)
        bundle.validate()
        assert assemble_vliw(disassemble_vliw(bundle)) == bundle
