"""Property-based tests on kernel invariants (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.kernels.base import AlignmentMode
from repro.kernels.bsw import banded_sw
from repro.kernels.chain import Anchor, chain_original, chain_reordered
from repro.kernels.dtw import dtw_distance
from repro.kernels.lcs import lcs_length, lcs_string
from repro.kernels.sw import align

dna = st.text(alphabet="ACGT", min_size=1, max_size=24)
short_dna = st.text(alphabet="ACGT", min_size=1, max_size=12)
signals = st.lists(
    st.integers(min_value=-50, max_value=50), min_size=1, max_size=15
)


class TestLCSProperties:
    @given(dna, dna)
    @settings(max_examples=60, deadline=None)
    def test_bounded_by_shorter_sequence(self, x, y):
        assert lcs_length(x, y) <= min(len(x), len(y))

    @given(dna)
    @settings(max_examples=40, deadline=None)
    def test_self_lcs_is_identity(self, x):
        assert lcs_length(x, x) == len(x)
        assert lcs_string(x, x) == x

    @given(dna, dna)
    @settings(max_examples=60, deadline=None)
    def test_symmetry(self, x, y):
        assert lcs_length(x, y) == lcs_length(y, x)

    @given(dna, dna, st.text(alphabet="ACGT", max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_monotone_under_extension(self, x, y, suffix):
        # Appending to one sequence can only help.
        assert lcs_length(x + suffix, y) >= lcs_length(x, y)


class TestAlignmentProperties:
    @given(short_dna, short_dna)
    @settings(max_examples=50, deadline=None)
    def test_local_score_nonnegative(self, q, t):
        assert align(q, t, mode=AlignmentMode.LOCAL).score >= 0

    @given(short_dna, short_dna)
    @settings(max_examples=50, deadline=None)
    def test_local_at_least_global(self, q, t):
        local = align(q, t, mode=AlignmentMode.LOCAL).score
        globl = align(q, t, mode=AlignmentMode.GLOBAL).score
        assert local >= globl

    @given(short_dna, short_dna)
    @settings(max_examples=50, deadline=None)
    def test_semi_global_between_local_and_global(self, q, t):
        local = align(q, t, mode=AlignmentMode.LOCAL).score
        semi = align(q, t, mode=AlignmentMode.SEMI_GLOBAL).score
        globl = align(q, t, mode=AlignmentMode.GLOBAL).score
        assert globl <= semi <= local

    @given(short_dna)
    @settings(max_examples=40, deadline=None)
    def test_self_alignment_perfect(self, s):
        result = align(s, s, mode=AlignmentMode.GLOBAL)
        assert result.score == len(s)
        assert result.cigar_string == f"{len(s)}M"

    @given(short_dna, short_dna)
    @settings(max_examples=40, deadline=None)
    def test_global_cigar_consumes_both(self, q, t):
        result = align(q, t, mode=AlignmentMode.GLOBAL)
        assert result.aligned_lengths() == (len(q), len(t))


class TestBandedProperties:
    @given(short_dna, short_dna, st.integers(min_value=1, max_value=6))
    @settings(max_examples=50, deadline=None)
    def test_band_widening_monotone(self, q, t, band):
        narrow = banded_sw(q, t, band=band).score
        wide = banded_sw(q, t, band=band + 4).score
        assert narrow <= wide

    @given(short_dna, short_dna)
    @settings(max_examples=50, deadline=None)
    def test_extension_bounded_by_local_optimum(self, q, t):
        # banded_sw is an *anchored extension* (seed at (0,0)); its best
        # score can never beat the free local alignment.
        full = banded_sw(q, t, band=max(len(q), len(t)) + 1)
        assert 0 <= full.score <= align(q, t, mode=AlignmentMode.LOCAL).score

    @given(short_dna)
    @settings(max_examples=40, deadline=None)
    def test_self_extension_is_perfect(self, s):
        result = banded_sw(s, s, band=len(s) + 1)
        assert result.score == len(s)
        assert result.global_score == len(s)


class TestDTWProperties:
    @given(signals, signals)
    @settings(max_examples=50, deadline=None)
    def test_nonnegative_and_symmetric(self, a, b):
        assert dtw_distance(a, b) >= 0
        assert dtw_distance(a, b) == dtw_distance(b, a)

    @given(signals)
    @settings(max_examples=40, deadline=None)
    def test_identity(self, a):
        assert dtw_distance(a, a) == 0

    @given(signals, st.integers(min_value=1, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_repetition_invariance(self, a, repeats):
        # Repeating samples is free under warping.
        stretched = [value for value in a for _ in range(repeats)]
        assert dtw_distance(a, stretched) == 0


anchor_steps = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=80),
        st.integers(min_value=1, max_value=80),
    ),
    min_size=1,
    max_size=25,
)


class TestChainProperties:
    @given(anchor_steps, st.integers(min_value=1, max_value=12))
    @settings(max_examples=50, deadline=None)
    def test_reordered_equals_original(self, steps, window):
        anchors, x, y = [], 0, 0
        for dx, dy in steps:
            x, y = x + dx, y + dy
            anchors.append(Anchor(x, y))
        original = chain_original(anchors, n=window)
        reordered = chain_reordered(anchors, n=window)
        assert original.scores == reordered.scores
        assert original.parents == reordered.parents

    @given(anchor_steps)
    @settings(max_examples=50, deadline=None)
    def test_scores_at_least_seed_weight(self, steps):
        anchors, x, y = [], 0, 0
        for dx, dy in steps:
            x, y = x + dx, y + dy
            anchors.append(Anchor(x, y))
        result = chain_original(anchors)
        assert all(score >= anchors[i].w for i, score in enumerate(result.scores))
