"""Property-based end-to-end simulator validation.

The heaviest property in the suite: for random DNA inputs, the full
ISA-level systolic simulation equals the reference kernel.  Sizes are
kept small (a few hundred simulated cycles per example) so the
property still runs in seconds.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.kernels.base import AlignmentMode
from repro.kernels.lcs import lcs_table
from repro.kernels.sw import align
from repro.mapping.kernels2d import bsw_wavefront_spec, lcs_wavefront_spec
from repro.mapping.wavefront2d import run_wavefront
from repro.seq.alphabet import encode

dna_stream = st.text(alphabet="ACGT", min_size=1, max_size=10)
dna_static4 = st.text(alphabet="ACGT", min_size=4, max_size=4)
dna_static8 = st.text(alphabet="ACGT", min_size=8, max_size=8)


class TestSimulatedLCS:
    @given(dna_stream, dna_static4)
    @settings(max_examples=25, deadline=None)
    def test_single_pass_matches_reference(self, x, y):
        run = run_wavefront(lcs_wavefront_spec(), target=encode(y), stream=encode(x))
        assert run.finished
        reference = lcs_table(x, y)
        assert run.epilogue_series("c_up") == [
            reference[len(x)][j + 1] for j in range(len(y))
        ]

    @given(dna_stream, dna_static8)
    @settings(max_examples=15, deadline=None)
    def test_multi_pass_matches_reference(self, x, y):
        run = run_wavefront(lcs_wavefront_spec(), target=encode(y), stream=encode(x))
        assert run.finished
        reference = lcs_table(x, y)
        assert run.epilogue_series("c_up") == [
            reference[len(x)][j + 1] for j in range(len(y))
        ]


class TestSimulatedBSW:
    @given(dna_stream, dna_static4)
    @settings(max_examples=25, deadline=None)
    def test_best_score_matches_local_alignment(self, query, target):
        run = run_wavefront(
            bsw_wavefront_spec(), target=encode(target), stream=encode(query)
        )
        assert run.finished
        best = max(run.epilogue_series("hmax"))
        assert best == align(query, target, mode=AlignmentMode.LOCAL).score


class TestSimulatedChain:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=60),
                st.integers(min_value=1, max_value=60),
            ),
            min_size=2,
            max_size=12,
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_scores_match_fixed_reference(self, steps):
        from repro.kernels.chain import Anchor
        from repro.kernels.chain_fixed import chain_reordered_fixed
        from repro.mapping.sliding1d import run_chain

        anchors, x, y = [], 0, 0
        for dx, dy in steps:
            x, y = x + dx, y + dy
            anchors.append(Anchor(x, y))
        run = run_chain(anchors, total_pes=4)
        reference = chain_reordered_fixed(anchors, n=4)
        assert run.finished
        assert run.result.scores == reference.scores
