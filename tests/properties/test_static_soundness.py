"""Soundness of the static value-range analysis, checked empirically.

Three layers, matching the certificate's claims:

1. **Per-invocation fuzz** -- for every kernel cell program, draw
   random inputs *inside the declared contract* and replay the concrete
   execution against the abstract one: every runtime-observed ALU value
   must land inside the interval the analysis computed for that exact
   observation index.  This is the mirror-alignment property the whole
   framework rests on.
2. **Real-sweep contract validity** -- run full DP sweeps (not single
   cells) for the monotone-accumulator kernels and check that every
   cell invocation the sweep issues respects the declared contract, so
   the per-invocation certificates apply to real workloads.
3. **Certified programs never trip a sentinel** -- force runtime
   sentinel observation on every certified kernel across a seeded
   workload sweep; any hazard count is a hard failure (this is the
   same audit the engine runs via ``static_certificate_violations``).
"""

import random

from repro.dpmap.codegen import run_program
from repro.engine.runners import match_table_for
from repro.guard.diff import (
    DIFF_KERNELS,
    compile_kernel_programs,
    generate_payload,
    run_case,
)
from repro.guard.sentinels import make_sentinel
from repro.static.certify import certify_program
from repro.static.contracts import kernel_contract

#: Seeds are arbitrary but fixed: the sweep is deterministic.
FUZZ_SEED = 20260808
CASES_PER_CELL = 60
SWEEP_CASES = 12

#: Sampling clamp for half-open contract intervals (none of the
#: declared contracts are unbounded today; this keeps the sampler
#: total if one ever becomes so).
_CLAMP = 1 << 24


def _sample(rng, interval):
    lo = -_CLAMP if interval.lo is None else interval.lo
    hi = _CLAMP if interval.hi is None else interval.hi
    return rng.randint(lo, hi)


def _match_table(kernel):
    try:
        return match_table_for(kernel)
    except Exception:
        return None


def _cells():
    for kernel in DIFF_KERNELS:
        for name, cell in compile_kernel_programs(kernel).cells.items():
            label = kernel if name == "cell" else f"{kernel}:{name}"
            yield kernel, label, cell


class TestPerInvocationFuzz:
    def test_every_observed_value_inside_its_interval(self):
        rng = random.Random(FUZZ_SEED)
        checked = 0
        for kernel, label, cell in _cells():
            contract = kernel_contract(label)
            assert contract is not None, f"no contract for {label}"
            certificate = certify_program(kernel, cell, name=label)
            intervals = certificate.observed_intervals
            table = _match_table(kernel)
            for _ in range(CASES_PER_CELL):
                inputs = {
                    name: _sample(rng, contract.inputs[name])
                    for name in cell.input_regs
                }
                observed = []
                run_program(
                    cell, inputs, match_table=table, observe=observed.append
                )
                assert len(observed) == len(intervals), label
                for index, (value, (lo, hi)) in enumerate(
                    zip(observed, intervals)
                ):
                    assert (lo is None or value >= lo) and (
                        hi is None or value <= hi
                    ), (
                        f"{label}: observation {index} = {value} outside "
                        f"[{lo}, {hi}] for inputs {inputs}"
                    )
                    checked += 1
        # All six kernels, all their cells, every observation: the
        # sweep must actually have exercised a meaningful volume.
        assert checked > 4_000

    def test_contract_covers_every_cell_input(self):
        for _, label, cell in _cells():
            contract = kernel_contract(label)
            missing = set(cell.input_regs) - set(contract.inputs)
            assert not missing, f"{label} inputs without contract: {missing}"


def _dtw_sweep_checks(rng, cell, contract):
    """Full DTW table; yields every cell invocation's inputs/output."""
    inf = 1 << 20
    a = [rng.randint(0, 65535) for _ in range(rng.randint(3, 8))]
    b = [rng.randint(0, 65535) for _ in range(rng.randint(3, 8))]
    rows, cols = len(a), len(b)
    dist = [[0] * (cols + 1) for _ in range(rows + 1)]
    for i in range(rows + 1):
        dist[i][0] = 0 if i == 0 else inf
    for j in range(1, cols + 1):
        dist[0][j] = inf
    for i in range(1, rows + 1):
        for j in range(1, cols + 1):
            inputs = {
                "a": a[i - 1],
                "b": b[j - 1],
                "d_diag": dist[i - 1][j - 1],
                "d_up": dist[i - 1][j],
                "d_left": dist[i][j - 1],
            }
            for name, value in inputs.items():
                assert contract.inputs[name].contains(value), (
                    f"dtw sweep input {name}={value} escapes "
                    f"{contract.inputs[name]}"
                )
            dist[i][j] = run_program(cell, inputs)["d"]


def _lcs_sweep_checks(rng, cell, contract):
    length_x = rng.randint(3, 10)
    length_y = rng.randint(3, 10)
    x = [rng.randint(0, 255) for _ in range(length_x)]
    y = [rng.randint(0, 255) for _ in range(length_y)]
    table = [[0] * (length_y + 1) for _ in range(length_x + 1)]
    for i in range(1, length_x + 1):
        for j in range(1, length_y + 1):
            inputs = {
                "x": x[i - 1],
                "y": y[j - 1],
                "c_diag": table[i - 1][j - 1],
                "c_up": table[i - 1][j],
                "c_left": table[i][j - 1],
            }
            for name, value in inputs.items():
                assert contract.inputs[name].contains(value), (
                    f"lcs sweep input {name}={value} escapes "
                    f"{contract.inputs[name]}"
                )
            table[i][j] = run_program(cell, inputs)["c"]


class TestRealSweepContractValidity:
    def test_dtw_sweeps_stay_inside_the_contract(self):
        rng = random.Random(FUZZ_SEED + 1)
        cell = compile_kernel_programs("dtw").cells["cell"]
        contract = kernel_contract("dtw")
        for _ in range(SWEEP_CASES):
            _dtw_sweep_checks(rng, cell, contract)

    def test_lcs_sweeps_stay_inside_the_contract(self):
        from repro.dpmap.codegen import compile_cell
        from repro.engine.runners import build_dfg

        rng = random.Random(FUZZ_SEED + 2)
        cell = compile_cell(build_dfg("lcs"))
        contract = kernel_contract("lcs")
        for _ in range(SWEEP_CASES):
            _lcs_sweep_checks(rng, cell, contract)


class TestCertifiedNeverTrips:
    def test_certified_kernels_never_fire_a_forced_sentinel(self):
        fired = []
        certified_kernels = []
        for kernel in DIFF_KERNELS:
            programs = compile_kernel_programs(kernel)
            certificates = [
                certify_program(
                    kernel,
                    cell,
                    name=kernel if name == "cell" else f"{kernel}:{name}",
                )
                for name, cell in programs.cells.items()
            ]
            if not all(c.sentinel_free for c in certificates):
                continue
            certified_kernels.append(kernel)
            for index in range(SWEEP_CASES):
                payload = generate_payload(kernel, FUZZ_SEED, index)
                sentinel = make_sentinel(kernel)
                outcome = run_case(kernel, payload, programs, sentinel)
                assert outcome.ok, (kernel, payload)
                if sentinel.triggered:
                    fired.append((kernel, payload, sentinel.snapshot()))
        # Acceptance floor: at least two of the six kernels certify.
        assert len(certified_kernels) >= 2, certified_kernels
        assert not fired, fired
