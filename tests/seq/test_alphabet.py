"""Tests for the DNA alphabet and 2-bit encoding."""

import random

import pytest

from repro.seq.alphabet import (
    DNA_ALPHABET,
    complement,
    decode,
    encode,
    is_dna,
    random_sequence,
    reverse_complement,
)


class TestEncodeDecode:
    def test_canonical_order(self):
        assert encode("ACGT") == [0, 1, 2, 3]

    def test_roundtrip(self, rng):
        sequence = random_sequence(64, rng)
        assert decode(encode(sequence)) == sequence

    def test_empty(self):
        assert encode("") == []
        assert decode([]) == ""

    def test_encode_rejects_ambiguity_codes(self):
        with pytest.raises(ValueError):
            encode("ACGN")

    def test_decode_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            decode([0, 4])


class TestComplement:
    def test_pairs(self):
        assert complement("A") == "T"
        assert complement("G") == "C"

    def test_reverse_complement_involution(self, rng):
        sequence = random_sequence(30, rng)
        assert reverse_complement(reverse_complement(sequence)) == sequence

    def test_reverse_complement_example(self):
        assert reverse_complement("AACGT") == "ACGTT"

    def test_unknown_base(self):
        with pytest.raises(ValueError):
            complement("Z")


class TestRandomSequence:
    def test_length(self, rng):
        assert len(random_sequence(17, rng)) == 17

    def test_alphabet_closed(self, rng):
        assert is_dna(random_sequence(200, rng))

    def test_deterministic_with_seed(self):
        a = random_sequence(50, random.Random(7))
        b = random_sequence(50, random.Random(7))
        assert a == b

    def test_negative_length_rejected(self, rng):
        with pytest.raises(ValueError):
            random_sequence(-1, rng)

    def test_is_dna(self):
        assert is_dna("ACGT")
        assert not is_dna("ACGU")
