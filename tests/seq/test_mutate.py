"""Tests for the read mutation model."""

import random

import pytest

from repro.seq.alphabet import is_dna, random_sequence
from repro.seq.mutate import MutationProfile, Mutator


class TestMutationProfile:
    def test_validation_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            MutationProfile(substitution=1.5).validate()

    def test_validation_rejects_saturated_total(self):
        with pytest.raises(ValueError):
            MutationProfile(
                substitution=0.5, insertion=0.3, deletion=0.3
            ).validate()

    def test_technology_presets_are_valid(self):
        for profile in (
            MutationProfile.illumina(),
            MutationProfile.pacbio(),
            MutationProfile.nanopore(),
        ):
            profile.validate()

    def test_long_read_profiles_are_indel_heavy(self):
        illumina = MutationProfile.illumina()
        pacbio = MutationProfile.pacbio()
        assert pacbio.insertion + pacbio.deletion > (
            illumina.insertion + illumina.deletion
        )


class TestMutator:
    def test_output_is_dna(self, rng):
        mutator = Mutator(MutationProfile.nanopore(), rng)
        assert is_dna(mutator.mutate(random_sequence(200, rng)))

    def test_zero_rates_are_identity(self, rng):
        mutator = Mutator(
            MutationProfile(substitution=0.0, insertion=0.0, deletion=0.0), rng
        )
        template = random_sequence(100, rng)
        assert mutator.mutate(template) == template

    def test_divergence_scales_with_rate(self):
        template = random_sequence(2000, random.Random(1))
        low = Mutator(MutationProfile.illumina(), random.Random(2)).mutate(template)
        high = Mutator(MutationProfile.nanopore(), random.Random(2)).mutate(template)
        low_same = sum(a == b for a, b in zip(low, template))
        high_same = sum(a == b for a, b in zip(high, template))
        assert high_same < low_same

    def test_deterministic_given_seed(self):
        template = random_sequence(300, random.Random(3))
        a = Mutator(MutationProfile.pacbio(), random.Random(4)).mutate(template)
        b = Mutator(MutationProfile.pacbio(), random.Random(4)).mutate(template)
        assert a == b

    def test_deletions_shorten_on_average(self):
        template = random_sequence(5000, random.Random(5))
        profile = MutationProfile(
            substitution=0.0, insertion=0.0, deletion=0.1, extend=0.2
        )
        mutated = Mutator(profile, random.Random(6)).mutate(template)
        assert len(mutated) < len(template)
