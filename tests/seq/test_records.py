"""Tests for read/reference record types."""

import pytest

from repro.seq.records import Read, ReadPair, Reference


class TestReference:
    def test_window(self):
        ref = Reference("r", "ACGTACGT")
        assert ref.window(2, 4) == "GTAC"

    def test_window_bounds(self):
        ref = Reference("r", "ACGT")
        with pytest.raises(ValueError):
            ref.window(2, 4)

    def test_rejects_non_dna(self):
        with pytest.raises(ValueError):
            Reference("bad", "ACGN")

    def test_len(self):
        assert len(Reference("r", "ACG")) == 3


class TestReadPair:
    def test_cells(self):
        pair = ReadPair(query="ACGT", target="ACG")
        assert pair.cells == 12

    def test_rejects_non_dna(self):
        with pytest.raises(ValueError):
            ReadPair(query="ACGU", target="ACG")


class TestRead:
    def test_origin_metadata(self):
        read = Read(name="x", sequence="ACGT", origin=10, origin_end=14)
        assert read.origin_end - read.origin == len(read)
