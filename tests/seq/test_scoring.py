"""Tests for substitution matrices and gap models."""

import pytest

from repro.seq.scoring import (
    AffineGap,
    ConvexGap,
    LinearGap,
    ScoringScheme,
    SubstitutionMatrix,
)


class TestSubstitutionMatrix:
    def test_defaults(self):
        matrix = SubstitutionMatrix()
        assert matrix.score("A", "A") == 1
        assert matrix.score("A", "C") == -1

    def test_overrides(self):
        matrix = SubstitutionMatrix(overrides={("A", "G"): 0})
        assert matrix.score("A", "G") == 0
        assert matrix.score("G", "A") == -1  # override is directional


class TestGapModels:
    def test_linear_is_proportional(self):
        gap = LinearGap(extend=3)
        assert gap.penalty(0) == 0
        assert gap.penalty(5) == 15

    def test_affine_charges_open_once(self):
        gap = AffineGap(open=4, extend=1)
        assert gap.penalty(0) == 0
        assert gap.penalty(1) == 5
        assert gap.penalty(3) - gap.penalty(2) == 1

    def test_convex_growth_is_subadditive_in_log_term(self):
        gap = ConvexGap(open=4, extend=1, scale=2)
        # Marginal cost of extending shrinks relative to linear because
        # log2 grows sublinearly.
        assert gap.penalty(8) - gap.penalty(4) < 2 * (gap.penalty(4) - gap.penalty(2))

    def test_convex_matches_formula(self):
        gap = ConvexGap(open=4, extend=1, scale=1)
        assert gap.penalty(8) == 4 + 8 + 3  # open + extend*8 + log2(8)

    def test_negative_length_rejected(self):
        for gap in (LinearGap(), AffineGap(), ConvexGap()):
            with pytest.raises(ValueError):
                gap.penalty(-1)


class TestScoringScheme:
    def test_composition(self):
        scheme = ScoringScheme(
            substitution=SubstitutionMatrix(match=2, mismatch=-3),
            gap=AffineGap(open=5, extend=2),
        )
        assert scheme.score("C", "C") == 2
        assert scheme.gap_penalty(2) == 9

    def test_default_is_affine(self):
        assert isinstance(ScoringScheme().gap, AffineGap)
