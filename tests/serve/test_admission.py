"""Admission control units: token buckets, tenant quotas, gate order."""

import pytest

from repro.serve.admission import (
    PRIORITY_CLASSES,
    REJECT_BACKPRESSURE,
    REJECT_DRAINING,
    REJECT_QUOTA,
    AdmissionController,
    priority_for,
)
from repro.serve.quota import TenantQuotas, TokenBucket


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def test_token_bucket_burst_then_refill():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
    assert [bucket.take() for _ in range(4)] == [True, True, True, False]
    clock.advance(0.5)  # +1 token
    assert bucket.take()
    assert not bucket.take()
    clock.advance(10.0)  # refill caps at burst
    assert bucket.tokens == pytest.approx(3.0)


def test_token_bucket_rejects_without_spending():
    clock = FakeClock()
    bucket = TokenBucket(rate=1.0, burst=1.0, clock=clock)
    assert bucket.take()
    before = bucket.tokens
    assert not bucket.take()
    assert bucket.tokens == pytest.approx(before)  # failed take is free


@pytest.mark.parametrize("rate, burst", [(0, 1), (-1, 1), (1, 0), (1, -2)])
def test_token_bucket_validates_parameters(rate, burst):
    with pytest.raises(ValueError):
        TokenBucket(rate=rate, burst=burst)


def test_tenant_quotas_defaults_and_overrides():
    clock = FakeClock()
    quotas = TenantQuotas(
        default_rate=100.0,
        default_burst=2.0,
        overrides={"vip": (100.0, 5.0)},
        clock=clock,
    )
    assert [quotas.take("anon") for _ in range(3)] == [True, True, False]
    assert [quotas.take("vip") for _ in range(6)] == [True] * 5 + [False]
    # Buckets are per-tenant: exhausting one leaves others untouched.
    assert quotas.take("other")


def test_admission_gate_order():
    clock = FakeClock()
    quotas = TenantQuotas(default_rate=1.0, default_burst=1.0, clock=clock)
    controller = AdmissionController(quotas, max_pending=2)

    # Draining wins over everything and spends no tokens.
    decision = controller.check("t", pending=0, draining=True)
    assert not decision.admitted and decision.reason == REJECT_DRAINING
    assert quotas.bucket_for("t").tokens == pytest.approx(1.0)

    # Backpressure beats quota (also token-free).
    decision = controller.check("t", pending=2, draining=False)
    assert not decision.admitted and decision.reason == REJECT_BACKPRESSURE
    assert quotas.bucket_for("t").tokens == pytest.approx(1.0)

    # Then the bucket: one admit, then quota-exceeded.
    assert controller.check("t", pending=0, draining=False).admitted
    decision = controller.check("t", pending=0, draining=False)
    assert not decision.admitted and decision.reason == REJECT_QUOTA


def test_priority_classes_map_onto_engine_priorities():
    assert priority_for("high") == PRIORITY_CLASSES["high"] > 0
    assert priority_for("low") == PRIORITY_CLASSES["low"] < 0
    assert priority_for("normal") == 0
    assert priority_for(None) == 0
    assert priority_for("HIGH") == PRIORITY_CLASSES["high"]  # case-folded
    assert priority_for("not-a-class") == 0
