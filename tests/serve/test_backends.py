"""Transport backends: inline, pickling pool and shared-memory rings.

The headline contract -- referenced from
:mod:`repro.serve.transport`'s docstring -- is **byte-identical
results across all three backends for every engine kernel**, plus the
ring-specific behaviors: full-ring backpressure, slot wraparound
across drains, transport accounting, and reclaim after a worker crash
(driven through a :class:`repro.faults.FaultPlan`, mirroring the
chaos campaigns).

One CPU core is assumed: workloads here are tiny, the point is
protocol correctness, not throughput (that is
``benchmarks/test_engine_throughput.py``).
"""

import random

import pytest

from repro.engine import Engine, EngineConfig, make_job
from repro.engine.jobs import ENGINE_KERNELS
from repro.faults import FaultPlan
from repro.serve import TransportConfig
from repro.serve.transport import ShmExecutor
from repro.workloads.anchors import generate_chain_workload


def _payloads(kernel, count, seed=31):
    rng = random.Random((seed, kernel).__hash__())
    dna = lambda n: "".join(rng.choice("ACGT") for _ in range(n))
    if kernel == "bsw":
        return [{"query": dna(18), "target": dna(14)} for _ in range(count)]
    if kernel == "pairhmm":
        return [{"read": dna(10), "haplotype": dna(12)} for _ in range(count)]
    if kernel == "lcs":
        return [{"x": dna(16), "y": dna(13)} for _ in range(count)]
    if kernel == "dtw":
        return [
            {
                "a": [rng.randrange(-40, 40) for _ in range(10)],
                "b": [rng.randrange(-40, 40) for _ in range(9)],
            }
            for _ in range(count)
        ]
    if kernel == "chain":
        tasks = generate_chain_workload(
            tasks=count, anchors_per_task=12, seed=seed
        ).tasks
        return [
            {"anchors": [[a.x, a.y, a.w] for a in task.anchors]}
            for task in tasks
        ]
    raise AssertionError(kernel)


def _drain(transport, jobs_by_kernel):
    """Run one mixed stream through an engine on *transport*."""
    config = EngineConfig(max_queue=256, transport=transport)
    with Engine(config) as engine:
        keyed = {}
        for kernel, payloads in jobs_by_kernel.items():
            for index, payload in enumerate(payloads):
                job = make_job(kernel, dict(payload))
                keyed[(kernel, index)] = job.job_id
                engine.submit(job)
        results = {r.job_id: r for r in engine.drain()}
        snapshot = engine.snapshot()
    return (
        {key: results[job_id] for key, job_id in keyed.items()},
        snapshot,
    )


def test_results_byte_identical_across_backends():
    jobs_by_kernel = {kernel: _payloads(kernel, 3) for kernel in ENGINE_KERNELS}
    inline, _ = _drain(TransportConfig(backend="inline"), jobs_by_kernel)
    pickled, _ = _drain(
        TransportConfig(backend="pickle", workers=1), jobs_by_kernel
    )
    shm, shm_snapshot = _drain(
        TransportConfig(backend="shm", workers=2, poll_interval_s=0.01),
        jobs_by_kernel,
    )
    for key, reference in inline.items():
        assert reference.ok, (key, reference.error)
        for name, other in (("pickle", pickled[key]), ("shm", shm[key])):
            assert other.ok, (name, key, other.error)
            assert other.value == reference.value, (name, key)
    # The shm stream really ran on the rings, not a degraded fallback.
    assert shm_snapshot["counters"].get("degraded_batches", 0) == 0
    assert shm_snapshot["counters"]["parallel_batches"] > 0


def test_transport_bytes_accounted_for_pool_and_shm():
    jobs = {"bsw": _payloads("bsw", 6)}
    _, inline_snap = _drain(TransportConfig(backend="inline"), jobs)
    _, pool_snap = _drain(TransportConfig(backend="pickle", workers=1), jobs)
    _, shm_snap = _drain(TransportConfig(backend="shm", workers=1), jobs)
    assert inline_snap["counters"].get("transport_bytes", 0) == 0
    assert pool_snap["counters"]["transport_bytes"] > 0
    assert shm_snap["counters"]["transport_bytes"] > 0


def test_shm_program_broadcast_amortizes_across_drains():
    """The rings pay the pickled program once; later drains move only
    SoA bytes, unlike the pool which re-pickles the program per task."""
    transport = TransportConfig(backend="shm", workers=1, poll_interval_s=0.01)
    with Engine(EngineConfig(max_queue=64, transport=transport)) as engine:
        def one_drain(seed):
            before = engine.metrics.counter("transport_bytes")
            for payload in _payloads("bsw", 6, seed=seed):
                engine.submit(make_job("bsw", dict(payload)))
            assert all(r.ok for r in engine.drain())
            return engine.metrics.counter("transport_bytes") - before

        first, second = one_drain(1), one_drain(2)
    assert second < first / 2, (first, second)


def test_full_ring_applies_backpressure_not_loss():
    """More jobs in one drain than the ring has slots: every job still
    completes, because publishing simply waits for free slots."""
    transport = TransportConfig(
        backend="shm", workers=1, ring_slots=4, poll_interval_s=0.01
    )
    jobs = {"bsw": _payloads("bsw", 20)}
    results, snapshot = _drain(transport, jobs)
    assert len(results) == 20
    assert all(result.ok for result in results.values())
    assert snapshot["counters"].get("degraded_batches", 0) == 0


def test_slot_wraparound_across_consecutive_drains():
    """Slots are reused across drains with bumped generations; results
    stay correct and the program broadcast is not repaid."""
    transport = TransportConfig(
        backend="shm", workers=1, ring_slots=4, poll_interval_s=0.01
    )
    with Engine(EngineConfig(max_queue=64, transport=transport)) as engine:
        reference = {}
        for drain_round in range(3):
            payloads = _payloads("lcs", 6, seed=drain_round)
            jobs = [make_job("lcs", dict(p)) for p in payloads]
            for job in jobs:
                engine.submit(job)
            results = {r.job_id: r for r in engine.drain()}
            for job, payload in zip(jobs, payloads):
                result = results[job.job_id]
                assert result.ok, result.error
                key = (payload["x"], payload["y"])
                if key in reference:
                    assert result.value == reference[key]
                reference[key] = result.value
        snapshot = engine.snapshot()
        executor = engine.executor
        generations = executor._segments.jobs.header[:, 1]
        assert int(generations.max()) >= 2  # slots really wrapped
    assert snapshot["cache"]["compiles"] == 1  # one program, reused


def test_reclaim_after_worker_crash_via_fault_plan():
    """A crash-marked job kills its worker mid-ring; the transport
    requeues the slot, respawns the worker, and the job survives
    (degrading to inline where the marker is inert), exactly like the
    pool's resubmission semantics in repro.faults campaigns."""
    plan = FaultPlan(seed=3, crash_rate=1.0)
    base = _payloads("bsw", 1)[0]
    crash_payload, kind = plan.decorate(0, dict(base))
    assert kind == "crash" and crash_payload.get("_inject_exit")

    transport = TransportConfig(
        backend="shm", workers=2, ring_slots=8, poll_interval_s=0.01
    )
    with Engine(
        EngineConfig(max_queue=64, transport=transport, max_retries=1)
    ) as engine:
        executor = engine.executor
        assert isinstance(executor, ShmExecutor)
        healthy = [make_job("bsw", dict(p)) for p in _payloads("bsw", 5)]
        crash_job = make_job("bsw", crash_payload)
        for job in (*healthy, crash_job):
            engine.submit(job)
        results = {r.job_id: r for r in engine.drain()}

        assert all(r.ok for r in results.values()), [
            r.error for r in results.values() if not r.ok
        ]
        # The crash-marked job exhausted ring retries and finished on
        # the inline floor, where _inject_exit does not apply.
        assert results[crash_job.job_id].backend == "inline"
        assert results[crash_job.job_id].attempts >= 2

        # Workers were respawned and the ring is healthy again: a
        # fresh batch runs parallel with no degradation.
        alive = [p for p in executor._workers if p is not None and p.is_alive()]
        assert len(alive) == 2
        followup = [make_job("bsw", dict(p)) for p in _payloads("bsw", 4, seed=9)]
        for job in followup:
            engine.submit(job)
        again = engine.drain()
        assert all(r.ok for r in again)
        assert all(r.backend == "shm" for r in again)


def test_injected_failures_stay_job_level():
    """_inject_fail raises inside the warm worker; the error comes back
    over the result ring as a per-job error, not a transport fault."""
    transport = TransportConfig(backend="shm", workers=1, poll_interval_s=0.01)
    with Engine(EngineConfig(max_queue=16, transport=transport)) as engine:
        good = make_job("lcs", _payloads("lcs", 1)[0])
        bad = make_job("lcs", dict(_payloads("lcs", 1)[0], _inject_fail=True))
        engine.submit(good)
        engine.submit(bad)
        results = {r.job_id: r for r in engine.drain()}
    assert results[good.job_id].ok
    assert not results[bad.job_id].ok
    assert "injected job failure" in results[bad.job_id].error


def test_shm_executor_close_releases_segments():
    transport = TransportConfig(backend="shm", workers=1)
    executor = ShmExecutor(transport)
    names = executor._segments.names
    executor.close()
    from multiprocessing import shared_memory

    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=names.job_header)
