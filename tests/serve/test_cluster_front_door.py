"""``gendp-serve`` fronted by a ClusterRouter instead of one Engine.

The server duck-types its engine, so the router slots in unchanged:
submits route through the ring, stats gain the shard topology map, and
result payloads carry the shard that produced them.  This is the wiring
behind ``gendp-serve --shards N``.
"""

import asyncio

from repro.cluster import ClusterConfig, ClusterRouter, SimClock
from repro.engine import EngineConfig
from repro.serve import ServeClient
from repro.serve.server import GendpServer, ServeConfig

BSW = {"query": "ACGTACGTAC", "target": "ACGTTGCA"}


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=60))


def cluster_serving(tmp_path, shards=2):
    class _Serving:
        async def __aenter__(self):
            self.sock = str(tmp_path / "gendp.sock")
            self.router = ClusterRouter(
                ClusterConfig(
                    shards=shards,
                    engine=EngineConfig(workers=0, max_queue=64),
                ),
                clock=SimClock(),
            )
            self.server = GendpServer(
                self.router, ServeConfig(unix_socket=self.sock)
            )
            await self.server.start()
            return self.server, self.sock

        async def __aexit__(self, *exc_info):
            await self.server.stop()
            self.router.close()

    return _Serving()


def test_submit_through_the_cluster_reports_shard(tmp_path):
    async def scenario():
        async with cluster_serving(tmp_path) as (server, sock):
            async with await ServeClient.connect(unix_socket=sock) as client:
                response = await client.submit("bsw", BSW)
                assert response["ok"], response
                assert response["shard"].startswith("shard-")
                assert isinstance(response["value"]["score"], int)

    run(scenario())


def test_stats_expose_the_shard_topology(tmp_path):
    async def scenario():
        async with cluster_serving(tmp_path, shards=4) as (server, sock):
            async with await ServeClient.connect(unix_socket=sock) as client:
                stats = await client.stats()
                assert stats["ok"]
                assert stats["shards"] == {
                    f"shard-{i}": "active" for i in range(4)
                }
                # Cluster counters live in the router's own snapshot
                # (scraped via the exporters); serve stats stay lean.
                router_counters = server.engine.snapshot()["counters"]
                assert "cluster_jobs_routed" in router_counters

    run(scenario())


def test_cluster_failover_is_invisible_to_clients(tmp_path):
    """Kill a shard under the server: clients still get every answer."""

    async def scenario():
        async with cluster_serving(tmp_path, shards=2) as (server, sock):
            router = server.engine
            async with await ServeClient.connect(unix_socket=sock) as client:
                first = await client.submit("bsw", BSW)
                assert first["ok"]
                victim = first["shard"]
                assert router.kill_shard(victim) >= 0
                second = await client.submit("bsw", BSW)
                assert second["ok"], second
                assert second["shard"] != victim
                assert second["value"] == first["value"]
                stats = await client.stats()
                assert stats["shards"][victim] == "dead"

    run(scenario())
