"""SoA slot codecs: payload/result roundtrips for every kernel.

The contract under test: ``decode(encode(x)) == x`` exactly -- the
transport must be invisible.  Fast-path payloads ride structure-of-
arrays byte runs (FMT_SOA); anything the fast path cannot express
exactly falls back to pickle in the same slot (FMT_PICKLE), and fault
markers travel as header bits, never payload keys.
"""

import numpy as np
import pytest

from repro.serve.layout import (
    FMT_PICKLE,
    FMT_SOA,
    J_AUX,
    J_FLAGS,
    J_FORMAT,
    JOB_FIELDS,
    RESULT_FIELDS,
    SlotOverflowError,
    decode_payload,
    decode_result,
    encode_payload,
    encode_result,
)

SLOT_BYTES = 4096


def _roundtrip_payload(kernel, payload, slot_bytes=SLOT_BYTES):
    region = np.zeros(slot_bytes, dtype=np.uint8)
    words = encode_payload(kernel, payload, region)
    header = np.zeros(JOB_FIELDS, dtype=np.int64)
    for index, value in words.items():
        header[index] = value
    return decode_payload(header, region), header


def _roundtrip_result(kernel, ok, value, error, slot_bytes=SLOT_BYTES):
    region = np.zeros(slot_bytes, dtype=np.uint8)
    words = encode_result(kernel, ok, value, error, region)
    header = np.zeros(RESULT_FIELDS, dtype=np.int64)
    for index, word in words.items():
        header[index] = word
    return decode_result(header, region), header


PAYLOADS = {
    "bsw": {"query": "ACGTACGT", "target": "ACGTTT"},
    "pairhmm": {"read": "ACGT", "haplotype": "AACGTT"},
    "lcs": {"x": "GATTACA", "y": "TACATACA"},
    "dtw": {"a": [3, 1, 4, 1, 5], "b": [2, 7, 1, 8]},
    "chain": {"anchors": [[1, 2, 3], [10, 12, 5], [40, 44, 9]]},
}


@pytest.mark.parametrize("kernel", sorted(PAYLOADS))
def test_payload_roundtrip_soa(kernel):
    decoded, header = _roundtrip_payload(kernel, PAYLOADS[kernel])
    assert decoded == PAYLOADS[kernel]
    assert header[J_FORMAT] == FMT_SOA


def test_chain_window_rides_aux_word():
    payload = {"anchors": [[1, 1, 1], [2, 2, 2]], "n": 7}
    decoded, header = _roundtrip_payload("chain", payload)
    assert decoded == payload
    assert header[J_AUX] == 7
    # Absent window decodes as absent, not zero.
    decoded, header = _roundtrip_payload("chain", {"anchors": [[1, 1, 1]]})
    assert "n" not in decoded
    assert header[J_AUX] == -1


def test_fault_markers_are_header_bits_not_body_bytes():
    payload = dict(
        PAYLOADS["bsw"],
        _inject_fail=True,
        _inject_corrupt=True,
        _inject_delay_s=0.25,
        _sentinels=True,
    )
    decoded, header = _roundtrip_payload("bsw", payload)
    assert header[J_FORMAT] == FMT_SOA  # markers did not force pickle
    assert header[J_FLAGS] != 0
    assert decoded["_inject_fail"] is True
    assert decoded["_inject_corrupt"] is True
    assert decoded["_sentinels"] is True
    assert decoded["_inject_delay_s"] == pytest.approx(0.25)
    for key in ("query", "target"):
        assert decoded[key] == payload[key]


def test_trace_ids_ride_behind_the_body():
    trace = {"trace_id": "abc123", "job_id": 42, "tenant": "alpha"}
    payload = dict(PAYLOADS["lcs"], _trace=trace)
    decoded, header = _roundtrip_payload("lcs", payload)
    assert header[J_FORMAT] == FMT_SOA
    assert decoded["_trace"] == trace
    assert decoded["x"] == payload["x"]


@pytest.mark.parametrize(
    "kernel, payload",
    [
        ("bsw", {"query": "ACGT", "target": "ACGT", "extra": 1}),
        ("bsw", {"query": "ACGTé", "target": "ACGT"}),  # non-ASCII
        ("dtw", {"a": [1.5, 2.5], "b": [1, 2]}),  # floats
        ("chain", {"anchors": [[1, 2], [3, 4]]}),  # not triples
    ],
)
def test_inexpressible_payloads_fall_back_to_pickle(kernel, payload):
    decoded, header = _roundtrip_payload(kernel, payload)
    assert header[J_FORMAT] == FMT_PICKLE
    assert decoded == payload


def test_oversized_payload_raises_slot_overflow():
    payload = {"query": "A" * 9000, "target": "C" * 9000}
    with pytest.raises(SlotOverflowError):
        _roundtrip_payload("bsw", payload, slot_bytes=256)


RESULTS = {
    "bsw": {"score": 17, "cells": 48},
    "pairhmm": {"log10_likelihood": -3.25, "cells": 24},
    "lcs": {"length": 5, "cells": 56},
    "dtw": {"distance": 12, "cells": 20},
    "chain": {
        "scores": [3, 8, 11],
        "parents": [-1, 0, 1],
        "best_index": 2,
        "best_score": 11,
        "cells": 9,
    },
}


@pytest.mark.parametrize("kernel", sorted(RESULTS))
def test_result_roundtrip_soa(kernel):
    (ok, value, error), header = _roundtrip_result(
        kernel, True, RESULTS[kernel], None
    )
    assert ok and error is None
    assert value == RESULTS[kernel]
    assert header[3] == 1  # R_OK


def test_error_results_roundtrip():
    (ok, value, error), _ = _roundtrip_result(
        "bsw", False, None, "RuntimeError: injected job failure"
    )
    assert not ok and value is None
    assert error == "RuntimeError: injected job failure"


def test_result_side_channels_fall_back_to_pickle():
    value = dict(RESULTS["bsw"], _trace_spans=[{"name": "job:run"}])
    (ok, decoded, _), header = _roundtrip_result("bsw", True, value, None)
    assert ok
    assert header[5] == FMT_PICKLE  # R_FORMAT
    assert decoded == value
