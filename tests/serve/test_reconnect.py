"""ServeClient reconnect: seeded backoff, redial through a restart.

The headline scenario kills the serving process mid-stream (hard
``stop()``, which severs open connections) and brings a fresh server
up on the same endpoint while the client is already retrying; with a
:class:`ReconnectPolicy` attached the request lands on the new server
and the stream continues.  Without a policy the transport error
propagates, which is the pre-existing behaviour.
"""

import asyncio
import os

import pytest

from repro.engine import Engine, EngineConfig
from repro.serve import ReconnectPolicy, ServeClient
from repro.serve.server import GendpServer, ServeConfig

BSW = {"query": "ACGTACGTAC", "target": "ACGTTGCA"}


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=60))


async def _start_server(sock):
    engine = Engine(EngineConfig(max_queue=128))
    server = GendpServer(engine, ServeConfig(unix_socket=sock))
    await server.start()
    return server


async def _stop_server(server):
    await server.stop()
    server.engine.close()


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ReconnectPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            ReconnectPolicy(base_backoff_s=-1.0)

    def test_backoff_is_bounded_and_grows(self):
        policy = ReconnectPolicy(base_backoff_s=0.1, max_backoff_s=0.5)
        delays = [policy.backoff_s(attempt) for attempt in range(8)]
        assert all(0.0 <= d <= 0.5 for d in delays)
        # Jitter is in [0.5, 1.0) x base, so attempt 3 onward saturates
        # against the ceiling and can never dip below attempt 0's max.
        assert max(delays[3:]) >= max(delays[:1])

    def test_backoff_is_seed_deterministic(self):
        a = ReconnectPolicy(seed=7)
        b = ReconnectPolicy(seed=7)
        c = ReconnectPolicy(seed=8)
        schedule_a = [a.backoff_s(i) for i in range(6)]
        assert schedule_a == [b.backoff_s(i) for i in range(6)]
        assert schedule_a != [c.backoff_s(i) for i in range(6)]


class TestRestart:
    def test_client_rides_through_a_server_restart(self, tmp_path):
        """Kill the server mid-stream; the client redials and finishes."""
        sock = str(tmp_path / "gendp.sock")

        async def scenario():
            first = await _start_server(sock)
            policy = ReconnectPolicy(
                max_attempts=8, base_backoff_s=0.02, max_backoff_s=0.1, seed=3
            )
            async with await ServeClient.connect(
                unix_socket=sock, reconnect=policy
            ) as client:
                before = await client.submit("bsw", BSW)
                assert before["ok"], before

                # Hard kill: listener gone, open connections severed.
                await _stop_server(first)
                os.unlink(sock)

                async def resurrect():
                    await asyncio.sleep(0.05)
                    return await _start_server(sock)

                revival = asyncio.create_task(resurrect())
                # Issued while the endpoint is down: the first attempt
                # fails on the severed stream, redials spin until the
                # new listener appears, then the request is resent.
                after = await client.submit("bsw", BSW)
                second = await revival
                try:
                    assert after["ok"], after
                    assert after["value"] == before["value"]
                    assert client.reconnects >= 1
                    pong = await client.ping()
                    assert pong["ok"]
                finally:
                    await _stop_server(second)

        run(scenario())

    def test_without_policy_the_error_propagates(self, tmp_path):
        sock = str(tmp_path / "gendp.sock")

        async def scenario():
            server = await _start_server(sock)
            async with await ServeClient.connect(unix_socket=sock) as client:
                assert (await client.ping())["ok"]
                await _stop_server(server)
                with pytest.raises((ConnectionError, OSError)):
                    await client.submit("bsw", BSW)

        run(scenario())

    def test_redial_gives_up_after_the_attempt_budget(self, tmp_path):
        sock = str(tmp_path / "gendp.sock")

        async def scenario():
            server = await _start_server(sock)
            policy = ReconnectPolicy(
                max_attempts=2, base_backoff_s=0.01, max_backoff_s=0.02
            )
            async with await ServeClient.connect(
                unix_socket=sock, reconnect=policy
            ) as client:
                # Exchange one request first: a connection still sitting
                # in the listen backlog never learns the server died (a
                # unix-socket quirk); killed *mid-stream* it always does.
                assert (await client.ping())["ok"]
                await _stop_server(server)
                os.unlink(sock)  # nobody is coming back this time
                with pytest.raises((ConnectionError, OSError)):
                    await client.submit("bsw", BSW)
                assert client.reconnects == 0  # every redial failed too

        run(scenario())

    def test_exhaustion_leaves_no_hung_waiters(self, tmp_path):
        """Spent budget: typed error out, pending-futures map empty.

        The failure mode this guards: a request registers a waiter,
        the transport dies, and the waiter is left for a read loop
        that will never resolve it -- the caller hangs forever
        instead of seeing the error.
        """
        sock = str(tmp_path / "gendp.sock")

        async def scenario():
            server = await _start_server(sock)
            policy = ReconnectPolicy(
                max_attempts=2, base_backoff_s=0.01, max_backoff_s=0.02
            )
            async with await ServeClient.connect(
                unix_socket=sock, reconnect=policy
            ) as client:
                assert (await client.ping())["ok"]
                await _stop_server(server)
                os.unlink(sock)  # the endpoint is gone for good
                # Concurrent submits all spend their redial budgets:
                # every one must *resolve* with a transport error
                # inside the timeout, none may hang on an orphaned
                # waiter.
                results = await asyncio.wait_for(
                    asyncio.gather(
                        *(client.submit("bsw", BSW) for _ in range(4)),
                        return_exceptions=True,
                    ),
                    timeout=30,
                )
                assert len(results) == 4
                for result in results:
                    assert isinstance(result, (ConnectionError, OSError))
                assert client._waiters == {}  # nothing left pending
                # The exhausted client stays in a sane state: further
                # requests fail fast with the same typed error.
                with pytest.raises((ConnectionError, OSError)):
                    await client.ping()
                assert client._waiters == {}

        run(scenario())
