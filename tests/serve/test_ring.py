"""Shared-memory rings: geometry, slot lifecycle, program table.

These tests drive the ring primitives single-process (create + attach
in the same interpreter); the multi-process protocol on top is covered
by ``test_backends.py``.
"""

import pytest

from repro.engine.cache import compile_program
from repro.engine.runners import build_dfg
from repro.serve.layout import FREE, J_GEN, J_JOB_ID, J_STATE, READY, RUNNING
from repro.serve.ring import (
    RingCapacityError,
    RingGeometry,
    ServeSegments,
)


@pytest.fixture
def segments():
    geometry = RingGeometry(
        slots=4,
        slot_bytes=4096,
        result_slot_bytes=4096,
        max_programs=2,
        program_bytes=1 << 20,
    )
    segs = ServeSegments.create(geometry)
    try:
        yield segs
    finally:
        segs.close()


@pytest.mark.parametrize(
    "kwargs",
    [
        {"slots": 0},
        {"slot_bytes": 8},
        {"result_slot_bytes": 8},
        {"max_programs": 0},
    ],
)
def test_geometry_rejects_degenerate_shapes(kwargs):
    with pytest.raises(ValueError):
        RingGeometry(**kwargs)


def test_fresh_rings_are_all_free(segments):
    assert segments.jobs.find_state(FREE) == [0, 1, 2, 3]
    assert segments.results.find_state(FREE) == [0, 1, 2, 3]
    assert segments.programs.count == 0


def test_publish_and_state_scan(segments):
    index = segments.jobs.first_free()
    segments.jobs.publish(index, {J_STATE: READY, J_JOB_ID: 77})
    assert segments.jobs.find_state(READY) == [index]
    assert int(segments.jobs.header[index, J_JOB_ID]) == 77
    assert index not in segments.jobs.find_state(FREE)


def test_first_free_exhausts_then_none(segments):
    for expected in range(4):
        index = segments.jobs.first_free()
        assert index == expected
        segments.jobs.publish(index, {J_STATE: READY})
    assert segments.jobs.first_free() is None  # ring full -> backpressure


def test_slot_wraparound_bumps_generation(segments):
    """A reclaimed slot is reused with a higher generation, so late
    results for the old occupant are recognizably stale."""
    ring = segments.jobs
    for round_number in range(3):
        index = ring.first_free()
        assert index == 0  # always reusing the same slot
        ring.publish(index, {J_GEN: round_number, J_JOB_ID: round_number})
        # Simulate worker claim + parent reclaim (generation first,
        # state last, exactly as the transport does it).
        ring.header[index, J_STATE] = RUNNING
        ring.header[index, J_GEN] = round_number + 1
        ring.header[index, J_STATE] = FREE
    assert int(ring.header[0, J_GEN]) == 3


def test_attach_sees_creators_writes(segments):
    attached = ServeSegments.attach(segments.geometry, segments.names)
    try:
        index = segments.jobs.first_free()
        segments.jobs.publish(index, {J_STATE: READY, J_JOB_ID: 123})
        assert attached.jobs.find_state(READY) == [index]
        assert int(attached.jobs.header[index, J_JOB_ID]) == 123
        # And the other direction: attacher writes, creator reads.
        attached.jobs.header[index, J_STATE] = RUNNING
        assert segments.jobs.find_state(RUNNING) == [index]
    finally:
        attached.close()


def test_program_table_roundtrip_and_capacity(segments):
    compiled = compile_program("lcs", 2, build_dfg("lcs"))
    program_id, blob_bytes = segments.programs.append(compiled)
    assert program_id == 0 and blob_bytes > 0
    loaded = segments.programs.load(program_id)
    assert loaded.program_hash == compiled.program_hash
    assert loaded.instructions == compiled.instructions

    other = compile_program("dtw", 2, build_dfg("dtw"))
    segments.programs.append(other)
    with pytest.raises(RingCapacityError):  # max_programs=2
        segments.programs.append(compiled)


def test_program_table_load_unknown_id(segments):
    assert segments.programs.load(99) is None
