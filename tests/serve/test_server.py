"""``gendp-serve`` end to end: protocol, quotas, drain, correlation.

Each test spins a real asyncio server over a Unix socket (ephemeral
path under pytest's tmp dir) with an inline-transport engine -- the
transport/ring machinery has its own tests; here the subject is the
serving tier itself.  ``asyncio.run`` keeps the suite synchronous, no
async test plugin needed.
"""

import asyncio
import json

import pytest

from repro.engine import Engine, EngineConfig
from repro.obs.trace import TraceRecorder, validate_chrome_trace
from repro.serve import ServeClient, TransportConfig
from repro.serve.server import (
    DEFAULT_TENANT,
    SERVE_COUNTERS,
    GendpServer,
    ServeConfig,
)

BSW = {"query": "ACGTACGTAC", "target": "ACGTTGCA"}


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=60))


def serving(tmp_path, serve_config=None, engine_config=None, tracer=None):
    """Async context manager: (server, socket path) with cleanup."""

    class _Serving:
        async def __aenter__(self):
            self.sock = str(tmp_path / "gendp.sock")
            self.engine = Engine(
                engine_config or EngineConfig(max_queue=128), tracer=tracer
            )
            config = serve_config or ServeConfig()
            config = ServeConfig(
                **{
                    **config.__dict__,
                    "unix_socket": self.sock,
                }
            )
            self.server = GendpServer(self.engine, config)
            await self.server.start()
            return self.server, self.sock

        async def __aexit__(self, *exc_info):
            await self.server.stop()
            self.engine.close()

    return _Serving()


def test_ping_and_stats(tmp_path):
    async def scenario():
        async with serving(tmp_path) as (server, sock):
            async with await ServeClient.connect(unix_socket=sock) as client:
                pong = await client.ping()
                assert pong["ok"] and pong["op"] == "pong"
                assert pong["draining"] is False
                stats = await client.stats()
                assert stats["ok"]
                assert set(stats["counters"]) == set(SERVE_COUNTERS)
                assert stats["counters"]["serve_connections"] == 1

    run(scenario())


def test_submit_returns_engine_results(tmp_path):
    async def scenario():
        async with serving(tmp_path) as (server, sock):
            async with await ServeClient.connect(unix_socket=sock) as client:
                response = await client.submit("bsw", BSW, tenant="alpha")
                assert response["ok"], response
                assert response["kernel"] == "bsw"
                assert isinstance(response["value"]["score"], int)
                assert response["backend"] == "inline"
                # Identical to a direct engine run.
                from repro.engine import make_job

                with Engine(EngineConfig()) as ref:
                    ref.submit(make_job("bsw", dict(BSW)))
                    expected = ref.drain()[0].value
                assert response["value"] == expected

    run(scenario())


def test_batch_mixed_priorities_all_complete(tmp_path):
    async def scenario():
        async with serving(tmp_path) as (server, sock):
            async with await ServeClient.connect(unix_socket=sock) as client:
                specs = [
                    {"kernel": "bsw", "payload": BSW, "priority": priority}
                    for priority in ("low", "high", "normal", "high")
                ]
                response = await client.submit_batch(specs, tenant="alpha")
                assert response["ok"], response
                assert len(response["results"]) == 4
                values = {
                    json.dumps(r["value"], sort_keys=True)
                    for r in response["results"]
                }
                assert len(values) == 1  # same payload, same answer

    run(scenario())


def test_quota_rejections_are_reported_not_queued(tmp_path):
    async def scenario():
        config = ServeConfig(tenant_quotas={"tight": (0.001, 2.0)})
        async with serving(tmp_path, serve_config=config) as (server, sock):
            async with await ServeClient.connect(unix_socket=sock) as client:
                responses = await asyncio.gather(
                    *(
                        client.submit("bsw", BSW, tenant="tight")
                        for _ in range(5)
                    )
                )
                admitted = [r for r in responses if r.get("ok")]
                rejected = [r for r in responses if r.get("rejected")]
                assert len(admitted) == 2
                assert len(rejected) == 3
                assert {r["error"] for r in rejected} == {"quota-exceeded"}
                # Other tenants are unaffected.
                other = await client.submit("bsw", BSW, tenant="roomy")
                assert other["ok"]
                stats = await client.stats()
                assert stats["counters"]["serve_rejected_quota"] == 3

    run(scenario())


def test_backpressure_rejects_past_max_pending(tmp_path):
    async def scenario():
        config = ServeConfig(max_pending=2)
        async with serving(tmp_path, serve_config=config) as (server, sock):
            # Freeze dispatch so admitted requests stay pending.
            server._dispatcher_task.cancel()
            try:
                await server._dispatcher_task
            except asyncio.CancelledError:
                pass
            async with await ServeClient.connect(unix_socket=sock) as client:
                stuck = [
                    asyncio.create_task(client.submit("bsw", BSW))
                    for _ in range(2)
                ]
                while server.pending < 2:
                    await asyncio.sleep(0.001)
                overflow = await client.submit("bsw", BSW)
                assert overflow.get("rejected")
                assert overflow["error"] == "backpressure"
                # Resume dispatch: the stuck requests complete.
                server._dispatcher_task = asyncio.create_task(
                    server._dispatcher()
                )
                done = await asyncio.gather(*stuck)
                assert all(r["ok"] for r in done)

    run(scenario())


def test_graceful_drain_completes_inflight_rejects_new(tmp_path):
    async def scenario():
        async with serving(tmp_path) as (server, sock):
            async with await ServeClient.connect(unix_socket=sock) as client:
                inflight = asyncio.create_task(client.submit("bsw", BSW))
                while server.pending == 0:
                    await asyncio.sleep(0.001)
                server.request_shutdown()
                assert server.draining
                late = await client.submit("bsw", BSW)
                assert late.get("rejected") and late["error"] == "draining"
                finished = await inflight
                assert finished["ok"], finished
            await asyncio.wait_for(server._done.wait(), timeout=10)

    run(scenario())


def test_correlation_ids_and_serve_spans(tmp_path):
    tracer = TraceRecorder()

    async def scenario():
        transport = TransportConfig(
            backend="shm", workers=1, poll_interval_s=0.01
        )
        engine_config = EngineConfig(max_queue=64, transport=transport)
        async with serving(
            tmp_path, engine_config=engine_config, tracer=tracer
        ) as (server, sock):
            async with await ServeClient.connect(unix_socket=sock) as client:
                response = await client.submit("bsw", BSW, tenant="alpha")
                assert response["ok"], response
                assert response["trace_id"] == tracer.trace_id

    run(scenario())
    document = tracer.to_chrome_trace()
    assert validate_chrome_trace(document) == []
    by_name = {}
    for event in document["traceEvents"]:
        by_name.setdefault(event["name"], []).append(event)
    for name in ("serve:accept", "serve:admit", "serve:dispatch"):
        assert name in by_name, sorted(by_name)
    # The admit event records the tenant; the worker span (shipped back
    # over the result ring) carries tenant + trace id end to end.
    admit_args = by_name["serve:admit"][0].get("args", {})
    assert admit_args.get("tenant") == "alpha"
    worker_spans = by_name.get("job:run", [])
    assert worker_spans, "worker span missing from trace"
    args = worker_spans[0].get("args", {})
    assert args.get("tenant") == "alpha"
    assert args.get("trace_id") == tracer.trace_id


def test_serve_counters_schema_is_stable(tmp_path):
    """Drift guard: the serving counters the exporters scrape."""
    assert SERVE_COUNTERS == (
        "serve_connections",
        "serve_requests",
        "serve_admitted",
        "serve_rejected_draining",
        "serve_rejected_backpressure",
        "serve_rejected_quota",
        "serve_dispatches",
        "serve_responses",
        "serve_errors",
        "serve_journaled",
        "serve_deduped",
        "serve_recovered",
    )

    async def scenario():
        async with serving(tmp_path) as (server, sock):
            counters = server.engine.metrics.snapshot()["counters"]
            for name in SERVE_COUNTERS:
                assert name in counters  # pre-registered at zero

    run(scenario())


def test_malformed_requests_get_errors_not_disconnects(tmp_path):
    async def scenario():
        async with serving(tmp_path) as (server, sock):
            reader, writer = await asyncio.open_unix_connection(sock)
            writer.write(b"this is not json\n")
            await writer.drain()
            response = json.loads(await reader.readline())
            assert not response["ok"] and "bad request" in response["error"]

            writer.write(json.dumps({"op": "nope", "id": 1}).encode() + b"\n")
            await writer.drain()
            response = json.loads(await reader.readline())
            assert not response["ok"] and "unknown op" in response["error"]

            # Connection survived both; a good request still works.
            writer.write(
                json.dumps(
                    {"op": "submit", "kernel": "bsw", "payload": BSW, "id": 2}
                ).encode()
                + b"\n"
            )
            await writer.drain()
            response = json.loads(await reader.readline())
            assert response["ok"] and response["id"] == 2
            writer.close()
            await writer.wait_closed()

    run(scenario())


def test_default_tenant_used_when_unnamed(tmp_path):
    async def scenario():
        config = ServeConfig(tenant_quotas={DEFAULT_TENANT: (0.001, 1.0)})
        async with serving(tmp_path, serve_config=config) as (server, sock):
            async with await ServeClient.connect(unix_socket=sock) as client:
                first = await client.submit("bsw", BSW)
                second = await client.submit("bsw", BSW)
                assert first["ok"]
                assert second.get("rejected")  # default tenant's bucket

    run(scenario())
