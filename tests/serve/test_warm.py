"""Warm-worker specialization: codegen'd cells match the interpreter.

:func:`repro.serve.warm.specialize_cell` turns a compiled VLIW cell
program into straight-line Python.  The contract is *exact* semantic
equality with the interpreted executor -- same outputs for the same
register-file inputs, across every engine kernel -- because serve
workers substitute the specialized cell silently and the transport
promises byte-identical results.
"""

import random

import pytest

from repro.engine.cache import compile_program
from repro.engine.jobs import ENGINE_KERNELS
from repro.engine.runners import (
    _cell_executor,
    build_dfg,
    match_table_for,
    run_job,
)
from repro.serve.warm import SpecializationError, specialize_cell, specialize_source
from repro.workloads.anchors import generate_chain_workload
from repro.workloads.haplotypes import generate_pairhmm_workload
from repro.workloads.reads import generate_bsw_workload


def _compiled(kernel):
    return compile_program(kernel, 2, build_dfg(kernel))


def _payloads(kernel, count, seed):
    rng = random.Random(seed)
    if kernel == "bsw":
        pairs = generate_bsw_workload(
            count=count, query_length=20, target_length=16, seed=seed
        ).pairs
        return [{"query": p.query, "target": p.target} for p in pairs]
    if kernel == "pairhmm":
        pairs = generate_pairhmm_workload(
            regions=count,
            reads_per_region=1,
            haplotypes_per_region=1,
            read_length=12,
            haplotype_length=10,
            seed=seed,
        ).pairs
        return [{"read": p.read, "haplotype": p.haplotype} for p in pairs[:count]]
    if kernel == "lcs":
        alphabet = "ACGT"
        return [
            {
                "x": "".join(rng.choice(alphabet) for _ in range(18)),
                "y": "".join(rng.choice(alphabet) for _ in range(15)),
            }
            for _ in range(count)
        ]
    if kernel == "dtw":
        return [
            {
                "a": [rng.randrange(-50, 50) for _ in range(14)],
                "b": [rng.randrange(-50, 50) for _ in range(12)],
            }
            for _ in range(count)
        ]
    if kernel == "chain":
        tasks = generate_chain_workload(
            tasks=count, anchors_per_task=16, seed=seed
        ).tasks
        return [
            {"anchors": [[a.x, a.y, a.w] for a in task.anchors]}
            for task in tasks
        ]
    raise AssertionError(kernel)


@pytest.mark.parametrize("kernel", ENGINE_KERNELS)
def test_specialized_cell_matches_interpreter_on_real_workloads(kernel):
    """The end-to-end contract serve workers rely on, per kernel."""
    compiled = _compiled(kernel)
    cell = specialize_cell(compiled, match_table_for(kernel))
    for seed, payload in enumerate(_payloads(kernel, 4, seed=23)):
        specialized = run_job(kernel, compiled, dict(payload), cell)
        interpreted = run_job(kernel, compiled, dict(payload), None)
        assert specialized == interpreted, (kernel, seed)


@pytest.mark.parametrize("kernel", ("bsw", "lcs", "dtw", "chain"))
def test_specialized_cell_matches_interpreter_on_random_register_images(kernel):
    """Direct cell-level differential over random integer inputs.

    (pairhmm is covered end-to-end above; its LOG_SUM lookup only
    accepts the value ranges real payloads produce.)
    """
    compiled = _compiled(kernel)
    table = match_table_for(kernel)
    interpreted = _cell_executor(compiled, table)
    specialized = specialize_cell(compiled, table)
    rng = random.Random(0xDA7A)
    names = sorted(compiled.input_regs)
    for _ in range(50):
        inputs = {name: rng.randrange(-1000, 1000) for name in names}
        assert specialized(dict(inputs)) == interpreted(dict(inputs)), inputs


def test_specialize_source_is_straight_line_python():
    source = specialize_source(_compiled("bsw"), has_match_table=True)
    assert "def _cell(inputs):" in source
    assert "return {" in source
    # No loops, no interpreter dispatch: that is the whole point.
    for banned in ("for ", "while ", "Opcode"):
        assert banned not in source, banned


def test_specialize_rejects_programs_with_unknown_opcodes():
    compiled = _compiled("lcs")
    hacked = type(compiled).__new__(type(compiled))
    object.__setattr__(hacked, "__dict__", dict(vars(compiled)))

    class FakeOp:
        opcode = "NOT_AN_OPCODE"

    object.__setattr__(hacked, "instructions", (FakeOp(),))
    with pytest.raises((SpecializationError, AttributeError, TypeError)):
        specialize_cell(hacked, None)
