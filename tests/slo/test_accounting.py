"""Per-tenant ledger: unit folds plus the serve reconciliation.

The acceptance scenario: a mixed-tenant serving run's ledger totals
must reconcile *exactly* with the engine's own job counters -- no
event lost, none double-billed.
"""

import asyncio

import pytest

from repro.engine import Engine, EngineConfig
from repro.serve import ServeClient
from repro.serve.server import GendpServer, ServeConfig
from repro.slo.accounting import (
    DEFAULT_RATES,
    TENANT_COUNTERS,
    TenantLedger,
    estimate_cells,
)

BSW = {"query": "ACGTACGTAC", "target": "ACGTTGCA"}
LCS = {"x": "ACGTACGT", "y": "ACGGTA"}


class _Result:
    def __init__(self, ok=True, execute_s=0.0):
        self.ok = ok
        self.timings = {"execute_s": execute_s} if execute_s else {}


class _Job:
    def __init__(self, kernel, payload):
        self.kernel = kernel
        self.payload = payload


class TestEstimateCells:
    def test_table_area_kernels(self):
        assert estimate_cells("bsw", BSW) == 10 * 8
        assert estimate_cells("lcs", LCS) == 8 * 6
        assert estimate_cells("pairhmm", {"read": "AC", "haplotype": "ACGT"}) == 8
        assert estimate_cells("dtw", {"a": [1, 2, 3], "b": [1, 2]}) == 6

    def test_chain_is_quadratic_in_anchors(self):
        anchors = [[i, i, 1] for i in range(5)]
        assert estimate_cells("chain", {"anchors": anchors}) == 25

    def test_unknown_kernel_and_bad_payload_estimate_zero(self):
        assert estimate_cells("poa", {}) == 0
        assert estimate_cells("bsw", {}) == 0
        assert estimate_cells("bsw", {"query": None, "target": "A"}) == 0


class TestLedgerFolds:
    def test_admission_splits_quota_from_other_rejections(self):
        ledger = TenantLedger()
        ledger.record_admission("a", True)
        ledger.record_admission("a", False, reason="quota-exceeded")
        ledger.record_admission("a", False, reason="draining")
        usage = ledger.usage("a")
        assert usage["tenant_jobs_submitted"] == 1
        assert usage["tenant_rejections"] == 2
        assert usage["tenant_quota_rejections"] == 1

    def test_result_fold_bills_cells_only_on_success(self):
        ledger = TenantLedger()
        job = _Job("bsw", BSW)
        ledger.record_result("a", job, _Result(ok=True, execute_s=0.002))
        ledger.record_result("a", job, _Result(ok=False))
        usage = ledger.usage("a")
        assert usage["tenant_jobs_completed"] == 1
        assert usage["tenant_jobs_failed"] == 1
        assert usage["tenant_cells_computed"] == 80
        assert usage["tenant_compute_us"] == 2000

    def test_transport_fold_ignores_nonpositive(self):
        ledger = TenantLedger()
        ledger.record_transport("a", 100)
        ledger.record_transport("a", 0)
        assert ledger.usage("a")["tenant_transport_bytes"] == 100

    def test_schema_is_complete_and_zeroed(self):
        ledger = TenantLedger()
        assert set(ledger.usage("fresh")) == set(TENANT_COUNTERS)
        assert all(value == 0 for value in ledger.usage("fresh").values())

    def test_totals_sum_across_tenants(self):
        ledger = TenantLedger()
        ledger.record_admission("a", True)
        ledger.record_admission("b", True)
        ledger.record_admission("b", True)
        assert ledger.totals()["tenant_jobs_submitted"] == 3

    def test_cost_report_prices_usage(self):
        ledger = TenantLedger()
        job = _Job("bsw", BSW)
        ledger.record_result("a", job, _Result(ok=True, execute_s=1.0))
        ledger.record_transport("a", 10**9)
        report = ledger.cost_report()
        assert report["rates"] == DEFAULT_RATES
        cost = report["tenants"]["a"]["cost_units"]
        # 1 GB transport = 1 unit, 1 compute-second = 1e-3 units,
        # 80 cells is noise at 1e-9/cell.
        assert cost == pytest.approx(1.001, rel=1e-3)
        assert report["total_cost_units"] == pytest.approx(cost)

    def test_snapshot_section_and_prometheus_export(self):
        from repro.obs.export import prometheus_text
        from repro.obs.promcheck import check_exposition

        ledger = TenantLedger()
        ledger.record_admission("acme", True)
        ledger.record_admission("umbrella", False, reason="quota")
        text = prometheus_text(ledger.annotate({"counters": {}}))
        assert check_exposition(text) == []
        assert 'gendp_tenant_jobs_submitted{tenant="acme"} 1' in text
        assert (
            'gendp_tenant_quota_rejections{tenant="umbrella"} 1' in text
        )


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=60))


def serving(tmp_path, serve_config=None):
    class _Serving:
        async def __aenter__(self):
            self.sock = str(tmp_path / "gendp.sock")
            self.engine = Engine(EngineConfig(max_queue=128))
            config = serve_config or ServeConfig()
            config = ServeConfig(
                **{**config.__dict__, "unix_socket": self.sock}
            )
            self.server = GendpServer(self.engine, config)
            await self.server.start()
            return self.server, self.engine, self.sock

        async def __aexit__(self, *exc_info):
            await self.server.stop()
            self.engine.close()

    return _Serving()


class TestServeReconciliation:
    def test_mixed_tenant_run_reconciles_with_engine_counters(
        self, tmp_path
    ):
        """The acceptance criterion, end to end over real sockets."""

        async def scenario():
            async with serving(tmp_path) as (server, engine, sock):
                async with await ServeClient.connect(
                    unix_socket=sock
                ) as client:
                    for index in range(6):
                        response = await client.submit(
                            "bsw", BSW, tenant="alpha"
                        )
                        assert response["ok"], response
                    for index in range(4):
                        response = await client.submit(
                            "lcs", LCS, tenant="beta"
                        )
                        assert response["ok"], response
                    # An execution failure still reconciles: a
                    # non-numeric anchor weight passes validation but
                    # fails inside the engine, after admission.
                    bad = await client.submit(
                        "chain", {"anchors": [[0, 0, "w"]]}, tenant="beta"
                    )
                    assert not bad["ok"]
                    stats = await client.stats()
                ledger = server.ledger
                totals = ledger.totals()
                counters = engine.snapshot()["counters"]
                # Exact reconciliation, per the module contract.
                assert (
                    totals["tenant_jobs_completed"]
                    == counters["jobs_completed"]
                    == 10
                )
                assert (
                    totals["tenant_jobs_failed"]
                    == counters["jobs_failed"]
                    == 1
                )
                assert totals["tenant_jobs_submitted"] == 11
                # Per-tenant split is attributed, not pooled.
                alpha = ledger.usage("alpha")
                beta = ledger.usage("beta")
                assert alpha["tenant_jobs_completed"] == 6
                assert beta["tenant_jobs_completed"] == 4
                assert beta["tenant_jobs_failed"] == 1
                assert alpha["tenant_cells_computed"] == 6 * 80
                assert beta["tenant_cells_computed"] == 4 * 48
                # Transport bytes are exact NDJSON request+response
                # sums, so they are positive for every tenant seen.
                assert alpha["tenant_transport_bytes"] > 0
                assert beta["tenant_transport_bytes"] > 0
                # The stats surface carries the same section.
                assert stats["tenants"]["alpha"][
                    "tenant_jobs_completed"
                ] == 6

        run(scenario())

    def test_quota_rejections_are_billed_to_the_tenant(self, tmp_path):
        config = ServeConfig(default_rate=1.0, default_burst=2.0)

        async def scenario():
            async with serving(tmp_path, config) as (server, engine, sock):
                async with await ServeClient.connect(
                    unix_socket=sock
                ) as client:
                    rejected = 0
                    for _ in range(6):
                        response = await client.submit(
                            "bsw", BSW, tenant="greedy"
                        )
                        if not response["ok"]:
                            rejected += 1
                            assert "quota" in response["error"]
                    assert rejected > 0
                    usage = server.ledger.usage("greedy")
                    assert usage["tenant_quota_rejections"] == rejected
                    assert usage["tenant_rejections"] == rejected

        run(scenario())
