"""Benchmark trajectory tracking and regression gating.

The acceptance scenario: an injected throughput regression beyond the
tolerance band must surface as ``regressed`` and gate (non-empty
:func:`gate` result), while info metrics and improvements never gate.
"""

import json

import pytest

from repro.slo.bench import (
    DEFAULT_TOLERANCE_PCT,
    append_trajectory,
    benchmark_name,
    compare,
    extract_metrics,
    gate,
    generate_baselines,
    infer_direction,
    load_baselines,
    load_bench_file,
    read_trajectory,
    trajectory_record,
)


class TestExtractMetrics:
    def test_flattens_nested_numeric_leaves(self):
        document = {"engine": {"jobs_per_s": 120.5, "depth": 3}}
        assert extract_metrics(document) == {
            "engine.jobs_per_s": 120.5,
            "engine.depth": 3.0,
        }

    def test_list_entries_use_label_keys_as_segments(self):
        document = {
            "configurations": [
                {"label": "shm-warm", "jobs_per_s": 900.0},
                {"label": "tcp-cold", "jobs_per_s": 400.0},
            ]
        }
        metrics = extract_metrics(document)
        assert metrics["configurations.shm-warm.jobs_per_s"] == 900.0
        assert metrics["configurations.tcp-cold.jobs_per_s"] == 400.0

    def test_unlabeled_list_entries_fall_back_to_indices(self):
        metrics = extract_metrics({"rows": [{"v": 1.0}, {"v": 2.0}]})
        assert metrics == {"rows.0.v": 1.0, "rows.1.v": 2.0}

    def test_label_values_are_segment_sanitized(self):
        metrics = extract_metrics(
            {"runs": [{"name": "v1.2 fast", "p99": 0.5}]}
        )
        assert metrics == {"runs.v1_2_fast.p99": 0.5}

    def test_skips_identity_keys_bools_and_scalar_lists(self):
        document = {
            "seed": 42,
            "timestamp": 1234.5,
            "ok": True,
            "bounds": [0.1, 0.5, 1.0],
            "value": 7,
        }
        assert extract_metrics(document) == {"value": 7.0}

    def test_numeric_label_keys_segment_but_do_not_measure(self):
        document = {"scaling": [{"shards": 4, "jobs_per_s": 50.0}]}
        metrics = extract_metrics(document)
        assert metrics == {"scaling.4.jobs_per_s": 50.0}

    def test_real_bench_files_flatten_nonempty(self):
        import glob

        paths = sorted(glob.glob("results/BENCH_*.json"))
        assert paths, "repo must ship BENCH files"
        for path in paths:
            benchmark, metrics = load_bench_file(path)
            assert metrics, f"{benchmark} flattened to nothing"
            assert all(
                isinstance(value, float) for value in metrics.values()
            )


class TestDirectionInference:
    @pytest.mark.parametrize(
        "metric,expected",
        [
            ("engine.jobs_per_s", "higher"),
            ("cluster.degraded.jobs_per_virtual_s", "higher"),
            ("cache.hit_rate", "higher"),
            ("serve.speedup", "higher"),
            ("latency_p99_ms", "lower"),
            ("drain.overhead_pct", "lower"),
            ("recovery.elapsed_s", "lower"),
            ("jobs.lost", "lower"),
            ("config.batch_capacity", "info"),
        ],
    )
    def test_name_hints(self, metric, expected):
        assert infer_direction(metric) == expected

    def test_only_the_leaf_segment_decides(self):
        # "latency" in a parent segment must not force lower-is-better
        # on a throughput leaf.
        assert infer_direction("latency_suite.jobs_per_s") == "higher"


class TestTrajectory:
    def test_benchmark_name_strips_prefix(self):
        assert benchmark_name("results/BENCH_serving.json") == "serving"
        assert benchmark_name("odd.json") == "odd"

    def test_append_and_read_round_trip(self, tmp_path):
        path = str(tmp_path / "nested" / "trajectory.jsonl")
        records = [
            trajectory_record(
                "serving",
                {"jobs_per_s": 100.0},
                timestamp="2026-08-08T00:00:00Z",
                revision="abc123",
            ),
            trajectory_record("static", {"programs": 5.0}),
        ]
        assert append_trajectory(path, records) == 2
        assert append_trajectory(path, records[:1]) == 1  # appends
        loaded = read_trajectory(path)
        assert len(loaded) == 3
        assert loaded[0]["schema"] == "gendp-bench/1"
        assert loaded[0]["benchmark"] == "serving"
        assert loaded[0]["metrics"] == {"jobs_per_s": 100.0}
        assert loaded[0]["revision"] == "abc123"
        assert "timestamp" not in loaded[1]

    def test_read_skips_malformed_lines(self, tmp_path):
        path = tmp_path / "trajectory.jsonl"
        path.write_text('{"benchmark": "a"}\nnot json\n\n[1,2]\n')
        records = read_trajectory(str(path))
        assert records == [{"benchmark": "a"}]

    def test_read_missing_file_is_empty(self, tmp_path):
        assert read_trajectory(str(tmp_path / "absent.jsonl")) == []


CURRENT = {
    "serving": {
        "jobs_per_s": 1000.0,
        "latency_p99_ms": 5.0,
        "batch_capacity": 64.0,
    }
}


def _baselines(**overrides):
    document = generate_baselines(CURRENT)
    for metric, value in overrides.items():
        document["benchmarks"]["serving"][metric]["value"] = value
    return document


class TestGating:
    def test_identical_results_all_ok_or_info(self):
        findings = compare(CURRENT, _baselines())
        statuses = {f["metric"]: f["status"] for f in findings}
        assert statuses["jobs_per_s"] == "ok"
        assert statuses["latency_p99_ms"] == "ok"
        assert statuses["batch_capacity"] == "info"
        assert gate(findings) == []

    def test_injected_throughput_regression_gates(self):
        """The acceptance criterion: a real regression fails the gate."""
        # Baseline says 2000 jobs/s; current 1000 is a 50% loss, far
        # beyond the 25% band.
        findings = compare(CURRENT, _baselines(jobs_per_s=2000.0))
        regressed = [f for f in findings if f["status"] == "regressed"]
        assert [f["metric"] for f in regressed] == ["jobs_per_s"]
        assert regressed[0]["delta_pct"] == -50.0
        assert gate(findings) == regressed

    def test_latency_regression_gates_in_the_lower_direction(self):
        findings = compare(CURRENT, _baselines(latency_p99_ms=2.0))
        statuses = {f["metric"]: f["status"] for f in findings}
        assert statuses["latency_p99_ms"] == "regressed"

    def test_improvements_are_reported_not_gated(self):
        findings = compare(CURRENT, _baselines(jobs_per_s=500.0))
        statuses = {f["metric"]: f["status"] for f in findings}
        assert statuses["jobs_per_s"] == "improved"
        assert gate(findings) == []

    def test_missing_gated_metric_fails_but_missing_info_does_not(self):
        findings = compare({"serving": {}}, _baselines())
        statuses = {f["metric"]: f["status"] for f in findings}
        assert statuses["jobs_per_s"] == "missing"
        assert statuses["latency_p99_ms"] == "missing"
        assert statuses["batch_capacity"] == "info"  # info never gates
        assert len(gate(findings)) == 2

    def test_info_drift_never_gates(self):
        current = {"serving": {**CURRENT["serving"], "batch_capacity": 9.0}}
        findings = compare(current, _baselines())
        statuses = {f["metric"]: f["status"] for f in findings}
        assert statuses["batch_capacity"] == "info"
        assert gate(findings) == []

    def test_zero_baseline_is_exact_match_only(self):
        baselines = {
            "benchmarks": {
                "b": {
                    "errors": {
                        "value": 0.0,
                        "tolerance_pct": 25.0,
                        "direction": "lower",
                    }
                }
            }
        }
        ok = compare({"b": {"errors": 0.0}}, baselines)
        assert ok[0]["status"] == "ok"
        bad = compare({"b": {"errors": 3.0}}, baselines)
        assert bad[0]["status"] == "regressed"
        assert bad[0]["delta_pct"] is None  # inf renders as null

    def test_tolerance_band_edges_do_not_gate(self):
        findings = compare(
            {"serving": {"jobs_per_s": 750.0}},
            {
                "benchmarks": {
                    "serving": {
                        "jobs_per_s": {
                            "value": 1000.0,
                            "tolerance_pct": 25.0,
                            "direction": "higher",
                        }
                    }
                }
            },
        )
        assert findings[0]["status"] == "ok"  # exactly -25% stays ok


class TestBaselines:
    def test_generate_load_round_trip(self, tmp_path):
        document = generate_baselines(CURRENT, tolerance_pct=10.0)
        assert document["schema"] == "gendp-bench-baselines/1"
        entry = document["benchmarks"]["serving"]["jobs_per_s"]
        assert entry == {
            "value": 1000.0,
            "tolerance_pct": 10.0,
            "direction": "higher",
        }
        path = tmp_path / "baselines.json"
        path.write_text(json.dumps(document))
        assert load_baselines(str(path)) == document

    def test_load_rejects_non_baseline_documents(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "other"}')
        with pytest.raises(ValueError):
            load_baselines(str(path))

    def test_default_tolerance_applied_when_entry_omits_it(self):
        baselines = {
            "benchmarks": {
                "b": {"jobs_per_s": {"value": 100.0, "direction": "higher"}}
            }
        }
        findings = compare({"b": {"jobs_per_s": 80.0}}, baselines)
        assert findings[0]["tolerance_pct"] == DEFAULT_TOLERANCE_PCT
        assert findings[0]["status"] == "ok"  # -20% inside default band

    def test_committed_baselines_pass_against_shipped_results(self):
        """The repo's own gate must be green at HEAD."""
        import glob
        import os

        path = "results/bench_baselines.json"
        if not os.path.exists(path):
            pytest.skip("baselines not committed yet")
        baselines = load_baselines(path)
        metrics = {}
        for bench_path in glob.glob("results/BENCH_*.json"):
            benchmark, values = load_bench_file(bench_path)
            metrics[benchmark] = values
        assert gate(compare(metrics, baselines)) == []
