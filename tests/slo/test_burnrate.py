"""Multi-window multi-burn-rate evaluation under a simulated clock.

The acceptance scenario lives here: a synthetic latency burn must fire
the fast window within one probe interval of the burn starting, and
the fired/resolved alert sequence must be byte-identical across two
runs of the same replay.
"""

import json

import pytest

from repro.cluster import SimClock
from repro.engine.metrics import MetricsRegistry
from repro.slo.burnrate import (
    DEFAULT_WINDOWS,
    SLO_COUNTERS,
    BurnWindow,
    SLOEngine,
    synthesize_burn_replay,
)
from repro.slo.objectives import DEFAULT_OBJECTIVES, SLObjective

LATENCY = DEFAULT_OBJECTIVES[0]  # job-latency: execute_s <= 0.5s @ 0.99


def replay_engine(records, **kwargs):
    """Feed a replay stream into a fresh evaluator; returns it."""
    engine = SLOEngine(**kwargs)
    for record in records:
        engine.observe(record["snapshot"], at=record["t"])
    return engine


class TestWindowValidation:
    def test_rejects_nonpositive_windows(self):
        with pytest.raises(ValueError):
            BurnWindow(name="w", window_s=0, probe_s=1, max_burn=1)
        with pytest.raises(ValueError):
            BurnWindow(name="w", window_s=10, probe_s=0, max_burn=1)

    def test_rejects_probe_longer_than_window(self):
        with pytest.raises(ValueError):
            BurnWindow(name="w", window_s=10, probe_s=20, max_burn=1)

    def test_rejects_duplicate_objective_names(self):
        with pytest.raises(ValueError):
            SLOEngine(objectives=(LATENCY, LATENCY))

    def test_default_windows_page_fast_and_ticket_slow(self):
        fast, slow = DEFAULT_WINDOWS
        assert fast.window_s < slow.window_s
        assert fast.max_burn > slow.max_burn


class TestBurnDetection:
    def test_healthy_replay_never_fires(self):
        records = synthesize_burn_replay(mode="healthy", healthy_ticks=10)
        engine = replay_engine(records)
        assert engine.alerts == []
        assert not engine.burning

    def test_burn_fires_within_one_fast_window_evaluation(self):
        """The acceptance criterion: a hard latency burn is detected
        within one fast-probe interval of the burn starting."""
        records = synthesize_burn_replay(
            healthy_ticks=6, burn_ticks=6, tick_s=10.0
        )
        burn_start = records[6]["t"]  # first burning tick's timestamp
        engine = replay_engine(records)
        fired = [a for a in engine.alerts if a.state == "fired"]
        assert fired, "burn was never detected"
        fast = DEFAULT_WINDOWS[0]
        first = min(a.at for a in fired)
        # Ticks are 10 s apart and the fast probe is 25 s: the very
        # next evaluation after the probe window fills with errors
        # must page.
        assert first - burn_start <= fast.probe_s + 10.0
        assert any(a.window == "fast" for a in fired)
        assert engine.burning

    def test_probe_window_gates_stale_burns(self):
        """A burst that stopped before the probe window must not page:
        the long window still remembers it, the probe proves recovery."""
        window = BurnWindow(
            name="fast", window_s=300.0, probe_s=25.0, max_burn=14.4
        )
        engine = SLOEngine(objectives=(LATENCY,), windows=(window,))
        bounds = [0.5, 5.0]
        good, total = 0, 0

        def tick(t, new_good, new_bad):
            nonlocal good, total
            good += new_good
            total += new_good + new_bad
            snapshot = {
                "histograms": {
                    "execute_s": {
                        "count": total,
                        "buckets": [
                            [bounds[0], good],
                            [bounds[1], total - good],
                            ["inf", 0],
                        ],
                    }
                }
            }
            return engine.observe(snapshot, at=t)

        # One hard error burst...
        tick(10.0, 50, 0)
        tick(20.0, 0, 50)
        # ...then full recovery long enough for the probe to clear.
        fired_later = []
        for step in range(3, 12):
            fired_later.extend(tick(step * 10.0, 50, 0))
        # The probe window (last 25 s) is clean at the end even though
        # the 300 s window still contains the burst.
        assert not engine.burning
        assert all(a.state == "resolved" for a in fired_later)

    def test_burn_resolves_after_recovery(self):
        records = synthesize_burn_replay(healthy_ticks=6, burn_ticks=6)
        engine = replay_engine(records)
        assert engine.burning
        # Resume healthy traffic: cumulative counts keep growing with
        # only good events until both windows clear.
        last = records[-1]["snapshot"]["histograms"]["execute_s"]
        good_floor = last["buckets"][0][1]
        total = last["count"]
        t = records[-1]["t"]
        for step in range(1, 160):
            total += 50
            good_floor += 50
            snapshot = {
                "histograms": {
                    "execute_s": {
                        "count": total,
                        "buckets": [
                            [0.5, good_floor],
                            [5.0, total - good_floor],
                            ["inf", 0],
                        ],
                    }
                }
            }
            engine.observe(snapshot, at=t + step * 10.0)
            if not engine.burning:
                break
        assert not engine.burning
        states = [a.state for a in engine.alerts]
        assert "resolved" in states
        counters = engine.metrics
        assert counters.counter("slo_windows_burning") == 0
        assert counters.counter("slo_alerts_fired") == counters.counter(
            "slo_alerts_resolved"
        )


class TestDeterminism:
    def test_alert_sequence_identical_across_two_runs(self):
        """Second acceptance half: same replay, same alert sequence,
        byte for byte."""
        records = synthesize_burn_replay(healthy_ticks=6, burn_ticks=6)
        runs = []
        for _ in range(2):
            engine = replay_engine(records)
            runs.append(
                json.dumps(
                    [alert.to_dict() for alert in engine.alerts],
                    sort_keys=True,
                )
            )
        assert runs[0] == runs[1]
        assert json.loads(runs[0]), "sequence must be non-empty"

    def test_synthesize_burn_replay_is_pure(self):
        a = synthesize_burn_replay()
        b = synthesize_burn_replay()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_sim_clock_drives_observation_times(self):
        clock = SimClock(start=0.0)
        engine = SLOEngine(objectives=(LATENCY,), clock=clock)
        clock.advance(42.0)
        engine.observe({"histograms": {}})
        history = engine._history[LATENCY.name]
        assert history.samples[-1][0] == pytest.approx(42.0)


class TestExportSurface:
    def test_status_document_shape(self):
        records = synthesize_burn_replay()
        engine = replay_engine(records)
        status = engine.status()
        assert status["burning"] is True
        assert status["evaluations"] == len(records)
        by_name = {doc["name"]: doc for doc in status["objectives"]}
        assert by_name["job-latency"]["burning"] is True
        windows = {w["window"] for w in by_name["job-latency"]["windows"]}
        assert windows == {"fast", "slow"}

    def test_annotate_overwrites_never_double_counts(self):
        registry = MetricsRegistry()
        engine = SLOEngine(objectives=(LATENCY,), metrics=registry)
        engine.observe({"histograms": {}}, at=1.0)
        engine.observe({"histograms": {}}, at=2.0)
        # The shared-registry scrape path: counters are already in the
        # snapshot; annotate must overwrite, not add.
        snapshot = registry.snapshot()
        annotated = engine.annotate(snapshot)
        assert annotated["counters"]["slo_evaluations"] == 2
        assert "slo" in annotated

    def test_export_section_renders_prometheus_clean(self):
        from repro.obs.export import prometheus_text
        from repro.obs.promcheck import check_exposition

        engine = replay_engine(synthesize_burn_replay())
        text = prometheus_text(engine.annotate({"counters": {}}))
        assert check_exposition(text) == []
        assert 'gendp_slo_burning{objective="job-latency"} 1' in text

    def test_counters_schema_initialized_to_zero(self):
        engine = SLOEngine()
        for name in SLO_COUNTERS:
            assert engine.metrics.counter(name) == 0

    def test_flight_recorder_trips_on_fire(self):
        class FakeFlight:
            def __init__(self):
                self.trips = []

            def trip(self, reason, **context):
                self.trips.append((reason, context))

        flight = FakeFlight()
        engine = SLOEngine(flight=flight)
        for record in synthesize_burn_replay():
            engine.observe(record["snapshot"], at=record["t"])
        assert flight.trips
        assert all(reason == "slo-burn" for reason, _ in flight.trips)
        assert flight.trips[0][1]["objective"] == "job-latency"
