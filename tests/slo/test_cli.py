"""The gendp-slo / gendp-bench / gendp-trace --replay front ends.

CI gates on exit codes, so the codes are the contract under test: a
burning replay fails ``gendp-slo check``, an injected regression fails
``gendp-bench compare``, and healthy inputs exit zero.
"""

import json

import pytest

from repro.cli import bench_main, slo_main, trace_main
from repro.slo.flight import FlightRecorder


def _synth(tmp_path, name="replay.jsonl", **flags):
    path = str(tmp_path / name)
    argv = ["synth", "--out", path]
    for flag, value in flags.items():
        argv += [f"--{flag.replace('_', '-')}", str(value)]
    assert slo_main(argv) == 0
    return path


class TestSloCheck:
    def test_burning_replay_exits_nonzero(self, tmp_path, capsys):
        path = _synth(tmp_path, mode="burn")
        assert slo_main(["check", "--replay", path]) == 1
        out = capsys.readouterr().out
        assert "BURN" in out

    def test_healthy_replay_exits_zero(self, tmp_path, capsys):
        path = _synth(tmp_path, mode="healthy")
        assert slo_main(["check", "--replay", path]) == 0
        out = capsys.readouterr().out
        assert "OK" in out

    def test_fail_on_none_reports_without_gating(self, tmp_path):
        path = _synth(tmp_path, mode="burn")
        assert slo_main(["check", "--replay", path, "--fail-on", "none"]) == 0

    def test_json_output_is_machine_readable(self, tmp_path, capsys):
        path = _synth(tmp_path, mode="burn")
        capsys.readouterr()  # drop synth's own status line
        slo_main(["check", "--replay", path, "--json"])
        status = json.loads(capsys.readouterr().out)
        assert status["burning"] is True
        names = {doc["name"] for doc in status["objectives"]}
        assert "job-latency" in names

    def test_requires_exactly_one_source(self, tmp_path):
        path = _synth(tmp_path)
        with pytest.raises(SystemExit):
            slo_main(["check"])
        with pytest.raises(SystemExit):
            slo_main(
                ["check", "--replay", path, "--metrics", "metrics.json"]
            )

    def test_metrics_snapshot_source(self, tmp_path, capsys):
        # A finished run's cumulative snapshot: 50 failures out of 50
        # burns the availability objective.
        snapshot = {
            "counters": {"jobs_completed": 0, "jobs_failed": 50},
            "histograms": {},
        }
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(snapshot))
        assert slo_main(["check", "--metrics", str(path)]) == 1
        assert "job-availability" in capsys.readouterr().out


class TestSloReportAndSynth:
    def test_report_renders_all_objectives(self, tmp_path, capsys):
        path = _synth(tmp_path, mode="healthy")
        assert slo_main(["report", "--replay", path]) == 0
        out = capsys.readouterr().out
        assert "job-latency" in out
        assert "job-availability" in out

    def test_synth_is_deterministic_across_invocations(self, tmp_path):
        first = _synth(tmp_path, name="a.jsonl")
        second = _synth(tmp_path, name="b.jsonl")
        with open(first) as fa, open(second) as fb:
            assert fa.read() == fb.read()

    def test_watch_counts_polls_and_reports_burn(self, tmp_path, capsys):
        snapshot = {
            "counters": {"jobs_completed": 0, "jobs_failed": 50},
            "histograms": {},
        }
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(snapshot))
        code = slo_main(
            ["watch", str(path), "--count", "3", "--interval", "0"]
        )
        # Same snapshot every poll: cumulative deltas are zero after
        # the first, so nothing ever burns.
        assert code == 0
        assert "job-availability" in capsys.readouterr().out


class TestBenchCli:
    @pytest.fixture()
    def results(self, tmp_path):
        directory = tmp_path / "results"
        directory.mkdir()
        (directory / "BENCH_serving.json").write_text(
            json.dumps(
                {
                    "configurations": [
                        {"label": "shm", "jobs_per_s": 1000.0},
                    ],
                    "latency_p99_ms": 5.0,
                }
            )
        )
        return directory

    def test_collect_appends_to_trajectory(self, results, capsys):
        code = bench_main(
            [
                "collect",
                "--results-dir",
                str(results),
                "--revision",
                "abc123",
                "--timestamp",
                "2026-08-08T00:00:00+00:00",
            ]
        )
        assert code == 0
        lines = (results / "trajectory.jsonl").read_text().splitlines()
        record = json.loads(lines[0])
        assert record["benchmark"] == "serving"
        assert record["revision"] == "abc123"
        assert record["metrics"]["configurations.shm.jobs_per_s"] == 1000.0

    def test_baseline_then_clean_compare_exits_zero(self, results, capsys):
        assert bench_main(["baseline", "--results-dir", str(results)]) == 0
        assert (results / "bench_baselines.json").exists()
        assert bench_main(["compare", "--results-dir", str(results)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_injected_regression_exits_nonzero(self, results, capsys):
        """The acceptance criterion at the CLI layer."""
        assert bench_main(["baseline", "--results-dir", str(results)]) == 0
        (results / "BENCH_serving.json").write_text(
            json.dumps(
                {
                    "configurations": [
                        {"label": "shm", "jobs_per_s": 400.0},
                    ],
                    "latency_p99_ms": 5.0,
                }
            )
        )
        code = bench_main(["compare", "--results-dir", str(results)])
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        assert "jobs_per_s" in out

    def test_compare_json_document(self, results, capsys):
        bench_main(["baseline", "--results-dir", str(results)])
        capsys.readouterr()
        bench_main(["compare", "--results-dir", str(results), "--json"])
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is True
        assert document["failures"] == 0
        assert document["findings"]

    def test_no_bench_files_is_an_error(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(SystemExit):
            bench_main(["compare", "--results-dir", str(empty)])

    def test_missing_baselines_is_an_error(self, results):
        with pytest.raises(SystemExit):
            bench_main(["compare", "--results-dir", str(results)])


class TestTraceReplay:
    def test_replay_converts_a_blackbox_to_a_valid_trace(
        self, tmp_path, capsys
    ):
        recorder = FlightRecorder(dir_path=str(tmp_path))
        recorder.note("milestone", label="start")
        recorder.record_span("batch", "engine", 1.0, 2.0, {"kernel": "bsw"})
        box = recorder.trip("dlq-push", kernel="bsw")
        out = str(tmp_path / "trace.json")
        assert trace_main(["--replay", box, "--out", out]) == 0
        from repro.obs.trace import validate_chrome_trace

        document = json.loads(open(out).read())
        assert validate_chrome_trace(document) == []
        assert document["otherData"]["blackbox_reason"] == "dlq-push"
        assert "dlq-push" in capsys.readouterr().out

    def test_replay_rejects_non_blackbox_input(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{}")
        with pytest.raises(SystemExit):
            trace_main(
                ["--replay", str(path), "--out", str(tmp_path / "o.json")]
            )
