"""Flight recorder: ring mechanics, taps, and the black-box contract.

The acceptance scenarios: a seeded crash-recovery run must leave a
black box beside the journal that replays cleanly through the Chrome
trace tooling, and two identical seeded runs must produce
byte-identical *canonical* dumps.
"""

import json
import logging

import pytest

from repro.durable import DurabilityConfig
from repro.engine import Engine, EngineConfig
from repro.engine.jobs import Job, advance_job_ids
from repro.engine.metrics import MetricsRegistry
from repro.obs.logs import get_logger
from repro.obs.trace import TraceRecorder, validate_chrome_trace
from repro.slo.flight import (
    FLIGHT_COUNTERS,
    BLACKBOX_VERSION,
    FlightRecorder,
    blackbox_to_chrome_trace,
    canonical_blackbox,
    load_blackbox,
)

LCS = {"x": "ACGTACGT", "y": "ACGGTA"}


class _Ticker:
    """Deterministic clock: each read advances by one."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        self.t += 1.0
        return self.t


class TestRing:
    def test_capacity_bounds_the_ring_and_counts_drops(self):
        recorder = FlightRecorder(capacity=3, clock=_Ticker())
        for index in range(5):
            recorder.note("event", index=index)
        assert len(recorder) == 3
        assert recorder.dropped == 2
        kept = [entry["args"]["index"] for entry in recorder.entries()]
        assert kept == [2, 3, 4]  # oldest evicted first
        assert recorder.metrics.counter("flight_entries_recorded") == 5

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_note_drops_none_valued_args(self):
        recorder = FlightRecorder(clock=_Ticker())
        recorder.note("event", keep=1, drop=None)
        assert recorder.entries()[0]["args"] == {"keep": 1}

    def test_counters_fold_records_only_deltas(self):
        recorder = FlightRecorder(clock=_Ticker())
        recorder.note_counters({"a": 5, "b": 0})
        recorder.note_counters({"a": 5, "b": 0})  # no change: no entry
        recorder.note_counters({"a": 7, "b": 2})
        entries = [e for e in recorder.entries() if e["kind"] == "counters"]
        assert len(entries) == 2
        assert entries[0]["args"] == {"a": 5}
        assert entries[1]["args"] == {"a": 2, "b": 2}

    def test_schema_counters_initialized_to_zero(self):
        registry = MetricsRegistry()
        FlightRecorder(metrics=registry)
        for name in FLIGHT_COUNTERS:
            assert registry.counter(name) == 0


class TestTaps:
    def test_log_handler_taps_warnings_not_info(self):
        recorder = FlightRecorder(clock=_Ticker())
        handler = recorder.attach_log_handler("repro.slo.testtap")
        logger = get_logger("repro.slo.testtap")
        try:
            logger.warning("queue depth high")
            logger.info("routine chatter")
        finally:
            logging.getLogger("repro.slo.testtap").removeHandler(handler)
        logs = [e for e in recorder.entries() if e["kind"] == "log"]
        assert len(logs) == 1
        assert logs[0]["args"]["level"] == "WARNING"
        assert "queue depth high" in logs[0]["args"]["message"]

    def test_tracer_head_sampling_keeps_every_nth_span(self):
        recorder = FlightRecorder(clock=_Ticker())
        tracer = TraceRecorder(
            clock=_Ticker(), flight=recorder, flight_sample=0.25
        )
        for index in range(8):
            start = tracer.now()
            tracer.add_span(f"s{index}", start, start + 0.5)
        spans = [e for e in recorder.entries() if e["kind"] == "span"]
        # Deterministic accumulator, not a RNG: exactly every 4th.
        assert [s["name"] for s in spans] == ["s3", "s7"]

    def test_tracer_full_sampling_mirrors_all_spans(self):
        recorder = FlightRecorder(clock=_Ticker())
        tracer = TraceRecorder(clock=_Ticker(), flight=recorder)
        for index in range(3):
            start = tracer.now()
            tracer.add_span(f"s{index}", start, start + 0.5)
        spans = [e for e in recorder.entries() if e["kind"] == "span"]
        assert len(spans) == 3
        assert spans[0]["args"]["cat"] == "engine"


class TestDumps:
    def test_trip_without_directory_stays_in_memory(self):
        recorder = FlightRecorder(clock=_Ticker())
        assert recorder.trip("sentinel", kernel="bsw") is None
        assert recorder.dumps_written == 0
        assert recorder.metrics.counter("flight_trips") == 1
        # The trip itself is forensic evidence.
        names = [entry["name"] for entry in recorder.entries()]
        assert "trip:sentinel" in names

    def test_dump_writes_sequence_numbered_files(self, tmp_path):
        recorder = FlightRecorder(dir_path=str(tmp_path), clock=_Ticker())
        recorder.note("before", n=1)
        first = recorder.trip("dlq-push", kernel="bsw")
        second = recorder.trip("breaker-open", kernel="lcs")
        assert first.endswith("blackbox-001-dlq-push.json")
        assert second.endswith("blackbox-002-breaker-open.json")
        document = load_blackbox(first)
        assert document["version"] == BLACKBOX_VERSION
        assert document["reason"] == "dlq-push"
        assert document["context"] == {"kernel": "bsw"}
        assert document["dump_seq"] == 1

    def test_reason_is_sanitized_in_filenames(self, tmp_path):
        recorder = FlightRecorder(dir_path=str(tmp_path), clock=_Ticker())
        path = recorder.trip("weird/reason with spaces")
        assert path.endswith("blackbox-001-weird-reason-with-spaces.json")

    def test_max_dumps_suppresses_a_crash_loop(self, tmp_path):
        recorder = FlightRecorder(
            dir_path=str(tmp_path), max_dumps=2, clock=_Ticker()
        )
        paths = [recorder.trip("fault") for _ in range(5)]
        assert sum(1 for path in paths if path) == 2
        assert recorder.dumps_written == 2
        assert recorder.metrics.counter("flight_trips") == 5
        assert recorder.metrics.counter("flight_dumps_written") == 2
        assert recorder.metrics.counter("flight_dumps_suppressed") == 3
        assert len(list(tmp_path.glob("blackbox-*.json"))) == 2

    def test_load_blackbox_rejects_non_blackbox_json(self, tmp_path):
        path = tmp_path / "not-a-box.json"
        path.write_text('{"kind": "something-else"}')
        with pytest.raises(ValueError):
            load_blackbox(str(path))


class TestCanonicalStrip:
    def test_strips_exactly_the_documented_wall_clock_fields(self):
        recorder = FlightRecorder(clock=_Ticker())
        recorder.note("milestone", label="x")
        recorder.record_span(
            "batch", "engine", 10.0, 12.0, {"kernel": "bsw", "jobs": 4}
        )
        document = recorder.blackbox("test", detail=1)
        canonical = canonical_blackbox(document)
        assert "wall_clock_unix" not in canonical
        assert "clock_s" not in canonical
        for entry in canonical["entries"]:
            assert "t" not in entry
            assert "start" not in entry.get("args", {})
            assert "end" not in entry.get("args", {})
        # Deterministic payload survives the strip.
        span = [e for e in canonical["entries"] if e["kind"] == "span"][0]
        assert span["args"]["kernel"] == "bsw"
        assert span["args"]["jobs"] == 4
        assert canonical["reason"] == "test"
        assert canonical["context"] == {"detail": 1}


def _run_crash_recovery(tmp_path, run_dir):
    """One seeded crash-recovery campaign; returns the dump path.

    Job ids are pinned explicitly (the module-global id counter has
    advanced differently in every in-process run) so two campaigns are
    byte-identical at the journal level too.
    """
    base = tmp_path / run_dir
    durability = DurabilityConfig(
        dir_path=str(base / "wal"), fsync="never"
    )
    config = EngineConfig(
        max_queue=64,
        workers=0,
        validate_fraction=0.0,
        durability=durability,
    )
    engine = Engine(config)
    for job_id in range(1000, 1004):
        engine.submit(
            Job(job_id=job_id, kernel="lcs", payload=dict(LCS))
        )
    # kill -9: the queue evaporates, the journal survives.
    engine.journal.crash()
    engine.close()

    flight = FlightRecorder(clock=_Ticker())
    flight.note("process-start", role="recovery")
    engine = Engine(config, flight=flight)
    report = engine.recover()
    assert report.orphans_resubmitted == 4
    results = engine.drain()
    engine.close()
    assert len(results) == 4 and all(result.ok for result in results)
    dumps = sorted((base / "wal" / "blackbox").glob("blackbox-*.json"))
    assert len(dumps) == 1
    assert dumps[0].name == "blackbox-001-recovery.json"
    return dumps[0]


class TestCrashRecoveryAcceptance:
    def test_recovery_dump_replays_in_the_trace_tooling(self, tmp_path):
        """Acceptance: the black box a seeded kill leaves behind feeds
        straight into the Chrome-trace pipeline with zero defects."""
        path = _run_crash_recovery(tmp_path, "run")
        document = load_blackbox(str(path))
        assert document["reason"] == "recovery"
        # The recovery report travels in the trigger context.
        assert document["context"]["accepted"] == 4
        assert document["context"]["orphans_resubmitted"] == 4
        trace = blackbox_to_chrome_trace(document)
        assert validate_chrome_trace(trace) == []
        assert trace["otherData"]["blackbox_reason"] == "recovery"
        assert trace["traceEvents"], "post-mortem timeline must not be empty"

    def test_two_seeded_runs_dump_byte_identical_canonical_boxes(
        self, tmp_path
    ):
        """Acceptance: determinism modulo the documented wall-clock
        fields -- nothing else may differ between identical runs."""
        boxes = []
        for run_dir in ("a", "b"):
            advance_job_ids(10_000)  # same id space for both runs
            path = _run_crash_recovery(tmp_path, run_dir)
            canonical = canonical_blackbox(load_blackbox(str(path)))
            boxes.append(json.dumps(canonical, sort_keys=True))
        assert boxes[0] == boxes[1]
        # And the strip mattered: the raw boxes do carry wall clocks.
        raw = load_blackbox(
            str(tmp_path / "a" / "wal" / "blackbox"
                / "blackbox-001-recovery.json")
        )
        assert "wall_clock_unix" in raw


class TestEngineIntegration:
    def test_engine_trips_flight_on_dlq_push(self, tmp_path):
        flight = FlightRecorder(
            dir_path=str(tmp_path), clock=_Ticker()
        )
        config = EngineConfig(
            max_queue=16, workers=0, validate_fraction=0.0
        )
        with Engine(config, flight=flight) as engine:
            engine.submit(
                Job(
                    job_id=5000,
                    kernel="chain",
                    payload={"anchors": [[0, 0, "w"]]},
                )
            )
            engine.drain()
            snapshot = engine.snapshot()
        assert flight.metrics.counter("flight_trips") >= 1
        assert flight.dumps_written >= 1
        # The engine folds flight health into its own scrape.
        assert snapshot["counters"]["flight_dumps_written"] >= 1
        assert snapshot["flight"]["dumps_written"] >= 1.0
        # The counters fold ran before the trip, so the box carries
        # the engine's counter state at the moment of failure.
        document = load_blackbox(
            str(sorted(tmp_path.glob("blackbox-*.json"))[0])
        )
        kinds = {entry["kind"] for entry in document["entries"]}
        assert "counters" in kinds

    def test_engine_inherits_flight_into_attached_tracer(self):
        flight = FlightRecorder(clock=_Ticker())
        tracer = TraceRecorder(clock=_Ticker())
        config = EngineConfig(
            max_queue=16, workers=0, validate_fraction=0.0
        )
        with Engine(config, tracer=tracer, flight=flight) as engine:
            engine.submit(
                Job(job_id=6000, kernel="lcs", payload=dict(LCS))
            )
            engine.drain()
        assert tracer.flight is flight
        spans = [e for e in flight.entries() if e["kind"] == "span"]
        assert spans, "engine spans must reach the flight ring"
