"""Declarative objectives: event extraction, budgets, round-trips."""

import pytest

from repro.engine.metrics import MetricsRegistry
from repro.slo.objectives import (
    DEFAULT_OBJECTIVES,
    SLObjective,
    objective_from_dict,
)

LATENCY = SLObjective(
    name="lat",
    kind="latency",
    target=0.99,
    histogram="execute_s",
    threshold_s=0.5,
)
AVAILABILITY = SLObjective(
    name="avail",
    kind="availability",
    target=0.999,
    good=("jobs_completed",),
    bad=("jobs_failed",),
)


class TestValidation:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            SLObjective(name="x", kind="weird", target=0.9)

    def test_rejects_target_outside_open_interval(self):
        for target in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                SLObjective(
                    name="x",
                    kind="latency",
                    target=target,
                    histogram="h",
                )

    def test_latency_needs_histogram(self):
        with pytest.raises(ValueError):
            SLObjective(name="x", kind="latency", target=0.9)

    def test_availability_needs_counters(self):
        with pytest.raises(ValueError):
            SLObjective(name="x", kind="availability", target=0.9)

    def test_budget_is_one_minus_target(self):
        assert LATENCY.budget == pytest.approx(0.01)
        assert AVAILABILITY.budget == pytest.approx(0.001)


class TestEventExtraction:
    def test_latency_counts_buckets_at_or_under_threshold(self):
        snapshot = {
            "histograms": {
                "execute_s": {
                    "count": 10,
                    "buckets": [[0.1, 3], [0.5, 4], [5.0, 2], ["inf", 1]],
                }
            }
        }
        # 0.1 and 0.5 bounds are <= 0.5s; 5.0 and inf are not.
        assert LATENCY.events(snapshot) == (7, 10)

    def test_latency_ignores_infinite_bound_strings(self):
        snapshot = {
            "histograms": {
                "execute_s": {"count": 2, "buckets": [["inf", 2]]}
            }
        }
        assert LATENCY.events(snapshot) == (0, 2)

    def test_latency_missing_histogram_reads_zero(self):
        assert LATENCY.events({"histograms": {}}) == (0, 0)
        assert LATENCY.events({}) == (0, 0)

    def test_availability_sums_counter_lists(self):
        snapshot = {"counters": {"jobs_completed": 95, "jobs_failed": 5}}
        assert AVAILABILITY.events(snapshot) == (95, 100)

    def test_availability_missing_counters_read_zero(self):
        assert AVAILABILITY.events({"counters": {}}) == (0, 0)

    def test_real_registry_snapshot_round_trips(self):
        registry = MetricsRegistry()
        registry.incr("jobs_completed", 3)
        for value in (0.1, 0.2, 0.9):
            registry.observe("execute_s", value)
        snapshot = registry.snapshot()
        good, total = LATENCY.events(snapshot)
        assert total == 3
        assert good == 2  # 0.9 lands above the 0.5 bound


class TestSerialization:
    @pytest.mark.parametrize("objective", [LATENCY, AVAILABILITY])
    def test_to_dict_round_trips(self, objective):
        assert objective_from_dict(objective.to_dict()) == objective

    def test_default_objectives_round_trip_and_are_unique(self):
        names = [objective.name for objective in DEFAULT_OBJECTIVES]
        assert len(names) == len(set(names))
        for objective in DEFAULT_OBJECTIVES:
            assert objective_from_dict(objective.to_dict()) == objective

    def test_default_latency_thresholds_sit_on_bucket_bounds(self):
        # Exactness contract: a latency threshold off the bucket grid
        # silently undercounts good events.
        from repro.engine.metrics import DEFAULT_LATENCY_BOUNDS

        for objective in DEFAULT_OBJECTIVES:
            if objective.kind == "latency":
                assert objective.threshold_s in DEFAULT_LATENCY_BOUNDS
