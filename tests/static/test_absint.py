"""Forward dataflow engine: observation mirroring and the feedback fixpoint."""

from repro.dpmap.codegen import compile_cell, run_program
from repro.engine.runners import build_dfg
from repro.static.absint import (
    MAX_FIXPOINT_ITERATIONS,
    analyze_fixpoint,
    analyze_program,
)
from repro.static.contracts import kernel_contract
from repro.static.intervals import Interval


def _observe_count(kernel, inputs):
    """Concrete observe-callback count for one cell execution."""
    program = compile_cell(build_dfg(kernel))
    calls = []
    run_program(program, inputs, observe=calls.append)
    return program, calls


class TestAnalyzeProgram:
    def test_observation_sequence_matches_runtime_shape(self):
        # The certificate speaks for "every value the sentinel would
        # see", which requires the abstract pass to issue exactly one
        # interval per runtime observe call, in the same order.
        program, calls = _observe_count(
            "lcs", {"x": 3, "y": 3, "c_diag": 5, "c_up": 2, "c_left": 7}
        )
        contract = kernel_contract("lcs")
        analysis = analyze_program(
            program, dict(contract.inputs), contract.match_range
        )
        assert len(analysis.observed) == len(calls)

    def test_concrete_values_inside_abstract_observations(self):
        program, calls = _observe_count(
            "dtw", {"a": 100, "b": 260, "d_diag": 9, "d_up": 4, "d_left": 11}
        )
        contract = kernel_contract("dtw")
        analysis = analyze_program(
            program, dict(contract.inputs), contract.match_range
        )
        for value, interval in zip(calls, analysis.observed):
            assert interval.contains(value)

    def test_unseeded_inputs_start_at_top(self):
        program = compile_cell(build_dfg("lcs"))
        analysis = analyze_program(program, {})
        assert all(
            interval == Interval.top()
            for interval in analysis.inputs.values()
        )

    def test_outputs_reported(self):
        program = compile_cell(build_dfg("dtw"))
        contract = kernel_contract("dtw")
        analysis = analyze_program(program, dict(contract.inputs))
        assert set(analysis.outputs) == set(program.output_regs)


class TestAnalyzeFixpoint:
    def test_monotone_accumulator_is_not_inductively_closed(self):
        # DTW's distance grows every cell; no finite contract can be a
        # recurrence invariant.
        program = compile_cell(build_dfg("dtw"))
        contract = kernel_contract("dtw")
        result = analyze_fixpoint(
            program,
            dict(contract.inputs),
            dict(contract.feedback),
            contract.match_range,
        )
        assert not result.inductively_closed
        assert result.iterations < MAX_FIXPOINT_ITERATIONS

    def test_widening_forces_convergence(self):
        # Even with feedback edges that grow forever, widening to the
        # rails must terminate well under the iteration cap, and the
        # steady inputs must cover the declared contract.
        program = compile_cell(build_dfg("chain"))
        contract = kernel_contract("chain")
        result = analyze_fixpoint(
            program,
            dict(contract.inputs),
            dict(contract.feedback),
            contract.match_range,
        )
        assert result.iterations < MAX_FIXPOINT_ITERATIONS
        for name, names in contract.feedback.items():
            for target in names:
                declared = contract.inputs[target]
                assert declared.within(result.steady_inputs[target])

    def test_no_feedback_is_single_pass(self):
        program = compile_cell(build_dfg("lcs"))
        contract = kernel_contract("lcs")
        result = analyze_fixpoint(
            program, dict(contract.inputs), {}, contract.match_range
        )
        # One ascent pass plus the narrowing recompute.
        assert result.iterations == 2
