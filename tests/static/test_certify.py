"""Certificates: which kernels prove sentinel-free, and why the rest don't."""

from repro.engine.cache import compile_program
from repro.engine.runners import build_dfg
from repro.guard.diff import DIFF_KERNELS, compile_kernel_programs
from repro.static.certify import (
    HAZARD_CLASSES,
    ProgramSafetyCertificate,
    armed_hazards,
    certify_program,
    compiled_certificate,
)
from repro.static.contracts import kernel_contract


def _cell_certificates():
    for kernel in DIFF_KERNELS:
        for name, cell in compile_kernel_programs(kernel).cells.items():
            label = kernel if name == "cell" else f"{kernel}:{name}"
            yield label, certify_program(kernel, cell, name=label)


class TestArmedHazards:
    def test_mirrors_make_sentinel(self):
        # The certificate must arm exactly what the runtime sentinel
        # arms, or "sentinel_free" would claim the wrong thing.
        assert armed_hazards("dtw") == ("int32-overflow",)
        assert armed_hazards("bsw") == ("int32-overflow", "lane-saturation")
        assert armed_hazards("pairhmm") == ("int32-overflow", "log-underflow")


class TestCertification:
    def test_at_least_two_kernels_certify(self):
        certified = [
            label
            for label, certificate in _cell_certificates()
            if certificate.sentinel_free
        ]
        assert len(certified) >= 2, certified

    def test_bsw_fails_on_lane_saturation_with_witness(self):
        cell = compile_kernel_programs("bsw").cells["cell"]
        certificate = certify_program("bsw", cell)
        assert not certificate.sentinel_free
        verdict = certificate.verdict("lane-saturation")
        assert verdict.armed and not verdict.proven_absent
        assert "observation" in verdict.witness
        # int32 itself is fine -- only the 8-bit lane rail is at risk.
        assert certificate.verdict("int32-overflow").proven_absent

    def test_pairhmm_fails_on_log_underflow(self):
        cell = compile_kernel_programs("pairhmm").cells["cell"]
        certificate = certify_program("pairhmm", cell)
        assert not certificate.sentinel_free
        verdict = certificate.verdict("log-underflow")
        assert verdict.armed and not verdict.proven_absent

    def test_poa_edge_contract_is_inductively_closed(self):
        # The gap-state fold saturates at the boundary clamp, so the
        # declared contract really is a recurrence invariant.
        cell = compile_kernel_programs("poa").cells["edge"]
        certificate = certify_program("poa", cell, name="poa:edge")
        assert certificate.sentinel_free
        assert certificate.inductively_closed

    def test_unknown_contract_reports_uncertified(self):
        cell = compile_kernel_programs("dtw").cells["cell"]
        certificate = certify_program("dtw", cell, name="mystery")
        assert not certificate.contract
        assert not certificate.sentinel_free
        assert certificate.fixpoint_iterations == 0

    def test_observed_intervals_recorded_for_harness(self):
        cell = compile_kernel_programs("dtw").cells["cell"]
        certificate = certify_program("dtw", cell)
        assert certificate.observed_intervals
        assert all(len(pair) == 2 for pair in certificate.observed_intervals)

    def test_round_trips_through_dict(self):
        cell = compile_kernel_programs("chain").cells["cell"]
        certificate = certify_program("chain", cell)
        clone = ProgramSafetyCertificate.from_dict(certificate.to_dict())
        assert clone == certificate

    def test_verdict_order_is_stable(self):
        cell = compile_kernel_programs("dtw").cells["cell"]
        certificate = certify_program("dtw", cell)
        assert tuple(v.hazard for v in certificate.verdicts) == HAZARD_CLASSES


class TestCompiledCertificate:
    def test_engine_compile_payload_certifies(self):
        compiled = compile_program("dtw", 2, build_dfg("dtw"))
        data = compiled_certificate("dtw", compiled)
        assert data is not None and data["sentinel_free"]
        assert data["program_hash"] == compiled.program_hash

    def test_analysis_failure_degrades_to_none(self):
        # A compile seam must never fail the compile: garbage programs
        # produce no certificate (sentinels stay on) rather than raising.
        assert compiled_certificate("dtw", object()) is None

    def test_contracts_exist_for_all_guard_kernels(self):
        for kernel in DIFF_KERNELS:
            for name, _ in compile_kernel_programs(kernel).cells.items():
                label = kernel if name == "cell" else f"{kernel}:{name}"
                assert kernel_contract(label) is not None, label
