"""Engine integration: certificates at compile time, elision at dispatch.

The soundness cross-check lives here too: on a certified program the
runtime sentinel (when forced on) must never record a hazard, and
``static_certificate_violations`` must stay zero -- a nonzero value is
a hard test failure anywhere in the suite.
"""

from repro.engine import Engine, EngineConfig, make_job
from repro.engine.metrics import STATIC_COUNTERS


def _dtw_job(index=0):
    return make_job(
        "dtw",
        {"a": [1, 5, 9, 2 + index], "b": [2, 4, 8, 3]},
    )


def _bsw_job():
    return make_job("bsw", {"query": "ACGTACGT", "target": "ACGGTACT"})


class TestCertificateAttachment:
    def test_compile_attaches_certificate(self):
        with Engine() as engine:
            engine.submit(_dtw_job())
            assert engine.drain()[0].ok
            compiled = next(iter(engine.cache._entries.values()))
            assert compiled.certificate is not None
            assert compiled.certificate["sentinel_free"]
            assert engine.metrics.counter("static_programs_certified") == 1

    def test_uncertified_kernel_counted(self):
        with Engine() as engine:
            engine.submit(_bsw_job())
            assert engine.drain()[0].ok
            assert engine.metrics.counter("static_programs_uncertified") == 1
            assert engine.metrics.counter("static_programs_certified") == 0


class TestElision:
    def test_certified_kernel_skips_observation(self):
        with Engine(EngineConfig(sentinels=True)) as engine:
            for index in range(4):
                engine.submit(_dtw_job(index))
            assert all(r.ok for r in engine.drain())
            counters = engine.metrics.static()
            assert counters["static_sentinel_elisions"] == 4
            assert counters["static_certificate_violations"] == 0
            assert (
                engine.metrics.sentinels()["sentinel_values_observed"] == 0
            )

    def test_uncertified_kernel_keeps_sentinels(self):
        with Engine(EngineConfig(sentinels=True)) as engine:
            engine.submit(_bsw_job())
            assert engine.drain()[0].ok
            assert engine.metrics.counter("static_sentinel_elisions") == 0
            assert (
                engine.metrics.sentinels()["sentinel_values_observed"] > 0
            )

    def test_elision_can_be_disabled(self):
        config = EngineConfig(sentinels=True, elide_sentinels=False)
        with Engine(config) as engine:
            engine.submit(_dtw_job())
            assert engine.drain()[0].ok
            assert engine.metrics.counter("static_sentinel_elisions") == 0
            assert (
                engine.metrics.sentinels()["sentinel_values_observed"] > 0
            )

    def test_certified_program_never_trips_the_forced_sentinel(self):
        # Soundness: force observation on a certified program; every
        # hazard counter and the violation audit must stay zero.
        config = EngineConfig(sentinels=True, elide_sentinels=False)
        with Engine(config) as engine:
            for index in range(8):
                engine.submit(_dtw_job(index))
            assert all(r.ok for r in engine.drain())
            counters = engine.metrics.sentinels()
            assert counters["sentinel_int32_overflows"] == 0
            assert counters["sentinel_lane_saturations"] == 0
            assert counters["sentinel_underflows"] == 0
            assert (
                engine.metrics.counter("static_certificate_violations") == 0
            )

    def test_snapshot_exports_static_block(self):
        with Engine(EngineConfig(sentinels=True)) as engine:
            engine.submit(_dtw_job())
            engine.drain()
            snapshot = engine.snapshot()
            assert set(snapshot["static"]) == set(STATIC_COUNTERS)
