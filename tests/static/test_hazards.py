"""Hazard analyses: areg intervals, SPM windows, RF pressure, protocol."""

from types import SimpleNamespace

from repro.diagnostics import Severity
from repro.dpmap.codegen import compile_cell
from repro.engine.runners import build_dfg
from repro.isa.control import (
    ControlOp,
    FIFO_PORT,
    IN_PORT,
    Loc,
    OUT_PORT,
    Space,
    addi,
    areg,
    branch,
    halt,
    li,
    mv,
    reg,
    spm,
)
from repro.mapping.kernels2d import bsw_wavefront_spec
from repro.mapping.wavefront2d import build_wavefront_programs
from repro.static.hazards import (
    areg_value_intervals,
    control_spm_diagnostics,
    count_port_ops,
    rf_pressure_diagnostics,
    wavefront_protocol_diagnostics,
)


class TestAregIntervals:
    def test_loop_counter_is_bounded(self):
        # for a0 in 0..8: the entry state at the loop body must bound
        # a0 without running the loop concretely.
        instructions = [
            li(areg(0), 0),
            li(areg(1), 8),
            addi(0, 0, 1),
            branch(ControlOp.BNE, 0, 1, -1),
            halt(),
        ]
        states = areg_value_intervals(instructions)
        body_entry = states[2][0]
        assert body_entry.contains(0) and body_entry.contains(7)

    def test_mv_from_memory_is_top(self):
        instructions = [mv(areg(0), spm(5)), halt()]
        states = areg_value_intervals(instructions)
        assert not states[1][0].bounded


class TestControlSpm:
    def test_definite_out_of_bounds_is_error(self):
        instructions = [
            li(areg(0), 5000),
            mv(spm(0, indirect=True), reg(0)),
        ]
        diagnostics = control_spm_diagnostics(instructions, 2048)
        assert any(
            d.rule == "spm-indirect-out-of-bounds"
            and d.severity is Severity.ERROR
            for d in diagnostics
        )

    def test_in_bounds_loop_is_clean(self):
        instructions = [
            li(areg(0), 0),
            li(areg(1), 16),
            li(spm(0, indirect=True), 1),
            mv(reg(0), spm(0, indirect=True)),
            addi(0, 0, 1),
            branch(ControlOp.BNE, 0, 1, -3),
        ]
        assert not control_spm_diagnostics(instructions, 2048)

    def test_unreachable_read_window_warns(self):
        instructions = [
            li(spm(0), 1),
            li(areg(0), 500),
            mv(reg(0), spm(0, indirect=True)),
        ]
        diagnostics = control_spm_diagnostics(instructions, 2048)
        assert any(
            d.rule == "spm-read-before-write"
            and d.severity is Severity.WARNING
            for d in diagnostics
        )


class TestRfPressure:
    def test_kernel_cells_fit_the_default_rf(self):
        program = compile_cell(build_dfg("bsw"))
        assert not rf_pressure_diagnostics("bsw", program, 64)

    def test_tiny_rf_reports_capacity_error(self):
        program = compile_cell(build_dfg("bsw"))
        diagnostics = rf_pressure_diagnostics("bsw", program, 2)
        assert any(
            d.rule == "rf-live-exceeds-capacity"
            and d.severity is Severity.ERROR
            for d in diagnostics
        )


class TestPortCounting:
    def test_counts_loop_iterations(self):
        instructions = [
            li(areg(0), 0),
            li(areg(1), 3),
            mv(OUT_PORT, reg(0)),
            addi(0, 0, 1),
            branch(ControlOp.BNE, 0, 1, -2),
            halt(),
        ]
        counts = count_port_ops(instructions)
        assert counts["out"]["writes"] == 3

    def test_data_dependent_branch_bails(self):
        instructions = [
            mv(areg(0), spm(5)),  # areg from memory: opaque
            branch(ControlOp.BEQ, 0, 0, 1),
            halt(),
        ]
        assert count_port_ops(instructions) is None

    def test_runaway_loop_hits_budget(self):
        instructions = [
            li(areg(0), 0),
            branch(ControlOp.BEQ, 0, 0, 0),  # spin forever
        ]
        assert count_port_ops(instructions, max_steps=1000) is None


def _thread(*instructions):
    return list(instructions)


class TestWavefrontProtocol:
    def test_real_loadout_has_no_errors(self):
        programs = build_wavefront_programs(
            bsw_wavefront_spec(), target_length=8, query_length=4, pe_count=4
        )
        diagnostics = wavefront_protocol_diagnostics(programs)
        assert all(d.severity < Severity.ERROR for d in diagnostics)

    def test_stream_imbalance_is_deadlock_error(self):
        programs = SimpleNamespace(
            array_control=_thread(
                mv(OUT_PORT, reg(0)),
                mv(OUT_PORT, reg(0)),  # pushes 2
                mv(reg(1), IN_PORT),
                halt(),
            ),
            pe_control=[
                _thread(
                    mv(reg(0), IN_PORT),  # pops only 1
                    mv(OUT_PORT, reg(0)),
                    halt(),
                )
            ],
        )
        diagnostics = wavefront_protocol_diagnostics(programs)
        assert any(
            d.rule == "stream-send-recv-mismatch" for d in diagnostics
        )

    def test_fifo_starvation_is_error_but_residual_is_note(self):
        starved = SimpleNamespace(
            array_control=_thread(mv(Loc(Space.FIFO), reg(0)), halt()),
            pe_control=[
                _thread(
                    mv(reg(0), FIFO_PORT),
                    mv(reg(0), FIFO_PORT),  # pops 2, pushed 1
                    halt(),
                )
            ],
        )
        diagnostics = wavefront_protocol_diagnostics(starved)
        assert any(d.rule == "fifo-send-recv-mismatch" for d in diagnostics)

        residual = SimpleNamespace(
            array_control=_thread(
                mv(Loc(Space.FIFO), reg(0)),
                mv(Loc(Space.FIFO), reg(0)),
                halt(),
            ),
            pe_control=[_thread(mv(reg(0), FIFO_PORT), halt())],
        )
        diagnostics = wavefront_protocol_diagnostics(residual)
        notes = [d for d in diagnostics if d.rule == "fifo-residual-words"]
        assert notes and notes[0].severity is Severity.INFO

    def test_unevaluable_thread_warns_instead_of_guessing(self):
        programs = SimpleNamespace(
            array_control=_thread(
                mv(areg(0), spm(5)),
                branch(ControlOp.BEQ, 0, 0, 1),
                halt(),
            ),
            pe_control=[_thread(halt())],
        )
        diagnostics = wavefront_protocol_diagnostics(programs)
        assert [d.rule for d in diagnostics] == ["fifo-protocol-unknown"]
